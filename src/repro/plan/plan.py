"""Simulation plans: the freeze/compile half of plan → compile → execute.

MATEX's core economics (paper Sec. 3.4) are "factor once, reuse
forever": the Krylov operators depend only on the pencil ``(C, G, γ)``,
never on the inputs ``u(t)``.  Before this layer existed, every entry
path (scheduler, CLI, experiments runner) re-did source decomposition,
DC analysis, schedule construction and factorisation priming per run —
per *scenario* in a what-if sweep.  A :class:`SimulationPlan` freezes
the reusable half of a run, and :meth:`SimulationPlan.compile` performs
it exactly once:

* **group construction** — the input-source decomposition (bump /
  source / bump-split, optionally merged to ``max_nodes``),
* the shared **global-transition-spot grid** and one per-group marching
  :class:`~repro.core.transition.TransitionSchedule`,
* **DC analysis** ``G x_dc = B u(0)`` (priming the ``G`` factors in the
  process-wide :data:`~repro.linalg.lu.FACTORIZATION_CACHE`),
* **γ-factorisation priming** — the method pencil (``C + γG`` for
  R-MATEX) is factored into the cache so no later consumer pays it.

The result is a **picklable** :class:`CompiledPlan`: factorisations
live in the per-process cache (they cannot travel through a pipe), so a
plan shipped to another process re-primes lazily on first use while
every frozen decision — groups, grid, schedules, DC state — transfers
bit-exactly.  Execution against scenarios is the job of
:class:`~repro.plan.session.Session`.

This module deliberately imports nothing from :mod:`repro.dist` — the
scheduler is built *on top of* plans, not the other way around.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.mna import MNASystem
from repro.core.decomposition import (
    SourceGroup,
    decompose_by_bump,
    decompose_by_bump_split,
    decompose_by_source,
    merge_to_limit,
)
from repro.core.options import SolverOptions
from repro.core.transition import TransitionSchedule, build_schedule
from repro.linalg.krylov import make_krylov_operator
from repro.linalg.lu import FACTORIZATION_CACHE, matrix_fingerprint

__all__ = [
    "DECOMPOSITIONS",
    "PlanError",
    "SimulationPlan",
    "CompiledPlan",
    "build_groups",
    "prime_factorizations",
]

#: Recognised decomposition strategy names.
DECOMPOSITIONS = ("bump", "source", "bump-split")


class PlanError(ValueError):
    """A scenario (or plan configuration) violates a compiled contract."""


def build_groups(
    system: MNASystem,
    decomposition: str,
    max_nodes: int | None = None,
    t_end: float | None = None,
) -> list[SourceGroup]:
    """The source groups (= computing nodes) of one decomposition.

    Single definition shared by :class:`SimulationPlan` and
    :class:`~repro.dist.scheduler.MatexScheduler`.  ``"bump-split"``
    unrolls periodic pulses over the simulation window, so it needs the
    horizon; the other strategies ignore ``t_end``.
    """
    if decomposition not in DECOMPOSITIONS:
        raise ValueError(
            f"unknown decomposition {decomposition!r}; "
            f"choose from {sorted(DECOMPOSITIONS)}"
        )
    if decomposition == "bump-split":
        if t_end is None:
            raise ValueError(
                "the 'bump-split' decomposition unrolls periodic "
                "sources over the simulation window; pass the horizon: "
                "groups(t_end=...)"
            )
        groups = decompose_by_bump_split(system, t_end)
    elif decomposition == "bump":
        groups = decompose_by_bump(system)
    else:
        groups = decompose_by_source(system)
    if max_nodes is not None:
        groups = merge_to_limit(groups, max_nodes)
    return groups


def prime_factorizations(system: MNASystem, options: SolverOptions) -> None:
    """Factor the method pencil into the process-wide cache.

    Performs exactly the cache-keyed factor call a node solver's
    construction performs (``C + γG`` for rational, ``G`` for inverted,
    ``C`` for standard) and discards the operator handle — the factors
    stay resident in :data:`~repro.linalg.lu.FACTORIZATION_CACHE`, so
    every later :class:`~repro.dist.worker.NodeWorker` /
    :class:`~repro.dist.block_runner.BlockNodeRunner` built in this
    process gets a hit instead of a factorisation.

    The pencil's substitution kernel is primed along with the factors:
    the triangular export *and* its level schedules
    (:mod:`repro.linalg.triangular`) are built here, once, so the block
    Arnoldi's first multi-RHS round in every sweep session is served by
    the already-scheduled kernel (a no-op in ``legacy`` kernel mode).
    """
    op = make_krylov_operator(
        options.method, system.C, system.G, gamma=options.gamma
    )
    op.lu.prime_kernel(wide=True)


@dataclass(frozen=True, eq=False)
class SimulationPlan:
    """The frozen, reusable half of a distributed MATEX run.

    A plan binds everything that does **not** change across a scenario
    sweep: the system (topology + base waveforms), the solver options
    (including γ, which keys the pencil factorisation), the
    decomposition policy, the horizon and the batching policy.  What
    *does* change per run — the input pattern — is bound later, one
    :class:`~repro.plan.scenario.Scenario` at a time.

    Attributes
    ----------
    system:
        Assembled MNA system (the base waveforms define the frozen
        transition grid).
    options:
        Solver options; defaults to R-MATEX settings.
    t_end:
        Simulation horizon (> 0).
    decomposition:
        ``"bump"`` (default), ``"source"`` or ``"bump-split"``.
    max_nodes:
        Optional round-robin merge cap on the group count.
    batch:
        Default lockstep policy for sessions over this plan: ``"auto"``
        (default — sweeps want the block-batched march), ``"off"``, or
        a fixed width.
    """

    system: MNASystem
    options: SolverOptions | None = None
    t_end: float = 0.0
    decomposition: str = "bump"
    max_nodes: int | None = None
    batch: object = "auto"

    def __post_init__(self):
        if self.options is None:
            object.__setattr__(self, "options", SolverOptions())
        if self.t_end <= 0.0:
            raise ValueError(
                f"t_end must be positive, got {self.t_end!r}"
            )
        if self.decomposition not in DECOMPOSITIONS:
            raise ValueError(
                f"unknown decomposition {self.decomposition!r}; "
                f"choose from {sorted(DECOMPOSITIONS)}"
            )
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError(
                f"max_nodes must be >= 1, got {self.max_nodes}"
            )
        if self.batch not in ("off", "auto") and not (
            isinstance(self.batch, int)
            and not isinstance(self.batch, bool)
            and self.batch >= 1
        ):
            raise ValueError(
                f"batch must be 'off', 'auto' or a positive width, "
                f"got {self.batch!r}"
            )

    def groups(self) -> list[SourceGroup]:
        """The plan's source groups (see :func:`build_groups`)."""
        return build_groups(
            self.system, self.decomposition, self.max_nodes, self.t_end
        )

    def compile(
        self, prime: bool = True, rom: "RomConfig | None" = None
    ) -> "CompiledPlan":
        """Perform the reusable work exactly once; freeze the outcome.

        Parameters
        ----------
        prime:
            Also factor the method pencil into this process's
            :data:`~repro.linalg.lu.FACTORIZATION_CACHE`.  Leave on for
            in-process execution; pass ``False`` when the plan will run
            on a :class:`~repro.dist.executors.MultiprocessExecutor`,
            whose worker *processes* must (and do) prime their own
            caches on first use.
        rom:
            Optional :class:`repro.rom.RomConfig`.  When given, the
            compile additionally projects the pencil onto a rational
            Krylov subspace (reusing the cache's ``G`` and γ-pencil
            factorisations) and bakes the resulting
            :class:`~repro.rom.ReducedModel` into the compiled plan;
            :meth:`Session.sweep <repro.plan.session.Session.sweep>`
            then answers scenarios from it, falling back to the
            full-order path per scenario when the posterior error
            bound exceeds ``rom.tol``.  A build failure degrades
            gracefully: the plan compiles without a model and records
            the reason in ``rom_error``.

        Returns
        -------
        CompiledPlan
            Picklable snapshot: groups, shared GTS grid, one marching
            schedule per group, the DC operating point, and the
            compile-time cost/cache accounting.
        """
        t0 = time.perf_counter()
        stats0 = FACTORIZATION_CACHE.stats()

        groups = self.groups()
        if not groups:
            raise ValueError(
                "every input source is constant: there is nothing to "
                "decompose — the DC operating point already is the full "
                "solution, no transient nodes are needed"
            )
        gts = tuple(self.system.global_transition_spots(self.t_end))
        schedules = tuple(
            build_schedule(
                self.system,
                self.t_end,
                local_inputs=g.input_columns,
                global_points=gts,
                waveform_overrides=g.overrides_dict() or None,
            )
            for g in groups
        )

        # Serial part (master): DC analysis over *all* inputs.  The G
        # factorisation is cache-served — all sub-tasks share the same
        # MNA pencil (Sec. 3.4), so after the first consumer in this
        # process it costs one substitution pair, not an LU.
        t_dc = time.perf_counter()
        lu_g = FACTORIZATION_CACHE.factor(self.system.G, label="G(dc)")
        x_dc = lu_g.solve(self.system.bu(0.0))
        dc_seconds = time.perf_counter() - t_dc

        if prime:
            prime_factorizations(self.system, self.options)
            # The lockstep rounds feed ``G`` wide RHS blocks too (the
            # fused ETD substitutions); schedule its kernel at compile
            # time so no sweep session pays the one-off level build.
            lu_g.prime_kernel(wide=True)

        reduced = None
        rom_error: str | None = None
        if rom is not None:
            from repro.rom import RomBuildError, build_reduced_model

            try:
                reduced = build_reduced_model(
                    self.system, self.options, self.t_end, rom
                )
            except RomBuildError as exc:
                rom_error = str(exc)
            else:
                # Reduced models live outside the LRU (dense NumPy
                # state, not SuperLU factors) but belong in the same
                # byte ledger; re-compiling the same pencil/config
                # overwrites its ledger entry instead of accumulating.
                FACTORIZATION_CACHE.register_external(
                    "rom:" + "-".join((
                        matrix_fingerprint(self.system.C)[:16],
                        matrix_fingerprint(self.system.G)[:16],
                        matrix_fingerprint(self.system.B)[:16],
                        f"{self.options.gamma:.12e}",
                        f"q{rom.q_max}m{rom.moments}",
                    )),
                    reduced.resident_bytes(),
                )

        stats1 = FACTORIZATION_CACHE.stats()
        return CompiledPlan(
            system=self.system,
            options=self.options,
            t_end=self.t_end,
            decomposition=self.decomposition,
            max_nodes=self.max_nodes,
            batch=self.batch,
            groups=tuple(groups),
            global_points=gts,
            schedules=schedules,
            x_dc=x_dc,
            dc_seconds=dc_seconds,
            compile_seconds=time.perf_counter() - t0,
            primed=prime,
            cache_hits=stats1["hits"] - stats0["hits"],
            cache_misses=stats1["misses"] - stats0["misses"],
            cache_evictions=stats1["evictions"] - stats0["evictions"],
            rom=reduced,
            rom_error=rom_error,
        )


@dataclass(frozen=True, eq=False)
class CompiledPlan:
    """The frozen outcome of :meth:`SimulationPlan.compile`.

    Every field is picklable: a compiled plan can be shipped to another
    process (or cached on disk) and executed there with bit-identical
    results — factorisations are *not* carried (SuperLU objects cannot
    travel through a pipe) but re-prime lazily through the receiving
    process's :data:`~repro.linalg.lu.FACTORIZATION_CACHE`, and every
    frozen decision (groups, grid, schedules, DC state) transfers
    exactly.

    Attributes
    ----------
    groups:
        The frozen source decomposition, one entry per computing node.
    global_points:
        The shared global-transition-spot grid all scenarios march on.
    schedules:
        One pre-built :class:`~repro.core.transition.TransitionSchedule`
        per group (parallel to ``groups``) — stamped onto every
        scenario's :class:`~repro.dist.messages.SimulationTask` so a
        sweep never rebuilds them.
    x_dc:
        DC operating point of the *base* waveforms; scenarios that
        change ``u(0)`` get their own (cache-served) DC solve at
        execution time.
    dc_seconds, compile_seconds:
        Wall time of the DC analysis / the whole compile.
    primed:
        Whether the method pencil was factored at compile time.
    cache_hits, cache_misses, cache_evictions:
        Process-wide factor-cache traffic attributable to the compile;
        a session reports these on its first result, mirroring how
        workers attribute construction traffic.
    rom:
        The baked :class:`~repro.rom.ReducedModel`, or ``None`` when
        the plan was compiled without ``rom=`` (or the build failed).
        Dense NumPy state throughout, so the model pickles with the
        plan and is shared verbatim by multiprocess executors; its
        footprint is reported through the factorisation cache's
        ``external_bytes`` ledger.
    rom_error:
        Human-readable reason the requested reduced model could not be
        built (``None`` when no model was requested or the build
        succeeded); the plan stays fully usable full-order.
    """

    system: MNASystem
    options: SolverOptions
    t_end: float
    decomposition: str
    max_nodes: int | None
    batch: object
    groups: tuple[SourceGroup, ...]
    global_points: tuple[float, ...]
    schedules: tuple[TransitionSchedule, ...]
    x_dc: np.ndarray
    dc_seconds: float
    compile_seconds: float
    primed: bool = True
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    rom: object | None = None
    rom_error: str | None = None
    _fingerprint: str | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_nodes(self) -> int:
        """Number of computing nodes (= source groups) per scenario."""
        return len(self.groups)

    def system_fingerprint(self) -> str:
        """Content digest of the frozen pencil inputs ``(C, G, B, γ)``.

        Two compiled plans with equal fingerprints share every
        factorisation in the process-wide cache; the digest is cached
        on first use (hashing is O(nnz)).
        """
        if self._fingerprint is None:
            digest = "-".join((
                matrix_fingerprint(self.system.C)[:16],
                matrix_fingerprint(self.system.G)[:16],
                matrix_fingerprint(self.system.B)[:16],
                f"{self.options.gamma:.12e}",
            ))
            object.__setattr__(self, "_fingerprint", digest)
        return self._fingerprint

    def summary(self) -> str:
        """One-line human digest (used by the sweep CLI).

        When the plan carries a reduced model the line is extended
        with the model's own summary (reduced dimension ``q``,
        deflation counts, tolerance, resident bytes and build time);
        when a requested model could not be built it is extended with
        ``rom unavailable: <reason>`` instead.
        """
        line = (
            f"compiled plan: {self.n_nodes} nodes "
            f"[{self.decomposition}], {len(self.global_points)} GTS "
            f"points, t_end={self.t_end:g}s, "
            f"compile {self.compile_seconds * 1e3:.1f} ms "
            f"(dc {self.dc_seconds * 1e3:.1f} ms, "
            f"cache {self.cache_hits}h/{self.cache_misses}m)"
        )
        if self.rom is not None:
            line += f"; {self.rom.summary()}"
        elif self.rom_error is not None:
            line += f"; rom unavailable: {self.rom_error}"
        return line
