"""Scenarios: input-pattern bindings against a compiled topology.

MATEX's Krylov operators depend only on the pencil ``(C, G, γ)``, never
on the inputs ``u(t)`` — so "same system, different sources" is the
cheapest possible what-if question.  A :class:`Scenario` captures one
such question: a named set of waveform replacements and/or amplitude
scalings on the input columns of an :class:`~repro.circuit.mna.MNASystem`.
Binding a scenario (:meth:`Scenario.bind`) swaps ``B·u(t)`` through
:meth:`~repro.circuit.mna.MNASystem.rebind_sources` without touching
``G`` or ``C`` — every factorisation, decomposition and schedule of a
compiled plan stays valid.

The contract that keeps a scenario compatible with a compiled plan is
**transition-grid preservation**: replacement waveforms must transition
at exactly the times the original did (amplitude scalings preserve this
by construction).  :class:`~repro.plan.session.Session` validates it and
rejects structurally different inputs with a clear
:class:`~repro.plan.plan.PlanError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.circuit.mna import MNASystem
from repro.circuit.waveforms import Waveform

__all__ = ["Scenario", "scenario_from_spec", "load_scenarios_json"]


@dataclass(frozen=True, eq=False)
class Scenario:
    """One named input pattern to run against a compiled plan.

    Attributes
    ----------
    name:
        Human-readable label, echoed on the
        :class:`~repro.dist.messages.DistributedResult`.
    overrides:
        ``(column, waveform)`` replacements, applied first.  The
        replacement must preserve the column's transition spots (and
        its constancy) — a compiled plan's decomposition and schedules
        are frozen on the base system's grid.
    scales:
        ``(column, factor)`` amplitude scalings applied via
        :meth:`~repro.circuit.waveforms.Waveform.scaled` after the
        overrides.  Scaling never moves transition spots, so it is
        always plan-compatible (a zero factor turns a varying source
        constant and is rejected at validation).
    """

    name: str = "baseline"
    overrides: tuple[tuple[int, Waveform], ...] = ()
    scales: tuple[tuple[int, float], ...] = ()

    def __init__(self, name: str = "baseline", overrides=None, scales=None):
        object.__setattr__(self, "name", str(name))
        object.__setattr__(
            self,
            "overrides",
            tuple(sorted(
                ((int(c), w) for c, w in dict(overrides or {}).items()),
                key=lambda cw: cw[0],
            )),
        )
        object.__setattr__(
            self,
            "scales",
            tuple(sorted(
                ((int(c), float(f)) for c, f in dict(scales or {}).items()),
                key=lambda cf: cf[0],
            )),
        )

    @property
    def is_baseline(self) -> bool:
        """True when the scenario changes nothing (the plan's own inputs)."""
        return not self.overrides and not self.scales

    @property
    def changed_columns(self) -> tuple[int, ...]:
        """Sorted union of the input columns this scenario touches."""
        cols = {c for c, _ in self.overrides} | {c for c, _ in self.scales}
        return tuple(sorted(cols))

    def bind(self, system: MNASystem) -> MNASystem:
        """The scenario's view of ``system`` (shared matrices, new u(t))."""
        if self.is_baseline:
            return system
        return system.rebind_sources(
            overrides=dict(self.overrides), scales=dict(self.scales)
        )

    def __repr__(self) -> str:  # keep sweeps readable in logs
        parts = [f"Scenario({self.name!r}"]
        if self.overrides:
            parts.append(f"overrides={[c for c, _ in self.overrides]}")
        if self.scales:
            parts.append(f"scales={[c for c, _ in self.scales]}")
        return ", ".join(parts) + ")"


def scenario_from_spec(entry, system: MNASystem, index: int = 0) -> Scenario:
    """Build one :class:`Scenario` from a JSON-style spec object.

    The single definition of the spec grammar, shared by
    :func:`load_scenarios_json` (file sweeps) and the ``repro serve``
    daemon (requests carry the same objects over the wire).  Supported
    keys: ``name``, ``scale_loads``, ``scale`` — see
    :func:`load_scenarios_json` for their semantics.  ``index`` only
    seeds the default name and error messages.
    """
    if not isinstance(entry, dict):
        raise ValueError(f"scenario entry {index} is not a JSON object")
    unknown = set(entry) - {"name", "scale_loads", "scale"}
    if unknown:
        raise ValueError(
            f"scenario entry {index} has unknown keys {sorted(unknown)}; "
            f"supported: name, scale_loads, scale"
        )
    scales: dict[int, float] = {}
    if "scale_loads" in entry:
        factor = float(entry["scale_loads"])
        scales.update((k, factor) for k in system.current_input_indices)
    for col, factor in (entry.get("scale") or {}).items():
        col = int(col)
        if not 0 <= col < system.n_inputs:
            raise ValueError(
                f"scenario entry {index}: input column {col} out of range "
                f"(system has {system.n_inputs} inputs)"
            )
        scales[col] = float(factor)
    return Scenario(
        name=entry.get("name", f"scenario{index}"), scales=scales
    )


def load_scenarios_json(path, system: MNASystem) -> list[Scenario]:
    """Load a sweep specification (JSON) into :class:`Scenario` objects.

    The file holds a list of entries; each entry supports:

    ``name``
        Scenario label (defaults to ``scenario<i>``).
    ``scale_loads``
        One factor applied to **every** load-current input column
        (supply-voltage columns are untouched) — the classic "what if
        activity is 30% higher" pattern.
    ``scale``
        ``{column: factor}`` per-column scalings (keys are input-column
        indices, as printed by ``repro info``); applied after
        ``scale_loads`` and overriding it on the named columns.

    Example::

        [
          {"name": "nominal"},
          {"name": "hot", "scale_loads": 1.3},
          {"name": "one-block-quiet", "scale": {"17": 0.25}}
        ]
    """
    spec = json.loads(Path(path).read_text())
    if not isinstance(spec, list):
        raise ValueError(
            f"scenario spec must be a JSON list of objects, "
            f"got {type(spec).__name__}"
        )
    return [
        scenario_from_spec(entry, system, index=i)
        for i, entry in enumerate(spec)
    ]
