"""Sessions: the execute half of plan → compile → execute.

A :class:`Session` streams :class:`~repro.plan.scenario.Scenario`
objects through one :class:`~repro.plan.plan.CompiledPlan` against a
**persistent** executor:

* the executor's backing state — in-process solver factorisations, or
  a :class:`~repro.dist.executors.MultiprocessExecutor` worker pool
  with its per-process factor caches — is built once and survives
  across scenarios (context-manager lifecycle);
* scenarios bound to the plan's frozen grid are **stacked**: their
  tasks are submitted in one batch, so the block-batched lockstep march
  advances N scenarios × K groups as one wide block instead of N
  separate runs;
* every scenario's superposed trajectory is **bit-for-bit identical**
  to an independent cold :class:`~repro.dist.scheduler.MatexScheduler`
  run on the scenario-bound system (enforced by ``tests/test_plan.py``)
  — the sweep is purely an amortisation, never an approximation.

A worker death mid-sweep does not poison the session: the persistent
executor disposes the broken pool (sweeping the dead worker's
shared-memory segments) and the next scenario transparently runs on
fresh workers.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, Sequence

import numpy as np

from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.core.superposition import superpose
from repro.dist.executors import Executor, SerialExecutor
from repro.dist.messages import DistributedResult, SimulationTask
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.plan.plan import CompiledPlan, PlanError
from repro.plan.scenario import Scenario

__all__ = ["Session"]


#: Target lockstep width (node tasks per submission) for ``stack="auto"``.
#: Stacking pays off by amortising per-round Python overhead, which is
#: saturated by a few hundred lockstep columns; beyond that the
#: per-round working set (every stacked task's dense trajectory block)
#: only grows, and the march slows down on memory traffic.  So "auto"
#: stacks narrow plans deeply (a 6-node plan runs ~40 scenarios per
#: march) and wide plans shallowly (a 100-node plan runs 2 per march),
#: instead of blindly submitting the whole sweep at once.
AUTO_STACK_TASK_TARGET = 256


def _resolve_stack(stack, n_scenarios: int, n_nodes: int) -> int:
    """Normalise a stacking policy to a chunk size in scenarios."""
    if stack == "auto":
        per_chunk = max(1, AUTO_STACK_TASK_TARGET // max(n_nodes, 1))
        return min(per_chunk, max(n_scenarios, 1))
    width = int(stack)
    if width < 1:
        raise ValueError(f"stack must be 'auto' or >= 1, got {stack!r}")
    return width


class Session:
    """Executes a stream of scenarios against one compiled plan.

    Parameters
    ----------
    compiled:
        The :class:`~repro.plan.plan.CompiledPlan` to execute.
    executor:
        Task backend.  ``None`` (default) builds an in-process
        :class:`~repro.dist.executors.SerialExecutor` configured from
        the plan's ``batch`` policy; the session owns it (prepares it
        lazily, closes it on :meth:`close`).  An explicitly passed
        executor is used as-is — its lifecycle belongs to the caller
        (enter it as a context manager to persist worker pools across
        scenarios).

    Examples
    --------
    >>> compiled = SimulationPlan(system, opts, t_end=1e-8).compile()
    >>> with Session(compiled) as session:
    ...     results = session.sweep(scenarios)
    """

    def __init__(
        self, compiled: CompiledPlan, executor: Executor | None = None
    ):
        self.compiled = compiled
        self._owns_executor = executor is None
        if executor is None:
            batch = compiled.batch
            executor = SerialExecutor(
                compiled.system,
                compiled.options,
                batch_width=None if batch == "off" else batch,
            )
        self.executor = executor
        self._prepared = False
        # Base-waveform transition spots, computed lazily once per
        # column: scenario validation compares every rebound column's
        # spots against these, and a wide sweep would otherwise rescan
        # the same unchanged base waveforms once per scenario.
        self._base_spots: dict[int, list[float]] = {}
        # Compile-time cost is reported once, on the session's first
        # result — mirroring how workers attribute construction traffic.
        self._pending_hits = compiled.cache_hits
        self._pending_misses = compiled.cache_misses
        self._pending_evictions = compiled.cache_evictions
        self.n_scenarios_run = 0
        # Reduced-order tier tallies (see ``sweep(rom=...)``): scenarios
        # answered inside the posterior bound vs. re-run full-order.
        self.rom_accepted = 0
        self.rom_fallbacks = 0

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Release session-owned executor state (idempotent)."""
        if self._owns_executor:
            self.executor.close()
        self._prepared = False

    def _ensure_prepared(self) -> None:
        if self._owns_executor and not self._prepared:
            self.executor.prepare()
        self._prepared = True

    # -- scenario validation ---------------------------------------------------

    def _validate(self, scenario: Scenario) -> MNASystem | None:
        """Bind a scenario, enforcing the compiled-grid contract.

        Returns the bound system, or ``None`` for baseline scenarios
        (which reuse the plan's system and pre-computed DC state).
        """
        if scenario.is_baseline:
            return None
        compiled = self.compiled
        if any(g.waveform_overrides for g in compiled.groups):
            raise PlanError(
                "scenarios cannot rebind sources under the 'bump-split' "
                "decomposition: its groups carry single-bump waveform "
                "overrides derived from the base waveforms; compile a "
                "separate plan on the scenario-bound system instead"
            )
        bound = scenario.bind(compiled.system)
        base = compiled.system.waveforms
        for col in scenario.changed_columns:
            old, new = base[col], bound.waveforms[col]
            old_spots = self._base_spots.get(col)
            if old_spots is None:
                old_spots = old.transition_spots(compiled.t_end)
                self._base_spots[col] = old_spots
            if new.is_constant() != old.is_constant() or (
                new.transition_spots(compiled.t_end) != old_spots
            ):
                raise PlanError(
                    f"scenario {scenario.name!r} changes the transition "
                    f"grid of input column {col}: a compiled plan "
                    f"freezes decomposition and schedules on the base "
                    f"system's transition spots, so scenario waveforms "
                    f"must preserve each column's spots and constancy "
                    f"(amplitude scalings always do) — compile a new "
                    f"plan for structurally different inputs"
                )
        return bound

    # -- task construction -------------------------------------------------------

    def _scenario_tasks(
        self, slot: int, bound: MNASystem | None
    ) -> list[SimulationTask]:
        """Tasks of one scenario, with plan-frozen schedules attached.

        ``slot`` offsets the task ids so a stacked submission stays
        unique across scenarios (shared-memory segment names key on the
        task id).  Scenario waveforms ride as per-group overrides — the
        exact mechanism split-bump groups already use — so the executor
        protocol is unchanged.
        """
        compiled = self.compiled
        base = slot * compiled.n_nodes
        tasks: list[SimulationTask] = []
        for gi, (g, sched) in enumerate(
            zip(compiled.groups, compiled.schedules)
        ):
            group = g
            if bound is not None:
                merged = g.overrides_dict()
                for col in g.input_columns:
                    w = bound.waveforms[col]
                    if w is not compiled.system.waveforms[col]:
                        merged[col] = w
                if merged:
                    group = replace(
                        g,
                        waveform_overrides=tuple(
                            sorted(merged.items(), key=lambda cw: cw[0])
                        ),
                    )
            tasks.append(
                SimulationTask(
                    task_id=base + gi,
                    group=group,
                    t_end=compiled.t_end,
                    global_points=compiled.global_points,
                    schedule=sched,
                )
            )
        return tasks

    # -- execution ---------------------------------------------------------------

    def run(
        self, scenario: Scenario | None = None, rom=False
    ) -> DistributedResult:
        """Execute one scenario (``None`` = the plan's base waveforms).

        Single runs default to ``rom=False`` — the full-order,
        bit-reproducible path — even when the compiled plan carries a
        reduced model; pass ``rom=None``/``True`` to opt in (see
        :meth:`sweep`, whose amortisation argument single runs lack).
        """
        return self.sweep([scenario], rom=rom)[0]

    def sweep(
        self,
        scenarios: Iterable[Scenario | None],
        stack="auto",
        rom=None,
    ) -> list[DistributedResult]:
        """Execute a stream of scenarios, results in input order.

        Parameters
        ----------
        scenarios:
            :class:`~repro.plan.scenario.Scenario` objects (``None``
            entries mean the baseline pattern).  All are validated
            against the compiled grid *before* anything executes, so a
            structurally incompatible scenario fails fast instead of
            mid-sweep.
        stack:
            How many scenarios to submit to the executor per batch.
            ``"auto"`` (default) targets
            :data:`AUTO_STACK_TASK_TARGET` lockstep tasks per
            submission — deep stacking for narrow plans, shallow for
            wide ones; an explicit integer overrides it (each stacked
            scenario holds ``n_nodes`` dense ``(K × dim)`` deviation
            blocks until superposition).
        rom:
            Reduced-order tier policy.  ``None`` (default) answers from
            the compiled plan's :class:`~repro.rom.ReducedModel` when
            one was baked in (``compile(rom=...)``) and runs full-order
            otherwise; ``False`` forces the full-order path; ``True``
            requires the model and raises :class:`PlanError` (with the
            recorded build-failure reason) when the plan has none.
            Scenarios whose posterior bound exceeds the model's
            tolerance transparently fall back to the full-order path;
            every result records what happened in its
            ``rom_dim``/``rom_bound``/``rom_fallback`` fields.

        Returns
        -------
        list[DistributedResult]
            One result per scenario.  Full-order results (including
            reduced-tier fallbacks) are bit-identical to an independent
            cold run of the scenario-bound system; reduced-tier answers
            carry a certified posterior error bound instead.
        """
        scenario_list = [
            s if s is not None else Scenario() for s in scenarios
        ]
        bound_list = [self._validate(s) for s in scenario_list]

        model = self.compiled.rom if rom in (None, True) else None
        if rom is True and model is None:
            reason = (
                self.compiled.rom_error
                or "the plan was compiled without rom="
            )
            raise PlanError(
                f"rom=True but the compiled plan carries no reduced "
                f"model: {reason}"
            )
        if model is not None:
            return self._sweep_rom(model, scenario_list, bound_list, stack)

        chunk = _resolve_stack(
            stack, len(scenario_list), self.compiled.n_nodes
        )
        self._ensure_prepared()

        results: list[DistributedResult] = []
        for start in range(0, len(scenario_list), chunk):
            results.extend(
                self._run_chunk(
                    scenario_list[start:start + chunk],
                    bound_list[start:start + chunk],
                )
            )
        return results

    def _sweep_rom(
        self,
        model,
        scenarios: Sequence[Scenario],
        bound_systems: Sequence[MNASystem | None],
        stack,
    ) -> list[DistributedResult]:
        """Answer scenarios from the reduced model, falling back per
        scenario when the posterior bound rejects the answer.

        Fallbacks are collected and re-run through the ordinary stacked
        full-order path (so a high-fallback sweep still gets the
        lockstep amortisation), then spliced back in input order.
        """
        compiled = self.compiled
        results: list[DistributedResult | None] = [None] * len(scenarios)
        fallback_idx: list[int] = []
        fallback_bounds: dict[int, float] = {}

        # Reduced answers never touch the factor cache, so grab the
        # pending compile-time traffic up front and attribute it to the
        # sweep's first result, whichever tier produced it.
        pend = (
            self._pending_hits,
            self._pending_misses,
            self._pending_evictions,
        )
        self._pending_hits = 0
        self._pending_misses = 0
        self._pending_evictions = 0

        for i, (scenario, bound) in enumerate(
            zip(scenarios, bound_systems)
        ):
            U = model.input_matrix(scenario, bound)
            ans = model.answer(U)
            if not ans.accepted:
                fallback_idx.append(i)
                fallback_bounds[i] = ans.bound_rel
                continue
            system = bound if bound is not None else compiled.system
            trajectory = TransientResult(
                system=system,
                times=model.grid,
                states=ans.states,
                stats=SolverStats(
                    n_steps=model.n_points - 1,
                    transient_seconds=ans.seconds,
                ),
                method=f"rom[q={model.dim}]",
            )
            results[i] = DistributedResult(
                result=trajectory,
                n_nodes=0,
                node_stats=(),
                scenario=(
                    None if scenario.is_baseline else scenario.name
                ),
                rom_dim=model.dim,
                rom_bound=ans.bound_rel,
                rom_fallback=False,
            )
            self.rom_accepted += 1
            self.n_scenarios_run += 1

        if fallback_idx:
            self._ensure_prepared()
            chunk = _resolve_stack(
                stack, len(fallback_idx), compiled.n_nodes
            )
            for start in range(0, len(fallback_idx), chunk):
                idx = fallback_idx[start:start + chunk]
                full = self._run_chunk(
                    [scenarios[i] for i in idx],
                    [bound_systems[i] for i in idx],
                )
                for i, r in zip(idx, full):
                    results[i] = replace(
                        r,
                        rom_dim=model.dim,
                        rom_bound=fallback_bounds[i],
                        rom_fallback=True,
                    )
            self.rom_fallbacks += len(fallback_idx)

        if results and any(pend):
            first = results[0]
            results[0] = replace(
                first,
                factor_cache_hits=first.factor_cache_hits + pend[0],
                factor_cache_misses=(
                    first.factor_cache_misses + pend[1]
                ),
                factor_cache_evictions=(
                    first.factor_cache_evictions + pend[2]
                ),
            )
        elif any(pend):
            self._pending_hits, self._pending_misses, \
                self._pending_evictions = pend
        return results

    def _run_chunk(
        self,
        scenarios: Sequence[Scenario],
        bound_systems: Sequence[MNASystem | None],
    ) -> list[DistributedResult]:
        compiled = self.compiled
        n = compiled.n_nodes

        # Per-scenario DC analysis: cache-served factors, one
        # substitution pair per scenario whose u(0) differs.
        dc_states: list[np.ndarray] = []
        dc_seconds: list[float] = []
        dc_hits: list[int] = []
        dc_misses: list[int] = []
        for bound in bound_systems:
            if bound is None:
                dc_states.append(compiled.x_dc)
                dc_seconds.append(compiled.dc_seconds)
                dc_hits.append(0)
                dc_misses.append(0)
                continue
            h0, m0 = FACTORIZATION_CACHE.counters()
            t0 = time.perf_counter()
            lu_g = FACTORIZATION_CACHE.factor(bound.G, label="G(dc)")
            dc_states.append(lu_g.solve(bound.bu(0.0)))
            dc_seconds.append(time.perf_counter() - t0)
            h1, m1 = FACTORIZATION_CACHE.counters()
            dc_hits.append(h1 - h0)
            dc_misses.append(m1 - m0)

        tasks = [
            task
            for slot, bound in enumerate(bound_systems)
            for task in self._scenario_tasks(slot, bound)
        ]
        ev0 = FACTORIZATION_CACHE.stats()["evictions"]
        # Supervised executors keep lifetime resilience counters; the
        # per-chunk deltas ride on the chunk's results like evictions do.
        sup = getattr(self.executor, "supervision", None)
        retries0 = sup.retries if sup is not None else 0
        degraded0 = sup.degraded_runs if sup is not None else 0
        node_results = sorted(
            self.executor.run(tasks), key=lambda r: r.task_id
        )
        chunk_evictions = FACTORIZATION_CACHE.stats()["evictions"] - ev0
        chunk_retries = (sup.retries - retries0) if sup is not None else 0
        chunk_degraded = (
            (sup.degraded_runs - degraded0) if sup is not None else 0
        )

        results: list[DistributedResult] = []
        for slot, (scenario, bound) in enumerate(
            zip(scenarios, bound_systems)
        ):
            share = node_results[slot * n:(slot + 1) * n]
            system = bound if bound is not None else compiled.system
            t0 = time.perf_counter()
            combined = superpose(
                dc_states[slot],
                [r.as_transient_result(system) for r in share],
            )
            superpose_seconds = time.perf_counter() - t0

            node_stats = tuple(r.stats for r in share)
            hits = dc_hits[slot] + sum(
                s.n_factor_cache_hits for s in node_stats
            )
            misses = dc_misses[slot] + sum(
                s.n_factor_cache_misses for s in node_stats
            )
            # Executor-window evictions are not separable per scenario
            # inside a stacked submission; charge them (and pending
            # compile-time traffic) to the chunk's first result.
            evictions = chunk_evictions if slot == 0 else 0
            if self.n_scenarios_run == 0 and slot == 0:
                hits += self._pending_hits
                misses += self._pending_misses
                evictions += self._pending_evictions
                self._pending_hits = 0
                self._pending_misses = 0
                self._pending_evictions = 0

            results.append(
                DistributedResult(
                    result=combined,
                    n_nodes=len(share),
                    node_stats=node_stats,
                    dc_seconds=dc_seconds[slot],
                    factor_seconds=self.executor.max_factor_seconds(share),
                    superpose_seconds=superpose_seconds,
                    factor_cache_hits=hits,
                    factor_cache_misses=misses,
                    factor_cache_evictions=evictions,
                    scenario=(
                        None if scenario.is_baseline else scenario.name
                    ),
                    # Like evictions: retry/degradation work is not
                    # separable per scenario inside one stacked
                    # submission, so the chunk's first result carries it.
                    retries=chunk_retries if slot == 0 else 0,
                    degraded_runs=chunk_degraded if slot == 0 else 0,
                )
            )
        self.n_scenarios_run += len(scenarios)
        return results
