"""Compiled simulation plans: plan → compile → execute.

MATEX's Krylov operators depend only on the pencil ``(C, G, γ)``, never
on the inputs ``u(t)`` — so "one grid, hundreds of what-if input
patterns" (the realistic PDN workload) should pay decomposition, DC
analysis, schedule construction, factorisation priming and worker-pool
spawn **once**, not once per run.  This package makes that a first-class
object:

* :class:`~repro.plan.plan.SimulationPlan` freezes the reusable half of
  a run (system, options, horizon, decomposition, batching policy);
* :meth:`~repro.plan.plan.SimulationPlan.compile` performs it exactly
  once and yields a picklable :class:`~repro.plan.plan.CompiledPlan`;
* :class:`~repro.plan.session.Session` executes a stream of
  :class:`~repro.plan.scenario.Scenario` input patterns against the
  compiled plan over a persistent executor, stacking aligned scenarios
  into one lockstep block march — bit-identical to independent cold
  runs, several times faster.

The single-run :class:`~repro.dist.scheduler.MatexScheduler` is a thin
façade over this layer (compile a one-scenario plan, execute it), so
both paths are the same code.

>>> from repro.plan import SimulationPlan, Scenario, Session
>>> compiled = SimulationPlan(system, t_end=1e-8).compile()
>>> with Session(compiled) as session:
...     results = session.sweep(
...         [Scenario(f"p{i}", scales={0: 1.0 + 0.1 * i}) for i in range(8)]
...     )
"""

from repro.plan.plan import (
    DECOMPOSITIONS,
    CompiledPlan,
    PlanError,
    SimulationPlan,
    build_groups,
    prime_factorizations,
)
from repro.plan.scenario import Scenario, load_scenarios_json, scenario_from_spec

__all__ = [
    "CompiledPlan",
    "DECOMPOSITIONS",
    "PlanError",
    "Scenario",
    "Session",
    "SimulationPlan",
    "build_groups",
    "load_scenarios_json",
    "prime_factorizations",
    "scenario_from_spec",
]


def __getattr__(name: str):
    # Session pulls in repro.dist (executors/messages); importing it
    # eagerly here would cycle while repro.dist's own __init__ imports
    # the scheduler (which imports repro.plan.plan).  PEP 562 keeps
    # ``from repro.plan import Session`` working without the cycle.
    if name == "Session":
        from repro.plan.session import Session

        return Session
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
