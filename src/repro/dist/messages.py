"""Message types exchanged between the scheduler and computing nodes.

Everything in this module is a plain dataclass of picklable payloads —
tuples, floats, numpy arrays, :class:`~repro.core.decomposition.SourceGroup`
(itself a frozen dataclass of tuples and waveform dataclasses) and
:class:`~repro.core.stats.SolverStats`.  ``multiprocessing`` transports
them between processes, so picklability is a contract guaranteed by
``tests/test_dist_messages.py``.

The protocol mirrors the paper's Fig. 4:

* the scheduler sends each node one :class:`SimulationTask` — its source
  group, the horizon and the *shared* global-transition-spot grid (so
  every node's trajectory aligns for superposition);
* the node answers with a :class:`NodeResult` — the deviation trajectory
  on that grid plus its local statistics;
* the scheduler superposes and reports a :class:`DistributedResult` with
  the Sec. 3.4 timing split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.decomposition import SourceGroup
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.core.transition import TransitionSchedule

__all__ = ["SimulationTask", "NodeResult", "DistributedResult"]


@dataclass(frozen=True)
class SimulationTask:
    """One unit of distributed work: simulate a source group's deviation.

    Attributes
    ----------
    task_id:
        Scheduler-assigned identifier; the matching :class:`NodeResult`
        echoes it back so out-of-order completion can be reordered.
    group:
        The source group (input columns plus optional waveform overrides)
        this node owns.
    t_end:
        Simulation horizon.
    global_points:
        The full system's Global Transition Spots.  Every node marches
        through all of them — its own LTS as fresh Krylov generations,
        the rest as basis-reuse snapshots — so all results share one grid.
    schedule:
        Optional pre-built marching schedule.  A compiled plan
        (:mod:`repro.plan`) constructs each group's schedule **once**
        and stamps it on every scenario's task, so a sweep does not
        rebuild identical schedules per scenario; when absent, the
        worker builds it from ``group``/``global_points`` — the two
        paths are bit-identical by construction (the plan uses the same
        :func:`~repro.core.transition.build_schedule`).
    """

    task_id: int
    group: SourceGroup
    t_end: float
    global_points: tuple[float, ...]
    schedule: TransitionSchedule | None = None

    def __post_init__(self):
        if self.t_end <= 0.0:
            raise ValueError(f"t_end must be positive, got {self.t_end!r}")
        if not self.group.input_columns:
            raise ValueError("task group owns no input columns")


@dataclass(frozen=True, eq=False)
class NodeResult:
    """A node's answer: the deviation trajectory plus local statistics.

    The trajectory is carried as raw arrays (not a
    :class:`~repro.core.results.TransientResult`) so the message does not
    drag the whole MNA system back through the pipe; the scheduler
    re-attaches its own system reference during superposition.
    ``eq=False``: the array payloads have no scalar ``==``; compare the
    fields (``np.testing.assert_array_equal``) instead of whole messages.
    """

    task_id: int
    group_id: int
    label: str
    times: np.ndarray
    states: np.ndarray
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def transient_seconds(self) -> float:
        """Wall time of the node's stepping loop (its ``trmatex`` share)."""
        return self.stats.transient_seconds

    @property
    def factor_seconds(self) -> float:
        """Wall time of the node's one-off matrix factorisations."""
        return self.stats.factor_seconds

    def as_transient_result(self, system) -> TransientResult:
        """Rehydrate into a :class:`TransientResult` for superposition."""
        return TransientResult(
            system=system,
            times=self.times,
            states=self.states,
            stats=self.stats,
            method=f"matex-node[{self.label}]",
        )


@dataclass(frozen=True, eq=False)
class DistributedResult:
    """The combined outcome of one distributed run (paper Sec. 3.4).

    Attributes
    ----------
    result:
        The superposed full-system trajectory ``x_dc + Σ_k y_k``.
    n_nodes:
        Number of computing nodes (= source groups) used.
    node_stats:
        Per-node solver statistics, ordered by task id.
    dc_seconds:
        Scheduler-side serial part: the one DC factorisation + solve.
    factor_seconds:
        Max per-node factorisation time (nodes factor concurrently).
    superpose_seconds:
        Wall time of the final write-back/superposition.
    factor_cache_hits:
        Factorisations this run reused from the process-wide
        :data:`~repro.linalg.lu.FACTORIZATION_CACHE` (scheduler DC +
        every node's construction) — the Sec. 3.4 shared-pencil
        amortisation, counted.  Worker *processes* keep their own
        caches, so multiprocess runs report only the hits their workers
        observed locally — and a pool process that was initialised but
        never received a task keeps its construction traffic to itself
        (the counts are a conservative floor, never an overcount).
    factor_cache_misses:
        Factorisations actually performed (and cached) during the run.
    factor_cache_evictions:
        Factorisations the scheduler-side process-wide cache evicted
        while this run executed.  A persistently non-zero value during a
        sweep means the residency limits are thrashing — raise them via
        ``FACTORIZATION_CACHE.configure`` / the ``--factor-cache-*``
        flags / the ``REPRO_FACTOR_CACHE_*`` environment variables.
    scenario:
        Name of the :class:`repro.plan.Scenario` this result answers
        (``None`` for plain single-run scheduler results).
    rom_dim:
        Reduced dimension ``q`` of the model consulted for this
        scenario (``None`` when the sweep ran without a reduced model;
        set even when the answer fell back — the model was consulted).
    rom_bound:
        The scenario's posterior relative error bound from the reduced
        model (``None`` when no model was consulted).
    rom_fallback:
        True when the bound exceeded the model's tolerance and the
        scenario was transparently re-run on the full-order path —
        such results are bit-identical to a sweep without the model.
    retries:
        Batch re-submissions the executor's
        :class:`~repro.dist.supervision.RetryPolicy` performed while
        producing this result (0 without a policy, or when nothing
        failed).  Retried batches are bit-identical to never-failed
        ones — this counter is the only observable difference.
    degraded_runs:
        Batches answered by the in-process degradation fallback after
        the executor stopped trusting process pools (see
        ``RetryPolicy.degrade_after``).
    """

    result: TransientResult
    n_nodes: int
    node_stats: tuple[SolverStats, ...]
    dc_seconds: float = 0.0
    factor_seconds: float = 0.0
    superpose_seconds: float = 0.0
    factor_cache_hits: int = 0
    factor_cache_misses: int = 0
    factor_cache_evictions: int = 0
    scenario: str | None = None
    rom_dim: int | None = None
    rom_bound: float | None = None
    rom_fallback: bool = False
    retries: int = 0
    degraded_runs: int = 0

    @property
    def node_transient_seconds(self) -> list[float]:
        """Per-node pure-transient wall times."""
        return [s.transient_seconds for s in self.node_stats]

    @property
    def tr_matex(self) -> float:
        """Paper ``trmatex``: the slowest node's pure-transient time."""
        return max(self.node_transient_seconds, default=0.0)

    @property
    def tr_total(self) -> float:
        """Paper MATEX total: serial parts + slowest node + write-back."""
        return (self.dc_seconds + self.factor_seconds
                + self.tr_matex + self.superpose_seconds)

    @property
    def total_substitution_pairs(self) -> int:
        """Substitution pairs summed over all nodes (total work)."""
        return sum(s.n_solves_transient for s in self.node_stats)

    @property
    def max_node_substitution_pairs(self) -> int:
        """The busiest node's substitution pairs (critical-path work)."""
        return max(
            (s.n_solves_transient for s in self.node_stats), default=0
        )
