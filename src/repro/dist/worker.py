"""Computing-node worker (paper Fig. 4, the "MATEX slave node").

A :class:`NodeWorker` owns one :class:`~repro.core.solver.MatexSolver` in
deviation mode.  Construction performs the node's one-off matrix
factorisations; every subsequent :meth:`NodeWorker.run` call reuses them,
so a worker that serves several source groups (fewer physical nodes than
groups, or the serial emulation) amortises the LU exactly as a
long-lived process would.

Construction may not even pay the factorisation: every sub-task of a
distributed run shares the full system's MNA pencil (paper Sec. 3.4), so
the process-wide :data:`~repro.linalg.lu.FACTORIZATION_CACHE` frequently
serves the worker's ``G`` / ``C + γG`` factors from an earlier consumer
(the scheduler's DC analysis, or a previous run).  Those construction
cache hits are attributed to the worker's *first* task result, so the
scheduler can report them in
:class:`~repro.dist.messages.DistributedResult` without double counting.
"""

from __future__ import annotations

from repro import faults
from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver
from repro.core.transition import build_schedule
from repro.dist.messages import NodeResult, SimulationTask

__all__ = ["NodeWorker", "run_task"]


def run_task(solver: MatexSolver, task: SimulationTask) -> NodeResult:
    """Reference per-node march of one task against a deviation solver.

    The single definition of "simulate one
    :class:`~repro.dist.messages.SimulationTask`": used by
    :class:`NodeWorker` and by the block runner's degenerate-grid
    fallback, so the two can never diverge.
    """
    overrides = task.group.overrides_dict() or None
    schedule = task.schedule
    if schedule is None:
        schedule = build_schedule(
            solver.system,
            task.t_end,
            local_inputs=task.group.input_columns,
            global_points=task.global_points,
            waveform_overrides=overrides,
        )
    res = solver.simulate(
        task.t_end,
        active_inputs=task.group.input_columns,
        schedule=schedule,
        waveform_overrides=overrides,
    )
    return NodeResult(
        task_id=task.task_id,
        group_id=task.group.group_id,
        label=task.group.label,
        times=res.times,
        states=res.states,
        stats=res.stats,
    )


class NodeWorker:
    """Executes :class:`~repro.dist.messages.SimulationTask` messages.

    Parameters
    ----------
    system:
        The full assembled MNA system (every node holds the complete
        matrices; only the *inputs* are decomposed).
    options:
        Solver options shared across the distributed run.
    """

    def __init__(self, system: MNASystem, options: SolverOptions | None = None):
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.solver = MatexSolver(system, self.options, deviation_mode=True)
        # Construction-time cache traffic, reported through the first
        # task's stats (once — the factorisations happened once).
        self._pending_cache_hits = self.solver.construction_cache_hits
        self._pending_cache_misses = self.solver.construction_cache_misses

    def run(self, task: SimulationTask) -> NodeResult:
        """Simulate one source group's deviation response.

        The node marches through the task's shared global grid: its own
        group's transition spots trigger fresh Krylov generations, every
        other point is served as a snapshot from the most recent basis
        (Alg. 2 line 11).
        """
        faults.on_task_start(task.task_id)
        result = run_task(self.solver, task)
        result.stats.n_factor_cache_hits += self._pending_cache_hits
        result.stats.n_factor_cache_misses += self._pending_cache_misses
        self._pending_cache_hits = 0
        self._pending_cache_misses = 0
        return result
