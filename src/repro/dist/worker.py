"""Computing-node worker (paper Fig. 4, the "MATEX slave node").

A :class:`NodeWorker` owns one :class:`~repro.core.solver.MatexSolver` in
deviation mode.  Construction performs the node's one-off matrix
factorisations; every subsequent :meth:`NodeWorker.run` call reuses them,
so a worker that serves several source groups (fewer physical nodes than
groups, or the serial emulation) amortises the LU exactly as a
long-lived process would.
"""

from __future__ import annotations

from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver
from repro.core.transition import build_schedule
from repro.dist.messages import NodeResult, SimulationTask

__all__ = ["NodeWorker"]


class NodeWorker:
    """Executes :class:`~repro.dist.messages.SimulationTask` messages.

    Parameters
    ----------
    system:
        The full assembled MNA system (every node holds the complete
        matrices; only the *inputs* are decomposed).
    options:
        Solver options shared across the distributed run.
    """

    def __init__(self, system: MNASystem, options: SolverOptions | None = None):
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.solver = MatexSolver(system, self.options, deviation_mode=True)

    def run(self, task: SimulationTask) -> NodeResult:
        """Simulate one source group's deviation response.

        The node marches through the task's shared global grid: its own
        group's transition spots trigger fresh Krylov generations, every
        other point is served as a snapshot from the most recent basis
        (Alg. 2 line 11).
        """
        overrides = task.group.overrides_dict() or None
        schedule = build_schedule(
            self.system,
            task.t_end,
            local_inputs=task.group.input_columns,
            global_points=task.global_points,
            waveform_overrides=overrides,
        )
        res = self.solver.simulate(
            task.t_end,
            active_inputs=task.group.input_columns,
            schedule=schedule,
            waveform_overrides=overrides,
        )
        return NodeResult(
            task_id=task.task_id,
            group_id=task.group.group_id,
            label=task.group.label,
            times=res.times,
            states=res.states,
            stats=res.stats,
        )
