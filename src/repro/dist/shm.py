"""Zero-copy result transport over ``multiprocessing.shared_memory``.

A :class:`~repro.dist.messages.NodeResult` carries a ``(K × dim)``
trajectory — the dominant payload of a distributed run.  Returning it
through the process-pool pipe pickles every byte twice (serialise +
deserialise).  This module moves the trajectory through a POSIX shared
memory segment instead: the worker copies its states block into a
segment once, and only the **metadata** (segment name, shape, dtype —
a :class:`ShmArrayRef`) travels through the pipe.  The parent maps the
segment and hands numpy a zero-copy view.

Lifecycle contract
------------------
* The **worker** creates the segment, fills it, closes its mapping and
  *unregisters* it from its ``resource_tracker`` — ownership transfers
  to the parent through the returned ref.
* The **parent** attaches, immediately *unlinks* the name (POSIX keeps
  the memory alive while mapped), and ties the mapping's close to the
  result array's garbage collection.
* If a worker dies before handing over (SIGKILL, crash), the name would
  leak — :func:`cleanup_segments` sweeps every segment carrying the
  run's unique prefix; the executor calls it on any pool failure.
"""

from __future__ import annotations

import dataclasses
import os
import uuid
import weakref
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dist.messages import NodeResult

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

__all__ = [
    "ShmArrayRef",
    "ShmAttachError",
    "shm_available",
    "new_segment_prefix",
    "to_shared",
    "from_shared",
    "cleanup_segments",
]


class ShmAttachError(RuntimeError):
    """A :class:`ShmArrayRef` points at a segment that no longer exists.

    Attaching consumes the segment *name* (the parent unlinks it
    immediately), so a ref is single-use by design: a duplicated or
    re-delivered ref — e.g. a retry after a pool failure handing the
    same result back twice — cannot be rehydrated a second time.
    """


@dataclass(frozen=True)
class ShmArrayRef:
    """Pickled stand-in for a trajectory array living in shared memory."""

    name: str
    shape: tuple
    dtype: str

    def run_prefix(self) -> str:
        """The run-unique sweep prefix this segment was created under.

        Names are built as ``f"{prefix}t{task_id}"`` and the prefix
        (``repro<pid>x<hex8>``) can never contain ``"t"``, so splitting
        at the last ``"t"`` recovers it exactly.
        """
        return self.name.rpartition("t")[0]


def shm_available() -> bool:
    """Whether the shared-memory transport can be used on this platform.

    Requires a ``/dev/shm`` view of the segment namespace in addition
    to POSIX shared memory: without it :func:`cleanup_segments` cannot
    sweep the segments of a crashed worker, and the transport would
    trade a pickling cost for a potential memory leak.
    """
    return (
        shared_memory is not None
        and os.name == "posix"
        and Path("/dev/shm").is_dir()
    )


def new_segment_prefix() -> str:
    """A run-unique segment-name prefix (also the cleanup sweep key)."""
    return f"repro{os.getpid()}x{uuid.uuid4().hex[:8]}"


def _unregister(raw_name: str) -> None:
    """Drop a segment from the creating process's resource tracker.

    Only the **worker** (creator) side calls this — it transfers
    ownership to the parent, so a worker tracker (its own process on
    spawn platforms) never destroys the segment before the parent
    attaches.  The parent side must *not* unregister explicitly:
    attaching registers the name once more and ``unlink()`` already
    unregisters it, so an extra call would underflow the tracker's
    bookkeeping.
    """
    try:  # pragma: no cover - tracker layout is a CPython internal
        from multiprocessing import resource_tracker

        resource_tracker.unregister(raw_name, "shared_memory")
    except Exception:
        pass


def to_shared(result: NodeResult, prefix: str) -> NodeResult:
    """Move ``result.states`` into a fresh shared segment (worker side)."""
    states = np.ascontiguousarray(result.states)
    name = f"{prefix}t{result.task_id}"
    seg = shared_memory.SharedMemory(
        name=name, create=True, size=max(states.nbytes, 1)
    )
    if states.size:
        dst = np.ndarray(states.shape, dtype=states.dtype, buffer=seg.buf)
        dst[:] = states
    ref = ShmArrayRef(name=name, shape=states.shape, dtype=states.dtype.str)
    _unregister(seg._name)
    seg.close()
    return dataclasses.replace(result, states=ref)


def _close_segment(seg) -> None:
    try:  # pragma: no cover - GC-ordering dependent
        seg.close()
    except BufferError:
        pass


def from_shared(result: NodeResult) -> NodeResult:
    """Rehydrate a shared-memory result into a zero-copy view (parent).

    No-op for results whose states travelled as plain arrays (which
    also makes rehydrating an *already-rehydrated* result idempotent).
    The segment name is unlinked immediately — the mapping stays valid
    until the returned array is garbage collected — so each ref can be
    attached exactly once: a duplicated/re-delivered ref raises a clear
    :class:`ShmAttachError` instead of a bare ``FileNotFoundError``,
    after sweeping the run's remaining segments so a half-consumed
    batch cannot leak them.
    """
    ref = result.states
    if not isinstance(ref, ShmArrayRef):
        return result
    try:
        seg = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError as exc:
        swept = cleanup_segments(ref.run_prefix())
        raise ShmAttachError(
            f"shared segment {ref.name!r} no longer exists — the ref was "
            f"already attached once (attach unlinks the name) or the "
            f"segment was swept after a pool failure; a duplicated or "
            f"re-delivered ShmArrayRef cannot be rehydrated twice "
            f"(swept {swept} sibling segment(s) of this run)"
        ) from exc
    arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - swept concurrently
        pass
    weakref.finalize(arr, _close_segment, seg)
    return dataclasses.replace(result, states=arr)


def cleanup_segments(prefix: str) -> int:
    """Unlink every segment carrying ``prefix`` (worker-death sweep).

    Returns the number of segments reclaimed.  Best effort: on
    platforms without a ``/dev/shm`` view of the namespace this is a
    no-op (segments still die with the machine, and the normal handover
    path never leaks).
    """
    removed = 0
    base = Path("/dev/shm")
    if not base.is_dir():
        return removed
    for entry in base.glob(f"{prefix}*"):
        try:
            seg = shared_memory.SharedMemory(name=entry.name)
        except FileNotFoundError:
            continue
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        _close_segment(seg)
        removed += 1
    return removed
