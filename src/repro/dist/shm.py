"""Zero-copy result transport over ``multiprocessing.shared_memory``.

A :class:`~repro.dist.messages.NodeResult` carries a ``(K × dim)``
trajectory — the dominant payload of a distributed run.  Returning it
through the process-pool pipe pickles every byte twice (serialise +
deserialise).  This module moves the trajectory through a POSIX shared
memory segment instead: the worker copies its states block into a
segment once, and only the **metadata** (segment name, shape, dtype —
a :class:`ShmArrayRef`) travels through the pipe.  The parent maps the
segment and hands numpy a zero-copy view.

Lifecycle contract
------------------
* The **worker** creates the segment, fills it, closes its mapping and
  *unregisters* it from its ``resource_tracker`` — ownership transfers
  to the parent through the returned ref.
* The **parent** attaches, immediately *unlinks* the name (POSIX keeps
  the memory alive while mapped), and ties the mapping's close to the
  result array's garbage collection.
* If a worker dies before handing over (SIGKILL, crash), the name would
  leak — :func:`cleanup_segments` sweeps every segment carrying the
  run's unique prefix; the executor calls it on any pool failure.
* If the **parent** dies mid-run (Ctrl-C, SIGTERM, un-caught error), the
  per-failure sweeps never run — so every prefix handed out by
  :func:`new_segment_prefix` is remembered until its sweep, and an
  ``atexit`` hook (plus the optional :func:`install_signal_sweep`
  SIGTERM chain, used by the CLI) reclaims whatever is left on the way
  out.  No ``/dev/shm`` leaks survive the process.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import signal
import uuid
import weakref
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.dist.messages import NodeResult

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

__all__ = [
    "ShmArrayRef",
    "ShmAttachError",
    "shm_available",
    "new_segment_prefix",
    "to_shared",
    "from_shared",
    "cleanup_segments",
    "sweep_run_segments",
    "install_signal_sweep",
]


class ShmAttachError(RuntimeError):
    """A :class:`ShmArrayRef` points at a segment that no longer exists.

    Attaching consumes the segment *name* (the parent unlinks it
    immediately), so a ref is single-use by design: a duplicated or
    re-delivered ref — e.g. a retry after a pool failure handing the
    same result back twice — cannot be rehydrated a second time.
    """


@dataclass(frozen=True)
class ShmArrayRef:
    """Pickled stand-in for a trajectory array living in shared memory."""

    name: str
    shape: tuple
    dtype: str

    def run_prefix(self) -> str:
        """The run-unique sweep prefix this segment was created under.

        Names are built as ``f"{prefix}t{task_id}"`` and the prefix
        (``repro<pid>x<hex8>``) can never contain ``"t"``, so splitting
        at the last ``"t"`` recovers it exactly.
        """
        return self.name.rpartition("t")[0]


def shm_available() -> bool:
    """Whether the shared-memory transport can be used on this platform.

    Requires a ``/dev/shm`` view of the segment namespace in addition
    to POSIX shared memory: without it :func:`cleanup_segments` cannot
    sweep the segments of a crashed worker, and the transport would
    trade a pickling cost for a potential memory leak.
    """
    return (
        shared_memory is not None
        and os.name == "posix"
        and Path("/dev/shm").is_dir()
    )


#: Prefixes handed out by :func:`new_segment_prefix` whose sweep has not
#: run yet — the exit/SIGTERM sweep reclaims exactly these.
_EXIT_PREFIXES: set[str] = set()
_EXIT_HOOK_INSTALLED = False


def new_segment_prefix() -> str:
    """A run-unique segment-name prefix (also the cleanup sweep key).

    Every prefix is remembered for the process-exit sweep until
    :func:`cleanup_segments` runs for it, so an interpreter that dies
    mid-run (Ctrl-C, fatal error) still reclaims its segments.
    """
    global _EXIT_HOOK_INSTALLED
    prefix = f"repro{os.getpid()}x{uuid.uuid4().hex[:8]}"
    _EXIT_PREFIXES.add(prefix)
    if not _EXIT_HOOK_INSTALLED:
        atexit.register(sweep_run_segments)
        _EXIT_HOOK_INSTALLED = True
    return prefix


def sweep_run_segments() -> int:
    """Sweep every not-yet-swept prefix of this process (exit hook body).

    Idempotent and cheap on the happy path (each live run's sweep is a
    no-op glob once its results were consumed).  Returns the number of
    segments reclaimed.
    """
    removed = 0
    for prefix in sorted(_EXIT_PREFIXES):
        removed += cleanup_segments(prefix)
    return removed


def install_signal_sweep(signums: tuple = (signal.SIGTERM,)) -> None:
    """Chain a segment sweep in front of the current signal disposition.

    For each signal: sweep first, then defer to whatever handler was
    installed before.  A default disposition becomes
    ``SystemExit(128 + signum)`` — the conventional fatal-signal exit
    code, and it lets ``atexit`` (and ``finally`` blocks) run, unlike
    the default handler's immediate kill.  An ignored signal stays ignored
    (after the sweep).  Used by the CLI so ``kill <pid>`` mid-sweep
    leaks nothing.
    """
    for signum in signums:
        prev = signal.getsignal(signum)

        def _handler(num, frame, _prev=prev):
            sweep_run_segments()
            if _prev is signal.SIG_IGN:
                return
            if callable(_prev):
                _prev(num, frame)
                return
            raise SystemExit(128 + num)

        signal.signal(signum, _handler)


def _unregister(raw_name: str) -> None:
    """Drop a segment from the creating process's resource tracker.

    Only the **worker** (creator) side calls this — it transfers
    ownership to the parent, so a worker tracker (its own process on
    spawn platforms) never destroys the segment before the parent
    attaches.  The parent side must *not* unregister explicitly:
    attaching registers the name once more and ``unlink()`` already
    unregisters it, so an extra call would underflow the tracker's
    bookkeeping.
    """
    try:  # pragma: no cover - tracker layout is a CPython internal
        from multiprocessing import resource_tracker

        resource_tracker.unregister(raw_name, "shared_memory")
    except Exception:
        pass


def to_shared(result: NodeResult, prefix: str) -> NodeResult:
    """Move ``result.states`` into a fresh shared segment (worker side)."""
    states = np.ascontiguousarray(result.states)
    name = f"{prefix}t{result.task_id}"
    seg = shared_memory.SharedMemory(
        name=name, create=True, size=max(states.nbytes, 1)
    )
    if states.size:
        dst = np.ndarray(states.shape, dtype=states.dtype, buffer=seg.buf)
        dst[:] = states
    ref = ShmArrayRef(name=name, shape=states.shape, dtype=states.dtype.str)
    _unregister(seg._name)
    seg.close()
    return dataclasses.replace(result, states=ref)


def _close_segment(seg) -> None:
    try:  # pragma: no cover - GC-ordering dependent
        seg.close()
    except BufferError:
        pass


def from_shared(result: NodeResult) -> NodeResult:
    """Rehydrate a shared-memory result into a zero-copy view (parent).

    No-op for results whose states travelled as plain arrays (which
    also makes rehydrating an *already-rehydrated* result idempotent).
    The segment name is unlinked immediately — the mapping stays valid
    until the returned array is garbage collected — so each ref can be
    attached exactly once: a duplicated/re-delivered ref raises a clear
    :class:`ShmAttachError` instead of a bare ``FileNotFoundError``,
    after sweeping the run's remaining segments so a half-consumed
    batch cannot leak them.
    """
    ref = result.states
    if not isinstance(ref, ShmArrayRef):
        return result
    task_part = ref.name.rpartition("t")[2]
    if task_part.isdigit() and faults.should_fail_attach(int(task_part)):
        # Injected attach failure (shmfail@N): unlink the real segment
        # underneath the ref so the genuine missing-segment error path
        # below runs — no simulated exceptions.
        try:
            doomed = shared_memory.SharedMemory(name=ref.name)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        else:
            try:
                doomed.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            _close_segment(doomed)
    try:
        seg = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError as exc:
        swept = cleanup_segments(ref.run_prefix())
        raise ShmAttachError(
            f"shared segment {ref.name!r} no longer exists — the ref was "
            f"already attached once (attach unlinks the name) or the "
            f"segment was swept after a pool failure; a duplicated or "
            f"re-delivered ShmArrayRef cannot be rehydrated twice "
            f"(swept {swept} sibling segment(s) of this run)"
        ) from exc
    arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - swept concurrently
        pass
    weakref.finalize(arr, _close_segment, seg)
    return dataclasses.replace(result, states=arr)


def cleanup_segments(prefix: str) -> int:
    """Unlink every segment carrying ``prefix`` (worker-death sweep).

    Returns the number of segments reclaimed.  Best effort: on
    platforms without a ``/dev/shm`` view of the namespace this is a
    no-op (segments still die with the machine, and the normal handover
    path never leaks).
    """
    _EXIT_PREFIXES.discard(prefix)
    removed = 0
    base = Path("/dev/shm")
    if not base.is_dir():
        return removed
    for entry in base.glob(f"{prefix}*"):
        try:
            seg = shared_memory.SharedMemory(name=entry.name)
        except FileNotFoundError:
            continue
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        _close_segment(seg)
        removed += 1
    return removed
