"""Distributed MATEX scheduler (paper Fig. 4, the "master node").

The scheduler runs the paper's Sec. 3 framework end-to-end:

1. **Decompose** the input sources into groups — by bump shape
   (``"bump"``, Fig. 3's conservative grouping), one group per source
   (``"source"``, Fig. 1), or by individual bumps with waveform
   overrides (``"bump-split"``, Fig. 3's aggressive variant) — then
   optionally merge groups round-robin down to ``max_nodes``.
2. **DC analysis** once on the master: ``G x_dc = B u(0)``.  This also
   absorbs every all-constant input (supply pads, DC loads), which never
   appear in any group.
3. **Dispatch** one :class:`~repro.dist.messages.SimulationTask` per
   group to an executor (serial emulation by default, a real process
   pool with :class:`~repro.dist.executors.MultiprocessExecutor`).
   Every task carries the same global-transition-spot grid so all nodes'
   trajectories align.
4. **Superpose** ``x(t) = x_dc + Σ_k y_k(t)`` and report the Sec. 3.4
   timing split (``trmatex`` = slowest node, ``tr_total`` adds the
   serial parts).

Since the plan → compile → execute re-layering, steps 1-4 live in
:mod:`repro.plan`: :meth:`MatexScheduler.run` compiles a one-scenario
:class:`~repro.plan.SimulationPlan` and executes it in a short-lived
:class:`~repro.plan.Session`, so the single-run path and the
scenario-sweep path are the same code — the scheduler remains as the
stable, paper-shaped front door.
"""

from __future__ import annotations

import warnings

from repro.circuit.mna import MNASystem
from repro.core.decomposition import SourceGroup
from repro.core.options import SolverOptions
from repro.dist.executors import Executor
from repro.dist.messages import DistributedResult
from repro.plan.plan import DECOMPOSITIONS, SimulationPlan, build_groups

__all__ = ["MatexScheduler", "DECOMPOSITIONS"]


class MatexScheduler:
    """Master node: decompose, dispatch, superpose.

    Internally this is a façade over :mod:`repro.plan` — each
    :meth:`run` compiles a one-scenario plan and executes it, which
    keeps the scheduler bit-for-bit aligned with scenario sweeps that
    reuse one compiled plan for many input patterns.

    Parameters
    ----------
    system:
        The assembled full MNA system.
    options:
        Solver options handed to every node (default: R-MATEX settings).
    decomposition:
        ``"bump"`` (default), ``"source"`` or ``"bump-split"``.
    max_nodes:
        Optional cap on the node count; natural groups are merged
        round-robin to fit (each node's LTS grows — the paper's graceful
        degradation when the cluster is smaller than the bump count).
    batch:
        Block-batching policy for the default executor: ``"off"``
        (default) runs the reference per-node marches; ``"auto"``
        advances every node task in one lockstep
        :class:`~repro.dist.block_runner.BlockNodeRunner` batch
        (bit-for-bit identical results, a fraction of the wall time);
        an integer fixes the lockstep width.  When an explicit
        ``executor`` is passed to :meth:`run` the setting cannot apply —
        a ``UserWarning`` is emitted and the executor's own
        ``batch_width`` configuration wins.
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        decomposition: str = "bump",
        max_nodes: int | None = None,
        batch="off",
    ):
        if decomposition not in DECOMPOSITIONS:
            raise ValueError(
                f"unknown decomposition {decomposition!r}; "
                f"choose from {sorted(DECOMPOSITIONS)}"
            )
        if max_nodes is not None and max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
        if batch not in ("off", "auto") and not (
            isinstance(batch, int) and not isinstance(batch, bool) and batch >= 1
        ):
            raise ValueError(
                f"batch must be 'off', 'auto' or a positive width, "
                f"got {batch!r}"
            )
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.decomposition = decomposition
        self.max_nodes = max_nodes
        self.batch = batch

    # -- decomposition ---------------------------------------------------------

    def groups(self, t_end: float | None = None) -> list[SourceGroup]:
        """The source groups (= computing nodes) of this run.

        ``"bump-split"`` unrolls periodic pulses over the simulation
        window, so it needs the horizon; the other strategies ignore
        ``t_end``.  Delegates to :func:`repro.plan.plan.build_groups`,
        the single definition shared with compiled plans.
        """
        return build_groups(
            self.system, self.decomposition, self.max_nodes, t_end
        )

    # -- execution ---------------------------------------------------------------

    def run(
        self, t_end: float, executor: Executor | None = None
    ) -> DistributedResult:
        """Simulate ``[0, t_end]`` distributed over the source groups.

        Compiles a one-scenario :class:`~repro.plan.SimulationPlan`
        (decomposition, shared GTS grid, per-group schedules, DC
        analysis, factorisation priming) and executes it in a
        short-lived :class:`~repro.plan.Session` — identical numbers to
        the pre-plan scheduler, and bit-identical to the same scenario
        executed inside a long-lived sweep session.

        Parameters
        ----------
        t_end:
            Simulation horizon (> 0).
        executor:
            Task backend; defaults to the in-process
            :class:`~repro.dist.executors.SerialExecutor` emulation.
            When passed explicitly, its own lifecycle and batching
            configuration are respected (see ``batch`` above).

        Returns
        -------
        DistributedResult
            The superposed trajectory plus the Sec. 3.4 timing fields.
        """
        if executor is not None and self.batch != "off":
            warnings.warn(
                f"MatexScheduler(batch={self.batch!r}) cannot apply to an "
                f"explicitly passed executor — configure batch_width on "
                f"the executor itself; the scheduler's batch setting is "
                f"being ignored for this run",
                UserWarning,
                stacklevel=2,
            )
        # Imported here, not at module top: repro.plan.session imports
        # the executors module, which would cycle while this package's
        # __init__ is still importing the scheduler.
        from repro.plan.session import Session

        plan = SimulationPlan(
            system=self.system,
            options=self.options,
            t_end=t_end,
            decomposition=self.decomposition,
            max_nodes=self.max_nodes,
            batch=self.batch,
        )
        # Priming belongs to the process that will factor: skip it when
        # an explicit (possibly multiprocess) executor owns the workers.
        compiled = plan.compile(prime=executor is None)
        session = Session(compiled, executor=executor)
        try:
            return session.run()
        finally:
            session.close()
