"""Distributed MATEX scheduler (paper Fig. 4, the "master node").

The scheduler runs the paper's Sec. 3 framework end-to-end:

1. **Decompose** the input sources into groups — by bump shape
   (``"bump"``, Fig. 3's conservative grouping), one group per source
   (``"source"``, Fig. 1), or by individual bumps with waveform
   overrides (``"bump-split"``, Fig. 3's aggressive variant) — then
   optionally merge groups round-robin down to ``max_nodes``.
2. **DC analysis** once on the master: ``G x_dc = B u(0)``.  This also
   absorbs every all-constant input (supply pads, DC loads), which never
   appear in any group.
3. **Dispatch** one :class:`~repro.dist.messages.SimulationTask` per
   group to an executor (serial emulation by default, a real process
   pool with :class:`~repro.dist.executors.MultiprocessExecutor`).
   Every task carries the same global-transition-spot grid so all nodes'
   trajectories align.
4. **Superpose** ``x(t) = x_dc + Σ_k y_k(t)`` and report the Sec. 3.4
   timing split (``trmatex`` = slowest node, ``tr_total`` adds the
   serial parts).
"""

from __future__ import annotations

import time

from repro.circuit.mna import MNASystem
from repro.core.decomposition import (
    SourceGroup,
    decompose_by_bump,
    decompose_by_bump_split,
    decompose_by_source,
    merge_to_limit,
)
from repro.core.options import SolverOptions
from repro.core.superposition import superpose
from repro.dist.executors import Executor, SerialExecutor
from repro.dist.messages import DistributedResult, SimulationTask
from repro.linalg.lu import FACTORIZATION_CACHE

__all__ = ["MatexScheduler", "DECOMPOSITIONS"]

#: Recognised decomposition strategy names.
DECOMPOSITIONS = ("bump", "source", "bump-split")


class MatexScheduler:
    """Master node: decompose, dispatch, superpose.

    Parameters
    ----------
    system:
        The assembled full MNA system.
    options:
        Solver options handed to every node (default: R-MATEX settings).
    decomposition:
        ``"bump"`` (default), ``"source"`` or ``"bump-split"``.
    max_nodes:
        Optional cap on the node count; natural groups are merged
        round-robin to fit (each node's LTS grows — the paper's graceful
        degradation when the cluster is smaller than the bump count).
    batch:
        Block-batching policy for the default executor: ``"off"``
        (default) runs the reference per-node marches; ``"auto"``
        advances every node task in one lockstep
        :class:`~repro.dist.block_runner.BlockNodeRunner` batch
        (bit-for-bit identical results, a fraction of the wall time);
        an integer fixes the lockstep width.  Ignored when an explicit
        ``executor`` is passed to :meth:`run` — configure that executor
        directly instead.
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        decomposition: str = "bump",
        max_nodes: int | None = None,
        batch="off",
    ):
        if decomposition not in DECOMPOSITIONS:
            raise ValueError(
                f"unknown decomposition {decomposition!r}; "
                f"choose from {sorted(DECOMPOSITIONS)}"
            )
        if max_nodes is not None and max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
        if batch not in ("off", "auto") and not (
            isinstance(batch, int) and not isinstance(batch, bool) and batch >= 1
        ):
            raise ValueError(
                f"batch must be 'off', 'auto' or a positive width, "
                f"got {batch!r}"
            )
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.decomposition = decomposition
        self.max_nodes = max_nodes
        self.batch = batch

    # -- decomposition ---------------------------------------------------------

    def groups(self, t_end: float | None = None) -> list[SourceGroup]:
        """The source groups (= computing nodes) of this run.

        ``"bump-split"`` unrolls periodic pulses over the simulation
        window, so it needs the horizon; the other strategies ignore
        ``t_end``.
        """
        if self.decomposition == "bump-split":
            if t_end is None:
                raise ValueError(
                    "the 'bump-split' decomposition unrolls periodic "
                    "sources over the simulation window; pass the horizon: "
                    "groups(t_end=...)"
                )
            groups = decompose_by_bump_split(self.system, t_end)
        elif self.decomposition == "bump":
            groups = decompose_by_bump(self.system)
        else:
            groups = decompose_by_source(self.system)
        if self.max_nodes is not None:
            groups = merge_to_limit(groups, self.max_nodes)
        return groups

    # -- execution ---------------------------------------------------------------

    def run(
        self, t_end: float, executor: Executor | None = None
    ) -> DistributedResult:
        """Simulate ``[0, t_end]`` distributed over the source groups.

        Parameters
        ----------
        t_end:
            Simulation horizon (> 0).
        executor:
            Task backend; defaults to the in-process
            :class:`~repro.dist.executors.SerialExecutor` emulation.

        Returns
        -------
        DistributedResult
            The superposed trajectory plus the Sec. 3.4 timing fields.
        """
        if t_end <= 0.0:
            raise ValueError(f"t_end must be positive, got {t_end!r}")
        groups = self.groups(t_end=t_end)
        if not groups:
            raise ValueError(
                "every input source is constant: there is nothing to "
                "decompose — the DC operating point already is the full "
                "solution, no transient nodes are needed"
            )

        # Serial part (master): DC analysis over *all* inputs.  The G
        # factorisation is cache-served — all sub-tasks share the same
        # MNA pencil (Sec. 3.4), so after the first consumer in this
        # process it costs one substitution pair, not an LU.
        hits0, misses0 = FACTORIZATION_CACHE.counters()
        t0 = time.perf_counter()
        lu_g = FACTORIZATION_CACHE.factor(self.system.G, label="G(dc)")
        x_dc = lu_g.solve(self.system.bu(0.0))
        dc_seconds = time.perf_counter() - t0
        hits1, misses1 = FACTORIZATION_CACHE.counters()

        gts = tuple(self.system.global_transition_spots(t_end))
        tasks = [
            SimulationTask(
                task_id=g.group_id, group=g, t_end=t_end, global_points=gts
            )
            for g in groups
        ]

        if executor is None:
            batch_width = None if self.batch == "off" else self.batch
            executor = SerialExecutor(
                self.system, self.options, batch_width=batch_width
            )
        node_results = sorted(executor.run(tasks), key=lambda r: r.task_id)

        # Write-back: superpose deviations onto the operating point.
        t0 = time.perf_counter()
        combined = superpose(
            x_dc,
            [r.as_transient_result(self.system) for r in node_results],
        )
        superpose_seconds = time.perf_counter() - t0

        node_stats = tuple(r.stats for r in node_results)
        return DistributedResult(
            result=combined,
            n_nodes=len(node_results),
            node_stats=node_stats,
            dc_seconds=dc_seconds,
            factor_seconds=executor.max_factor_seconds(node_results),
            superpose_seconds=superpose_seconds,
            factor_cache_hits=(
                (hits1 - hits0)
                + sum(s.n_factor_cache_hits for s in node_stats)
            ),
            factor_cache_misses=(
                (misses1 - misses0)
                + sum(s.n_factor_cache_misses for s in node_stats)
            ),
        )
