"""Supervision policy for the distributed executors.

PR 5's persistent pools self-healed *implicitly*: a worker death
disposed the broken pool and the **next** run respawned it, but the
failed batch itself was lost to an exception and nothing bounded,
delayed or even counted the healing.  This module turns that ad-hoc
behaviour into an explicit, configurable, observable policy:

* :class:`RetryPolicy` — how many times a failed batch is retried, with
  exponential backoff (deterministically jittered), an optional
  per-batch timeout, and an optional degradation ladder ("after K
  consecutive pool deaths, stop trusting process pools and run
  in-process");
* :class:`JobError` — the structured give-up error (attempts, elapsed
  wall time, the final cause) raised when the policy is exhausted;
* :class:`SupervisionStats` — the executor-lifetime counters
  (:class:`~repro.plan.session.Session` snapshots them per chunk and
  surfaces the deltas on
  :class:`~repro.dist.messages.DistributedResult`).

``retry=None`` on :class:`~repro.dist.executors.MultiprocessExecutor`
keeps the historical raise-through behaviour — existing single-shot
callers see exactly the old contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "JobError", "SupervisionStats"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/backoff/timeout policy for one executor.

    Attributes
    ----------
    max_retries:
        Retries per batch after its first failure (0 = fail fast but
        still count/dispose cleanly).  A batch is attempted at most
        ``1 + max_retries`` times before :class:`JobError`.
    timeout:
        Per-batch wall-clock budget in seconds (``None`` = unbounded).
        On expiry the pool's workers are **force-killed** — a hung
        worker must not turn ``shutdown(wait=True)`` into a deadlock —
        and the batch is retried like any other failure.
    backoff:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per subsequent retry (exponential backoff).
    jitter:
        Fractional jitter: the actual delay is
        ``backoff * factor**attempt * (1 + jitter * u)`` with
        ``u ∈ [0, 1)`` drawn from a generator seeded by
        ``(seed, attempt)`` — deterministic for reproducible tests,
        de-synchronised across policies with different seeds.
    degrade_after:
        Degradation ladder rung: after this many *consecutive* pool
        failures the executor stops respawning pools and answers every
        later batch through an in-process
        :class:`~repro.dist.executors.SerialExecutor` (with a
        ``RuntimeWarning``), instead of failing the sweep.  ``0``
        (default) disables degradation.  Note the safety trade: a fault
        that kills any process evaluating it (not just a pool worker)
        would then take the host process down — which is why worker
        kills injected via :mod:`repro.faults` disarm outside pools.
    seed:
        Jitter seed (see ``jitter``).
    """

    max_retries: int = 2
    timeout: float | None = None
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    degrade_after: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError(
                f"timeout must be positive (or None), got {self.timeout}"
            )
        if self.backoff < 0.0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.degrade_after < 0:
            raise ValueError(
                f"degrade_after must be >= 0, got {self.degrade_after}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        base = self.backoff * self.backoff_factor ** attempt
        if base <= 0.0 or self.jitter == 0.0:  # repro: allow[RPL005] jitter=0.0 is the exact "disabled" sentinel
            return base
        u = random.Random(f"{self.seed}:{attempt}").random()
        return base * (1.0 + self.jitter * u)


class JobError(RuntimeError):
    """A batch failed permanently: the retry policy was exhausted.

    Attributes
    ----------
    attempts:
        Total attempts made (including the first).
    elapsed_seconds:
        Wall time from the first attempt to the give-up.
    cause:
        The final attempt's exception (also chained as ``__cause__``).
    """

    def __init__(
        self, message: str, attempts: int, elapsed_seconds: float,
        cause: BaseException | None = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed_seconds = elapsed_seconds
        self.cause = cause


@dataclass
class SupervisionStats:
    """Executor-lifetime resilience counters (monotone).

    Attributes
    ----------
    retries:
        Batches re-submitted after a failure.
    pool_failures:
        Pool deaths observed (each disposed the pool and swept its
        shared-memory namespace).
    timeouts:
        Batches whose per-batch timeout expired (a subset of
        ``pool_failures``; the pool was force-killed).
    degradations:
        Times the executor dropped from pool to in-process execution
        (at most once per lifecycle).
    degraded_runs:
        Batches answered by the in-process fallback after degradation.
    """

    retries: int = 0
    pool_failures: int = 0
    timeouts: int = 0
    degradations: int = 0
    degraded_runs: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (used by ``repro serve``'s status endpoint)."""
        return {
            "retries": self.retries,
            "pool_failures": self.pool_failures,
            "timeouts": self.timeouts,
            "degradations": self.degradations,
            "degraded_runs": self.degraded_runs,
        }
