"""Distributed MATEX (paper Sec. 3, Fig. 4).

The subsystem splits a transient simulation by *input sources*: the
:class:`MatexScheduler` decomposes the inputs into groups, each
:class:`NodeWorker` simulates one group's deviation from the operating
point against its own (amortised) factorisations, and the scheduler
superposes the per-node trajectories.  Executors choose where workers
live: in-process (:class:`SerialExecutor`) or a real process pool
(:class:`MultiprocessExecutor`) with pickled task messages.
"""

from repro.dist.executors import Executor, MultiprocessExecutor, SerialExecutor
from repro.dist.messages import DistributedResult, NodeResult, SimulationTask
from repro.dist.scheduler import DECOMPOSITIONS, MatexScheduler
from repro.dist.worker import NodeWorker

__all__ = [
    "DECOMPOSITIONS",
    "DistributedResult",
    "Executor",
    "MatexScheduler",
    "MultiprocessExecutor",
    "NodeResult",
    "NodeWorker",
    "SerialExecutor",
    "SimulationTask",
]
