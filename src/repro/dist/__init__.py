"""Distributed MATEX (paper Sec. 3, Fig. 4).

The subsystem splits a transient simulation by *input sources*: the
:class:`MatexScheduler` decomposes the inputs into groups, each
:class:`NodeWorker` simulates one group's deviation from the operating
point against its own (amortised) factorisations, and the scheduler
superposes the per-node trajectories.  Executors choose where workers
live: in-process (:class:`SerialExecutor`) or a real process pool
(:class:`MultiprocessExecutor`) with pickled task messages and
optional zero-copy shared-memory result transport.

The block-batched fast path (:class:`BlockNodeRunner`, enabled with
``batch="auto"`` on the scheduler or ``batch_width`` on the executors)
advances every node task in one lockstep march — bit-for-bit identical
to the per-node path, several times faster on wide decompositions.
"""

from repro.dist.block_runner import BlockNodeRunner
from repro.dist.executors import Executor, MultiprocessExecutor, SerialExecutor
from repro.dist.messages import DistributedResult, NodeResult, SimulationTask
from repro.dist.scheduler import DECOMPOSITIONS, MatexScheduler
from repro.dist.supervision import JobError, RetryPolicy, SupervisionStats
from repro.dist.worker import NodeWorker

__all__ = [
    "BlockNodeRunner",
    "DECOMPOSITIONS",
    "DistributedResult",
    "Executor",
    "JobError",
    "MatexScheduler",
    "MultiprocessExecutor",
    "NodeResult",
    "NodeWorker",
    "RetryPolicy",
    "SerialExecutor",
    "SimulationTask",
    "SupervisionStats",
]
