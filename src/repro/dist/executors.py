"""Task executors: where the computing nodes actually live.

Two interchangeable backends run a batch of
:class:`~repro.dist.messages.SimulationTask` messages:

* :class:`SerialExecutor` — one in-process worker serves every task.
  This *emulates* the cluster: wall-clock is the sum over nodes, but the
  recorded per-node statistics (and therefore the paper's max-over-nodes
  ``trmatex``) are identical to a real deployment, which is what Table 3
  reports.
* :class:`MultiprocessExecutor` — a ``concurrent.futures`` process pool;
  each worker process builds its own solver state once (its own
  factorisations, like a physical node).  Tasks travel as pickled
  messages; results can travel back **zero-copy** through
  ``multiprocessing.shared_memory`` (trajectory arrays stay in shared
  segments, only metadata is pickled — see :mod:`repro.dist.messages`).

Both executors optionally run the **block-batched fast path**
(:class:`~repro.dist.block_runner.BlockNodeRunner`): ``batch_width``
groups tasks into lockstep batches whose results are bit-for-bit
identical to the per-task path.  ``batch_width=None`` keeps the
reference per-task workers.

Both executors are deterministic: a task's floating-point trajectory
depends only on the task itself, never on which worker ran it, in what
order, or in which batch, so serial, multiprocess, per-node and batched
runs all agree bit-for-bit.
"""

from __future__ import annotations

import os
import signal
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Iterable, Sequence

from repro import faults
from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.dist.block_runner import BlockNodeRunner
from repro.dist.messages import NodeResult, SimulationTask
from repro.dist.shm import (
    cleanup_segments,
    from_shared,
    new_segment_prefix,
    shm_available,
    to_shared,
)
from repro.dist.supervision import JobError, RetryPolicy, SupervisionStats
from repro.dist.worker import NodeWorker

__all__ = ["Executor", "SerialExecutor", "MultiprocessExecutor"]

#: Exceptions that mean "the batch ran out of wall clock" on every
#: supported Python (concurrent.futures.TimeoutError only became an
#: alias of the builtin in 3.11).
_TIMEOUT_ERRORS = (TimeoutError, _FuturesTimeout)


def _shutdown_pool(pool: ProcessPoolExecutor, force: bool = False) -> None:
    """Shut a pool down; ``force`` kills workers first (hung-task path).

    ``shutdown(wait=True)`` on a pool whose worker is stuck (or asleep
    under an injected delay) would wait forever — after a timeout the
    only safe move is to SIGKILL the worker processes and reap without
    waiting.
    """
    if force:
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already-dead races
                pass
        pool.shutdown(wait=False, cancel_futures=True)
    else:
        pool.shutdown(wait=True, cancel_futures=True)


def _resolve_batch_width(batch_width, n_tasks: int) -> int | None:
    """Normalise a batch-width policy to a concrete width (or None).

    ``None`` → per-task reference path; ``"auto"`` → one lockstep batch
    over all tasks; an integer → fixed-width chunks.
    """
    if batch_width is None:
        return None
    if batch_width == "auto":
        return max(n_tasks, 1)
    width = int(batch_width)
    if width < 1:
        raise ValueError(f"batch_width must be >= 1, got {batch_width!r}")
    return width


def _chunks(tasks: list, width: int) -> list[list]:
    return [tasks[i:i + width] for i in range(0, len(tasks), width)]


class Executor:
    """Common interface: run tasks, yield results in task order.

    Executors are also **context managers** with an explicit lifecycle:
    :meth:`prepare` builds the long-lived backing state eagerly (worker
    pools, in-process solver state) and :meth:`close` releases it.
    Inside a ``with`` block the backing state **persists across**
    :meth:`run` calls — this is what lets a :class:`repro.plan.Session`
    stream many scenarios through one set of warmed-up workers.  Outside
    a ``with`` block (and without an explicit :meth:`prepare`), ``run``
    keeps its historical per-call lifecycle, so existing single-run
    callers are unchanged.
    """

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        raise NotImplementedError

    def prepare(self) -> None:
        """Build the long-lived backing state now (idempotent)."""

    def close(self) -> None:
        """Release the backing state built by :meth:`prepare` (idempotent)."""

    def __enter__(self) -> "Executor":
        self.prepare()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def max_factor_seconds(self, results: Iterable[NodeResult]) -> float:
        """The parallel factorisation cost chargeable to ``tr_total``.

        Nodes factor concurrently, so the distributed run pays the
        *slowest* node's factorisation once — not the sum.
        """
        return max((r.factor_seconds for r in results), default=0.0)


class SerialExecutor(Executor):
    """In-process emulation: one long-lived worker runs every task.

    Parameters
    ----------
    system, options:
        The full MNA system and shared solver options.
    batch_width:
        ``None`` (default) — reference per-task :class:`NodeWorker`
        marches.  ``"auto"`` — one :class:`BlockNodeRunner` lockstep
        batch over all tasks.  ``int`` — lockstep batches of that width.
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        batch_width=None,
    ):
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.batch_width = batch_width
        self._worker: NodeWorker | None = None
        self._runner: BlockNodeRunner | None = None

    @property
    def worker(self) -> NodeWorker:
        """The lazily-built worker (factorisations amortised across runs)."""
        if self._worker is None:
            self._worker = NodeWorker(self.system, self.options)
        return self._worker

    @property
    def runner(self) -> BlockNodeRunner:
        """The lazily-built block runner (same amortisation)."""
        if self._runner is None:
            self._runner = BlockNodeRunner(self.system, self.options)
        return self._runner

    def prepare(self) -> None:
        """Build the solver state (and prime its factorisations) now.

        This is the in-process half of a compiled plan's "factor once"
        promise: the worker/runner construction routes through the
        process-wide :data:`~repro.linalg.lu.FACTORIZATION_CACHE`, so a
        session pays it once and every scenario after that reuses it.
        """
        if self.batch_width is None:
            self.worker
        else:
            self.runner

    def close(self) -> None:
        self._worker = None
        self._runner = None

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        tasks = list(tasks)
        width = _resolve_batch_width(self.batch_width, len(tasks))
        if width is None:
            worker = self.worker if tasks else None
            return [worker.run(task) for task in tasks]
        out: list[NodeResult] = []
        for chunk in _chunks(tasks, width):
            out.extend(self.runner.run(chunk))
        return out


# -- multiprocess backend ----------------------------------------------------------

# Per-process state: the pool initializer stores the configuration and
# the per-task worker / block runner are each built lazily on first use,
# so only the path a pool actually runs pays its solver construction —
# and reports its construction-time factor-cache traffic.
_PROCESS_CONFIG: tuple[MNASystem, SolverOptions, str | None] | None = None
_PROCESS_WORKER: NodeWorker | None = None
_PROCESS_RUNNER: BlockNodeRunner | None = None


def _init_process_worker(
    system: MNASystem, options: SolverOptions, shm_prefix: str | None
) -> None:
    global _PROCESS_CONFIG, _PROCESS_WORKER, _PROCESS_RUNNER
    _PROCESS_CONFIG = (system, options, shm_prefix)
    _PROCESS_WORKER = None
    _PROCESS_RUNNER = None
    # Forked workers inherit the parent's signal plumbing — including,
    # under asyncio, the event loop's signal wakeup fd, which fork
    # leaves SHARED with the parent.  A SIGTERM delivered to a worker
    # (pool teardown terminates workers) would then be written into the
    # parent loop's wakeup pipe and misread as the parent's own signal
    # (observed: a broken-pool cleanup draining a `repro serve` daemon).
    # Workers take default dispositions instead.
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass
    # Pool workers are disposable: lethal injected faults (kill@N) are
    # armed here and only here, so a degraded in-process rerun of the
    # same task can never take the host down.
    faults.mark_worker_process()


def _maybe_share(result: NodeResult) -> NodeResult:
    shm_prefix = _PROCESS_CONFIG[2]
    if shm_prefix is None:
        return result
    return to_shared(result, shm_prefix)


def _run_in_process(task: SimulationTask) -> NodeResult:
    global _PROCESS_WORKER
    assert _PROCESS_CONFIG is not None, "pool initializer did not run"
    if _PROCESS_WORKER is None:
        _PROCESS_WORKER = NodeWorker(*_PROCESS_CONFIG[:2])
    return _maybe_share(_PROCESS_WORKER.run(task))


def _run_chunk_in_process(tasks: list[SimulationTask]) -> list[NodeResult]:
    global _PROCESS_RUNNER
    assert _PROCESS_CONFIG is not None, "pool initializer did not run"
    if _PROCESS_RUNNER is None:
        _PROCESS_RUNNER = BlockNodeRunner(*_PROCESS_CONFIG[:2])
    # The lockstep chunk path bypasses NodeWorker.run, so the fault
    # hook fires here, per task, before the batch marches.
    for t in tasks:
        faults.on_task_start(t.task_id)
    return [_maybe_share(r) for r in _PROCESS_RUNNER.run(tasks)]


class MultiprocessExecutor(Executor):
    """Real parallel backend over a local process pool.

    Parameters
    ----------
    system:
        The full MNA system, shipped once to each worker process by the
        pool initializer.
    options:
        Solver options shared by all workers.
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    batch_width:
        ``None`` (default) — one pickled task per pool job, reference
        per-task marches.  ``"auto"`` — tasks are split into one
        lockstep chunk per worker, each marched by that process's
        :class:`BlockNodeRunner`.  ``int`` — fixed chunk width.
    transport:
        ``"auto"`` (default) — trajectory arrays return through
        ``multiprocessing.shared_memory`` when the platform supports
        it, with only metadata pickled; ``"shm"`` forces it, and
        ``"pickle"`` forces the classic pipe transport.
    retry:
        ``None`` (default) — historical behaviour: any failure disposes
        a persistent pool and re-raises.  A
        :class:`~repro.dist.supervision.RetryPolicy` supervises every
        batch instead: bounded retries with backoff, an optional
        per-batch timeout (expiry force-kills the hung workers), a
        structured :class:`~repro.dist.supervision.JobError` on
        give-up, and — with ``degrade_after > 0`` — a degradation
        ladder that falls back to in-process execution after that many
        consecutive pool failures.  Lifetime counters live on
        :attr:`supervision`.

    Notes
    -----
    Outside a ``with`` block the pool is created per :meth:`run` call
    and torn down afterwards, so no processes linger between
    experiments.  As a context manager (or after an explicit
    :meth:`prepare`) the pool — and with it every worker process's
    factorisations and per-process :data:`~repro.linalg.lu.FACTORIZATION_CACHE`
    — **persists across runs**, which is what amortises worker spawn and
    factorisation cost over a whole scenario sweep.

    Exceptions raised inside a worker are re-raised here, on the first
    failing task in submission order; shared-memory segments created by
    a crashed worker are swept up before the exception propagates (see
    :func:`repro.dist.shm.cleanup_segments`).  A failure inside a
    *persistent* pool additionally disposes the (possibly broken) pool:
    the next :meth:`run` transparently spins up fresh workers, so one
    SIGKILLed worker cannot poison the scenarios that follow.  With a
    ``retry`` policy the failed batch itself is retried against the
    fresh pool — because task trajectories are deterministic, a retried
    batch is bit-identical to a never-failed one.
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        max_workers: int | None = None,
        batch_width=None,
        transport: str = "auto",
        retry: RetryPolicy | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if transport not in ("auto", "shm", "pickle"):
            raise ValueError(
                f"transport must be 'auto', 'shm' or 'pickle', "
                f"got {transport!r}"
            )
        if transport == "shm" and not shm_available():
            raise ValueError(
                "transport='shm' requires POSIX shared memory with a "
                "/dev/shm namespace (for crash cleanup); use 'auto' "
                "(falls back to pickle) on this platform"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy or None, got {retry!r}"
            )
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.max_workers = max_workers
        self.batch_width = batch_width
        self.transport = transport
        self.retry = retry
        #: Lifetime resilience counters (see
        #: :class:`~repro.dist.supervision.SupervisionStats`).
        self.supervision = SupervisionStats()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers: int = 0
        self._prefix: str | None = None
        self._persistent = False
        self._consecutive_failures = 0
        self._degraded = False
        self._serial: SerialExecutor | None = None

    def _use_shm(self) -> bool:
        if self.transport == "pickle":
            return False
        if self.transport == "shm":
            return True
        return shm_available()

    # -- persistent lifecycle ---------------------------------------------------

    def prepare(self) -> None:
        """Switch to (and spin up) the persistent-pool lifecycle.

        Worker processes — and their per-process factor caches — then
        survive across :meth:`run` calls until :meth:`close`.
        Idempotent; also called internally to respawn the pool after a
        failure disposed it.
        """
        self._persistent = True
        if self._pool is not None:
            return
        self._pool_workers = self.max_workers or os.cpu_count() or 1
        self._prefix = new_segment_prefix() if self._use_shm() else None
        self._pool = ProcessPoolExecutor(
            max_workers=self._pool_workers,
            initializer=_init_process_worker,
            initargs=(self.system, self.options, self._prefix),
        )

    def _dispose_pool(self, force: bool = False) -> None:
        """Shut the pool down and sweep its shm namespace.

        ``force`` SIGKILLs the worker processes first — the timeout
        path, where a hung worker would otherwise deadlock the reap.
        """
        pool, prefix = self._pool, self._prefix
        self._pool = None
        self._prefix = None
        if pool is not None:
            _shutdown_pool(pool, force=force)
        if prefix is not None:
            # The happy path consumed (attached + unlinked) every
            # segment already; this reclaims whatever a failure left.
            cleanup_segments(prefix)

    def close(self) -> None:
        """End the persistent lifecycle and release the pool.

        Also resets the degradation latch: a closed-and-reused executor
        starts trusting process pools again (the counters on
        :attr:`supervision` keep accumulating for the lifetime of the
        executor object).
        """
        self._persistent = False
        self._dispose_pool()
        self._degraded = False
        self._consecutive_failures = 0
        if self._serial is not None:
            self._serial.close()
            self._serial = None

    def _map_tasks(
        self, pool: ProcessPoolExecutor, tasks: list[SimulationTask],
        n_workers: int, timeout: float | None = None,
    ) -> list[NodeResult]:
        width = self.batch_width
        if width == "auto":
            # One lockstep chunk per worker process.
            width = -(-len(tasks) // min(n_workers, len(tasks)))
        width = _resolve_batch_width(width, len(tasks))
        if width is None:
            return list(pool.map(_run_in_process, tasks, timeout=timeout))
        return [
            r
            for chunk_results in pool.map(
                _run_chunk_in_process, _chunks(tasks, width),
                timeout=timeout,
            )
            for r in chunk_results
        ]

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self._degraded:
            self.supervision.degraded_runs += 1
            return self._degraded_executor().run(tasks)
        if self.retry is not None:
            return self._run_supervised(tasks)
        if self._persistent:
            # Respawns the pool if a previous failure disposed it.
            self.prepare()
            return self._run_persistent(tasks)
        return self._run_once(tasks)

    def _run_once(
        self, tasks: list[SimulationTask], timeout: float | None = None
    ) -> list[NodeResult]:
        """Historical per-call lifecycle: fresh pool, run, tear down."""
        n_workers = min(self.max_workers or os.cpu_count() or 1, len(tasks))
        prefix = new_segment_prefix() if self._use_shm() else None
        pool = ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_process_worker,
            initargs=(self.system, self.options, prefix),
        )
        try:
            raw = self._map_tasks(pool, tasks, n_workers, timeout=timeout)
            results = [from_shared(r) for r in raw]
        except BaseException as exc:
            _shutdown_pool(pool, force=isinstance(exc, _TIMEOUT_ERRORS))
            if prefix is not None:
                cleanup_segments(prefix)
            raise
        _shutdown_pool(pool)
        if prefix is not None:
            cleanup_segments(prefix)
        return results

    def _run_persistent(self, tasks: list[SimulationTask]) -> list[NodeResult]:
        """One batch against the long-lived pool, self-healing on failure.

        Any failure — most importantly a worker SIGKILLed mid-task,
        which breaks the whole ``concurrent.futures`` pool — disposes
        the pool and sweeps the run's shared-memory prefix, so the dead
        worker's segments are reclaimed immediately and the **next**
        :meth:`run` call transparently builds a fresh pool.  The
        exception still propagates: with ``retry=None`` the caller
        decides whether the failed batch is retried; under a
        :class:`RetryPolicy` the supervised loop below retries it here.
        """
        try:
            raw = self._map_tasks(self._pool, tasks, self._pool_workers)
            return [from_shared(r) for r in raw]
        except BaseException:
            self._dispose_pool()
            raise

    # -- supervised execution -----------------------------------------------------

    def _run_supervised(self, tasks: list[SimulationTask]) -> list[NodeResult]:
        """Run one batch under :attr:`retry`: bounded retries, backoff,
        per-batch timeout, degradation ladder, :class:`JobError` give-up.
        """
        policy = self.retry
        start = time.monotonic()
        attempts = 0
        while True:
            attempts += 1
            try:
                if self._persistent:
                    self.prepare()
                    try:
                        raw = self._map_tasks(
                            self._pool, tasks, self._pool_workers,
                            timeout=policy.timeout,
                        )
                        results = [from_shared(r) for r in raw]
                    except BaseException as exc:
                        self._dispose_pool(
                            force=isinstance(exc, _TIMEOUT_ERRORS)
                        )
                        raise
                else:
                    results = self._run_once(tasks, timeout=policy.timeout)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                self.supervision.pool_failures += 1
                if isinstance(exc, _TIMEOUT_ERRORS):
                    self.supervision.timeouts += 1
                self._consecutive_failures += 1
                if (
                    policy.degrade_after
                    and self._consecutive_failures >= policy.degrade_after
                ):
                    self._degrade(exc)
                    self.supervision.degraded_runs += 1
                    return self._degraded_executor().run(tasks)
                if attempts > policy.max_retries:
                    elapsed = time.monotonic() - start
                    raise JobError(
                        f"batch of {len(tasks)} task(s) failed permanently "
                        f"after {attempts} attempt(s) over {elapsed:.2f}s "
                        f"(last cause: {exc!r})",
                        attempts=attempts,
                        elapsed_seconds=elapsed,
                        cause=exc,
                    ) from exc
                self.supervision.retries += 1
                delay = policy.delay(attempts - 1)
                if delay > 0.0:
                    time.sleep(delay)
            else:
                self._consecutive_failures = 0
                return results

    def _degrade(self, cause: BaseException) -> None:
        """Latch the degradation ladder: pools are no longer trusted."""
        self.supervision.degradations += 1
        self._degraded = True
        self._dispose_pool()
        warnings.warn(
            f"MultiprocessExecutor: {self._consecutive_failures} consecutive "
            f"pool failure(s) (last cause: {cause!r}); degrading to "
            f"in-process execution until this executor is closed",
            RuntimeWarning,
            stacklevel=4,
        )

    def _degraded_executor(self) -> SerialExecutor:
        """The lazily-built in-process fallback (same batch policy, so
        degraded results stay bit-identical to pool results)."""
        if self._serial is None:
            self._serial = SerialExecutor(
                self.system, self.options, batch_width=self.batch_width
            )
        return self._serial
