"""Task executors: where the computing nodes actually live.

Two interchangeable backends run a batch of
:class:`~repro.dist.messages.SimulationTask` messages:

* :class:`SerialExecutor` — one in-process :class:`NodeWorker` serves
  every task in order.  This *emulates* the cluster: wall-clock is the
  sum over nodes, but the recorded per-node statistics (and therefore
  the paper's max-over-nodes ``trmatex``) are identical to a real
  deployment, which is what Table 3 reports.
* :class:`MultiprocessExecutor` — a ``concurrent.futures`` process pool;
  each worker process builds its own :class:`NodeWorker` once (its own
  factorisations, like a physical node) and tasks travel as pickled
  messages.  Results come back in task order and worker exceptions
  propagate to the caller.

Both executors are deterministic: a task's floating-point trajectory
depends only on the task itself, never on which worker ran it or in what
order, so serial and multiprocess runs agree bit-for-bit.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.dist.messages import NodeResult, SimulationTask
from repro.dist.worker import NodeWorker

__all__ = ["Executor", "SerialExecutor", "MultiprocessExecutor"]


class Executor:
    """Common interface: run tasks, yield results in task order."""

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        raise NotImplementedError

    def max_factor_seconds(self, results: Iterable[NodeResult]) -> float:
        """The parallel factorisation cost chargeable to ``tr_total``.

        Nodes factor concurrently, so the distributed run pays the
        *slowest* node's factorisation once — not the sum.
        """
        return max((r.factor_seconds for r in results), default=0.0)


class SerialExecutor(Executor):
    """In-process emulation: one long-lived worker runs every task."""

    def __init__(self, system: MNASystem, options: SolverOptions | None = None):
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self._worker: NodeWorker | None = None

    @property
    def worker(self) -> NodeWorker:
        """The lazily-built worker (factorisations amortised across runs)."""
        if self._worker is None:
            self._worker = NodeWorker(self.system, self.options)
        return self._worker

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        worker = self.worker if tasks else None
        return [worker.run(task) for task in tasks]


# -- multiprocess backend ----------------------------------------------------------

# Per-process worker singleton: built once by the pool initializer so the
# node's factorisations are paid once per process, not once per task.
_PROCESS_WORKER: NodeWorker | None = None


def _init_process_worker(system: MNASystem, options: SolverOptions) -> None:
    global _PROCESS_WORKER
    _PROCESS_WORKER = NodeWorker(system, options)


def _run_in_process(task: SimulationTask) -> NodeResult:
    assert _PROCESS_WORKER is not None, "pool initializer did not run"
    return _PROCESS_WORKER.run(task)


class MultiprocessExecutor(Executor):
    """Real parallel backend over a local process pool.

    Parameters
    ----------
    system:
        The full MNA system, shipped once to each worker process by the
        pool initializer.
    options:
        Solver options shared by all workers.
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.

    Notes
    -----
    The pool is created per :meth:`run` call and torn down afterwards so
    no processes linger between experiments.  Exceptions raised inside a
    worker are re-raised here, on the first failing task in submission
    order.
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        max_workers: int | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.max_workers = max_workers

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        n_workers = min(self.max_workers or os.cpu_count() or 1, len(tasks))
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_process_worker,
            initargs=(self.system, self.options),
        ) as pool:
            return list(pool.map(_run_in_process, tasks))
