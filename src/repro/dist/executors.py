"""Task executors: where the computing nodes actually live.

Two interchangeable backends run a batch of
:class:`~repro.dist.messages.SimulationTask` messages:

* :class:`SerialExecutor` — one in-process worker serves every task.
  This *emulates* the cluster: wall-clock is the sum over nodes, but the
  recorded per-node statistics (and therefore the paper's max-over-nodes
  ``trmatex``) are identical to a real deployment, which is what Table 3
  reports.
* :class:`MultiprocessExecutor` — a ``concurrent.futures`` process pool;
  each worker process builds its own solver state once (its own
  factorisations, like a physical node).  Tasks travel as pickled
  messages; results can travel back **zero-copy** through
  ``multiprocessing.shared_memory`` (trajectory arrays stay in shared
  segments, only metadata is pickled — see :mod:`repro.dist.messages`).

Both executors optionally run the **block-batched fast path**
(:class:`~repro.dist.block_runner.BlockNodeRunner`): ``batch_width``
groups tasks into lockstep batches whose results are bit-for-bit
identical to the per-task path.  ``batch_width=None`` keeps the
reference per-task workers.

Both executors are deterministic: a task's floating-point trajectory
depends only on the task itself, never on which worker ran it, in what
order, or in which batch, so serial, multiprocess, per-node and batched
runs all agree bit-for-bit.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.dist.block_runner import BlockNodeRunner
from repro.dist.messages import NodeResult, SimulationTask
from repro.dist.shm import (
    cleanup_segments,
    from_shared,
    new_segment_prefix,
    shm_available,
    to_shared,
)
from repro.dist.worker import NodeWorker

__all__ = ["Executor", "SerialExecutor", "MultiprocessExecutor"]


def _resolve_batch_width(batch_width, n_tasks: int) -> int | None:
    """Normalise a batch-width policy to a concrete width (or None).

    ``None`` → per-task reference path; ``"auto"`` → one lockstep batch
    over all tasks; an integer → fixed-width chunks.
    """
    if batch_width is None:
        return None
    if batch_width == "auto":
        return max(n_tasks, 1)
    width = int(batch_width)
    if width < 1:
        raise ValueError(f"batch_width must be >= 1, got {batch_width!r}")
    return width


def _chunks(tasks: list, width: int) -> list[list]:
    return [tasks[i:i + width] for i in range(0, len(tasks), width)]


class Executor:
    """Common interface: run tasks, yield results in task order."""

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        raise NotImplementedError

    def max_factor_seconds(self, results: Iterable[NodeResult]) -> float:
        """The parallel factorisation cost chargeable to ``tr_total``.

        Nodes factor concurrently, so the distributed run pays the
        *slowest* node's factorisation once — not the sum.
        """
        return max((r.factor_seconds for r in results), default=0.0)


class SerialExecutor(Executor):
    """In-process emulation: one long-lived worker runs every task.

    Parameters
    ----------
    system, options:
        The full MNA system and shared solver options.
    batch_width:
        ``None`` (default) — reference per-task :class:`NodeWorker`
        marches.  ``"auto"`` — one :class:`BlockNodeRunner` lockstep
        batch over all tasks.  ``int`` — lockstep batches of that width.
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        batch_width=None,
    ):
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.batch_width = batch_width
        self._worker: NodeWorker | None = None
        self._runner: BlockNodeRunner | None = None

    @property
    def worker(self) -> NodeWorker:
        """The lazily-built worker (factorisations amortised across runs)."""
        if self._worker is None:
            self._worker = NodeWorker(self.system, self.options)
        return self._worker

    @property
    def runner(self) -> BlockNodeRunner:
        """The lazily-built block runner (same amortisation)."""
        if self._runner is None:
            self._runner = BlockNodeRunner(self.system, self.options)
        return self._runner

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        tasks = list(tasks)
        width = _resolve_batch_width(self.batch_width, len(tasks))
        if width is None:
            worker = self.worker if tasks else None
            return [worker.run(task) for task in tasks]
        out: list[NodeResult] = []
        for chunk in _chunks(tasks, width):
            out.extend(self.runner.run(chunk))
        return out


# -- multiprocess backend ----------------------------------------------------------

# Per-process state: the pool initializer stores the configuration and
# the per-task worker / block runner are each built lazily on first use,
# so only the path a pool actually runs pays its solver construction —
# and reports its construction-time factor-cache traffic.
_PROCESS_CONFIG: tuple[MNASystem, SolverOptions, str | None] | None = None
_PROCESS_WORKER: NodeWorker | None = None
_PROCESS_RUNNER: BlockNodeRunner | None = None


def _init_process_worker(
    system: MNASystem, options: SolverOptions, shm_prefix: str | None
) -> None:
    global _PROCESS_CONFIG, _PROCESS_WORKER, _PROCESS_RUNNER
    _PROCESS_CONFIG = (system, options, shm_prefix)
    _PROCESS_WORKER = None
    _PROCESS_RUNNER = None


def _maybe_share(result: NodeResult) -> NodeResult:
    shm_prefix = _PROCESS_CONFIG[2]
    if shm_prefix is None:
        return result
    return to_shared(result, shm_prefix)


def _run_in_process(task: SimulationTask) -> NodeResult:
    global _PROCESS_WORKER
    assert _PROCESS_CONFIG is not None, "pool initializer did not run"
    if _PROCESS_WORKER is None:
        _PROCESS_WORKER = NodeWorker(*_PROCESS_CONFIG[:2])
    return _maybe_share(_PROCESS_WORKER.run(task))


def _run_chunk_in_process(tasks: list[SimulationTask]) -> list[NodeResult]:
    global _PROCESS_RUNNER
    assert _PROCESS_CONFIG is not None, "pool initializer did not run"
    if _PROCESS_RUNNER is None:
        _PROCESS_RUNNER = BlockNodeRunner(*_PROCESS_CONFIG[:2])
    return [_maybe_share(r) for r in _PROCESS_RUNNER.run(tasks)]


class MultiprocessExecutor(Executor):
    """Real parallel backend over a local process pool.

    Parameters
    ----------
    system:
        The full MNA system, shipped once to each worker process by the
        pool initializer.
    options:
        Solver options shared by all workers.
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    batch_width:
        ``None`` (default) — one pickled task per pool job, reference
        per-task marches.  ``"auto"`` — tasks are split into one
        lockstep chunk per worker, each marched by that process's
        :class:`BlockNodeRunner`.  ``int`` — fixed chunk width.
    transport:
        ``"auto"`` (default) — trajectory arrays return through
        ``multiprocessing.shared_memory`` when the platform supports
        it, with only metadata pickled; ``"shm"`` forces it, and
        ``"pickle"`` forces the classic pipe transport.

    Notes
    -----
    The pool is created per :meth:`run` call and torn down afterwards so
    no processes linger between experiments.  Exceptions raised inside a
    worker are re-raised here, on the first failing task in submission
    order; shared-memory segments created by a crashed worker are swept
    up before the exception propagates (see
    :func:`repro.dist.shm.cleanup_segments`).
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        max_workers: int | None = None,
        batch_width=None,
        transport: str = "auto",
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if transport not in ("auto", "shm", "pickle"):
            raise ValueError(
                f"transport must be 'auto', 'shm' or 'pickle', "
                f"got {transport!r}"
            )
        if transport == "shm" and not shm_available():
            raise ValueError(
                "transport='shm' requires POSIX shared memory with a "
                "/dev/shm namespace (for crash cleanup); use 'auto' "
                "(falls back to pickle) on this platform"
            )
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.max_workers = max_workers
        self.batch_width = batch_width
        self.transport = transport

    def _use_shm(self) -> bool:
        if self.transport == "pickle":
            return False
        if self.transport == "shm":
            return True
        return shm_available()

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        n_workers = min(self.max_workers or os.cpu_count() or 1, len(tasks))
        width = self.batch_width
        if width == "auto":
            # One lockstep chunk per worker process.
            width = -(-len(tasks) // n_workers)
        width = _resolve_batch_width(width, len(tasks))

        prefix = new_segment_prefix() if self._use_shm() else None
        try:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_process_worker,
                initargs=(self.system, self.options, prefix),
            ) as pool:
                if width is None:
                    raw = list(pool.map(_run_in_process, tasks))
                else:
                    raw = [
                        r
                        for chunk_results in pool.map(
                            _run_chunk_in_process, _chunks(tasks, width)
                        )
                        for r in chunk_results
                    ]
            return [from_shared(r) for r in raw]
        except BaseException:
            if prefix is not None:
                cleanup_segments(prefix)
            raise
