"""Block-batched node execution: one lockstep march for all node tasks.

Every task of a decomposed run shares the full system's MNA pencil and
the same global-transition-spot grid (paper Sec. 3.4) — only the *input
columns* differ.  The per-node path (:class:`~repro.dist.worker.NodeWorker`)
therefore runs N nearly identical Python marches back to back.
:class:`BlockNodeRunner` fuses them into block linear algebra without
changing a single bit of the results:

* **Round lockstep.**  Node ``k``'s march is a chain over its *own*
  local transition spots; between two consecutive LTS every snapshot
  state depends only on the segment's Krylov basis, never on the
  previous snapshot.  So the runner iterates over *segment rounds*:
  in round ``r`` every task builds its ``r``-th ETD segment and Krylov
  basis together — three multi-RHS ``G`` substitutions
  (:meth:`~repro.linalg.lu.SparseLU.solve_many`) and one lockstep
  block-Arnoldi (:func:`~repro.linalg.block_krylov.build_bases_block`)
  instead of ``width`` scalar sequences.
* **Span-batched snapshots.**  The snapshot states of a whole segment
  are evaluated in one :meth:`~repro.linalg.krylov.KrylovBasis.evaluate_many`
  call; its loop-ordered kernel makes each column bit-identical to the
  scalar ``evaluate_with_error`` the per-node path performs, including
  the posterior-error rebuild decisions.

Bit-for-bit parity with :class:`~repro.dist.worker.NodeWorker` on both
executors is enforced by ``tests/test_block_runner.py``; it is what lets
Table-3 numbers stay untouched while the wall time drops by the batching
factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver, REUSE_SAFETY
from repro.core.stats import SolverStats
from repro.core.transition import TransitionSchedule, build_schedule
from repro.dist.messages import NodeResult, SimulationTask
from repro.dist.worker import run_task
from repro.linalg.block_krylov import (
    FastEstimator,
    build_bases_block,
    prime_eig_payloads,
)

__all__ = ["BlockNodeRunner"]


@dataclass
class _TaskState:
    """Per-task marching state across lockstep rounds.

    ``rows``/``bu_comp`` hold the task's input grid in compact form:
    only the MNA rows its ``B`` columns actually touch (a handful per
    source group), with values bit-identical to the corresponding rows
    of the dense ``MNASystem.bu_series`` grid — all other rows of that
    grid are exactly ``+0.0`` and never materialised.
    """

    task: SimulationTask
    schedule: TransitionSchedule
    rows: np.ndarray
    bu_comp: np.ndarray
    lts: list[int]
    states: np.ndarray
    stats: SolverStats
    x: np.ndarray
    eps_segment: float = 0.0
    basis: object = None
    v_alts: np.ndarray | None = None
    F: np.ndarray | None = None
    w2: np.ndarray | None = None
    i0: int = 0
    i1: int = 0
    krylov_dims: list[int] = field(default_factory=list)


class BlockNodeRunner:
    """Advances many :class:`SimulationTask` messages in lockstep.

    Construction mirrors :class:`~repro.dist.worker.NodeWorker`: one
    :class:`~repro.core.solver.MatexSolver` in deviation mode owns the
    factorisations (usually served by the process-wide
    :data:`~repro.linalg.lu.FACTORIZATION_CACHE`), and the construction
    cache traffic is attributed to the first task result of the first
    :meth:`run` call.

    Parameters
    ----------
    system:
        The full assembled MNA system.
    options:
        Solver options shared across the batch.
    """

    def __init__(self, system: MNASystem, options: SolverOptions | None = None):
        self.system = system
        self.options = options if options is not None else SolverOptions()
        self.solver = MatexSolver(system, self.options, deviation_mode=True)
        self._estimator = FastEstimator(self.solver.op)
        self._pending_cache_hits = self.solver.construction_cache_hits
        self._pending_cache_misses = self.solver.construction_cache_misses
        # Reusable (dim, 2·width) RHS buffer for the segment rounds and
        # the entries written into it last round (see _build_segments).
        self._busu: np.ndarray | None = None
        self._busu_dirty: list[tuple[np.ndarray, int]] = []

    # -- public API ---------------------------------------------------------------

    def run(self, tasks: Sequence[SimulationTask]) -> list[NodeResult]:
        """Simulate every task; results in input order.

        Tasks sharing one ``(global_points, t_end)`` grid march
        together; mixed batches are grouped by grid and each group
        marches in lockstep.  That grouping is also what stacks a
        *scenario sweep* (:mod:`repro.plan`) into one march: every
        scenario of a compiled plan reuses the plan's frozen grid, so
        its RHS columns join the same lockstep rounds as every other
        scenario's — N scenarios × K groups advance as one N·K-wide
        block instead of N separate batches.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        groups: dict[tuple, list[int]] = {}
        for pos, task in enumerate(tasks):
            groups.setdefault((task.global_points, task.t_end), []).append(pos)
        results: dict[int, NodeResult] = {}
        for positions in groups.values():
            batch = self._run_grid_batch([tasks[p] for p in positions])
            for p, res in zip(positions, batch):
                results[p] = res
        ordered = [results[p] for p in range(len(tasks))]
        if ordered:
            first = ordered[0]
            first.stats.n_factor_cache_hits += self._pending_cache_hits
            first.stats.n_factor_cache_misses += self._pending_cache_misses
            self._pending_cache_hits = 0
            self._pending_cache_misses = 0
        return ordered

    # -- lockstep march ---------------------------------------------------------

    def _prepare(self, task: SimulationTask) -> _TaskState:
        """Schedule, input grid and marching state of one task.

        Identical pre-march arithmetic to ``MatexSolver.simulate``: the
        inputs are evaluated once over the whole grid (vectorised across
        the task's column set) and deviation-shifted by the t=0 column.
        """
        overrides = task.group.overrides_dict() or None
        schedule = task.schedule
        if schedule is None:
            schedule = build_schedule(
                self.system,
                task.t_end,
                local_inputs=task.group.input_columns,
                global_points=task.global_points,
                waveform_overrides=overrides,
            )
        input_system = self.system
        if overrides:
            input_system = self.system.with_waveforms(overrides)
        pts = np.asarray(schedule.points)

        # Compact input grid: the same scatter accumulation as
        # MNASystem.bu_series (shared through bu_scatter_terms, which
        # owns the accumulation order), restricted to the rows the
        # task's B columns touch — bit-identical values; untouched rows
        # of the dense grid are exactly +0.0.
        B = input_system.B
        indptr, indices = B.indptr, B.indices
        cols = task.group.input_columns
        col_rows = [indices[indptr[c]:indptr[c + 1]] for c in cols]
        rows = (
            np.unique(np.concatenate(col_rows))
            if col_rows else np.empty(0, dtype=indices.dtype)
        )
        bu_comp = np.zeros((len(rows), len(pts)))
        for term_rows, vals, u_row in input_system.bu_scatter_terms(pts, cols):
            local = np.searchsorted(rows, term_rows)
            bu_comp[local] += vals[:, None] * u_row[None, :]
        bu0 = bu_comp[:, 0].copy()
        bu_comp -= bu0[:, None]

        n_pts = len(pts)
        dim = self.system.dim
        states = np.empty((n_pts, dim))
        x = np.zeros(dim)
        states[0] = x
        lts = [i for i in range(n_pts - 1) if schedule.is_lts[i]]
        return _TaskState(
            task=task,
            schedule=schedule,
            rows=rows,
            bu_comp=bu_comp,
            lts=lts,
            states=states,
            stats=SolverStats(factor_seconds=self.solver.factor_seconds),
            x=x,
        )

    def _run_grid_batch(self, tasks: list[SimulationTask]) -> list[NodeResult]:
        tstates = [self._prepare(t) for t in tasks]

        # The lockstep march assumes a strictly increasing shared grid
        # (guaranteed for scheduler-built grids, whose transition spots
        # are tolerance-deduplicated).  Anything else falls back to the
        # reference per-node march, task by task.
        pts_ref = np.asarray(tstates[0].schedule.points)
        degenerate = not np.all(np.diff(pts_ref) > 0.0)
        aligned = all(
            len(t.schedule.points) == len(pts_ref)
            and np.array_equal(np.asarray(t.schedule.points), pts_ref)
            for t in tstates
        )
        if degenerate or not aligned:
            return [self._run_single(t) for t in tasks]

        t_march = time.perf_counter()
        round_idx = 0
        while True:
            builders = [t for t in tstates if round_idx < len(t.lts)]
            if not builders:
                break
            self._build_segments(builders, pts_ref, round_idx)
            self._build_bases(builders, pts_ref)
            for t in builders:
                self._evaluate_span(t, pts_ref)
            round_idx += 1
        march_seconds = time.perf_counter() - t_march

        # The paper's per-node "pure transient computing" has no direct
        # analogue inside a fused march; apportion the measured wall
        # time by each task's substitution-pair share (the quantity
        # node effort scales with) so tr_matex stays meaningful.
        total_solves = sum(t.stats.n_solves_transient for t in tstates)
        for t in tstates:
            if total_solves > 0:
                share = t.stats.n_solves_transient / total_solves
            else:
                share = 1.0 / len(tstates)
            t.stats.transient_seconds = march_seconds * share
            t.stats.krylov_dims = t.krylov_dims

        return [
            NodeResult(
                task_id=t.task.task_id,
                group_id=t.task.group.group_id,
                label=t.task.group.label,
                times=pts_ref.copy(),
                states=t.states,
                stats=t.stats,
            )
            for t in tstates
        ]

    def _build_segments(
        self, builders: list[_TaskState], pts: np.ndarray, round_idx: int
    ) -> None:
        """Batched ETD vectors: three multi-RHS ``G`` solves per round."""
        lu_g = self.solver.workspace.lu_g
        C = self.system.C
        width = len(builders)
        for t in builders:
            t.i0 = t.lts[round_idx]
            t.i1 = (
                t.lts[round_idx + 1]
                if round_idx + 1 < len(t.lts)
                else len(pts) - 1
            )
        n = self.system.dim
        if width == 1:
            t = builders[0]
            h = pts[t.i0 + 1] - pts[t.i0]
            bu = np.zeros(n)
            su = np.zeros(n)
            bu[t.rows] = t.bu_comp[:, t.i0]
            su[t.rows] = (t.bu_comp[:, t.i0 + 1] - t.bu_comp[:, t.i0]) / h
            w1 = lu_g.solve(bu)
            w2 = lu_g.solve(su)
            w3 = lu_g.solve(C @ w2)
            t.F = -w1 + w3
            t.w2 = w2
            t.stats.n_solves_etd += 3
            return
        # One fused multi-RHS substitution serves both the value (BU)
        # and slope (SU) vectors — each column is an independent pair,
        # so fusing changes call count, not numbers.  The RHS block is
        # scattered into one runner-held buffer reused across rounds:
        # only the entries written last round are re-zeroed (``= 0.0``
        # stores the same ``+0.0`` a fresh allocation holds), so reuse
        # is bit-identical to allocating a (dim, 2·width) block per
        # round while eliminating that hot-path allocation.
        need = 2 * width
        if self._busu is None or self._busu.shape[1] < need:
            self._busu = np.zeros((n, need))
            self._busu_dirty = []
        for rows, col in self._busu_dirty:
            self._busu[rows, col] = 0.0
        dirty = []
        BUSU = self._busu[:, :need]
        for c, t in enumerate(builders):
            h = pts[t.i0 + 1] - pts[t.i0]
            BUSU[t.rows, c] = t.bu_comp[:, t.i0]
            BUSU[t.rows, width + c] = (
                t.bu_comp[:, t.i0 + 1] - t.bu_comp[:, t.i0]
            ) / h
            dirty.append((t.rows, c))
            dirty.append((t.rows, width + c))
        self._busu_dirty = dirty
        W12 = lu_g.solve_many(BUSU)
        W1, W2 = W12[:, :width], W12[:, width:]
        W3 = lu_g.solve_many(C @ W2)
        for c, t in enumerate(builders):
            t.F = -W1[:, c] + W3[:, c]
            t.w2 = np.ascontiguousarray(W2[:, c])
            t.stats.n_solves_etd += 3

    def _build_bases(self, builders: list[_TaskState], pts: np.ndarray) -> None:
        """One lockstep block-Arnoldi for every task's new segment."""
        opts = self.options
        vs, hs, tols = [], [], []
        for t in builders:
            v = t.x + t.F
            t.v_alts = v
            t.eps_segment = (
                opts.eps_rel * float(np.linalg.norm(v)) + opts.eps_abs
            )
            vs.append(v)
            hs.append(pts[t.i0 + 1] - pts[t.i0])
            tols.append(t.eps_segment)
        bases = build_bases_block(
            self.solver.op, vs, hs, tols,
            m_max=opts.m_max, min_dim=opts.m_min,
            estimator=self._estimator,
        )
        prime_eig_payloads(bases)
        for t, basis in zip(builders, bases):
            t.basis = basis
            t.stats.n_krylov_bases += 1
            t.stats.n_solves_krylov += basis.m
            t.krylov_dims.append(basis.m)

    def _rebuild_basis(self, t: _TaskState, ha: float) -> None:
        """Snapshot-triggered basis regeneration (rare; width-1 build)."""
        (basis,) = build_bases_block(
            self.solver.op, [t.v_alts], [ha], [t.eps_segment],
            m_max=self.options.m_max, min_dim=self.options.m_min,
            estimator=self._estimator,
        )
        t.basis = basis
        t.stats.n_krylov_bases += 1
        t.stats.n_solves_krylov += basis.m
        t.krylov_dims.append(basis.m)

    def _evaluate_span(self, t: _TaskState, pts: np.ndarray) -> None:
        """States of one segment: LTS step plus error-checked snapshots.

        ``span_hs[0]`` is the fresh segment's own step (plain evaluate,
        as Alg. 2's LTS branch); every later entry is a snapshot whose
        posterior error is re-checked against the generation budget,
        regenerating the basis exactly where the per-node path would.
        """
        span_hs = pts[t.i0 + 1: t.i1 + 1] - pts[t.i0]
        n_span = len(span_hs)
        t.stats.n_steps += n_span
        if t.basis.m == 0 and not t.F.any() and not t.w2.any():
            # Quiescent segment (node idle before its delay): the empty
            # basis evaluates to zero and P(h) ≡ ±0, so every marching
            # step lands exactly on +0.0 — skip the span evaluation.
            t.states[t.i0 + 1: t.i1 + 1] = 0.0
            t.stats.n_reuses += n_span - 1
            t.x = t.states[t.i1]
            return
        Y, errs = t.basis.evaluate_many(span_hs)
        threshold = REUSE_SAFETY * t.eps_segment
        if not np.any(errs[1:] > threshold):
            # No rebuilds anywhere in the segment (the overwhelmingly
            # common case — Fig. 5 says reuse error shrinks with h):
            # evaluate P(h) and commit the states straight into the
            # task's trajectory block, allocation-free.
            dst = t.states[t.i0 + 1: t.i1 + 1]
            np.multiply(span_hs[:, None], t.w2[None, :], out=dst)
            np.subtract(t.F[None, :], dst, out=dst)
            np.subtract(Y, dst, out=dst)
            t.stats.n_reuses += n_span - 1
            t.x = t.states[t.i1]
            return
        P_span = t.F[None, :] - span_hs[:, None] * t.w2[None, :]
        X_span = Y - P_span
        t.states[t.i0 + 1] = X_span[0]
        k = 1
        offset = 0  # span index where the current Y/errs/X_span start
        while k < n_span:
            if errs[k - offset] > threshold:
                ha = float(span_hs[k])
                self._rebuild_basis(t, ha)
                Yk, _ = t.basis.evaluate_many([ha], with_errors=False)
                t.states[t.i0 + 1 + k] = Yk[0] - (t.F - ha * t.w2)
                k += 1
                if k < n_span:
                    # Re-evaluate only the remaining tail against the
                    # fresh basis; committed steps stay committed.
                    offset = k
                    Y, errs = t.basis.evaluate_many(span_hs[offset:])
                    X_span = Y - P_span[offset:]
                continue
            t.stats.n_reuses += 1
            t.states[t.i0 + 1 + k] = X_span[k - offset]
            k += 1
        t.x = t.states[t.i1]

    # -- reference fallback -------------------------------------------------------

    def _run_single(self, task: SimulationTask) -> NodeResult:
        """Reference per-node march (degenerate grids): the same
        :func:`repro.dist.worker.run_task` the per-node path runs."""
        return run_task(self.solver, task)
