"""Modified nodal analysis (MNA) assembly.

Builds the sparse descriptor system of paper Eq. (1)::

    C x'(t) = -G x(t) + B u(t)

from a :class:`repro.circuit.netlist.Netlist`:

* ``G`` — conductance matrix (resistors, source/inductor incidence),
* ``C`` — capacitance/inductance matrix (possibly *singular*: nodes without
  capacitors and voltage-source branch rows carry no dynamics; MATEX is
  explicitly regularization-free in this case, paper Sec. 3.3.3),
* ``B`` — input selector mapping the stacked input vector
  ``u(t) = [i_loads..., v_supplies...]`` onto MNA rows.

The input vector ordering is **current sources first** (insertion order),
then voltage sources; :class:`MNASystem` carries the index maps and the
waveform evaluators used by all integrators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.circuit.netlist import Netlist
from repro.circuit.waveforms import Waveform, merge_transition_spots

__all__ = ["MNASystem", "assemble"]


class _Stamper:
    """Accumulates COO triplets for one sparse matrix."""

    def __init__(self, dim: int):
        self.dim = dim
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []

    def add(self, i: int, j: int, v: float) -> None:
        """Stamp ``v`` at ``(i, j)``; silently skips ground rows (-1)."""
        if i < 0 or j < 0:
            return
        self.rows.append(i)
        self.cols.append(j)
        self.vals.append(v)

    def build(self, n_cols: int | None = None) -> sp.csc_matrix:
        shape = (self.dim, n_cols if n_cols is not None else self.dim)
        m = sp.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=shape, dtype=float
        )
        return m.tocsc()


@dataclass
class MNASystem:
    """Assembled descriptor system ``C x' = -G x + B u(t)``.

    Attributes
    ----------
    netlist:
        The source circuit (kept for node names and reporting).
    C, G:
        Square sparse matrices of dimension :attr:`dim`.
    B:
        ``dim × n_inputs`` sparse selector.
    waveforms:
        One :class:`~repro.circuit.waveforms.Waveform` per input column,
        currents first then voltage supplies.
    n_current_inputs:
        Number of leading columns of ``B`` that are load currents.
    """

    netlist: Netlist
    C: sp.csc_matrix
    G: sp.csc_matrix
    B: sp.csc_matrix
    waveforms: tuple[Waveform, ...]
    n_current_inputs: int

    # -- basic geometry ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """MNA system dimension."""
        return self.G.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of input sources (columns of ``B``)."""
        return self.B.shape[1]

    @property
    def current_input_indices(self) -> range:
        """Columns of ``B`` that correspond to load-current sources."""
        return range(self.n_current_inputs)

    @property
    def voltage_input_indices(self) -> range:
        """Columns of ``B`` that correspond to supply-voltage sources."""
        return range(self.n_current_inputs, self.n_inputs)

    def with_waveforms(self, overrides: dict[int, Waveform]) -> "MNASystem":
        """A shallow derivative system with some input waveforms replaced.

        Matrices (and therefore factorisations held elsewhere) are
        shared; only the waveform tuple changes.  Used by the split-bump
        decomposition, where one node simulates a *masked* version of a
        source (a single bump of a periodic pulse, paper Fig. 3).
        """
        new_waveforms = list(self.waveforms)
        for col, w in overrides.items():
            if not 0 <= col < self.n_inputs:
                raise IndexError(f"input column {col} out of range")
            new_waveforms[col] = w
        return MNASystem(
            netlist=self.netlist,
            C=self.C, G=self.G, B=self.B,
            waveforms=tuple(new_waveforms),
            n_current_inputs=self.n_current_inputs,
        )

    def rebind_sources(
        self,
        overrides: dict[int, Waveform] | None = None,
        scales: dict[int, float] | None = None,
    ) -> "MNASystem":
        """Swap ``B·u(t)`` without re-stamping ``G`` or ``C``.

        The matrices — and therefore every factorisation keyed on them
        in the process-wide cache — are shared with ``self``; only the
        waveform tuple changes.  This is the binding step of the
        plan/compile/execute layering (:mod:`repro.plan`): one compiled
        topology serves many "same system, different sources" scenarios.

        Parameters
        ----------
        overrides:
            ``{column: waveform}`` replacements, applied first.
        scales:
            ``{column: factor}`` value scalings, applied to the (possibly
            overridden) waveform via :meth:`Waveform.scaled`.  Scaling
            never moves transition spots.
        """
        new_waveforms = list(self.waveforms)
        for col, w in (overrides or {}).items():
            if not 0 <= col < self.n_inputs:
                raise IndexError(f"input column {col} out of range")
            new_waveforms[col] = w
        for col, factor in (scales or {}).items():
            if not 0 <= col < self.n_inputs:
                raise IndexError(f"input column {col} out of range")
            new_waveforms[col] = new_waveforms[col].scaled(factor)
        return MNASystem(
            netlist=self.netlist,
            C=self.C, G=self.G, B=self.B,
            waveforms=tuple(new_waveforms),
            n_current_inputs=self.n_current_inputs,
        )

    def is_c_singular(self) -> bool:
        """Cheap structural singularity check for ``C`` (empty rows)."""
        csr = self.C.tocsr()
        row_nnz = np.diff(csr.indptr)
        return bool(np.any(row_nnz == 0))

    # -- input evaluation ---------------------------------------------------------

    def _pulse_table(self):
        """Lazy vectorised evaluation table for non-periodic pulse inputs.

        PDN workloads have thousands of pulse sources; evaluating them
        one Python call at a time dominates baseline runtimes.  The table
        holds their parameters as arrays so ``u(t)`` is a handful of
        numpy operations, with a scalar fallback for other waveforms.
        """
        table = getattr(self, "_pulse_table_cache", None)
        if table is not None:
            return table
        from repro.circuit.waveforms import Pulse

        pulse_cols = []
        other_cols = []
        for k, w in enumerate(self.waveforms):
            if isinstance(w, Pulse):
                pulse_cols.append(k)
            else:
                other_cols.append(k)
        if pulse_cols:
            ws = [self.waveforms[k] for k in pulse_cols]
            params = {
                "cols": np.array(pulse_cols, dtype=int),
                "v1": np.array([w.v1 for w in ws]),
                "v2": np.array([w.v2 for w in ws]),
                "delay": np.array([w.t_delay for w in ws]),
                "rise": np.array([w.t_rise for w in ws]),
                "rw": np.array([w.t_rise + w.t_width for w in ws]),
                "rwf": np.array(
                    [w.t_rise + w.t_width + w.t_fall for w in ws]
                ),
                "period": np.array(
                    [w.t_period if w.t_period is not None else np.nan for w in ws]
                ),
            }
        else:
            params = None
        table = (params, other_cols)
        self._pulse_table_cache = table
        return table

    def _pulse_values(self, t: float, params: dict) -> np.ndarray:
        tau = t - params["delay"]
        period = params["period"]
        periodic = ~np.isnan(period) & (tau >= 0.0)
        tau = np.where(periodic, np.mod(tau, np.where(periodic, period, 1.0)), tau)
        v1, v2 = params["v1"], params["v2"]
        rise, rw, rwf = params["rise"], params["rw"], params["rwf"]
        out = np.where(
            tau <= 0.0, v1,
            np.where(
                tau < rise, v1 + (v2 - v1) * tau / rise,
                np.where(
                    tau < rw, v2,
                    np.where(
                        tau < rwf, v2 + (v1 - v2) * (tau - rw) / (rwf - rw),
                        v1,
                    ),
                ),
            ),
        )
        return out

    def input_vector(
        self, t: float, active: Sequence[int] | None = None
    ) -> np.ndarray:
        """Evaluate ``u(t)``; inactive sources contribute zero.

        Parameters
        ----------
        t:
            Evaluation time.
        active:
            Optional iterable of input-column indices to evaluate; used by
            the distributed decomposition where each node only sees its own
            source group (paper Sec. 3.1).

        Notes
        -----
        The full-vector case (``active=None``) is vectorised over pulse
        sources; small per-node subsets use the scalar path.
        """
        u = np.zeros(self.n_inputs)
        if active is None:
            params, other_cols = self._pulse_table()
            if params is not None:
                u[params["cols"]] = self._pulse_values(float(t), params)
            for k in other_cols:
                u[k] = self.waveforms[k].value(t)
            return u
        for k in active:
            u[k] = self.waveforms[k].value(t)
        return u

    def input_slope(
        self, t: float, active: Sequence[int] | None = None
    ) -> np.ndarray:
        """Evaluate the right-sided slope vector ``du/dt`` at ``t``."""
        s = np.zeros(self.n_inputs)
        cols = range(self.n_inputs) if active is None else active
        for k in cols:
            s[k] = self.waveforms[k].slope(t)
        return s

    def bu(self, t: float, active: Sequence[int] | None = None) -> np.ndarray:
        """Convenience: ``B @ u(t)`` as a dense vector."""
        return np.asarray(self.B @ self.input_vector(t, active)).ravel()

    def b_slope(self, t: float, active: Sequence[int] | None = None) -> np.ndarray:
        """Convenience: ``B @ du/dt(t)`` as a dense vector."""
        return np.asarray(self.B @ self.input_slope(t, active)).ravel()

    def b_slope_fd(
        self, t0: float, t1: float, active: Sequence[int] | None = None
    ) -> np.ndarray:
        """Segment slope ``B(u(t1)−u(t0))/(t1−t0)`` by finite difference.

        ``[t0, t1]`` must lie inside one PWL segment of every active
        input, which holds by construction when both ends are consecutive
        global transition spots.  This form is preferred by the solvers:
        the analytic right-sided ``slope(t)`` can land an ulp before a
        breakpoint and return the previous segment's slope, while the
        finite difference is exact for linear segments regardless of
        floating-point noise at the endpoints.
        """
        if t1 <= t0:
            raise ValueError(f"need t1 > t0, got [{t0!r}, {t1!r}]")
        du = self.input_vector(t1, active) - self.input_vector(t0, active)
        return np.asarray(self.B @ (du / (t1 - t0))).ravel()

    def bu_scatter_terms(self, times: np.ndarray, cols):
        """Per-column scatter terms of ``B @ u(t)`` over a time grid.

        Yields ``(rows, vals, u_row)`` per non-empty ``B`` column in
        the order of ``cols``.  This generator is the **single source
        of the scatter accumulation order**: both the dense
        :meth:`bu_series` and the block runner's compact per-task input
        grids accumulate these exact terms in this exact order, which
        is what keeps the two representations bit-for-bit consistent.
        """
        indptr, indices, data = self.B.indptr, self.B.indices, self.B.data
        for col in cols:
            lo, hi = indptr[col], indptr[col + 1]
            if lo == hi:
                continue
            yield (
                indices[lo:hi],
                data[lo:hi],
                self.waveforms[col].values_array(times),
            )

    def bu_series(
        self,
        times: np.ndarray,
        active: Sequence[int] | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``B @ u(t)`` for a whole time grid at once, shape ``(dim, k)``.

        Used by the fixed-step baselines and the block node runner,
        which would otherwise evaluate thousands of waveforms per step
        in Python loops.  Each input column is evaluated over the whole
        grid (``values_array``) and scattered through its ``B`` column
        directly — the same per-element accumulation order a CSC
        mat-mat product performs, without materialising the ``B[:,
        cols]`` slice (sparse fancy indexing costs more than the
        product for the small per-node column sets).

        ``out`` reuses a caller-held ``(dim, k)`` float64 buffer for the
        result instead of allocating one per call — the marching hot
        paths call this per segment.  It is zero-filled first (``+0.0``
        everywhere, exactly like a fresh allocation), so the scatter
        accumulation — and therefore every bit of the result — is
        identical with or without buffer reuse.
        """
        times = np.asarray(times, dtype=float)
        k = times.shape[0]
        if out is None:
            out = np.zeros((self.dim, k))
        else:
            if out.shape != (self.dim, k) or out.dtype != np.float64:
                raise ValueError(
                    f"out must be a float64 buffer of shape "
                    f"{(self.dim, k)}, got {out.dtype} {out.shape}"
                )
            out[...] = 0.0
        cols = range(self.n_inputs) if active is None else active
        for rows, vals, u_row in self.bu_scatter_terms(times, cols):
            out[rows] += vals[:, None] * u_row[None, :]
        return out

    # -- transition spots -----------------------------------------------------------

    def local_transition_spots(self, k: int, t_end: float) -> list[float]:
        """LTS of input column ``k`` (paper Sec. 3.1 definition).

        Cached per ``(column, t_end)``: a decomposed run builds one
        schedule per node task over the same horizon, and pulse spot
        generation in Python is a measurable slice of that.
        """
        cache = getattr(self, "_lts_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_lts_cache", cache)
        key = (k, t_end)
        spots = cache.get(key)
        if spots is None:
            spots = self.waveforms[k].transition_spots(t_end)
            cache[key] = spots
        return list(spots)

    def global_transition_spots(
        self, t_end: float, active: Sequence[int] | None = None
    ) -> list[float]:
        """GTS: union of LTS over (a subset of) the inputs.

        ``t_end`` is appended so the solver always has a final marching
        target even if all sources go quiet earlier.
        """
        cols = range(self.n_inputs) if active is None else active
        spots = merge_transition_spots(
            [self.waveforms[k].transition_spots(t_end) for k in cols]
        )
        spots = [t for t in spots if t <= t_end]
        if not spots or spots[-1] < t_end:
            spots.append(t_end)
        return spots

    # -- reporting ---------------------------------------------------------------------

    def node_voltage(self, x: np.ndarray, node: str) -> float:
        """Extract one node voltage from a solution vector."""
        idx = self.netlist.node_index(node)
        if idx < 0:
            return 0.0
        return float(x[idx])

    def node_voltages(self, x: np.ndarray) -> dict[str, float]:
        """All node voltages of a solution vector, keyed by node name."""
        return {
            name: float(x[i])
            for i, name in enumerate(self.netlist.node_names())
        }


def assemble(netlist: Netlist, validate: bool = True) -> MNASystem:
    """Assemble the MNA descriptor system for a netlist.

    Parameters
    ----------
    netlist:
        The circuit to stamp.
    validate:
        When true (default), run :meth:`Netlist.validate` first so that a
        singular ``G`` is reported as a netlist problem rather than a
        mysterious LU failure later.

    Returns
    -------
    MNASystem
        The assembled system with ``C``, ``G``, ``B`` in CSC format.
    """
    if validate:
        netlist.validate()

    u = netlist.unknowns
    dim = u.dim
    g = _Stamper(dim)
    c = _Stamper(dim)
    b = _Stamper(dim)

    ni = netlist.node_index

    for r in netlist.resistors:
        i, j = ni(r.pos), ni(r.neg)
        cond = r.conductance
        g.add(i, i, cond)
        g.add(j, j, cond)
        g.add(i, j, -cond)
        g.add(j, i, -cond)

    for cap in netlist.capacitors:
        i, j = ni(cap.pos), ni(cap.neg)
        c.add(i, i, cap.capacitance)
        c.add(j, j, cap.capacitance)
        c.add(i, j, -cap.capacitance)
        c.add(j, i, -cap.capacitance)

    waveforms: list[Waveform] = []
    n_currents = len(netlist.current_sources)

    # Current sources: columns [0, n_currents).  SPICE convention: a
    # positive source value draws current out of `pos` and injects it into
    # `neg`, so the RHS contribution is -u at pos and +u at neg.
    for col, src in enumerate(netlist.current_sources):
        i, j = ni(src.pos), ni(src.neg)
        b.add(i, col, -1.0)
        b.add(j, col, +1.0)
        waveforms.append(src.waveform)

    # Voltage sources: extra branch-current rows after the node block.
    for k, src in enumerate(netlist.voltage_sources):
        row = netlist.n_nodes + k
        i, j = ni(src.pos), ni(src.neg)
        # KCL coupling of the branch current into its terminal nodes.
        g.add(i, row, +1.0)
        g.add(j, row, -1.0)
        # Branch equation v(pos) - v(neg) = u.
        g.add(row, i, +1.0)
        g.add(row, j, -1.0)
        b.add(row, n_currents + k, 1.0)
        waveforms.append(src.waveform)

    # Inductors: branch rows after the voltage sources,
    # v(pos) - v(neg) - L di/dt = 0.
    for k, ind in enumerate(netlist.inductors):
        row = netlist.n_nodes + len(netlist.voltage_sources) + k
        i, j = ni(ind.pos), ni(ind.neg)
        g.add(i, row, +1.0)
        g.add(j, row, -1.0)
        g.add(row, i, +1.0)
        g.add(row, j, -1.0)
        c.add(row, row, -ind.inductance)

    n_inputs = n_currents + len(netlist.voltage_sources)
    return MNASystem(
        netlist=netlist,
        C=c.build(),
        G=g.build(),
        B=b.build(n_cols=n_inputs),  # 0 columns for a source-free circuit
        waveforms=tuple(waveforms),
        n_current_inputs=n_currents,
    )
