"""Circuit element definitions.

A power-distribution network is modelled as a linear circuit containing
resistors, capacitors, inductors, ideal voltage sources and time-varying
current sources (paper Sec. 2.1).  Elements are plain frozen dataclasses;
all topology bookkeeping lives in :mod:`repro.circuit.netlist` and all
matrix stamping in :mod:`repro.circuit.mna`.

Node names are strings; the reserved name ``"0"`` (alias ``"gnd"``) is the
ground reference and is never assigned a matrix row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.waveforms import DC, Waveform

__all__ = [
    "GROUND_NAMES",
    "Element",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
]

#: Names accepted as the ground node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


@dataclass(frozen=True)
class Element:
    """Base class for all two-terminal circuit elements.

    Attributes
    ----------
    name:
        Unique element identifier (e.g. ``"R12"``).
    pos, neg:
        Terminal node names.  For sources, current flows *from* ``pos``
        *to* ``neg`` through the element (SPICE convention).
    """

    name: str
    pos: str
    neg: str

    def nodes(self) -> tuple[str, str]:
        """Return the two terminal node names."""
        return (self.pos, self.neg)


@dataclass(frozen=True)
class Resistor(Element):
    """Linear resistor with resistance in ohms."""

    resistance: float = 0.0

    def __post_init__(self):
        if self.resistance <= 0.0:
            raise ValueError(
                f"resistor {self.name!r}: resistance must be positive, "
                f"got {self.resistance!r}"
            )

    @property
    def conductance(self) -> float:
        """Conductance 1/R in siemens (the quantity stamped into G)."""
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor(Element):
    """Linear capacitor with capacitance in farads."""

    capacitance: float = 0.0

    def __post_init__(self):
        if self.capacitance <= 0.0:
            raise ValueError(
                f"capacitor {self.name!r}: capacitance must be positive, "
                f"got {self.capacitance!r}"
            )


@dataclass(frozen=True)
class Inductor(Element):
    """Linear inductor with inductance in henries.

    MNA introduces one extra unknown (the branch current) per inductor;
    the inductance is stamped into the ``C`` matrix row of that current.
    """

    inductance: float = 0.0

    def __post_init__(self):
        if self.inductance <= 0.0:
            raise ValueError(
                f"inductor {self.name!r}: inductance must be positive, "
                f"got {self.inductance!r}"
            )


@dataclass(frozen=True)
class VoltageSource(Element):
    """Ideal voltage source ``v(pos) - v(neg) = waveform(t)``.

    PDN supply pads are DC voltage sources; MNA introduces one extra
    unknown (the source branch current) per voltage source.
    """

    waveform: Waveform = field(default_factory=DC)

    def is_dc(self) -> bool:
        """True when the source never changes (the usual PDN pad)."""
        return self.waveform.is_constant()


@dataclass(frozen=True)
class CurrentSource(Element):
    """Ideal current source drawing ``waveform(t)`` amps from ``pos`` to ``neg``.

    In PDN analysis these model switching-logic load currents and are
    "often characterised as pulse inputs" (paper Sec. 2.1).  Each current
    source is one column of the input-selector matrix ``B`` and one entry
    of the input vector ``u(t)``.
    """

    waveform: Waveform = field(default_factory=DC)

    def is_dc(self) -> bool:
        """True when the load current is constant."""
        return self.waveform.is_constant()
