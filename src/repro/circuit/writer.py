"""Netlist writer: serialise a :class:`Netlist` back to SPICE text.

Round-trips with :mod:`repro.circuit.parser`, which makes the synthetic
PDN suite exportable in the same flat-SPICE dialect as the IBM power grid
benchmarks — useful for cross-checking against external simulators.
"""

from __future__ import annotations

from pathlib import Path

from repro.circuit.netlist import Netlist
from repro.circuit.waveforms import DC, PWL, Pulse, Waveform

__all__ = ["format_netlist", "write_file"]


def _fmt(x: float) -> str:
    """Compact float formatting that survives a parse round-trip."""
    return repr(float(x))


def _fmt_waveform(w: Waveform) -> str:
    if isinstance(w, DC):
        return _fmt(w.level)
    if isinstance(w, Pulse):
        # SPICE order: v1 v2 td tr tf pw per
        args = [w.v1, w.v2, w.t_delay, w.t_rise, w.t_fall, w.t_width]
        if w.t_period is not None:
            args.append(w.t_period)
        return "PULSE(" + " ".join(_fmt(a) for a in args) + ")"
    if isinstance(w, PWL):
        flat = " ".join(f"{_fmt(t)} {_fmt(v)}" for t, v in w.points)
        return f"PWL({flat})"
    raise TypeError(f"cannot serialise waveform of type {type(w).__name__}")


def format_netlist(netlist: Netlist, t_end: float | None = None) -> str:
    """Render a netlist as flat-SPICE text.

    Parameters
    ----------
    netlist:
        The circuit to serialise.
    t_end:
        Optional transient stop time; when given, a ``.tran`` directive is
        emitted (step hint = t_end/1000, mirroring the paper's 1000-step
        trapezoidal baseline).
    """
    lines = [f"* {netlist.title}"]
    for r in netlist.resistors:
        lines.append(f"{r.name} {r.pos} {r.neg} {_fmt(r.resistance)}")
    for c in netlist.capacitors:
        lines.append(f"{c.name} {c.pos} {c.neg} {_fmt(c.capacitance)}")
    for ind in netlist.inductors:
        lines.append(f"{ind.name} {ind.pos} {ind.neg} {_fmt(ind.inductance)}")
    for v in netlist.voltage_sources:
        lines.append(f"{v.name} {v.pos} {v.neg} {_fmt_waveform(v.waveform)}")
    for i in netlist.current_sources:
        lines.append(f"{i.name} {i.pos} {i.neg} {_fmt_waveform(i.waveform)}")
    if t_end is not None:
        lines.append(f".tran {_fmt(t_end / 1000.0)} {_fmt(t_end)}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_file(netlist: Netlist, path: str | Path, t_end: float | None = None) -> None:
    """Write :func:`format_netlist` output to ``path``."""
    Path(path).write_text(format_netlist(netlist, t_end=t_end))
