"""Netlist writer: serialise a :class:`Netlist` back to SPICE text.

Round-trips with :mod:`repro.circuit.parser` and the streaming ingester
in :mod:`repro.circuit.ingest`, which makes the synthetic PDN suite
exportable in the same flat-SPICE dialect as the IBM power grid
benchmarks — useful for cross-checking against external simulators and
for synthesising benchmark-format decks on disk.

Two card orders are supported:

``"by-type"`` (default)
    All R cards, then C, L, V, I — the classic grouped layout.
``"insertion"``
    Cards in element insertion order.  This is the order that makes the
    write → ingest round-trip **bit-identical**: node matrix indices are
    assigned by first appearance, so a deck replayed card-by-card in
    insertion order reconstructs the exact index assignment (and hence
    the exact ``G``/``C``/``B`` triplet sequence) of the in-memory
    netlist.

:func:`iter_cards` streams one card line at a time so multi-hundred-MB
decks can be written without materialising the text in memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Netlist
from repro.circuit.waveforms import DC, PWL, Pulse, Waveform

__all__ = ["format_netlist", "iter_cards", "write_file"]


def _fmt(x: float) -> str:
    """Compact float formatting that survives a parse round-trip."""
    return repr(float(x))


def _fmt_waveform(w: Waveform) -> str:
    if isinstance(w, DC):
        return _fmt(w.level)
    if isinstance(w, Pulse):
        # SPICE order: v1 v2 td tr tf pw per
        args = [w.v1, w.v2, w.t_delay, w.t_rise, w.t_fall, w.t_width]
        if w.t_period is not None:
            args.append(w.t_period)
        return "PULSE(" + " ".join(_fmt(a) for a in args) + ")"
    if isinstance(w, PWL):
        flat = " ".join(f"{_fmt(t)} {_fmt(v)}" for t, v in w.points)
        return f"PWL({flat})"
    raise TypeError(f"cannot serialise waveform of type {type(w).__name__}")


def _fmt_element(e: Element) -> str:
    """One SPICE card for any supported element."""
    if isinstance(e, Resistor):
        return f"{e.name} {e.pos} {e.neg} {_fmt(e.resistance)}"
    if isinstance(e, Capacitor):
        return f"{e.name} {e.pos} {e.neg} {_fmt(e.capacitance)}"
    if isinstance(e, Inductor):
        return f"{e.name} {e.pos} {e.neg} {_fmt(e.inductance)}"
    if isinstance(e, (VoltageSource, CurrentSource)):
        return f"{e.name} {e.pos} {e.neg} {_fmt_waveform(e.waveform)}"
    raise TypeError(f"cannot serialise element of type {type(e).__name__}")


def iter_cards(
    netlist: Netlist,
    t_end: float | None = None,
    order: str = "by-type",
) -> Iterator[str]:
    """Yield the netlist's SPICE card lines one at a time (no newlines).

    Parameters
    ----------
    netlist:
        The circuit to serialise.
    t_end:
        Optional transient stop time; when given, a ``.tran`` directive
        is emitted (step hint = t_end/1000, mirroring the paper's
        1000-step trapezoidal baseline).
    order:
        ``"by-type"`` (grouped R/C/L/V/I) or ``"insertion"`` (element
        insertion order, the bit-identical round-trip order).
    """
    if order not in ("by-type", "insertion"):
        raise ValueError(
            f"order must be 'by-type' or 'insertion', got {order!r}"
        )
    yield f"* {netlist.title}"
    if order == "insertion":
        for e in netlist.elements():
            yield _fmt_element(e)
    else:
        for group in (
            netlist.resistors,
            netlist.capacitors,
            netlist.inductors,
            netlist.voltage_sources,
            netlist.current_sources,
        ):
            for e in group:
                yield _fmt_element(e)
    if t_end is not None:
        yield f".tran {_fmt(t_end / 1000.0)} {_fmt(t_end)}"
    yield ".end"


def format_netlist(
    netlist: Netlist,
    t_end: float | None = None,
    order: str = "by-type",
) -> str:
    """Render a netlist as flat-SPICE text (see :func:`iter_cards`)."""
    return "\n".join(iter_cards(netlist, t_end=t_end, order=order)) + "\n"


def write_file(
    netlist: Netlist,
    path: str | Path,
    t_end: float | None = None,
    order: str = "by-type",
) -> None:
    """Stream :func:`iter_cards` output to ``path`` line by line."""
    with open(Path(path), "w") as f:
        for line in iter_cards(netlist, t_end=t_end, order=order):
            f.write(line + "\n")
