"""Input-source waveform models.

MATEX's whole decomposition story is driven by the *shape* of the input
waveforms: every time point at which the slope of an input changes is a
*transition spot* (TS, paper Sec. 2.2).  Between two consecutive transition
spots an input is linear, which is exactly the assumption under which the
exponential-time-differencing update (paper Eq. 5) is analytic.

This module provides the waveform classes used throughout the simulator:

``DC``
    A constant value; no transition spots.
``PWL``
    Piecewise-linear waveform given by ``(time, value)`` breakpoints, the
    classic SPICE ``PWL(...)`` source.
``Pulse``
    The classic SPICE ``PULSE(...)`` source.  Power-grid current loads are
    "characterised as pulse inputs" (paper Sec. 2.1); the pulse parameters
    ``(t_delay, t_rise, t_width, t_fall)`` define the "bump shape" used to
    group sources in the distributed decomposition (paper Fig. 3).

All waveforms expose:

* ``value(t)``        — the value at time ``t``;
* ``slope(t)``        — the right-sided derivative at ``t``;
* ``transition_spots(t_end)`` — sorted times in ``[0, t_end]`` where the
  slope changes (the Local Transition Spots of this source).

Times and values are plain floats in SI units (seconds, amps, volts).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

__all__ = ["Waveform", "DC", "PWL", "Pulse", "BumpShape"]

#: Relative tolerance used when merging nearly-identical transition times.
_TIME_RTOL = 1e-12


def _dedup_sorted(times: list[float], atol: float = 0.0) -> list[float]:
    """Remove near-duplicate entries from a sorted list of times."""
    out: list[float] = []
    for t in times:
        if out and math.isclose(t, out[-1], rel_tol=_TIME_RTOL, abs_tol=atol):
            continue
        out.append(t)
    return out


class Waveform:
    """Abstract base class for all input waveforms."""

    def value(self, t: float) -> float:
        """Return the waveform value at time ``t``."""
        raise NotImplementedError

    def slope(self, t: float) -> float:
        """Return the right-sided slope (d/dt) at time ``t``."""
        raise NotImplementedError

    def transition_spots(self, t_end: float) -> list[float]:
        """Return sorted slope-change times within ``[0, t_end]``.

        Time ``0.0`` is always included: the simulation start is a
        transition spot by convention (paper Fig. 1 marks t=0/DC).
        """
        raise NotImplementedError

    def values(self, times: Sequence[float]) -> list[float]:
        """Vector convenience wrapper around :meth:`value`."""
        return [self.value(t) for t in times]

    def values_array(self, times) -> "np.ndarray":
        """Vectorised evaluation over a numpy array of times.

        Every concrete waveform shipped here (:class:`DC`, :class:`PWL`,
        :class:`Pulse`) overrides this with a true numpy implementation
        (constant fill / ``np.interp``) — the batched source-assembly
        paths (:meth:`repro.circuit.mna.MNASystem.bu_series`, the block
        node runner) evaluate whole time grids through it.  This base
        fallback exists only for third-party subclasses; it preserves
        the input shape but costs one Python call per point.
        """
        import numpy as np

        t = np.asarray(times, dtype=float)
        return np.array([self.value(float(v)) for v in t.ravel()]).reshape(t.shape)

    def is_constant(self) -> bool:
        """True when the waveform never changes (used for DC-only nodes)."""
        return False

    def scaled(self, factor: float) -> "Waveform":
        """This waveform with every *value* multiplied by ``factor``.

        The time geometry (delays, breakpoints, transition spots) is
        untouched — scaling a source never moves its transition spots,
        which is what lets a :class:`repro.plan.Scenario` rescale inputs
        against a compiled plan without invalidating its frozen
        grid/schedules.  Concrete waveforms override this; third-party
        subclasses that do not are rejected with a clear error instead
        of being silently mis-scaled.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement scaled(); "
            f"scenario source scaling needs a waveform that knows how to "
            f"rescale its values"
        )


@dataclass(frozen=True)
class DC(Waveform):
    """Constant waveform (supply voltages, DC loads)."""

    level: float = 0.0

    def value(self, t: float) -> float:
        return self.level

    def slope(self, t: float) -> float:
        return 0.0

    def transition_spots(self, t_end: float) -> list[float]:
        return [0.0]

    def is_constant(self) -> bool:
        return True

    def scaled(self, factor: float) -> "DC":
        return DC(level=self.level * float(factor))

    def values_array(self, times):
        import numpy as np

        return np.full(np.asarray(times).shape, self.level, dtype=float)


@dataclass(frozen=True)
class PWL(Waveform):
    """Piecewise-linear waveform defined by breakpoints.

    Parameters
    ----------
    points:
        Sequence of ``(time, value)`` pairs with strictly increasing times.
        Before the first breakpoint the waveform holds the first value;
        after the last breakpoint it holds the last value (SPICE semantics).
    """

    points: tuple[tuple[float, float], ...]

    def __init__(self, points: Sequence[tuple[float, float]]):
        pts = tuple((float(t), float(v)) for t, v in points)
        if not pts:
            raise ValueError("PWL requires at least one breakpoint")
        for (t0, _), (t1, _) in zip(pts, pts[1:]):
            if t1 <= t0:
                raise ValueError(
                    f"PWL breakpoint times must be strictly increasing, "
                    f"got {t0!r} then {t1!r}"
                )
        object.__setattr__(self, "points", pts)
        # Breakpoint times cached once: value()/slope() bisect against
        # them on every evaluation in the transient hot loop.
        object.__setattr__(self, "_times", tuple(t for t, _ in pts))

    def _snap(self, t: float) -> float:
        """Snap ``t`` onto an adjacent breakpoint when within an ulp.

        Transition-spot lists and evaluation times are built through
        different arithmetic, so a caller can land a relative ulp before
        a breakpoint and read the *previous* segment's slope — the same
        hazard :meth:`Pulse._snap` guards against.  ``value`` needs no
        snapping (PWL is continuous), but ``slope`` is discontinuous at
        breakpoints and must stay right-sided at its own transition
        spots.
        """
        times = self._times
        i = bisect.bisect_right(times, t)
        for j in (i - 1, i):
            if 0 <= j < len(times) and math.isclose(
                t, times[j], rel_tol=_TIME_RTOL, abs_tol=0.0
            ):
                return times[j]
        return t

    def value(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        i = bisect.bisect_right(self._times, t) - 1
        t0, v0 = pts[i]
        t1, v1 = pts[i + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def slope(self, t: float) -> float:
        pts = self.points
        t = self._snap(t)
        if t < pts[0][0] or t >= pts[-1][0]:
            return 0.0
        i = bisect.bisect_right(self._times, t) - 1
        t0, v0 = pts[i]
        t1, v1 = pts[i + 1]
        return (v1 - v0) / (t1 - t0)

    @cached_property
    def _interp_table(self):
        import numpy as np

        xp = np.array([t for t, _ in self.points])
        fp = np.array([v for _, v in self.points])
        return xp, fp

    def values_array(self, times):
        import numpy as np

        xp, fp = self._interp_table
        return np.interp(np.asarray(times, dtype=float), xp, fp)

    def scaled(self, factor: float) -> "PWL":
        f = float(factor)
        return PWL([(t, v * f) for t, v in self.points])

    def transition_spots(self, t_end: float) -> list[float]:
        spots = [0.0]
        prev_slope = 0.0
        # Slope changes can only happen at breakpoints (and the value can
        # step only via a slope change here, since PWL is continuous).
        # Breakpoints outside [0, t_end] contribute no spot, but their
        # slope change must still be tracked: a waveform whose ramp
        # starts before t=0 would otherwise compare the first in-window
        # breakpoint against the pre-ramp slope and silently skip it.
        for i, (t, _) in enumerate(self.points):
            if t > t_end:
                break
            if i + 1 < len(self.points):
                t1, v1 = self.points[i + 1]
                t0, v0 = self.points[i]
                new_slope = (v1 - v0) / (t1 - t0)
            else:
                new_slope = 0.0
            if t >= 0.0 and not math.isclose(
                new_slope, prev_slope, rel_tol=1e-12, abs_tol=0.0
            ):
                spots.append(t)
            prev_slope = new_slope
        return _dedup_sorted(sorted(spots))


@dataclass(frozen=True)
class BumpShape:
    """The pulse-shape key used to group sources (paper Fig. 3).

    Two pulse sources belong to the same group when they share the same
    ``(t_delay, t_rise, t_fall, t_width)`` tuple — their Local Transition
    Spots coincide, so a single computing node can simulate the whole group
    while generating Krylov subspaces only at those shared spots.
    """

    t_delay: float
    t_rise: float
    t_fall: float
    t_width: float

    def key(self) -> tuple[float, float, float, float]:
        """Hashable grouping key."""
        return (self.t_delay, self.t_rise, self.t_fall, self.t_width)


@dataclass(frozen=True)
class Pulse(Waveform):
    """SPICE ``PULSE(v1 v2 td tr tw tf period)`` waveform.

    The waveform starts at ``v1``, stays there until ``t_delay``, ramps to
    ``v2`` over ``t_rise``, holds for ``t_width``, ramps back over
    ``t_fall``, and (if ``t_period`` is given) repeats.

    Note the argument order follows the paper's Fig. 3 nomenclature
    ``(t_delay, t_rise, t_width, t_fall, t_period)`` rather than raw SPICE.
    """

    v1: float
    v2: float
    t_delay: float
    t_rise: float
    t_width: float
    t_fall: float
    t_period: float | None = None

    def __post_init__(self):
        if self.t_rise <= 0.0 or self.t_fall <= 0.0:
            raise ValueError("Pulse rise/fall times must be positive")
        if self.t_width < 0.0 or self.t_delay < 0.0:
            raise ValueError("Pulse delay/width must be non-negative")
        if self.t_period is not None:
            min_period = self.t_rise + self.t_width + self.t_fall
            if self.t_period < min_period:
                raise ValueError(
                    f"t_period={self.t_period} shorter than one bump "
                    f"({min_period})"
                )

    # -- single-bump geometry -------------------------------------------------

    def _snap(self, tau: float) -> float:
        """Snap ``tau`` onto an adjacent bump breakpoint.

        Transition-spot times are built as sums like ``t_delay + t_rise``
        while evaluation computes ``tau = t − t_delay``; the two can
        disagree by an ulp, which would return the *previous* segment's
        slope exactly at a breakpoint.  Snapping keeps ``slope()``
        right-sided at its own transition spots.
        """
        breakpoints = (
            0.0,
            self.t_rise,
            self.t_rise + self.t_width,
            self.t_rise + self.t_width + self.t_fall,
        )
        for bp in breakpoints:
            if math.isclose(tau, bp, rel_tol=1e-12, abs_tol=0.0):
                return bp
        return tau

    def _bump_value(self, tau: float) -> float:
        """Value of one bump, with ``tau`` measured from ``t_delay``."""
        tau = self._snap(tau)
        if tau <= 0.0:
            return self.v1
        if tau < self.t_rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.t_rise
        tau -= self.t_rise
        if tau < self.t_width:
            return self.v2
        tau -= self.t_width
        if tau < self.t_fall:
            return self.v2 + (self.v1 - self.v2) * tau / self.t_fall
        return self.v1

    def _bump_slope(self, tau: float) -> float:
        tau = self._snap(tau)
        if tau < 0.0:
            return 0.0
        if tau < self.t_rise:
            return (self.v2 - self.v1) / self.t_rise
        tau -= self.t_rise
        if tau < self.t_width:
            return 0.0
        tau -= self.t_width
        if tau < self.t_fall:
            return (self.v1 - self.v2) / self.t_fall
        return 0.0

    def _fold(self, t: float) -> float:
        """Map absolute time to bump-local time ``tau``."""
        tau = t - self.t_delay
        if self.t_period is not None and tau >= 0.0:
            tau = math.fmod(tau, self.t_period)
            # A spot time built as t_delay + k*t_period can fold to an
            # ulp *below* the period instead of 0; snap it so slope()
            # is right-sided (the next bump's rise) at periodic spots.
            if math.isclose(tau, self.t_period, rel_tol=_TIME_RTOL,
                            abs_tol=0.0):
                tau = 0.0
        return tau

    # -- Waveform interface ---------------------------------------------------

    def value(self, t: float) -> float:
        return self._bump_value(self._fold(t))

    def slope(self, t: float) -> float:
        return self._bump_slope(self._fold(t))

    @cached_property
    def _interp_table(self):
        import numpy as np

        xp = np.array([
            0.0,
            self.t_rise,
            self.t_rise + self.t_width,
            self.t_rise + self.t_width + self.t_fall,
        ])
        fp = np.array([self.v1, self.v2, self.v2, self.v1])
        return xp, fp

    def values_array(self, times):
        import numpy as np

        t = np.asarray(times, dtype=float)
        tau = t - self.t_delay
        if self.t_period is not None:
            positive = tau >= 0.0
            tau = np.where(positive, np.fmod(tau, self.t_period), tau)
        xp, fp = self._interp_table
        return np.interp(tau, xp, fp, left=self.v1, right=self.v1)

    def transition_spots(self, t_end: float) -> list[float]:
        spots = [0.0]
        bump = [0.0, self.t_rise, self.t_rise + self.t_width,
                self.t_rise + self.t_width + self.t_fall]
        k = 0
        while True:
            if self.t_period is None and k > 0:
                break
            base = self.t_delay + (k * self.t_period if self.t_period else 0.0)
            if base > t_end:
                break
            for off in bump:
                t = base + off
                if 0.0 <= t <= t_end:
                    spots.append(t)
            k += 1
        return _dedup_sorted(sorted(spots))

    def is_constant(self) -> bool:
        return self.v1 == self.v2

    def scaled(self, factor: float) -> "Pulse":
        f = float(factor)
        return Pulse(
            v1=self.v1 * f, v2=self.v2 * f,
            t_delay=self.t_delay, t_rise=self.t_rise,
            t_width=self.t_width, t_fall=self.t_fall,
            t_period=self.t_period,
        )

    # -- MATEX-specific helpers -----------------------------------------------

    def bump_shape(self) -> BumpShape:
        """Return the grouping key of this pulse (paper Fig. 3)."""
        return BumpShape(
            t_delay=self.t_delay,
            t_rise=self.t_rise,
            t_fall=self.t_fall,
            t_width=self.t_width,
        )

    def split_bumps(self, t_end: float) -> list["Pulse"]:
        """Split into single-bump pulses (paper Fig. 3 decomposition).

        Each repetition of the bump inside ``[0, t_end)`` becomes its own
        non-periodic pulse with baseline 0 and amplitude ``v2 − v1``, so

            u(t) − u(0)  =  Σ_k  bump_k(t)      for t in [0, t_end)

        (the deviation form used by the distributed scheduler).  A
        non-periodic pulse returns a single-element list.
        """
        amplitude = self.v2 - self.v1
        bumps: list[Pulse] = []
        k = 0
        while True:
            delay = self.t_delay + (
                k * self.t_period if self.t_period is not None else 0.0
            )
            if delay >= t_end:
                break
            bumps.append(
                Pulse(
                    v1=0.0, v2=amplitude,
                    t_delay=delay, t_rise=self.t_rise,
                    t_width=self.t_width, t_fall=self.t_fall,
                )
            )
            if self.t_period is None:
                break
            k += 1
        return bumps

    def to_pwl(self, t_end: float) -> PWL:
        """Expand the pulse into an equivalent PWL over ``[0, t_end]``."""
        spots = self.transition_spots(t_end)
        pts = [(t, self.value(t)) for t in spots]
        if pts[0][0] > 0.0:
            pts.insert(0, (0.0, self.value(0.0)))
        if pts[-1][0] < t_end:
            pts.append((t_end, self.value(t_end)))
        # Ensure strictly increasing times after dedup.
        out = [pts[0]]
        for t, v in pts[1:]:
            if t > out[-1][0]:
                out.append((t, v))
        return PWL(out)


def merge_transition_spots(
    spot_lists: Sequence[Sequence[float]], atol: float = 0.0
) -> list[float]:
    """Union of several transition-spot lists (the paper's GTS operator).

    Parameters
    ----------
    spot_lists:
        One list of transition spots per input source.
    atol:
        Absolute tolerance under which two spots are considered identical.
    """
    merged: list[float] = sorted(t for spots in spot_lists for t in spots)
    if not merged:
        return [0.0]
    return _dedup_sorted(merged, atol=atol)
