"""SPICE-subset netlist parser (IBM power-grid benchmark dialect).

The IBM power grid benchmarks (Nassif, ASPDAC'08) that the paper evaluates
on are distributed as flat SPICE decks containing only ``R``, ``C``, ``L``,
``V`` and ``I`` cards plus ``.op``/``.tran``/``.end`` control lines.  This
module parses that dialect (and enough general SPICE to be useful):

* engineering suffixes (``1k``, ``2.2u``, ``3MEG``, ``10p`` ...),
* ``PULSE(v1 v2 td tr tf pw per)``  — note SPICE parameter order,
* ``PWL(t1 v1 t2 v2 ...)``,
* bare numeric value → DC source,
* ``*`` comments, blank lines, case-insensitive cards,
* continuation lines starting with ``+``.

The parser returns a :class:`repro.circuit.netlist.Netlist`; pair it with
:func:`repro.circuit.mna.assemble` to obtain matrices.  The inverse
operation lives in :mod:`repro.circuit.writer`.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator

from repro.circuit.netlist import Netlist, NetlistError
from repro.circuit.waveforms import DC, PWL, Pulse, Waveform

__all__ = [
    "ParseError",
    "is_title_line",
    "iter_logical_cards",
    "parse_netlist",
    "parse_file",
    "parse_value",
    "parse_waveform",
]


class ParseError(ValueError):
    """Raised on malformed netlist text, with 1-based line numbers."""


#: SPICE engineering suffixes, longest match first (``meg`` before ``m``).
_SUFFIXES = [
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
]

_NUM_RE = re.compile(
    r"^([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)([a-zA-Z]*)$"
)


def parse_value(token: str) -> float:
    """Parse a SPICE numeric token with optional engineering suffix.

    >>> parse_value("4.7k")
    4700.0
    >>> parse_value("10p")
    1e-11
    """
    m = _NUM_RE.match(token.strip())
    if not m:
        raise ValueError(f"not a SPICE number: {token!r}")
    base = float(m.group(1))
    suffix = m.group(2).lower()
    if not suffix:
        return base
    for s, mult in _SUFFIXES:
        if suffix.startswith(s):
            return base * mult
    # Unknown trailing letters (e.g. unit names like "ohm") are ignored,
    # which matches SPICE behaviour.
    return base


def iter_logical_cards(lines: Iterable[str]) -> Iterator[tuple[int, str]]:
    """Stream ``(line_number, merged_card)`` pairs from netlist source.

    Blank lines and ``*`` comments are dropped; ``+`` continuation lines
    are folded into the preceding card.  At most one pending card is
    held, so the stream costs O(1) memory regardless of deck size —
    this single generator defines the card dialect for **both** the
    in-memory parser and the streaming ingester
    (:mod:`repro.circuit.ingest`); their bit-identical round-trip
    guarantee depends on agreeing card-for-card.
    """
    pending: tuple[int, list[str]] | None = None
    for lineno, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if pending is None:
                raise ParseError(f"line {lineno}: continuation without a card")
            pending[1].append(stripped[1:].strip())
        else:
            if pending is not None:
                yield pending[0], " ".join(pending[1])
            pending = (lineno, [stripped])
    if pending is not None:
        yield pending[0], " ".join(pending[1])


def is_title_line(line: str) -> bool:
    """SPICE convention: a first line that is no recognisable card.

    Shared by both parsers for the same reason as
    :func:`iter_logical_cards`.
    """
    head = line.split(None, 1)[0].lower()
    return head[0] not in "rclvi." or len(line.split(None, 3)) < 3


_FUNC_RE = re.compile(r"(pulse|pwl)\s*\(([^)]*)\)", re.IGNORECASE)


def parse_waveform(spec: str, lineno: int = 0) -> Waveform:
    """Parse the source-value portion of a V/I card.

    Shared by the in-memory parser and the streaming ingester
    (:mod:`repro.circuit.ingest`); ``lineno`` only decorates errors.
    """
    spec = spec.strip()
    m = _FUNC_RE.search(spec)
    if m is None:
        # Possibly "DC <val>" or a bare number.
        tokens = spec.split()
        if tokens and tokens[0].lower() == "dc":
            tokens = tokens[1:]
        if len(tokens) != 1:
            raise ParseError(
                f"line {lineno}: cannot parse source value {spec!r}"
            )
        return DC(parse_value(tokens[0]))

    kind = m.group(1).lower()
    args = [parse_value(tok) for tok in m.group(2).replace(",", " ").split()]
    if kind == "pulse":
        if len(args) < 2:
            raise ParseError(f"line {lineno}: PULSE needs at least v1 v2")
        # SPICE order: v1 v2 td tr tf pw per
        defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 0.0, None]
        full = list(args) + defaults[len(args):]
        v1, v2, td, tr, tf, pw = full[:6]
        per = full[6]
        return Pulse(
            v1=v1, v2=v2, t_delay=td, t_rise=tr or 1e-12,
            t_width=pw, t_fall=tf or 1e-12,
            t_period=per if per else None,
        )
    # PWL
    if len(args) < 2 or len(args) % 2 != 0:
        raise ParseError(f"line {lineno}: PWL needs t/v pairs")
    pts = list(zip(args[0::2], args[1::2]))
    if pts[0][0] > 0.0:
        pts.insert(0, (0.0, pts[0][1]))
    return PWL(pts)


def parse_netlist(text: str, title: str = "netlist") -> Netlist:
    """Parse netlist source text into a :class:`Netlist`.

    The first line is treated as the title if it is not a recognisable
    card (SPICE convention).  ``.``-directives are accepted and ignored
    except ``.end``, which stops parsing.
    """
    netlist = Netlist(title=title)
    merged = list(iter_logical_cards(text.splitlines()))

    start = 0
    if merged and is_title_line(merged[0][1]):
        netlist.title = merged[0][1]
        start = 1

    for lineno, line in merged[start:]:
        head = line.split()[0]
        kind = head[0].lower()
        if kind == ".":
            if head.lower() == ".end":
                break
            continue  # .op / .tran / .print etc. — tolerated, ignored
        tokens = line.split(None, 3)
        if len(tokens) < 4:
            raise ParseError(f"line {lineno}: malformed card {line!r}")
        name, pos, neg, rest = tokens
        try:
            if kind == "r":
                netlist.add_resistor(name, pos, neg, parse_value(rest.split()[0]))
            elif kind == "c":
                netlist.add_capacitor(name, pos, neg, parse_value(rest.split()[0]))
            elif kind == "l":
                netlist.add_inductor(name, pos, neg, parse_value(rest.split()[0]))
            elif kind == "v":
                netlist.add_voltage_source(name, pos, neg, parse_waveform(rest, lineno))
            elif kind == "i":
                netlist.add_current_source(name, pos, neg, parse_waveform(rest, lineno))
            else:
                raise ParseError(
                    f"line {lineno}: unsupported element type {head!r} "
                    f"(only R, C, L, V, I are in the PDN dialect)"
                )
        except (ValueError, NetlistError) as exc:
            if isinstance(exc, ParseError):
                raise
            raise ParseError(f"line {lineno}: {exc}") from exc
    return netlist


def parse_file(path: str | Path) -> Netlist:
    """Parse a netlist file; the filename stem becomes the default title."""
    path = Path(path)
    with open(path) as f:
        text = f.read()
    return parse_netlist(text, title=path.stem)
