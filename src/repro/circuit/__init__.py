"""Circuit substrate: waveforms, elements, netlists, MNA, SPICE I/O."""

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.mna import MNASystem, assemble
from repro.circuit.netlist import Netlist, NetlistError
from repro.circuit.parser import ParseError, parse_file, parse_netlist, parse_value
from repro.circuit.regularize import RegularizedSystem, regularize
from repro.circuit.waveforms import (
    DC,
    PWL,
    BumpShape,
    Pulse,
    Waveform,
    merge_transition_spots,
)
from repro.circuit.writer import format_netlist, write_file

__all__ = [
    "BumpShape",
    "Capacitor",
    "CurrentSource",
    "DC",
    "Element",
    "Inductor",
    "MNASystem",
    "Netlist",
    "NetlistError",
    "PWL",
    "ParseError",
    "Pulse",
    "RegularizedSystem",
    "Resistor",
    "VoltageSource",
    "Waveform",
    "assemble",
    "regularize",
    "format_netlist",
    "merge_transition_spots",
    "parse_file",
    "parse_netlist",
    "parse_value",
    "write_file",
]
