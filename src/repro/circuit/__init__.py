"""Circuit substrate: waveforms, elements, netlists, MNA, SPICE I/O."""

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.ingest import (
    IngestError,
    IngestResult,
    IngestStats,
    ingest_file,
    ingest_text,
)
from repro.circuit.mna import MNASystem, assemble
from repro.circuit.netlist import Netlist, NetlistError, StreamedNetlist
from repro.circuit.parser import (
    ParseError,
    parse_file,
    parse_netlist,
    parse_value,
    parse_waveform,
)
from repro.circuit.regularize import RegularizedSystem, regularize
from repro.circuit.waveforms import (
    DC,
    PWL,
    BumpShape,
    Pulse,
    Waveform,
    merge_transition_spots,
)
from repro.circuit.writer import format_netlist, iter_cards, write_file

__all__ = [
    "BumpShape",
    "Capacitor",
    "CurrentSource",
    "DC",
    "Element",
    "Inductor",
    "IngestError",
    "IngestResult",
    "IngestStats",
    "MNASystem",
    "Netlist",
    "NetlistError",
    "PWL",
    "StreamedNetlist",
    "ParseError",
    "Pulse",
    "RegularizedSystem",
    "Resistor",
    "VoltageSource",
    "Waveform",
    "assemble",
    "regularize",
    "format_netlist",
    "ingest_file",
    "ingest_text",
    "iter_cards",
    "merge_transition_spots",
    "parse_file",
    "parse_netlist",
    "parse_value",
    "parse_waveform",
    "write_file",
]
