"""Memory-bounded streaming ingestion of ibmpg-style SPICE decks.

The IBM power grid transient benchmarks the paper evaluates on are flat
SPICE files with hundreds of thousands of R/C/L/I/V cards.  Routing them
through :func:`repro.circuit.parser.parse_file` would materialise one
:class:`~repro.circuit.elements.Element` dataclass per card plus the
:class:`~repro.circuit.netlist.Netlist` bookkeeping around them — for a
400k-card deck that is hundreds of MB of Python objects built only to be
walked once by the stamper and thrown away.

This module is the industrial-scale path: a **two-pass streaming
parser** that goes from file to assembled :class:`MNASystem` without a
per-element object list.

* **Pass 1** (:func:`_scan`) streams the card lines once, interning node
  names into a ``{name: row}`` map in first-appearance order (pos before
  neg, ground excluded — byte-for-byte the assignment
  :meth:`Netlist._register_node` would produce over the same card
  sequence) and counting cards per element type.
* **Pass 2** (:func:`_stamp`) preallocates exact-capacity COO triplet
  blocks from those counts and streams the file again, stamping ``G``,
  ``C`` and ``B`` entries directly into the arrays.  Blocks are kept per
  element type and concatenated in the same order
  :func:`repro.circuit.mna.assemble` emits its stamps (resistors,
  voltage sources, inductors for ``G``; capacitors, inductors for ``C``;
  current then voltage sources for ``B``), so the triplet *sequence* —
  and therefore the duplicate-summation order inside
  ``coo_matrix.tocsc`` — is identical to the in-memory path.

Consequently a deck written in element **insertion order**
(``write_file(..., order="insertion")``) round-trips to an
:class:`MNASystem` whose matrices are **bit-identical** to
``assemble(netlist)``; the streamed system drops into the existing
``decomposition`` → ``dist`` pipeline untouched (it carries a
:class:`~repro.circuit.netlist.StreamedNetlist` node view instead of a
full :class:`Netlist`).

Memory stays bounded by the *result* size (node map + matrix triplets +
one waveform object per source), never by the card count: peak RSS for
a 100k-node deck is dominated by the CSC matrices themselves (the
``bench_ingest`` benchmark records it).  The one per-card structure kept
is a set of element names for duplicate detection — same asymptotic
size as the triplet arrays, and the same malformed decks are rejected
as in the object path.

Dialect (the ibmpg subset plus what the in-memory parser accepts):
``R``/``C``/``L``/``I``/``V`` cards, ``_X_Y``-style node names, ``*``
comments, blank lines, ``+`` continuation lines, engineering suffixes,
``DC``/``PULSE(...)``/``PWL(...)`` source specs, ``.tran`` (captured as
the suggested horizon), other ``.``-directives tolerated and ignored,
``.end`` stops parsing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.circuit.elements import GROUND_NAMES
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import NetlistError, StreamedNetlist
from repro.circuit.parser import (
    ParseError,
    is_title_line,
    iter_logical_cards,
    parse_value,
    parse_waveform,
)
from repro.circuit.waveforms import Waveform

__all__ = ["IngestError", "IngestResult", "IngestStats", "ingest_file", "ingest_text"]

_KINDS = ("r", "c", "l", "v", "i")


class IngestError(ParseError):
    """Raised on malformed streamed netlist text (1-based line numbers)."""


@dataclass
class IngestStats:
    """Size and timing record of one streamed ingestion."""

    n_cards: int = 0
    n_nodes: int = 0
    n_resistors: int = 0
    n_capacitors: int = 0
    n_inductors: int = 0
    n_vsources: int = 0
    n_isources: int = 0
    dim: int = 0
    nnz_g: int = 0
    nnz_c: int = 0
    tran_step: float | None = None
    tran_stop: float | None = None
    scan_seconds: float = 0.0
    stamp_seconds: float = 0.0

    @property
    def parse_seconds(self) -> float:
        """Total wall time of both streaming passes."""
        return self.scan_seconds + self.stamp_seconds

    def summary(self) -> str:
        """One-line ingest report for CLI output."""
        return (
            f"ingested {self.n_cards} cards -> {self.n_nodes} nodes "
            f"(dim {self.dim}, nnz G={self.nnz_g} C={self.nnz_c}) "
            f"in {self.parse_seconds:.2f}s "
            f"(scan {self.scan_seconds:.2f}s, stamp {self.stamp_seconds:.2f}s)"
        )


@dataclass
class IngestResult:
    """The assembled system plus the ingestion statistics."""

    system: MNASystem
    stats: IngestStats


# -- pass 1: scan ------------------------------------------------------------------


@dataclass
class _Scan:
    """Everything pass 2 needs to preallocate and stamp."""

    title: str
    node_order: list[str]
    node_index: dict[str, int]
    counts: dict[str, int]
    n_cards: int
    tran_step: float | None
    tran_stop: float | None


def _scan(lines: Iterable[str], default_title: str) -> _Scan:
    node_index: dict[str, int] = {}
    node_order: list[str] = []
    counts = dict.fromkeys(_KINDS, 0)
    seen_names: set[str] = set()
    title = default_title
    tran_step: float | None = None
    tran_stop: float | None = None
    n_cards = 0
    first = True

    for lineno, line in iter_logical_cards(lines):
        if first:
            first = False
            if is_title_line(line):
                title = line
                continue
        parts = line.split(None, 3)  # one tokenization per card
        head = parts[0]
        kind = head[0].lower()
        if kind == ".":
            directive = head.lower()
            if directive == ".end":
                break
            if directive == ".tran":
                args = line.split()[1:]
                try:
                    if len(args) >= 2:
                        tran_step = parse_value(args[0])
                        tran_stop = parse_value(args[1])
                    elif len(args) == 1:
                        tran_stop = parse_value(args[0])
                except ValueError as exc:
                    raise IngestError(f"line {lineno}: {exc}") from exc
            continue  # other directives tolerated, ignored
        if kind not in _KINDS:
            raise IngestError(
                f"line {lineno}: unsupported element type {head!r} "
                f"(only R, C, L, V, I are in the PDN dialect)"
            )
        if len(parts) < 4:
            raise IngestError(f"line {lineno}: malformed card {line!r}")
        name, pos, neg = parts[0], parts[1], parts[2]
        if name in seen_names:
            raise IngestError(f"line {lineno}: duplicate element name {name!r}")
        seen_names.add(name)
        grounded = 0
        for node in (pos, neg):
            if node in GROUND_NAMES:
                grounded += 1
            elif node not in node_index:
                node_index[node] = len(node_index)
                node_order.append(node)
        if grounded == 2:
            raise IngestError(
                f"line {lineno}: element {name!r} has both terminals grounded"
            )
        counts[kind] += 1
        n_cards += 1

    return _Scan(
        title=title,
        node_order=node_order,
        node_index=node_index,
        counts=counts,
        n_cards=n_cards,
        tran_step=tran_step,
        tran_stop=tran_stop,
    )


# -- pass 2: stamp -----------------------------------------------------------------


class _TripletBlock:
    """Preallocated COO triplet buffer with ground-row skipping.

    The exact-capacity arrays are sized from the pass-1 counts (4 stamps
    per two-terminal element is the worst case; grounded terminals stamp
    fewer), so pass 2 performs no list growth and no per-stamp object
    allocation.
    """

    __slots__ = ("rows", "cols", "vals", "n")

    def __init__(self, capacity: int):
        self.rows = np.empty(capacity, dtype=np.int64)
        self.cols = np.empty(capacity, dtype=np.int64)
        self.vals = np.empty(capacity, dtype=np.float64)
        self.n = 0

    def add(self, i: int, j: int, v: float) -> None:
        """Stamp ``v`` at ``(i, j)``; silently skips ground rows (-1)."""
        if i < 0 or j < 0:
            return
        n = self.n
        self.rows[n] = i
        self.cols[n] = j
        self.vals[n] = v
        self.n = n + 1

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.rows[: self.n], self.cols[: self.n], self.vals[: self.n]


def _build(blocks: list[_TripletBlock], dim: int, n_cols: int) -> sp.csc_matrix:
    """Concatenate triplet blocks (in stamp order) into one CSC matrix.

    The concatenation order is the single thing that keeps duplicate
    summation inside ``tocsc`` bit-identical to the in-memory
    ``_Stamper``: both paths hand scipy the same triplet sequence.
    """
    parts = [b.arrays() for b in blocks]
    rows = np.concatenate([p[0] for p in parts])
    cols = np.concatenate([p[1] for p in parts])
    vals = np.concatenate([p[2] for p in parts])
    m = sp.coo_matrix((vals, (rows, cols)), shape=(dim, n_cols), dtype=float)
    return m.tocsc()


class _GroundDsu:
    """Union-find over interned node rows (slot ``n`` is ground).

    Replaces :meth:`Netlist._check_dc_connectivity`'s string-keyed BFS
    with integer path-halving so validating a 100k-node deck costs
    milliseconds, not a dict-of-sets the size of the circuit.
    """

    __slots__ = ("parent",)

    def __init__(self, n_nodes: int):
        self.parent = list(range(n_nodes + 1))

    def find(self, a: int) -> int:
        parent = self.parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _positive(value: float, what: str, name: str, lineno: int) -> float:
    if value <= 0.0:
        raise IngestError(
            f"line {lineno}: {what} {name!r}: value must be positive, "
            f"got {value!r}"
        )
    return value


def _stamp(
    lines: Iterable[str], scan: _Scan, validate: bool
) -> tuple[MNASystem, IngestStats]:
    counts = scan.counts
    n_nodes = len(scan.node_order)
    n_vsrc, n_ind, n_currents = counts["v"], counts["l"], counts["i"]
    dim = n_nodes + n_vsrc + n_ind

    if validate:
        if scan.n_cards == 0:
            raise NetlistError("empty netlist")
        if n_nodes == 0:
            raise NetlistError("netlist has no non-ground nodes")

    # One block per (matrix, element type), concatenated later in
    # assemble()'s stamp order.
    g_res = _TripletBlock(4 * counts["r"])
    g_vsrc = _TripletBlock(4 * n_vsrc)
    g_ind = _TripletBlock(4 * n_ind)
    c_cap = _TripletBlock(4 * counts["c"])
    c_ind = _TripletBlock(n_ind)
    b_cur = _TripletBlock(2 * n_currents)
    b_vsrc = _TripletBlock(n_vsrc)

    wave_cur: list[Waveform] = []
    wave_vsrc: list[Waveform] = []

    node_index = scan.node_index
    ground = n_nodes
    dsu = _GroundDsu(n_nodes) if validate else None

    k_vsrc = k_ind = 0
    first = True
    for lineno, line in iter_logical_cards(lines):
        if first:
            first = False
            if is_title_line(line):
                continue
        parts = line.split(None, 3)  # one tokenization per card
        head = parts[0]
        kind = head[0].lower()
        if kind == ".":
            if head.lower() == ".end":
                break
            continue
        name, pos, neg, rest = parts  # 4-token shape checked in pass 1
        i = -1 if pos in GROUND_NAMES else node_index[pos]
        j = -1 if neg in GROUND_NAMES else node_index[neg]
        try:
            if kind == "r":
                cond = 1.0 / _positive(
                    parse_value(rest.split(None, 1)[0]), "resistor", name, lineno
                )
                g_res.add(i, i, cond)
                g_res.add(j, j, cond)
                g_res.add(i, j, -cond)
                g_res.add(j, i, -cond)
                if dsu is not None:
                    dsu.union(i if i >= 0 else ground, j if j >= 0 else ground)
            elif kind == "c":
                cap = _positive(
                    parse_value(rest.split(None, 1)[0]), "capacitor", name, lineno
                )
                c_cap.add(i, i, cap)
                c_cap.add(j, j, cap)
                c_cap.add(i, j, -cap)
                c_cap.add(j, i, -cap)
            elif kind == "l":
                ind = _positive(
                    parse_value(rest.split(None, 1)[0]), "inductor", name, lineno
                )
                row = n_nodes + n_vsrc + k_ind
                g_ind.add(i, row, +1.0)
                g_ind.add(j, row, -1.0)
                g_ind.add(row, i, +1.0)
                g_ind.add(row, j, -1.0)
                c_ind.add(row, row, -ind)
                k_ind += 1
                if dsu is not None:
                    dsu.union(i if i >= 0 else ground, j if j >= 0 else ground)
            elif kind == "v":
                row = n_nodes + k_vsrc
                g_vsrc.add(i, row, +1.0)
                g_vsrc.add(j, row, -1.0)
                g_vsrc.add(row, i, +1.0)
                g_vsrc.add(row, j, -1.0)
                b_vsrc.add(row, n_currents + k_vsrc, 1.0)
                wave_vsrc.append(parse_waveform(rest, lineno))
                k_vsrc += 1
                if dsu is not None:
                    dsu.union(i if i >= 0 else ground, j if j >= 0 else ground)
            else:  # kind == "i"
                col = len(wave_cur)
                b_cur.add(i, col, -1.0)
                b_cur.add(j, col, +1.0)
                wave_cur.append(parse_waveform(rest, lineno))
        except ParseError:
            raise
        except (ValueError, ZeroDivisionError) as exc:
            raise IngestError(f"line {lineno}: {exc}") from exc

    if dsu is not None:
        root = dsu.find(ground)
        floating = [
            name
            for idx, name in enumerate(scan.node_order)
            if dsu.find(idx) != root
        ]
        if floating:
            raise NetlistError(
                f"{len(floating)} node(s) have no DC path to ground, "
                f"e.g. {floating[:5]!r}; G would be singular"
            )

    netlist = StreamedNetlist(
        title=scan.title,
        node_order=scan.node_order,
        node_index=scan.node_index,
        counts=scan.counts,
    )
    G = _build([g_res, g_vsrc, g_ind], dim, dim)
    C = _build([c_cap, c_ind], dim, dim)
    B = _build([b_cur, b_vsrc], dim, n_currents + n_vsrc)
    system = MNASystem(
        netlist=netlist,
        C=C,
        G=G,
        B=B,
        waveforms=tuple(wave_cur + wave_vsrc),
        n_current_inputs=n_currents,
    )
    stats = IngestStats(
        n_cards=scan.n_cards,
        n_nodes=n_nodes,
        n_resistors=counts["r"],
        n_capacitors=counts["c"],
        n_inductors=counts["l"],
        n_vsources=n_vsrc,
        n_isources=n_currents,
        dim=dim,
        nnz_g=G.nnz,
        nnz_c=C.nnz,
        tran_step=scan.tran_step,
        tran_stop=scan.tran_stop,
    )
    return system, stats


# -- public API --------------------------------------------------------------------


def ingest_file(
    path: str | Path, title: str | None = None, validate: bool = True
) -> IngestResult:
    """Stream an ibmpg-style SPICE deck into an :class:`MNASystem`.

    Parameters
    ----------
    path:
        The netlist file; it is read twice (scan pass, stamp pass) with
        a bounded line buffer — the text is never held in memory.
    title:
        Default circuit title when the deck has no title line
        (defaults to the filename stem, matching ``parse_file``).
    validate:
        When true (default), reject empty decks and nodes without a DC
        path to ground, exactly like :meth:`Netlist.validate` — but via
        an integer union-find instead of a string-keyed BFS.

    Returns
    -------
    IngestResult
        ``result.system`` is ready for the MNA → decomposition → dist
        pipeline; ``result.stats`` records sizes, the deck's ``.tran``
        horizon (if any) and per-pass wall times.
    """
    path = Path(path)
    default_title = title if title is not None else path.stem

    t0 = time.perf_counter()
    with open(path, buffering=1 << 20) as f:
        scan = _scan(f, default_title)
    t1 = time.perf_counter()
    with open(path, buffering=1 << 20) as f:
        system, stats = _stamp(f, scan, validate)
    t2 = time.perf_counter()
    stats.scan_seconds = t1 - t0
    stats.stamp_seconds = t2 - t1
    return IngestResult(system=system, stats=stats)


def ingest_text(
    text: str, title: str = "netlist", validate: bool = True
) -> IngestResult:
    """Ingest netlist source held in memory (tests, generated decks).

    Uses the same two-pass streaming machinery as :func:`ingest_file`;
    for large decks prefer the file variant, which never materialises
    the text.
    """
    lines = text.splitlines()
    t0 = time.perf_counter()
    scan = _scan(lines, title)
    t1 = time.perf_counter()
    system, stats = _stamp(lines, scan, validate)
    t2 = time.perf_counter()
    stats.scan_seconds = t1 - t0
    stats.stamp_seconds = t2 - t1
    return IngestResult(system=system, stats=stats)
