"""MNA regularization: eliminate algebraic variables from singular ``C``.

The paper (Secs. 2.4, 3.3.3) points out that MEXP — the standard Krylov
method — must factor ``C``, so on typical PDN netlists (voltage-source
branch rows and capacitor-free nodes make ``C`` singular) it first needs
the "practical regularization technique" of Chen, Weng & Cheng (IEEE
TCAD 31(7), 2012) — the paper's reference [3].  MATEX's spectral
transforms avoid this entirely, but to make the comparison complete this
module implements the technique.

Split the unknowns by whether their ``C`` row/column carries dynamics::

    [Cd 0] [xd]'   = - [G11 G12] [xd] + [Bd] u
    [0  0] [xa]        [G21 G22] [xa]   [Ba]

The algebraic block gives ``xa = G22⁻¹ (Ba u − G21 xd)``; substituting
into the dynamic block yields the regularized ODE system

    Cd xd' = -(G11 − G12 G22⁻¹ G21) xd + (Bd − G12 G22⁻¹ Ba) u

with non-singular ``Cd`` — exactly what MEXP (or forward Euler, or the
dense oracle) needs.  :class:`RegularizedSystem` keeps the recovery map
so full-state trajectories can be reconstructed.

The Schur complement ``G12 G22⁻¹ G21`` is formed explicitly; it is dense
in general, so this is intended for the moderate sizes where one would
actually run MEXP — the paper's point being precisely that this cost is
avoidable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.circuit.mna import MNASystem
from repro.linalg.lu import SparseLU

__all__ = ["RegularizedSystem", "regularize"]

#: Entries below this (relative to the largest |C| entry) count as zero.
_ZERO_ROW_RTOL = 1e-300


@dataclass
class RegularizedSystem:
    """A reduced non-singular-``C`` system plus the state recovery map.

    Attributes
    ----------
    system:
        The reduced :class:`~repro.circuit.mna.MNASystem`-like triple is
        exposed as ``Cd``, ``Gd``, ``Bd`` (the netlist is shared for
        node bookkeeping; dynamic row order is recorded separately).
    dynamic_index:
        Original state indices kept as dynamic unknowns (``xd``).
    algebraic_index:
        Original state indices eliminated (``xa``).
    """

    source: MNASystem
    Cd: sp.csc_matrix
    Gd: np.ndarray
    Bd: np.ndarray
    dynamic_index: np.ndarray
    algebraic_index: np.ndarray
    _lu_g22: SparseLU
    _g21: sp.csc_matrix
    _ba: np.ndarray

    @property
    def dim(self) -> int:
        """Number of dynamic unknowns."""
        return len(self.dynamic_index)

    def reduce_state(self, x_full: np.ndarray) -> np.ndarray:
        """Project a full state onto the dynamic unknowns."""
        return np.asarray(x_full, dtype=float)[self.dynamic_index]

    def expand_state(self, xd: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Recover the full MNA state from ``xd`` and the input vector.

        Solves the algebraic constraint ``G22 xa = Ba u − G21 xd``.
        """
        xd = np.asarray(xd, dtype=float)
        full = np.empty(self.source.dim)
        full[self.dynamic_index] = xd
        if len(self.algebraic_index):
            rhs = self._ba @ np.asarray(u, dtype=float) - self._g21 @ xd
            full[self.algebraic_index] = self._lu_g22.solve(rhs)
        return full

    def bu_reduced(self, t: float) -> np.ndarray:
        """The reduced input term ``(Bd − G12 G22⁻¹ Ba) u(t)``."""
        return self.Bd @ self.source.input_vector(t)


def regularize(system: MNASystem) -> RegularizedSystem:
    """Eliminate the algebraic unknowns of a singular-``C`` MNA system.

    Parameters
    ----------
    system:
        Assembled descriptor system.  Systems whose ``C`` is already
        non-singular are returned with an empty algebraic block (the
        reduction is then the identity).

    Returns
    -------
    RegularizedSystem

    Raises
    ------
    repro.linalg.lu.FactorizationError
        If the algebraic block ``G22`` is singular — the netlist then
        has a genuinely ill-posed constraint (e.g. a voltage-source
        loop), not just a singular ``C``.
    """
    c = system.C.tocsr()
    # A row is algebraic when it carries no capacitive/inductive stamp.
    row_nnz = np.diff(c.indptr)
    dynamic_mask = row_nnz > 0
    dynamic_index = np.flatnonzero(dynamic_mask)
    algebraic_index = np.flatnonzero(~dynamic_mask)

    g = system.G.tocsc()
    b = system.B.tocsc()

    cd = system.C[dynamic_index][:, dynamic_index].tocsc()
    g11 = g[dynamic_index][:, dynamic_index]
    g12 = g[dynamic_index][:, algebraic_index]
    g21 = g[algebraic_index][:, dynamic_index].tocsc()
    g22 = g[algebraic_index][:, algebraic_index].tocsc()
    bd = np.asarray(b[dynamic_index].todense())
    ba = np.asarray(b[algebraic_index].todense())

    if len(algebraic_index) == 0:
        return RegularizedSystem(
            source=system,
            Cd=cd,
            Gd=np.asarray(g11.todense()),
            Bd=bd,
            dynamic_index=dynamic_index,
            algebraic_index=algebraic_index,
            _lu_g22=None,
            _g21=g21,
            _ba=ba,
        )

    lu_g22 = SparseLU(g22, label="G22")
    # Schur complement: G11 - G12 G22^{-1} G21  (dense result).
    g22_inv_g21 = lu_g22.solve_many(np.asarray(g21.todense()))
    g22_inv_ba = lu_g22.solve_many(ba) if ba.size else ba
    gd = np.asarray(g11.todense()) - np.asarray(g12.todense()) @ g22_inv_g21
    bd_red = bd - np.asarray(g12.todense()) @ g22_inv_ba

    return RegularizedSystem(
        source=system,
        Cd=cd,
        Gd=gd,
        Bd=bd_red,
        dynamic_index=dynamic_index,
        algebraic_index=algebraic_index,
        _lu_g22=lu_g22,
        _g21=g21,
        _ba=ba,
    )
