"""Netlist container: the in-memory circuit description.

A :class:`Netlist` collects elements, assigns matrix indices to nodes and
MNA branch unknowns, and offers the convenience constructors used by the
generators in :mod:`repro.pdn` and the parser in
:mod:`repro.circuit.parser`.

Index layout (fixed, relied upon by :mod:`repro.circuit.mna`):

* rows ``0 .. n_nodes-1``     — node voltages (ground excluded),
* next ``n_vsrc`` rows        — voltage-source branch currents,
* next ``n_ind`` rows         — inductor branch currents.

Element and node insertion order is deterministic, so two identically
built netlists produce identical matrices (important for superposition
tests and the distributed scheduler, which ships netlist copies to nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.circuit.elements import (
    GROUND_NAMES,
    Capacitor,
    CurrentSource,
    Element,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.waveforms import DC, Waveform

__all__ = ["Netlist", "NetlistError", "StreamedNetlist"]


class NetlistError(ValueError):
    """Raised for malformed circuit descriptions."""


def _is_ground(node: str) -> bool:
    return node in GROUND_NAMES


@dataclass(frozen=True)
class _Unknowns:
    """Sizes of the MNA unknown blocks."""

    n_nodes: int
    n_vsrc: int
    n_ind: int

    @property
    def dim(self) -> int:
        return self.n_nodes + self.n_vsrc + self.n_ind


class Netlist:
    """A linear circuit: elements plus deterministic index assignment.

    Parameters
    ----------
    title:
        Free-form circuit name used in reports and netlist files.
    """

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._elements: dict[str, Element] = {}
        self._node_index: dict[str, int] = {}
        self._resistors: list[Resistor] = []
        self._capacitors: list[Capacitor] = []
        self._inductors: list[Inductor] = []
        self._vsources: list[VoltageSource] = []
        self._isources: list[CurrentSource] = []

    # -- construction ----------------------------------------------------------

    def _register_node(self, node: str) -> None:
        if not node:
            raise NetlistError("empty node name")
        if _is_ground(node):
            return
        if node not in self._node_index:
            self._node_index[node] = len(self._node_index)

    def _add(self, element: Element) -> None:
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        if _is_ground(element.pos) and _is_ground(element.neg):
            raise NetlistError(
                f"element {element.name!r} has both terminals grounded"
            )
        self._register_node(element.pos)
        self._register_node(element.neg)
        self._elements[element.name] = element

    def add_resistor(self, name: str, pos: str, neg: str, resistance: float) -> Resistor:
        """Add a resistor and return it."""
        r = Resistor(name, pos, neg, resistance)
        self._add(r)
        self._resistors.append(r)
        return r

    def add_capacitor(self, name: str, pos: str, neg: str, capacitance: float) -> Capacitor:
        """Add a capacitor and return it."""
        c = Capacitor(name, pos, neg, capacitance)
        self._add(c)
        self._capacitors.append(c)
        return c

    def add_inductor(self, name: str, pos: str, neg: str, inductance: float) -> Inductor:
        """Add an inductor and return it."""
        ind = Inductor(name, pos, neg, inductance)
        self._add(ind)
        self._inductors.append(ind)
        return ind

    def add_voltage_source(
        self, name: str, pos: str, neg: str, waveform: Waveform | float
    ) -> VoltageSource:
        """Add a voltage source; a bare float means a DC source."""
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        v = VoltageSource(name, pos, neg, waveform)
        self._add(v)
        self._vsources.append(v)
        return v

    def add_current_source(
        self, name: str, pos: str, neg: str, waveform: Waveform | float
    ) -> CurrentSource:
        """Add a current source; a bare float means a DC source."""
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        i = CurrentSource(name, pos, neg, waveform)
        self._add(i)
        self._isources.append(i)
        return i

    # -- accessors ---------------------------------------------------------------

    @property
    def resistors(self) -> tuple[Resistor, ...]:
        return tuple(self._resistors)

    @property
    def capacitors(self) -> tuple[Capacitor, ...]:
        return tuple(self._capacitors)

    @property
    def inductors(self) -> tuple[Inductor, ...]:
        return tuple(self._inductors)

    @property
    def voltage_sources(self) -> tuple[VoltageSource, ...]:
        return tuple(self._vsources)

    @property
    def current_sources(self) -> tuple[CurrentSource, ...]:
        return tuple(self._isources)

    def elements(self) -> Iterator[Element]:
        """Iterate over all elements in insertion order."""
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __getitem__(self, name: str) -> Element:
        return self._elements[name]

    # -- index assignment ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_index)

    @property
    def unknowns(self) -> _Unknowns:
        """Block sizes of the MNA unknown vector."""
        return _Unknowns(
            n_nodes=self.n_nodes,
            n_vsrc=len(self._vsources),
            n_ind=len(self._inductors),
        )

    @property
    def dim(self) -> int:
        """Total MNA system dimension."""
        return self.unknowns.dim

    def node_index(self, node: str) -> int:
        """Matrix row of a node voltage; ``-1`` for ground."""
        if _is_ground(node):
            return -1
        try:
            return self._node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def node_names(self) -> tuple[str, ...]:
        """Non-ground node names in index order."""
        return tuple(self._node_index)

    def vsource_index(self, name: str) -> int:
        """Matrix row of a voltage-source branch current."""
        for k, v in enumerate(self._vsources):
            if v.name == name:
                return self.n_nodes + k
        raise NetlistError(f"unknown voltage source {name!r}")

    def inductor_index(self, name: str) -> int:
        """Matrix row of an inductor branch current."""
        for k, ind in enumerate(self._inductors):
            if ind.name == name:
                return self.n_nodes + len(self._vsources) + k
        raise NetlistError(f"unknown inductor {name!r}")

    # -- validation ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`NetlistError`.

        Detects empty circuits and nodes with no DC path to ground through
        resistive/source elements (which make ``G`` singular and break the
        regularization-free formulation of paper Sec. 3.3.3).
        """
        if not self._elements:
            raise NetlistError("empty netlist")
        if not any(True for _ in self._node_index):
            raise NetlistError("netlist has no non-ground nodes")
        self._check_dc_connectivity()

    def _check_dc_connectivity(self) -> None:
        """Every node must reach ground through R/L/V elements."""
        adjacency: dict[str, set[str]] = {n: set() for n in self._node_index}
        ground = "0"
        adjacency[ground] = set()

        def canon(node: str) -> str:
            return ground if _is_ground(node) else node

        dc_paths: Iterable[Element] = (
            list(self._resistors) + list(self._inductors) + list(self._vsources)
        )
        for e in dc_paths:
            a, b = canon(e.pos), canon(e.neg)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)

        seen = {ground}
        stack = [ground]
        while stack:
            for nxt in adjacency.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        floating = [n for n in self._node_index if n not in seen]
        if floating:
            raise NetlistError(
                f"{len(floating)} node(s) have no DC path to ground, "
                f"e.g. {floating[:5]!r}; G would be singular"
            )

    # -- misc ---------------------------------------------------------------------------

    def summary(self) -> str:
        """One-line human-readable size summary."""
        u = self.unknowns
        return (
            f"{self.title}: {u.n_nodes} nodes, {len(self._resistors)} R, "
            f"{len(self._capacitors)} C, {len(self._inductors)} L, "
            f"{len(self._vsources)} V, {len(self._isources)} I "
            f"(dim {u.dim})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Netlist {self.summary()}>"


class StreamedNetlist:
    """Index-and-name view of a circuit ingested without element objects.

    The streaming parser (:mod:`repro.circuit.ingest`) stamps matrices
    directly from the file and never materialises :class:`Element`
    instances, but the rest of the pipeline only ever needs the *node
    bookkeeping* half of :class:`Netlist` — the index layout documented
    at the top of this module, name lookups and the size summary.  This
    class carries exactly that, sharing the same contract:

    * ``node_index`` rows follow first-appearance order (pos before neg,
      ground excluded) — identical to :meth:`Netlist._register_node`
      replayed over the same card sequence;
    * branch rows follow node rows: voltage sources first, inductors
      after, each in card order.
    """

    def __init__(
        self,
        title: str,
        node_order: list[str],
        node_index: dict[str, int],
        counts: dict[str, int],
    ):
        self.title = title
        self._node_order = tuple(node_order)
        self._node_index = node_index
        self._counts = dict(counts)

    # -- Netlist read-only interface ------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_order)

    @property
    def unknowns(self) -> _Unknowns:
        """Block sizes of the MNA unknown vector."""
        return _Unknowns(
            n_nodes=self.n_nodes,
            n_vsrc=self._counts.get("v", 0),
            n_ind=self._counts.get("l", 0),
        )

    @property
    def dim(self) -> int:
        """Total MNA system dimension."""
        return self.unknowns.dim

    def node_index(self, node: str) -> int:
        """Matrix row of a node voltage; ``-1`` for ground."""
        if _is_ground(node):
            return -1
        try:
            return self._node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def node_names(self) -> tuple[str, ...]:
        """Non-ground node names in index order."""
        return self._node_order

    def __len__(self) -> int:
        return sum(self._counts.values())

    def summary(self) -> str:
        """One-line human-readable size summary (Netlist-compatible)."""
        c = self._counts
        u = self.unknowns
        return (
            f"{self.title}: {u.n_nodes} nodes, {c.get('r', 0)} R, "
            f"{c.get('c', 0)} C, {c.get('l', 0)} L, "
            f"{c.get('v', 0)} V, {c.get('i', 0)} I "
            f"(dim {u.dim})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StreamedNetlist {self.summary()}>"
