"""Dense matrix exponential for small matrices (Padé scaling-and-squaring).

MATEX only ever exponentiates the tiny (m×m, m ≈ 10…30) Hessenberg matrix
produced by the Arnoldi process (Alg. 1 line 14); the paper does this with
MATLAB's ``expm``.  We implement the classic Higham (2005) degree-13 Padé
scaling-and-squaring algorithm from scratch so the simulator does not rely
on SciPy for its inner kernel, and validate it against ``scipy.linalg.expm``
in the test suite.

For convenience the module also provides :func:`expm_e1` (the
``exp(H) @ e1`` product that appears in every Krylov evaluation) and
:func:`expm_action`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["expm", "expm_e1", "expm_action"]

# Padé coefficients for the degree-13 diagonal approximant (Higham 2005).
_PADE13 = (
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0, 129060195264000.0, 10559470521600.0,
    670442572800.0, 33522128640.0, 1323241920.0, 40840800.0,
    960960.0, 16380.0, 182.0, 1.0,
)

# theta_13: the 1-norm bound under which the [13/13] approximant meets
# double-precision accuracy without scaling.
_THETA13 = 5.371920351148152


def _pade13(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return numerator/denominator split (U, V) of the [13/13] Padé."""
    n = a.shape[0]
    ident = np.eye(n)
    b = _PADE13
    a2 = a @ a
    a4 = a2 @ a2
    a6 = a4 @ a2
    u = a @ (
        a6 @ (b[13] * a6 + b[11] * a4 + b[9] * a2)
        + b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * ident
    )
    v = (
        a6 @ (b[12] * a6 + b[10] * a4 + b[8] * a2)
        + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * ident
    )
    return u, v


def expm(a: np.ndarray) -> np.ndarray:
    """Matrix exponential of a small dense square matrix.

    Scaling-and-squaring with the [13/13] Padé approximant.  Intended for
    the m×m Hessenberg matrices of the Krylov methods; for large sparse
    operators use the Krylov machinery in :mod:`repro.linalg.krylov`
    instead.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expm expects a square matrix, got shape {a.shape}")
    if a.shape[0] == 0:
        return np.zeros((0, 0))
    if a.shape[0] == 1:
        return np.exp(a)

    norm = np.linalg.norm(a, 1)
    if not np.isfinite(norm):
        raise ValueError("expm: matrix contains non-finite entries")

    s = 0
    if norm > _THETA13:
        s = int(np.ceil(np.log2(norm / _THETA13)))
        a = a / (2.0 ** s)

    u, v = _pade13(a)
    # Solve (V - U) X = (V + U) for the Padé value.  The squaring phase
    # can overflow legitimately when the matrix has large positive
    # eigenvalues (spurious Ritz values on RLC systems); callers treat a
    # non-finite result as "not converged", so overflow is allowed to
    # produce inf silently rather than spam warnings.
    r = np.linalg.solve(v - u, v + u)
    with np.errstate(over="ignore", invalid="ignore"):
        for _ in range(s):
            r = r @ r
    return r


def expm_e1(a: np.ndarray) -> np.ndarray:
    """First column of ``exp(a)``, i.e. ``exp(a) @ e1``.

    This is the quantity every Krylov step needs (paper Alg. 1 line 14:
    ``x = ‖v‖ Vm exp(h Hm) e1``).  For the tiny matrices involved, forming
    the full exponential is cheap and numerically safest.
    """
    return expm(a)[:, 0].copy()


def expm_action(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Dense ``exp(a) @ v`` (reference helper for tests and Fig. 5)."""
    return expm(a) @ np.asarray(v, dtype=float)
