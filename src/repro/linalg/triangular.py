"""Level-scheduled deterministic triangular substitution kernels.

The paper denominates its whole complexity argument (Sec. 3.4) in
forward/backward substitution pairs against factors computed **once**, so
the substitution inner loop multiplies everything built on top of it —
the lockstep block march, compiled-plan sweeps, the Table-3 numbers.
Batching those substitutions is only legal here if it is *per-column
deterministic*: the parity web (``tests/test_block_runner.py``,
``tests/test_lu.py``) requires ``solve_many(B)[:, i]`` to be bit-for-bit
``solve(B[:, i])`` at any batch width and offset.  Handing SuperLU a
multi-RHS block breaks that — its supernodal BLAS kernels change
accumulation order with the RHS count (divergent at nrhs = 8 on pg4t's
pencil) — which is why PR 5 fell back to a per-column loop and lost the
batched-march headroom.

This module restores the headroom without giving up a single bit:

* :class:`TriangularFactors` exports SuperLU's factors once per
  :class:`~repro.linalg.lu.SparseLU` — ``L`` (unit lower), the
  column-scaled strictly-upper part of ``U``, both row/column
  permutations and the diagonal scaling — after *verifying* that the
  export reproduces the factorisation (equilibrated factorisations fall
  back to the legacy path instead of being silently wrong).
* The **scalar** path substitutes through SuperLU's non-supernodal
  column-sweep kernel (the one :func:`scipy.sparse.linalg.
  spsolve_triangular` uses) on the exported factors: ascending-column
  sweeps for ``L``, descending for ``U``, one axpy per stored entry.
* The **multi-RHS** path builds a *level schedule* over each factor —
  topological levels of the triangular dependency DAG, rows relabelled
  into level order — and substitutes all columns in lockstep: each level
  is one CSR block-matvec (``Y += A @ X``) over the previous levels'
  rows.  Per output row, contributions accumulate in exactly the order
  the scalar column sweep applies them (ascending original columns for
  ``L``, descending for ``U``), and that order never depends on how many
  columns ride in the block.  ``solve_many(B)[:, i]`` is therefore
  bit-for-bit ``solve(B[:, i])`` **by construction**, while the level
  kernel runs the batch at C speed (~3x faster than the column loop at
  march widths).

The escape hatch: ``REPRO_TRIANGULAR_KERNEL`` (or the CLI's
``--triangular-kernel``) selects ``level`` (default), ``column``
(exported scalar path per column — same bits, no level kernel) or
``legacy`` (SuperLU's own supernodal solve, the pre-export behaviour).
"""

from __future__ import annotations

import os
import threading
import warnings

import numpy as np
import scipy.sparse as sp

try:  # SciPy-private kernels; absence degrades to the legacy path.
    from scipy.sparse import _sparsetools
    from scipy.sparse.linalg._dsolve import _superlu

    _KERNELS_AVAILABLE = hasattr(_superlu, "gstrs") and hasattr(
        _sparsetools, "csr_matvecs"
    )
except ImportError:  # pragma: no cover - exotic scipy builds
    _sparsetools = None
    _superlu = None
    _KERNELS_AVAILABLE = False

__all__ = [
    "DEFAULT_KERNEL_MODE",
    "ENV_KERNEL_MODE",
    "KERNEL_MODES",
    "TriangularExportError",
    "TriangularFactors",
    "TriangularHolder",
    "kernel_mode",
    "set_kernel_mode",
]

#: Recognised substitution-kernel modes.
KERNEL_MODES = ("level", "column", "legacy")
DEFAULT_KERNEL_MODE = "level"

#: Environment variable selecting the mode at process start (the CLI's
#: ``--triangular-kernel`` flag reconfigures the live process instead).
ENV_KERNEL_MODE = "REPRO_TRIANGULAR_KERNEL"


class TriangularExportError(RuntimeError):
    """The exported factors do not reproduce SuperLU's factorisation.

    Raised (and swallowed by :class:`TriangularHolder`, which then
    serves the legacy path) when the export verification probe fails —
    e.g. a SuperLU build that equilibrated the matrix with scalings the
    handle does not expose.
    """


def _mode_from_env() -> str:
    raw = os.environ.get(ENV_KERNEL_MODE)
    if raw is None:
        return DEFAULT_KERNEL_MODE
    mode = raw.strip().lower()
    if mode not in KERNEL_MODES:
        warnings.warn(
            f"ignoring invalid {ENV_KERNEL_MODE}={raw!r}; "
            f"using {DEFAULT_KERNEL_MODE!r} "
            f"(choose from {sorted(KERNEL_MODES)})",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_KERNEL_MODE
    return mode


_KERNEL_MODE = _mode_from_env()


def kernel_mode() -> str:
    """The process-wide substitution-kernel mode (see :data:`KERNEL_MODES`)."""
    return _KERNEL_MODE


def set_kernel_mode(mode: str | None) -> None:
    """Select the substitution kernel for this process.

    ``None`` resets to the environment/default.  All three modes produce
    per-column bit-identical results on matrices where the export
    verifies (``level`` and ``column`` share one arithmetic definition;
    ``legacy`` is SuperLU's own scalar solve, which the other two were
    verified against at export time only up to round-off).
    """
    global _KERNEL_MODE
    if mode is None:
        _KERNEL_MODE = _mode_from_env()
        return
    mode = str(mode).strip().lower()
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown triangular kernel mode {mode!r}; "
            f"choose from {sorted(KERNEL_MODES)}"
        )
    _KERNEL_MODE = mode


def _topological_levels(dep_csr: sp.csr_matrix) -> np.ndarray:
    """Longest-path level of every node of a triangular dependency DAG.

    ``dep_csr`` row ``i`` lists the nodes row ``i`` depends on (the
    strictly-triangular entries of one factor).  Vectorised frontier
    peeling: nodes whose remaining in-degree is zero form level ``k``;
    removing their outgoing edges exposes level ``k + 1``.  O(nnz) plus
    one ``O(n)`` scan per level.
    """
    n = dep_csr.shape[0]
    indeg = np.diff(dep_csr.indptr).astype(np.int64)
    dep_csc = dep_csr.tocsc()
    cp, ci = dep_csc.indptr, dep_csc.indices
    level = np.zeros(n, dtype=np.int64)
    frontier = np.flatnonzero(indeg == 0)
    lvl = 0
    while frontier.size:
        level[frontier] = lvl
        lens = cp[frontier + 1] - cp[frontier]
        total = int(lens.sum())
        if total == 0:
            break
        keep = lens > 0
        starts = cp[frontier[keep]]
        lens = lens[keep]
        offsets = np.repeat(
            starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens
        )
        dependents = ci[offsets + np.arange(total)]
        dec = np.bincount(dependents, minlength=n)
        indeg -= dec
        frontier = np.flatnonzero((dec > 0) & (indeg == 0))
        lvl += 1
    return level


def _reverse_rows(csr: sp.csr_matrix) -> sp.csr_matrix:
    """Same CSR matrix with every row's entries mirrored in place.

    The U sweep applies contributions in *descending* column order;
    storing each row reversed lets the level kernel walk storage order.
    """
    indptr = csr.indptr
    lens = np.diff(indptr)
    pos = np.arange(csr.nnz)
    mirror = 2 * np.repeat(indptr[:-1], lens) + np.repeat(lens, lens) - 1 - pos
    return sp.csr_matrix(
        (csr.data[mirror], csr.indices[mirror], indptr.copy()),
        shape=csr.shape,
    )


def _level_blocks(tri_csr, level, n):
    """Relabelled per-level CSR blocks of one strictly-triangular factor.

    Returns ``(perm, pos, blocks)``: ``perm`` maps level order → factor
    order, ``pos`` is its inverse, and each block is
    ``(r0, r1, indptr, indices, neg_data)`` — the level's rows as a
    local CSR whose (relabelled) column indices all point *before*
    ``r0``, so an in-place ``Y += A @ X`` over the shared work array is
    race-free.  Data is negated once here so the kernel's ``y += a·x``
    is bit-for-bit the scalar sweep's ``y -= a·x``.  Row storage order
    is preserved (it encodes the sweep's accumulation order).
    """
    perm = np.argsort(level, kind="stable")
    pos = np.empty(n, dtype=np.intp)
    pos[perm] = np.arange(n)
    counts = np.bincount(level, minlength=int(level.max()) + 1 if n else 1)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    permuted = tri_csr[perm]
    remapped = pos[permuted.indices]
    blocks = []
    for k in range(len(counts)):
        r0, r1 = int(bounds[k]), int(bounds[k + 1])
        j0, j1 = int(permuted.indptr[r0]), int(permuted.indptr[r1])
        if j0 == j1:
            continue  # no stored entries: the block-matvec is a no-op
        blocks.append((
            r0,
            r1,
            (permuted.indptr[r0:r1 + 1] - permuted.indptr[r0]).astype(np.intc),
            remapped[j0:j1].astype(np.intc),
            -permuted.data[j0:j1],
        ))
    return perm, pos, blocks


class TriangularFactors:
    """SuperLU's factors, exported once, with a level-scheduled kernel.

    Stage 1 (construction) exports the scalar-path arrays and verifies
    them against one reference SuperLU solve; stage 2
    (:meth:`ensure_schedule`, lazy — only multi-RHS consumers pay it)
    builds the level schedules.  Both stages are built at most once and
    shared by every cache view of the owning factorisation.
    """

    def __init__(self, superlu, matrix: sp.csc_matrix):
        if not _KERNELS_AVAILABLE:
            raise TriangularExportError("scipy substitution kernels unavailable")
        if matrix.dtype != np.float64:
            raise TriangularExportError(f"unsupported dtype {matrix.dtype}")
        n = superlu.shape[0]
        self.n = n
        L = superlu.L.tocsc()
        L.sort_indices()
        U = superlu.U.tocsc()
        U.sort_indices()
        invd = 1.0 / U.diagonal()
        # Column-scale U to unit diagonal: U = (I + Uoff·D⁻¹)·D, so the
        # backward sweep runs on the strictly-upper scaled part (the
        # explicit zero diagonal keeps the sweep's skip-the-pivot entry
        # bookkeeping intact) and the solution is post-scaled by D⁻¹.
        Us = (U @ sp.diags_array(invd)).tocsc()
        Us.setdiag(0)
        Us.sort_indices()
        self._L_csc = L
        self._Us_csc = Us
        self._L_nnz = int(L.nnz)
        self._L_data = L.data
        self._L_indices = L.indices.astype(np.intc)
        self._L_indptr = L.indptr.astype(np.intc)
        self._U_nnz = int(Us.nnz)
        self._U_data = Us.data
        self._U_indices = Us.indices.astype(np.intc)
        self._U_indptr = Us.indptr.astype(np.intc)
        take_in = np.empty(n, dtype=np.intp)
        take_in[superlu.perm_r] = np.arange(n)
        self._take_in = take_in          # w = b[perm_r⁻¹]
        self._take_out = np.asarray(superlu.perm_c, dtype=np.intp)
        self._invd_out = invd[self._take_out].copy()
        self._schedule = None
        self._lock = threading.Lock()
        self._verify(superlu, matrix)

    # -- verification --------------------------------------------------------

    def _verify(self, superlu, matrix: sp.csc_matrix) -> None:
        """One probe solve against SuperLU's own answer.

        Catches exports that do not reproduce the factorisation (e.g. a
        SuperLU that equilibrated with scalings the Python handle does
        not expose): those must fall back to the legacy path rather
        than return silently wrong answers.
        """
        n = self.n
        probe = np.cos(np.arange(n, dtype=float))
        ref = superlu.solve(probe)
        got = self.solve(probe)
        num = float(np.linalg.norm(got - ref))
        den = float(np.linalg.norm(ref))
        if not np.isfinite(num) or num > 1e-6 * (den + 1e-300):
            raise TriangularExportError(
                "exported L/U factors do not reproduce the SuperLU "
                f"factorisation (probe mismatch {num:.3e} vs ‖x‖={den:.3e})"
            )

    # -- scalar path ---------------------------------------------------------

    def solve(self, b: np.ndarray) -> np.ndarray:
        """One substitution pair through the column-sweep kernel.

        This is the arithmetic definition every other path matches: the
        level kernel reproduces it bit-for-bit per column, and the
        ``column`` escape hatch loops over it directly.
        """
        w = np.ascontiguousarray(b[self._take_in], dtype=np.float64)
        x, info = _superlu.gstrs(
            "N",
            self.n, self._L_nnz, self._L_data, self._L_indices, self._L_indptr,
            self.n, self._U_nnz, self._U_data, self._U_indices, self._U_indptr,
            w,
        )
        if info != 0:  # pragma: no cover - factors are nonsingular
            raise TriangularExportError(f"gstrs failed with info={info}")
        # Divergent consumers (e.g. forward Euler past its stability
        # limit) legitimately push inf through here; SuperLU's C solve
        # is silent about it, so the kernel is too.
        with np.errstate(over="ignore", invalid="ignore"):
            return x[self._take_out] * self._invd_out

    # -- level-scheduled multi-RHS path --------------------------------------

    def ensure_schedule(self) -> None:
        """Build the level schedules (idempotent, thread-safe, lazy)."""
        if self._schedule is not None:
            return
        with self._lock:
            if self._schedule is not None:
                return
            n = self.n
            lower = sp.tril(self._L_csc, k=-1).tocsr()
            lower.sort_indices()  # ascending columns = the L sweep order
            level_l = _topological_levels(lower)
            p, posp, l_blocks = _level_blocks(lower, level_l, n)
            upper = sp.triu(self._Us_csc, k=1).tocsr()
            upper.sort_indices()
            level_u = _topological_levels(upper)
            q, posq, u_blocks = _level_blocks(
                _reverse_rows(upper), level_u, n
            )
            self._schedule = {
                "l_blocks": l_blocks,
                "u_blocks": u_blocks,
                "take_in_p": self._take_in[p],
                "m_lu": posp[q],                 # L ordering → U ordering
                "take_out_q": posq[self._take_out],
                "n_levels": (
                    int(level_l.max()) + 1,
                    int(level_u.max()) + 1,
                ),
            }
            # The CSC factors only feed the schedule build; drop them so
            # long-lived cache entries hold one copy of each array.
            self._L_csc = None
            self._Us_csc = None

    @property
    def has_schedule(self) -> bool:
        return self._schedule is not None

    @property
    def n_levels(self) -> tuple[int, int] | None:
        """``(L, U)`` level counts once the schedule exists."""
        return self._schedule["n_levels"] if self._schedule else None

    def solve_many(self, B: np.ndarray) -> np.ndarray:
        """All columns in lockstep; per column bit-for-bit :meth:`solve`.

        Returns an F-ordered ``(n, k)`` block.  Requires
        :meth:`ensure_schedule`.
        """
        self.ensure_schedule()
        sched = self._schedule
        n, w = B.shape
        W = np.ascontiguousarray(B[sched["take_in_p"]], dtype=np.float64)
        flat = W.reshape(-1)
        for r0, r1, indptr, indices, data in sched["l_blocks"]:
            _sparsetools.csr_matvecs(
                r1 - r0, n, w, indptr, indices, data,
                flat, flat[r0 * w:r1 * w],
            )
        Z = np.ascontiguousarray(W[sched["m_lu"]])
        flat = Z.reshape(-1)
        for r0, r1, indptr, indices, data in sched["u_blocks"]:
            _sparsetools.csr_matvecs(
                r1 - r0, n, w, indptr, indices, data,
                flat, flat[r0 * w:r1 * w],
            )
        out = np.empty((n, w), order="F")
        out[...] = Z[sched["take_out_q"]]
        with np.errstate(over="ignore", invalid="ignore"):
            out *= self._invd_out[:, None]
        return out

    # -- accounting ----------------------------------------------------------

    def nbytes(self) -> int:
        """Actual bytes held by the export and (if built) the schedules."""
        arrays = [
            self._L_data, self._L_indices, self._L_indptr,
            self._U_data, self._U_indices, self._U_indptr,
            self._take_in, self._take_out, self._invd_out,
        ]
        for csc in (self._L_csc, self._Us_csc):
            if csc is not None:
                arrays.extend((csc.data, csc.indices, csc.indptr))
        sched = self._schedule
        if sched is not None:
            arrays.extend(
                (sched["take_in_p"], sched["m_lu"], sched["take_out_q"])
            )
            for blocks in (sched["l_blocks"], sched["u_blocks"]):
                for _, _, indptr, indices, data in blocks:
                    arrays.extend((indptr, indices, data))
        return int(sum(a.nbytes for a in arrays))


class TriangularHolder:
    """Lazily-exported :class:`TriangularFactors`, shared across views.

    One holder per factorisation, shared by every
    :meth:`~repro.linalg.lu.SparseLU._shared_view` of a cache entry, so
    exports and level schedules are built at most once per factor no
    matter how many consumers the :data:`~repro.linalg.lu.
    FACTORIZATION_CACHE` hands out.  Any export failure is recorded and
    all consumers permanently fall back to the legacy SuperLU path —
    wrong bits are never an option, slow bits are.
    """

    __slots__ = ("_factors", "_failure", "_lock")

    def __init__(self):
        self._factors: TriangularFactors | None = None
        self._failure: str | None = None
        self._lock = threading.Lock()

    @property
    def failure(self) -> str | None:
        """Why the export fell back to the legacy path, if it did."""
        return self._failure

    def get(self, superlu, matrix, schedule: bool = False):
        """The shared export, building (stages of) it on first demand.

        Returns ``None`` when the kernel cannot serve this factor —
        the caller must use the legacy SuperLU path.
        """
        if self._failure is not None:
            return None
        tri = self._factors
        if tri is None:
            with self._lock:
                if self._factors is None and self._failure is None:
                    try:
                        self._factors = TriangularFactors(superlu, matrix)
                    except Exception as exc:
                        self._failure = f"{type(exc).__name__}: {exc}"
                tri = self._factors
            if tri is None:
                return None
        if schedule and not tri.has_schedule:
            try:
                tri.ensure_schedule()
            except Exception as exc:  # pragma: no cover - defensive
                with self._lock:
                    self._failure = f"{type(exc).__name__}: {exc}"
                    self._factors = None
                return None
        return tri

    def nbytes(self) -> int:
        """Bytes pinned by the export (0 until one is built)."""
        tri = self._factors
        return tri.nbytes() if tri is not None else 0
