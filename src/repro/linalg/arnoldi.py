"""Arnoldi process (paper Alg. 1, lines 1-13).

The Arnoldi iteration builds an orthonormal basis ``V_m`` of the Krylov
subspace ``K_m(Op, v)`` together with the small upper-Hessenberg matrix
``H_m`` satisfying ``Op V_m = V_m H_m + h_{m+1,m} v_{m+1} e_m^T``.

MATEX instantiates the abstract operator ``Op`` three ways (standard,
inverted, rational — see :mod:`repro.linalg.krylov`); each application is
one pair of forward/backward substitutions (Alg. 1 line 3).  This module
is deliberately generic: ``apply`` is just a callable.

Orthogonalisation is modified Gram-Schmidt exactly as written in Alg. 1
(the projection coefficients are computed against the *updated* ``w``),
with one optional reorthogonalisation pass for robustness on ill-scaled
PDN matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ArnoldiResult", "ArnoldiBreakdown", "arnoldi"]

#: Convergence test signature: (j, H[(j+1)×j], V[:, :j+1], beta) -> bool.
ConvergenceTest = Callable[[int, np.ndarray, np.ndarray, float], bool]

#: Initial column capacity of the basis workspace.  I-/R-MATEX bases
#: stay around m ≈ 10, so allocating the full ``m_max`` (often 300)
#: up front would zero ~2.5 MB per basis for nothing; instead the
#: workspace starts small and doubles on demand.
_INITIAL_CAPACITY = 32


def _initial_capacity(m_cap: int) -> int:
    """Starting workspace capacity for a basis capped at ``m_cap``."""
    return min(_INITIAL_CAPACITY, m_cap)


def _ensure_capacity(
    V: np.ndarray, H: np.ndarray, cap: int, needed: int, m_cap: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Grow the ``(V, H)`` workspace geometrically to hold ``needed`` columns.

    The capacity schedule (and therefore the arrays' leading dimension
    at every iteration) is deterministic — shared between the scalar
    Arnoldi below and the lockstep block Arnoldi, because BLAS level-2
    kernels are only bit-reproducible for identical memory layouts.
    """
    while needed > cap:
        cap = min(2 * cap, m_cap)
    if V.shape[1] < cap + 1:
        grown_v = np.empty((V.shape[0], cap + 1))
        grown_v[:, : V.shape[1]] = V
        grown_h = np.zeros((cap + 1, cap))
        grown_h[: H.shape[0], : H.shape[1]] = H
        return grown_v, grown_h, cap
    return V, H, cap


class ArnoldiBreakdown(RuntimeError):
    """Raised only for *unexpected* breakdowns (NaN/Inf in the recursion)."""


@dataclass
class ArnoldiResult:
    """Output of the Arnoldi process.

    Attributes
    ----------
    V:
        ``n × (m+1)`` orthonormal basis (the extra column is ``v_{m+1}``,
        needed by the posterior error estimates, Eqs. (7)/(8)/(10)).
        On happy breakdown the extra column is zero.
    H:
        ``(m+1) × m`` upper-Hessenberg matrix including the subdiagonal
        entry ``h_{m+1,m}``.
    m:
        Number of basis vectors actually built.
    beta:
        ``‖v‖`` of the starting vector (the paper's ``‖v‖`` scaling).
    converged:
        True when the supplied convergence test fired (or a happy
        breakdown made the subspace exact).
    happy_breakdown:
        True when ``h_{m+1,m} ≈ 0`` — the subspace is invariant and the
        Krylov approximation is exact.
    """

    V: np.ndarray
    H: np.ndarray
    m: int
    beta: float
    converged: bool
    happy_breakdown: bool

    @property
    def Hm(self) -> np.ndarray:
        """The square ``m × m`` Hessenberg block."""
        return self.H[: self.m, : self.m]

    @property
    def h_next(self) -> float:
        """The subdiagonal entry ``h_{m+1,m}`` (0 on happy breakdown)."""
        return float(self.H[self.m, self.m - 1]) if self.m > 0 else 0.0

    @property
    def Vm(self) -> np.ndarray:
        """The ``n × m`` basis block."""
        return self.V[:, : self.m]


def arnoldi(
    apply: Callable[[np.ndarray], np.ndarray],
    v: np.ndarray,
    m_max: int,
    convergence: ConvergenceTest | None = None,
    min_dim: int = 1,
    breakdown_tol: float = 1e-14,
    reorthogonalize: bool = True,
) -> ArnoldiResult:
    """Run the Arnoldi process on operator ``apply`` from vector ``v``.

    Parameters
    ----------
    apply:
        The operator application ``w = Op(v)``; in MATEX each call is one
        forward/backward substitution pair.
    v:
        Starting vector; its norm becomes ``beta``.
    m_max:
        Hard cap on the subspace dimension.
    convergence:
        Optional posterior test evaluated after each iteration ``j >=
        min_dim`` (paper Alg. 1 lines 10-12).  Receives the current
        ``(j+1) × j`` Hessenberg block, the basis and ``beta``.
    min_dim:
        Do not test convergence before this many vectors (the inverted and
        rational estimates are unreliable for the first couple of
        iterations, paper Sec. 3.3.3).
    breakdown_tol:
        Relative tolerance (vs. the pre-orthogonalisation norm of the new
        vector) declaring a happy breakdown.
    reorthogonalize:
        Run one extra Gram-Schmidt sweep per vector (CGS2).  Costs one
        extra BLAS-2 pair, buys orthogonality on badly scaled PDN
        systems and on the deep bases MEXP builds.

    Returns
    -------
    ArnoldiResult
        Basis, Hessenberg matrix and convergence flags.
    """
    v = np.asarray(v, dtype=float)
    n = v.shape[0]
    if m_max < 1:
        raise ValueError("m_max must be at least 1")
    m_cap = min(m_max, n)

    beta = float(np.linalg.norm(v))
    if beta == 0.0:  # repro: allow[RPL005] exact Krylov-breakdown sentinel (norm of the zero vector)
        # Zero start vector: exp(hA)·0 = 0 exactly; report a trivially
        # converged empty subspace.
        return ArnoldiResult(
            V=np.zeros((n, 1)), H=np.zeros((1, 0)), m=0, beta=0.0,
            converged=True, happy_breakdown=True,
        )

    cap = _initial_capacity(m_cap)
    V = np.empty((n, cap + 1))
    H = np.zeros((cap + 1, cap))

    V[:, 0] = v / beta
    m = 0
    converged = False
    happy = False

    for j in range(m_cap):
        V, H, cap = _ensure_capacity(V, H, cap, j + 1, m_cap)
        w = np.asarray(apply(V[:, j]), dtype=float)
        if not np.all(np.isfinite(w)):
            raise ArnoldiBreakdown(
                f"operator returned non-finite values at iteration {j + 1}"
            )
        # Breakdown must be judged against the *local* operator scale:
        # e.g. the inverted operator G⁻¹C has tiny norm on fast circuits,
        # so comparing h_{j+1,j} with beta would fire spuriously.
        w_scale = float(np.linalg.norm(w))
        # Classical Gram-Schmidt in BLAS-2 form; the second pass below
        # (CGS2) restores the numerical robustness of the modified
        # variant written in the paper's Alg. 1, at vectorised speed —
        # essential when MEXP pushes m into the hundreds.
        basis_block = V[:, : j + 1]
        coeffs = basis_block.T @ w
        w = w - basis_block @ coeffs
        H[: j + 1, j] += coeffs
        if reorthogonalize:
            corr = basis_block.T @ w
            w = w - basis_block @ corr
            H[: j + 1, j] += corr
        h_next = float(np.linalg.norm(w))
        H[j + 1, j] = h_next
        m = j + 1

        if h_next <= breakdown_tol * max(w_scale, np.finfo(float).tiny):
            # Invariant subspace: the projection is exact.  The unused
            # extra basis column is zeroed explicitly (the workspace is
            # allocated with np.empty).
            V[:, j + 1] = 0.0
            happy = True
            converged = True
            break

        V[:, j + 1] = w / h_next

        if convergence is not None and m >= min_dim:
            if convergence(m, H[: m + 1, : m], V[:, : m + 1], beta):
                converged = True
                break

    if convergence is None:
        converged = True

    return ArnoldiResult(
        V=V[:, : m + 1].copy(),
        H=H[: m + 1, : m].copy(),
        m=m,
        beta=beta,
        converged=converged,
        happy_breakdown=happy,
    )
