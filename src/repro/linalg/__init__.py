"""Linear-algebra substrate: LU, dense expm, Arnoldi, Krylov expm operators."""

from repro.linalg.arnoldi import ArnoldiBreakdown, ArnoldiResult, arnoldi
from repro.linalg.dense_reference import dense_a_matrix, etd_exact_step, exact_transient
from repro.linalg.expm import expm, expm_action, expm_e1
from repro.linalg.krylov import (
    METHOD_NAMES,
    InvertedKrylov,
    KrylovBasis,
    KrylovExpmOperator,
    RationalKrylov,
    RegularizationRequiredError,
    StandardKrylov,
    make_krylov_operator,
)
from repro.linalg.lu import FactorizationError, SparseLU
from repro.linalg.triangular import (
    KERNEL_MODES,
    TriangularFactors,
    kernel_mode,
    set_kernel_mode,
)

__all__ = [
    "ArnoldiBreakdown",
    "ArnoldiResult",
    "FactorizationError",
    "InvertedKrylov",
    "KERNEL_MODES",
    "KrylovBasis",
    "KrylovExpmOperator",
    "METHOD_NAMES",
    "RationalKrylov",
    "RegularizationRequiredError",
    "SparseLU",
    "StandardKrylov",
    "TriangularFactors",
    "arnoldi",
    "dense_a_matrix",
    "etd_exact_step",
    "exact_transient",
    "expm",
    "expm_action",
    "expm_e1",
    "kernel_mode",
    "make_krylov_operator",
    "set_kernel_mode",
]
