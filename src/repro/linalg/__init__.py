"""Linear-algebra substrate: LU, dense expm, Arnoldi, Krylov expm operators."""

from repro.linalg.arnoldi import ArnoldiBreakdown, ArnoldiResult, arnoldi
from repro.linalg.dense_reference import dense_a_matrix, etd_exact_step, exact_transient
from repro.linalg.expm import expm, expm_action, expm_e1
from repro.linalg.krylov import (
    METHOD_NAMES,
    InvertedKrylov,
    KrylovBasis,
    KrylovExpmOperator,
    RationalKrylov,
    RegularizationRequiredError,
    StandardKrylov,
    make_krylov_operator,
)
from repro.linalg.lu import FactorizationError, SparseLU

__all__ = [
    "ArnoldiBreakdown",
    "ArnoldiResult",
    "FactorizationError",
    "InvertedKrylov",
    "KrylovBasis",
    "KrylovExpmOperator",
    "METHOD_NAMES",
    "RationalKrylov",
    "RegularizationRequiredError",
    "SparseLU",
    "StandardKrylov",
    "arnoldi",
    "dense_a_matrix",
    "etd_exact_step",
    "exact_transient",
    "expm",
    "expm_action",
    "expm_e1",
    "make_krylov_operator",
]
