"""Dense exact-ETD reference solver (test oracle).

For *small* systems with invertible ``C`` the exponential-time-differencing
step (paper Eq. 4/5) can be evaluated exactly — to machine precision — with
one dense matrix exponential of the augmented matrix::

        M = [ A  s  b0 ]          z(0) = [ x0 ]
            [ 0  0  1  ]                 [ 0  ]        x(h) = (exp(hM) z)[:n]
            [ 0  0  0  ]                 [ 1  ]

where the input is linear over the step, ``b(τ) = b0 + s·τ``.  This is the
standard phi-function augmentation (Al-Mohy & Higham) and shares *no code
path* with the Krylov machinery, which makes it an independent oracle for
the whole MATEX solver stack: unit tests compare every integrator against
it on small RC/RLC circuits.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.circuit.mna import MNASystem
from repro.circuit.waveforms import merge_transition_spots
from repro.linalg.expm import expm

__all__ = ["dense_a_matrix", "etd_exact_step", "exact_transient"]


def dense_a_matrix(C: sp.spmatrix, G: sp.spmatrix) -> np.ndarray:
    """Form ``A = -C⁻¹G`` densely (small systems only).

    Raises
    ------
    numpy.linalg.LinAlgError
        If ``C`` is singular — in that case the oracle does not exist and
        tests fall back to a tiny-step implicit-Euler reference.
    """
    c = np.asarray(C.todense() if sp.issparse(C) else C, dtype=float)
    g = np.asarray(G.todense() if sp.issparse(G) else G, dtype=float)
    return -np.linalg.solve(c, g)


def etd_exact_step(
    A: np.ndarray, x: np.ndarray, b0: np.ndarray, s: np.ndarray, h: float
) -> np.ndarray:
    """Exact solution of ``x' = A x + b0 + s·τ`` after time ``h``.

    Parameters
    ----------
    A:
        Dense state matrix.
    x:
        State at the beginning of the step.
    b0:
        Input vector at the beginning of the step (``C⁻¹ B u(t)``).
    s:
        Input slope vector over the step (``C⁻¹ B du/dt``).
    h:
        Step length.
    """
    n = A.shape[0]
    M = np.zeros((n + 2, n + 2))
    M[:n, :n] = A
    M[:n, n] = np.asarray(s, dtype=float)
    M[:n, n + 1] = np.asarray(b0, dtype=float)
    M[n, n + 1] = 1.0
    z = np.zeros(n + 2)
    z[:n] = x
    z[n + 1] = 1.0
    return (expm(h * M) @ z)[:n]


def exact_transient(
    system: MNASystem,
    x0: np.ndarray,
    t_end: float,
    active: list[int] | None = None,
    extra_times: list[float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """March the exact ETD step across all input segments.

    Evaluation points are the Global Transition Spots (where the inputs
    change slope) plus any ``extra_times``; between consecutive points the
    inputs are linear, so each step is exact.

    Parameters
    ----------
    system:
        Assembled MNA system (must have invertible ``C``).
    x0:
        Initial condition (typically the DC operating point).
    t_end:
        Simulation horizon.
    active:
        Optional subset of input columns to drive (others held at zero),
        mirroring the distributed decomposition.
    extra_times:
        Additional evaluation times to merge into the schedule.

    Returns
    -------
    times, X:
        ``times`` of shape ``(k,)`` and states ``X`` of shape ``(k, dim)``,
        including the initial point.
    """
    c = np.asarray(system.C.todense(), dtype=float)
    A = dense_a_matrix(system.C, system.G)
    # Factor C once for the whole schedule: every step needs two C⁻¹
    # solves (b0 and s), and LAPACK's gesv is exactly getrf + getrs, so
    # reusing the factors is bit-identical to per-step np.linalg.solve.
    c_lu = scipy.linalg.lu_factor(c)

    schedule = list(system.global_transition_spots(t_end, active=active))
    if extra_times:
        # Tolerance-aware union (the GTS merge operator): a plain set
        # union keeps transition spots that differ by one ulp as two
        # points, which would desynchronise the output grid from runs
        # built over other input subsets.
        extra = sorted(float(t) for t in extra_times if 0.0 <= t <= t_end)
        schedule = merge_transition_spots([schedule, extra])
    if schedule[0] > 0.0:
        schedule.insert(0, 0.0)

    times = [schedule[0]]
    states = [np.asarray(x0, dtype=float).copy()]
    x = states[0]
    for t0, t1 in zip(schedule, schedule[1:]):
        h = t1 - t0
        if h <= 0.0:
            continue
        bu = system.bu(t0, active=active)
        su = system.b_slope_fd(t0, t1, active=active)
        b0 = scipy.linalg.lu_solve(c_lu, bu)
        s = scipy.linalg.lu_solve(c_lu, su)
        x = etd_exact_step(A, x, b0, s, h)
        times.append(t1)
        states.append(x.copy())
    return np.asarray(times), np.asarray(states)
