"""Lockstep block-Arnoldi: one basis build per column group.

The distributed decomposition (paper Sec. 3.4) gives every node task the
*same* MNA pencil, so all their Krylov bases are built against the same
sparse LU factors.  :func:`build_bases_block` marches the Arnoldi
iterations of many start vectors **in lockstep**: at iteration ``j`` the
operator is applied to all still-active columns with one sparse mat-mat
product and one multi-RHS substitution (``SparseLU.solve_many``) instead
of one scalar solve per column.  Everything else — Gram-Schmidt,
breakdown handling, the posterior-error convergence test — runs
per-column with exactly the arithmetic of :func:`repro.linalg.arnoldi`
/ :meth:`~repro.linalg.krylov.KrylovExpmOperator.build_basis`, so every
returned :class:`~repro.linalg.krylov.KrylovBasis` is **bit-for-bit
identical** to a scalar build of the same column.  That parity is a hard
contract (it is what lets the block-batched distributed fast path claim
the per-node path's validation), enforced by ``tests/test_block_krylov.py``.

The module also houses the *fast Hessenberg kernel*: the posterior error
estimates factor and exponentiate a tiny ``m × m`` Hessenberg block per
Arnoldi iteration, and at m ≈ 10 the SciPy wrapper overhead
(``asarray_chkfinite``, shape validation) costs several times the LAPACK
work itself.  :class:`FastHessenberg` and :func:`fast_expm` call the very
same LAPACK routines (``getrf``/``getrs`` — which is also exactly what
``numpy.linalg.solve``'s ``gesv`` runs internally) through
``scipy.linalg.get_lapack_funcs`` with the validation skipped, producing
bitwise-identical numbers at a fraction of the call overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import get_lapack_funcs

from repro.linalg.arnoldi import (
    ArnoldiBreakdown,
    _ensure_capacity,
    _initial_capacity,
)
from repro.linalg.expm import _pade13, _THETA13
from repro.linalg.krylov import KrylovBasis, KrylovExpmOperator

__all__ = [
    "build_bases_block",
    "prime_eig_payloads",
    "FastHessenberg",
    "fast_expm",
    "fast_expm_stack",
    "FastEstimator",
]

_GETRF, _GETRS = get_lapack_funcs(("getrf", "getrs"), (np.zeros((2, 2)),))

#: Read-only identity cache for the m ≈ 10 Hessenberg blocks: np.eye in
#: the per-iteration estimates was a visible slice of the batch loop.
_EYE_CACHE: dict[int, np.ndarray] = {}


def _eye(m: int) -> np.ndarray:
    """Cached identity — callers must not mutate the returned array."""
    ident = _EYE_CACHE.get(m)
    if ident is None:
        ident = np.eye(m)
        ident.setflags(write=False)
        _EYE_CACHE[m] = ident
    return ident

#: Mirrors of the constants hard-wired in the scalar path
#: (:meth:`KrylovExpmOperator.build_basis` and :func:`arnoldi` defaults).
_BREAKDOWN_TOL = 1e-14
_TEST_THROTTLE_DIM = 60
_TEST_THROTTLE_EVERY = 5


# -- fast small-dense kernel ---------------------------------------------------------


def fast_expm(a: np.ndarray) -> np.ndarray:
    """Bitwise clone of :func:`repro.linalg.expm.expm`, minus overhead.

    Same degree-13 Padé scaling-and-squaring, same 1-norm threshold; the
    Padé solve goes through raw ``getrf``/``getrs`` — the exact pair
    ``numpy.linalg.solve``'s ``gesv`` executes internally — so the result
    matches :func:`~repro.linalg.expm.expm` to the last bit while
    skipping the wrapper validation that dominates at m ≈ 10.
    """
    if a.shape[0] == 0:
        return np.zeros((0, 0))
    if a.shape[0] == 1:
        return np.exp(a)

    norm = np.linalg.norm(a, 1)
    if not np.isfinite(norm):
        raise ValueError("expm: matrix contains non-finite entries")

    s = 0
    if norm > _THETA13:
        s = int(np.ceil(np.log2(norm / _THETA13)))
        a = a / (2.0 ** s)

    u, v = _pade13(a)
    lu, piv, info = _GETRF(v - u)
    if info != 0:
        raise np.linalg.LinAlgError("singular Padé denominator")
    r, info = _GETRS(lu, piv, v + u)
    # getrs hands back a Fortran-ordered solution while numpy's gesv
    # returns C order; dgemm results depend on operand layout, so the
    # squaring phase must see the same layout as the canonical expm.
    r = np.ascontiguousarray(r)
    with np.errstate(over="ignore", invalid="ignore"):
        for _ in range(s):
            r = r @ r
    return r


def _fast_expm_e1(a: np.ndarray) -> np.ndarray:
    """First column of ``exp(a)`` via :func:`fast_expm`."""
    return fast_expm(a)[:, 0].copy()


def _pade13_stack(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stacked [13/13] Padé split, slice-for-slice bitwise with
    :func:`repro.linalg.expm._pade13` (gufunc matmul runs the same dgemm
    per slice)."""
    from repro.linalg.expm import _PADE13 as b

    ident = np.eye(a.shape[-1])
    a2 = a @ a
    a4 = a2 @ a2
    a6 = a4 @ a2
    u = a @ (
        a6 @ (b[13] * a6 + b[11] * a4 + b[9] * a2)
        + b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * ident
    )
    v = (
        a6 @ (b[12] * a6 + b[10] * a4 + b[8] * a2)
        + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * ident
    )
    return u, v


def fast_expm_stack(a: np.ndarray) -> np.ndarray:
    """Matrix exponential of a ``(B, m, m)`` stack, one slice per matrix.

    Slice ``k`` of the result is **bit-for-bit** ``expm(a[k])``: numpy's
    stacked matmul/solve gufuncs run the identical BLAS/LAPACK call per
    slice, the per-slice 1-norms and scaling powers reproduce the scalar
    control flow, and the squaring phase re-squares exactly the slices
    whose scale demands it.  This is the vectorised heart of the batched
    posterior error estimates: one stacked Padé evaluation replaces one
    small ``expm`` per Arnoldi column per iteration.

    Raises
    ------
    ValueError
        If any slice contains non-finite entries (as the scalar expm
        does for that slice); callers fall back to per-column handling.
    numpy.linalg.LinAlgError
        If any slice's Padé denominator is singular.
    """
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"expected a (B, m, m) stack, got {a.shape}")
    B, m, _ = a.shape
    if m == 0:
        return np.zeros((B, 0, 0))
    if m == 1:
        return np.exp(a)

    norms = np.abs(a).sum(axis=1).max(axis=1)
    if not np.all(np.isfinite(norms)):
        raise ValueError("expm: matrix contains non-finite entries")

    s = np.zeros(B, dtype=int)
    big = norms > _THETA13
    if np.any(big):
        s[big] = np.ceil(np.log2(norms[big] / _THETA13)).astype(int)
        a = a / (2.0 ** s)[:, None, None]

    u, v = _pade13_stack(a)
    r = np.linalg.solve(v - u, v + u)
    with np.errstate(over="ignore", invalid="ignore"):
        for step in range(int(s.max()) if B else 0):
            idx = s > step
            r[idx] = r[idx] @ r[idx]
    return r


class FastHessenberg:
    """Bitwise drop-in for :class:`repro.linalg.krylov.HessenbergFactors`.

    Same ``getrf`` factorisation, same exactly-zero-pivot singularity
    rule, same tiny-identity-shift fallback for the inverse, same
    raise-on-singular contract for the transposed row solve — through
    the raw LAPACK bindings instead of the ``lu_factor``/``lu_solve``
    wrappers (which call the identical routines after ~10× the Python
    overhead).
    """

    def __init__(self, h_square: np.ndarray):
        self.h_square = h_square
        self.m = h_square.shape[0]
        lu, piv, info = _GETRF(h_square)
        self._factors = (lu, piv)
        diag = np.abs(np.diag(lu))
        self.singular = bool(self.m) and float(diag.min()) == 0.0  # repro: allow[RPL005] exact zero pivot is the singularity sentinel

    def _shifted_factors(self):
        delta = 1e-30 * (1.0 + float(np.abs(self.h_square).max()))
        shifted = self.h_square + delta * np.eye(self.m)
        lu, piv, info = _GETRF(shifted)
        return lu, piv

    def inverse(self) -> np.ndarray:
        lu, piv = self._shifted_factors() if self.singular else self._factors
        out, info = _GETRS(lu, piv, _eye(self.m))
        return out

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        if self.singular:
            raise np.linalg.LinAlgError(
                "singular Hessenberg block has no H^{-1} row"
            )
        lu, piv = self._factors
        out, info = _GETRS(lu, piv, rhs, trans=1)
        return out


class FastEstimator:
    """Fast-kernel mirror of one operator's Hessenberg-side arithmetic.

    Reimplements ``error_estimate`` / ``effective_hm`` / ``_error_row``
    of the three :class:`~repro.linalg.krylov.KrylovExpmOperator`
    flavours on top of :class:`FastHessenberg` and :func:`fast_expm`.
    Bit-for-bit parity with the canonical SciPy-wrapped implementations
    is enforced by ``tests/test_block_krylov.py``.
    """

    def __init__(self, op: KrylovExpmOperator):
        self.method = op.method
        self.gamma = getattr(op, "gamma", None)
        if self.method not in ("standard", "inverted", "rational"):
            raise ValueError(f"unknown Krylov method {self.method!r}")

    # -- per-method maps ---------------------------------------------------------

    def factors(self, h_square: np.ndarray) -> FastHessenberg | None:
        if self.method == "standard":
            return None
        return FastHessenberg(h_square)

    def effective_hm(
        self, h_square: np.ndarray, factors: FastHessenberg | None = None
    ) -> np.ndarray:
        if self.method == "standard":
            return -h_square
        if factors is None:
            factors = FastHessenberg(h_square)
        if self.method == "inverted":
            return -factors.inverse()
        return (_eye(h_square.shape[0]) - factors.inverse()) / self.gamma

    def error_row(
        self, h_square: np.ndarray, factors: FastHessenberg | None = None
    ) -> np.ndarray:
        m = h_square.shape[0]
        e_m = np.zeros(m)
        e_m[m - 1] = 1.0
        if self.method == "standard":
            return e_m
        if factors is None:
            factors = FastHessenberg(h_square)
        return factors.solve_transposed(e_m)

    def error_estimate(
        self,
        h: float,
        H: np.ndarray,
        beta: float,
        factors: FastHessenberg | None = None,
    ) -> float:
        if self.method == "standard":
            return self._standard_estimate(h, H, beta)
        return self._hinv_row_estimate(h, H, beta, factors=factors)

    # -- estimate bodies (mirroring krylov.py line for line) ------------------------

    def _standard_estimate(self, h: float, H: np.ndarray, beta: float) -> float:
        m = H.shape[1]
        h_next = float(H[m, m - 1])
        heff = -H[:m, :m]
        aug = np.zeros((m + 1, m + 1))
        aug[:m, :m] = h * heff
        aug[0, m] = h
        try:
            col = fast_expm(aug)[:m, m]
        except (ValueError, np.linalg.LinAlgError):
            return np.inf
        val = abs(col[m - 1])
        if not np.isfinite(val):
            return np.inf
        return beta * abs(h_next) * val

    def _hinv_row_estimate(
        self,
        h: float,
        H: np.ndarray,
        beta: float,
        factors: FastHessenberg | None = None,
    ) -> float:
        m = H.shape[1]
        h_next = float(H[m, m - 1])
        h_square = H[:m, :m]
        try:
            with np.errstate(over="ignore", invalid="ignore"):
                if factors is None:
                    factors = FastHessenberg(h_square)
                heff = self.effective_hm(h_square, factors=factors)
                col = _fast_expm_e1(h * heff)
                e_m = np.zeros(m)
                e_m[m - 1] = 1.0
                row = factors.solve_transposed(e_m)
                est = beta * abs(h_next * float(row @ col))
        except (ValueError, np.linalg.LinAlgError):
            return np.inf
        if not np.isfinite(est):
            return np.inf
        return est


def prime_eig_payloads(bases: list[KrylovBasis]) -> None:
    """Batch-precompute the evaluation eigendecompositions of many bases.

    Every :class:`~repro.linalg.krylov.KrylovBasis` lazily diagonalises
    its ``Hm`` on first evaluation (``eig`` + a condition estimate + one
    small solve — the dominant per-basis setup cost).  Bases built in a
    lockstep round share their dimension, so the whole round primes
    through three stacked gufunc calls whose per-slice results are
    bit-for-bit the single-matrix ones.  Bases that cannot be primed
    (LAPACK non-convergence anywhere in a stack) are simply left lazy —
    the scalar fallback computes the identical payload per basis.
    """
    groups: dict[int, list[KrylovBasis]] = {}
    for b in bases:
        if b.m > 0 and b._eig is None:
            groups.setdefault(b.m, []).append(b)
    for m, group in groups.items():
        stack = np.stack([b.Hm for b in group])
        try:
            d, s = np.linalg.eig(stack)
            e1 = np.zeros(m)
            e1[0] = 1.0
            s_inv_e1 = np.linalg.solve(s, np.tile(e1, (len(group), 1))[..., None])[..., 0]
            conds = np.linalg.cond(s)
        except np.linalg.LinAlgError:
            continue
        for i, b in enumerate(group):
            usable = bool(np.isfinite(conds[i]) and conds[i] < 1e10)
            object.__setattr__(
                b, "_eig", (usable, (d[i], s[i], s_inv_e1[i]))
            )


# -- lockstep block Arnoldi ---------------------------------------------------------


@dataclass
class _Column:
    """Mutable lockstep state of one Arnoldi column."""

    idx: int
    v: np.ndarray
    h: float
    tol: float
    beta: float
    V: np.ndarray | None = None
    H: np.ndarray | None = None
    cap: int = 0
    m: int = 0
    active: bool = False
    converged: bool = False
    happy: bool = False
    applies: int = field(init=False, default=0)
    #: Estimate/factors of the most recent convergence test, reused by
    #: the finalisation when it happened at the final dimension (the
    #: scalar path recomputes the identical value there).
    last_est: float | None = None
    last_est_m: int = -1
    last_factors: FastHessenberg | None = None


def _batched_test_estimates(
    estimator: FastEstimator, testing: list[_Column], m: int
) -> dict[int, float]:
    """Posterior error estimates for all columns testing at dimension ``m``.

    The per-column Hessenberg factorisations stay scalar (raw getrf /
    getrs are a few µs), but the small matrix exponentials — the bulk of
    each estimate — are fused into one :func:`fast_expm_stack` call.
    Any anomaly (singular block, non-finite scaling) routes the affected
    columns through the canonical scalar estimate, so every value is
    bit-for-bit what the per-node path would have computed.
    """
    ests: dict[int, float] = {}
    if estimator.method == "standard" or len(testing) == 1:
        for c in testing:
            ests[c.idx] = estimator.error_estimate(
                c.h, c.H[: m + 1, : m], c.beta
            )
            c.last_est, c.last_est_m, c.last_factors = ests[c.idx], m, None
        return ests

    stacked: list[tuple[_Column, FastHessenberg, np.ndarray, float]] = []
    h_squares = np.empty((len(testing), m, m))
    e_m = np.zeros(m)
    e_m[m - 1] = 1.0
    with np.errstate(over="ignore", invalid="ignore"):
        for c in testing:
            h_square = c.H[:m, :m]
            factors = FastHessenberg(h_square)
            if factors.singular:
                est = estimator.error_estimate(
                    c.h, c.H[: m + 1, : m], c.beta
                )
                ests[c.idx] = est
                c.last_est, c.last_est_m, c.last_factors = est, m, None
                continue
            row = factors.solve_transposed(e_m)
            h_squares[len(stacked)] = h_square
            stacked.append((c, factors, row, float(c.H[m, m - 1])))
        if stacked:
            R = None
            try:
                # Stacked gesv is bitwise the getrf+getrs pair the
                # scalar inverse runs; the exponent map and scaled
                # exponentials then batch elementwise per slice.
                inv = np.linalg.solve(
                    h_squares[: len(stacked)],
                    np.broadcast_to(_eye(m), (len(stacked), m, m)),
                )
                if estimator.method == "inverted":
                    heffs = -inv
                else:
                    heffs = (_eye(m) - inv) / estimator.gamma
                heffs *= np.array([c.h for c, _, _, _ in stacked])[
                    :, None, None
                ]
                R = fast_expm_stack(heffs)
            except (ValueError, np.linalg.LinAlgError):
                R = None
            for i, (c, factors, row, h_next) in enumerate(stacked):
                if R is None:
                    est = estimator.error_estimate(
                        c.h, c.H[: m + 1, : m], c.beta, factors=factors
                    )
                else:
                    col = np.ascontiguousarray(R[i, :, 0])
                    est = c.beta * abs(h_next * float(row @ col))
                    if not np.isfinite(est):
                        est = np.inf
                ests[c.idx] = est
                c.last_est, c.last_est_m, c.last_factors = est, m, factors
    return ests


def build_bases_block(
    op: KrylovExpmOperator,
    vs: list,
    hs: list,
    tols: list,
    m_max: int = 100,
    min_dim: int = 2,
    estimator: FastEstimator | None = None,
) -> list[KrylovBasis]:
    """Build one Krylov basis per column, marching all columns in lockstep.

    Parameters
    ----------
    op:
        The shared Krylov operator (one sparse LU for every column —
        the paper's shared-pencil property).
    vs, hs, tols:
        Per-column start vectors, convergence-test step sizes and error
        budgets (exactly the arguments the scalar
        :meth:`~repro.linalg.krylov.KrylovExpmOperator.build_basis`
        takes one at a time).
    m_max, min_dim:
        Basis-dimension cap and first-test iteration, shared.
    estimator:
        Hessenberg-side kernel; defaults to a :class:`FastEstimator`
        for ``op`` (bitwise-identical to the canonical estimates).

    Returns
    -------
    list[KrylovBasis]
        One basis per input column, each bit-for-bit equal to
        ``op.build_basis(vs[k], hs[k], tols[k], m_max, min_dim)``.

    Notes
    -----
    The solve accounting matches the scalar path: ``op.n_solves`` grows
    by one per column per lockstep iteration the column is active —
    i.e. by ``basis.m`` per column over the whole build.
    """
    if estimator is None:
        estimator = FastEstimator(op)
    n_cols = len(vs)
    if not (len(hs) == len(tols) == n_cols):
        raise ValueError("vs, hs and tols must have equal lengths")
    if n_cols == 0:
        return []
    if m_max < 1:
        raise ValueError("m_max must be at least 1")

    cols: list[_Column] = []
    n = None
    for k in range(n_cols):
        v = np.asarray(vs[k], dtype=float)
        if n is None:
            n = v.shape[0]
        elif v.shape[0] != n:
            raise ValueError("all start vectors must share one dimension")
        beta = float(np.linalg.norm(v))
        cols.append(
            _Column(idx=k, v=v, h=float(hs[k]), tol=float(tols[k]), beta=beta)
        )

    m_cap = min(m_max, n)
    tiny = np.finfo(float).tiny

    for c in cols:
        if c.beta == 0.0:  # repro: allow[RPL005] exact Krylov-breakdown sentinel, like arnoldi()
            continue  # trivially converged empty subspace, like arnoldi()
        c.cap = _initial_capacity(m_cap)
        c.V = np.empty((n, c.cap + 1))
        c.H = np.zeros((c.cap + 1, c.cap))
        c.V[:, 0] = c.v / c.beta
        c.active = True

    for j in range(m_cap):
        active = [c for c in cols if c.active]
        if not active:
            break
        for c in active:
            c.V, c.H, c.cap = _ensure_capacity(c.V, c.H, c.cap, j + 1, m_cap)

        # One batched operator application for every active column: a
        # single sparse mat-mat product + multi-RHS substitution, with
        # columns bit-identical to per-column scalar applies.
        if len(active) == 1:
            W = op.apply(active[0].V[:, j])[:, None]
        else:
            block = np.empty((n, len(active)))
            for i, c in enumerate(active):
                block[:, i] = c.V[:, j]
            W = op.apply_block(block)

        if not np.all(np.isfinite(W)):
            bad = [
                c.idx for i, c in enumerate(active)
                if not np.all(np.isfinite(W[:, i]))
            ]
            raise ArnoldiBreakdown(
                f"operator returned non-finite values at iteration "
                f"{j + 1} (columns {bad})"
            )

        testing: list[_Column] = []
        for i, c in enumerate(active):
            c.applies += 1
            w = np.ascontiguousarray(W[:, i])
            # float(sqrt(w·w)) is numpy's exact norm formula for 1-d
            # real vectors, minus the wrapper dispatch.
            w_scale = float(np.sqrt(w.dot(w)))
            basis_block = c.V[:, : j + 1]
            coeffs = basis_block.T @ w
            w = w - basis_block @ coeffs
            c.H[: j + 1, j] += coeffs
            corr = basis_block.T @ w
            w = w - basis_block @ corr
            c.H[: j + 1, j] += corr
            h_next = float(np.sqrt(w.dot(w)))
            c.H[j + 1, j] = h_next
            c.m = j + 1

            if h_next <= _BREAKDOWN_TOL * max(w_scale, tiny):
                c.V[:, j + 1] = 0.0
                c.happy = True
                c.converged = True
                c.active = False
                continue

            c.V[:, j + 1] = w / h_next

            if c.m >= min_dim:
                # The scalar path throttles the (expensive) test on deep
                # bases; replicated so the stopping decisions coincide.
                if c.m > _TEST_THROTTLE_DIM and c.m % _TEST_THROTTLE_EVERY:
                    continue
                testing.append(c)

        if testing:
            # All lockstep columns test at the same dimension, so their
            # posterior estimates batch into one stacked expm.
            ests = _batched_test_estimates(estimator, testing, j + 1)
            for c in testing:
                if ests[c.idx] < c.tol:
                    c.converged = True
                    c.active = False

    for c in cols:
        c.active = False

    return [_finalize_basis(op, estimator, c) for c in cols]


def _finalize_basis(
    op: KrylovExpmOperator, estimator: FastEstimator, c: _Column
) -> KrylovBasis:
    """Package one finished column exactly like ``build_basis`` does."""
    if c.m == 0:
        return KrylovBasis(
            Vm=np.zeros((c.v.shape[0], 0)), Hm=np.zeros((0, 0)), beta=0.0,
            h_built=c.h, m=0, error_estimate=0.0, method=op.method,
        )
    h_square = np.ascontiguousarray(c.H[: c.m, : c.m])
    factors = c.last_factors if c.last_est_m == c.m else None
    if factors is None:
        factors = estimator.factors(h_square)
    heff = estimator.effective_hm(h_square, factors=factors)
    if c.happy:
        err = 0.0
        h_next = 0.0
        err_row = None
    else:
        # The convergence test at the final dimension already computed
        # this exact estimate (getrf is deterministic); reuse it.
        if c.last_est_m == c.m and c.last_est is not None:
            err = c.last_est
        else:
            err = estimator.error_estimate(
                c.h, c.H[: c.m + 1, : c.m], c.beta, factors=factors
            )
        h_next = float(c.H[c.m, c.m - 1])
        err_row = estimator.error_row(h_square, factors=factors)
    return KrylovBasis(
        Vm=c.V[:, : c.m].copy(), Hm=heff, beta=c.beta,
        h_built=c.h, m=c.m, error_estimate=err, method=op.method,
        h_next=h_next, err_row=err_row,
    )
