"""Krylov-subspace approximation of ``exp(hA) v`` for MNA pencils.

This is the numerical heart of MATEX.  The descriptor system
``C x' = -G x + B u`` has ``A = -C⁻¹G``, which is never formed: each
Krylov flavour works through one sparse LU factorisation and reduces
``exp(hA)v`` to the exponential of a tiny Hessenberg matrix:

===========  ==================  ======================  =======================
method       factors (X1)        Arnoldi operator        effective Hm
===========  ==================  ======================  =======================
standard     ``C``               ``C⁻¹ G = -A``          ``-H``          (MEXP)
inverted     ``G``               ``G⁻¹ C = -A⁻¹``        ``-H⁻¹``        (I-MATEX)
rational     ``C + γG``          ``(C+γG)⁻¹C=(I-γA)⁻¹``  ``(I - H̃⁻¹)/γ`` (R-MATEX)
===========  ==================  ======================  =======================

each satisfying ``exp(hA) v ≈ β V_m exp(h·Hm) e_1`` (paper Secs. 2.3,
3.3.1, 3.3.2).  The inverted/rational variants capture the *small*
magnitude eigenvalues of ``A`` first — the ones that dominate the circuit
response — which is why their basis stays around m ≈ 10 where MEXP needs
hundreds on stiff circuits (paper Table 1).

Crucially, the standard method must factor ``C`` and therefore fails on
singular ``C`` (missing node capacitors), requiring MNA regularization;
the inverted/rational methods only factor ``G`` or ``C+γG`` and are
regularization-free (paper Sec. 3.3.3).

A :class:`KrylovBasis` is the reusable artefact of one Arnoldi run: MATEX
re-evaluates it at any step ``h`` inside the current piecewise-linear
input segment just by rescaling the Hessenberg exponent (paper Sec. 2.4,
Alg. 2 line 11).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.linalg.arnoldi import ArnoldiResult, arnoldi
from repro.linalg.expm import expm, expm_e1
from repro.linalg.lu import (
    FACTORIZATION_CACHE,
    FactorizationError,
    SparseLU,
    canonical_shift,
)

__all__ = [
    "HessenbergFactors",
    "KrylovBasis",
    "KrylovExpmOperator",
    "StandardKrylov",
    "InvertedKrylov",
    "RationalKrylov",
    "RegularizationRequiredError",
    "make_krylov_operator",
    "METHOD_NAMES",
]

MethodName = Literal["standard", "inverted", "rational"]

#: Canonical method names with their paper aliases.
METHOD_NAMES = {
    "standard": "standard", "mexp": "standard",
    "inverted": "inverted", "imatex": "inverted", "i-matex": "inverted",
    "rational": "rational", "rmatex": "rational", "r-matex": "rational",
}


class RegularizationRequiredError(FactorizationError):
    """Standard-Krylov (MEXP) needs a non-singular ``C``.

    Raised when ``C`` cannot be factored; the paper's fix is either an MNA
    regularization pass (Chen et al., TCAD'12) or — MATEX's answer —
    switching to the inverted/rational subspaces (Sec. 3.3.3).
    """


@dataclass
class KrylovBasis:
    """A reusable Krylov approximation of ``h ↦ exp(hA) v``.

    Built once at a Local Transition Spot, evaluated many times at the
    Snapshots that follow (paper Alg. 2): ``evaluate(h)`` returns
    ``β V_m exp(h·Hm) e_1`` for any ``h``.

    Attributes
    ----------
    Vm:
        ``n × m`` orthonormal basis.
    Hm:
        Effective ``m × m`` matrix (already mapped so the exponent is
        ``h * Hm`` regardless of the generating method).
    beta:
        Norm of the starting vector.
    h_built:
        The step size used for the convergence test when the basis was
        generated.  Fig. 5 shows the approximation only *improves* for
        larger ``h``, so reuse with ``h > h_built`` is safe.
    m:
        Basis dimension.
    error_estimate:
        Posterior error estimate at ``h_built``.
    method:
        Canonical generating-method name.
    h_next:
        Subdiagonal entry ``h_{m+1,m}`` of the generating Arnoldi run
        (0 on happy breakdown).
    err_row:
        Row functional of the posterior estimate, so the error can be
        re-checked at any reuse step via :meth:`error_at`.
    """

    Vm: np.ndarray
    Hm: np.ndarray
    beta: float
    h_built: float
    m: int
    error_estimate: float
    method: str
    h_next: float = 0.0
    err_row: np.ndarray | None = None
    _eig: tuple | None = None

    #: Above this basis dimension the rank-1 accumulation kernel would
    #: cost more Python round-trips than it saves; fall back to one BLAS
    #: gemv per column (only MEXP on stiff circuits gets here).
    _LOOP_KERNEL_MAX_M = 32

    def _eig_payload(self):
        """Cached eigendecomposition of ``Hm`` (diagonalise once, O(m³)),
        so each evaluation costs O(m²) instead of a fresh Padé ``expm``.
        ``usable`` is False when the eigenvector matrix is ill-conditioned
        (defective ``Hm``) and evaluations must fall back to Padé."""
        if self._eig is None:
            usable = False
            payload = None
            try:
                d, s = np.linalg.eig(self.Hm)
                s_inv_e1 = np.linalg.solve(s, np.eye(self.m)[:, 0])
                cond = np.linalg.cond(s)
                usable = np.isfinite(cond) and cond < 1e10
                payload = (d, s, s_inv_e1)
            except np.linalg.LinAlgError:
                pass
            object.__setattr__(self, "_eig", (usable, payload))
        return self._eig

    def _expm_e1_many(self, hs: np.ndarray) -> np.ndarray:
        """``exp(h·Hm) e_1`` for a whole vector of steps, shape ``(m, K)``.

        The accumulation is an explicit rank-1 loop over the basis
        columns so each output column is **bit-for-bit identical**
        whether evaluated alone (``K = 1``, the per-node marching path)
        or as part of a span batch (the block runner): elementwise
        broadcasting never changes the per-element operation order,
        whereas BLAS gemm and gemv kernels disagree in the last ulp.
        """
        usable, payload = self._eig_payload()
        m = self.m
        if not usable:
            cols = np.empty((m, len(hs)))
            for k, h in enumerate(hs):
                cols[:, k] = expm_e1(float(h) * self.Hm)
            return cols
        d, s, s_inv_e1 = payload
        with np.errstate(over="ignore", invalid="ignore"):
            E = np.exp(np.multiply.outer(d, hs)) * s_inv_e1[:, None]
            if m <= self._LOOP_KERNEL_MAX_M:
                acc = s[:, 0:1] * E[0:1, :]
                for j in range(1, m):
                    acc += s[:, j:j + 1] * E[j:j + 1, :]
            else:
                acc = np.empty((m, len(hs)), dtype=complex)
                for k in range(E.shape[1]):
                    acc[:, k] = s @ np.ascontiguousarray(E[:, k])
            return acc.real

    def evaluate_many(
        self, hs, with_errors: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate the basis at many steps at once.

        Returns ``(Y, errs)`` with ``Y`` of shape ``(K, n)`` — row ``k``
        is ``β V_m exp(hs[k]·Hm) e_1`` (row-major, so a marching span
        commits straight into its states block) — and ``errs`` the
        posterior error estimate per step (zeros when the basis carries
        no error row, or when ``with_errors`` is false).  This is the
        batched Hessenberg-exponential kernel behind snapshot reuse:
        the scalar :meth:`evaluate` / :meth:`evaluate_with_error`
        delegate here with ``K = 1``, so batched and per-step
        evaluations are bit-for-bit interchangeable.
        """
        hs = np.asarray(hs, dtype=float)
        K = hs.shape[0]
        n = self.Vm.shape[0]
        if self.m == 0:
            return np.zeros((K, n)), np.zeros(K)
        cols = self._expm_e1_many(hs)
        if self.m <= self._LOOP_KERNEL_MAX_M:
            acc = cols[0][:, None] * self.Vm[:, 0][None, :]
            if self.m > 1:
                tmp = np.empty_like(acc)
                for j in range(1, self.m):
                    np.multiply(
                        cols[j][:, None], self.Vm[:, j][None, :], out=tmp
                    )
                    acc += tmp
            Y = np.multiply(acc, self.beta, out=acc)
        else:
            Y = np.empty((K, n))
            for k in range(K):
                Y[k] = self.beta * (
                    self.Vm @ np.ascontiguousarray(cols[:, k])
                )
        if not with_errors or self.err_row is None or self.h_next == 0.0:  # repro: allow[RPL005] exact happy-breakdown sentinel
            return Y, np.zeros(K)
        dots = self.err_row[0] * cols[0, :]
        for j in range(1, self.m):
            dots = dots + self.err_row[j] * cols[j, :]
        errs = self.beta * np.abs(self.h_next * dots)
        return Y, errs

    def evaluate(self, h: float) -> np.ndarray:
        """Return ``β V_m exp(h Hm) e_1`` — the reuse step of Alg. 2."""
        Y, _ = self.evaluate_many([h], with_errors=False)
        return Y[0]

    def error_at(self, h: float) -> float:
        """Posterior error estimate re-evaluated at step ``h``.

        Used by the solver before serving a snapshot from this basis:
        normally the error only shrinks as ``h`` grows (paper Fig. 5),
        and this check catches the exceptions.
        """
        if self.m == 0 or self.err_row is None or self.h_next == 0.0:  # repro: allow[RPL005] exact happy-breakdown sentinel
            return 0.0
        _, errs = self.evaluate_many([h])
        return float(errs[0])

    def evaluate_with_error(self, h: float) -> tuple[np.ndarray, float]:
        """Snapshot fast path: value and posterior error from one
        small-matrix exponential evaluation."""
        Y, errs = self.evaluate_many([h])
        return Y[0], float(errs[0])


class HessenbergFactors:
    """LU factors of one small Hessenberg block — factor once, solve many.

    The inverted/rational error estimates and effective-exponent maps all
    need ``H⁻¹`` products of the *same* ``m × m`` block: the inverse for
    the exponent, and the ``e_m^T H⁻¹`` row for the posterior residual.
    Previously each consumer ran its own ``np.linalg.solve``; this class
    factors the block once (``scipy.linalg.lu_factor``) and serves every
    product by substitution (``lu_solve``).

    Singularity handling preserves the pencil semantics: a (near-)
    singular block arises when the start vector lies in the *algebraic*
    part of the descriptor system (``C v ≈ 0`` — e.g. MNA voltage-source
    branch currents): the pencil has an infinite generalised eigenvalue
    there, and the physical flow damps such components instantaneously.
    For the **inverse** we refactor with a tiny positive identity shift,
    mapping those directions to enormous negative exponent entries so
    ``exp(h·Hm)`` sends them to zero (paper Sec. 3.3.3 / Lemma 1).  The
    **row solve** keeps the historical contract instead: on a singular
    block it reports failure (the caller treats the residual estimate as
    "not converged"), never a silently shifted answer.
    """

    def __init__(self, h_square: np.ndarray):
        self.h_square = h_square
        self.m = h_square.shape[0]
        with warnings.catch_warnings():
            # lu_factor warns (LinAlgWarning) on an exactly-zero pivot;
            # we detect that case from the U diagonal below.
            warnings.simplefilter("ignore")
            self._factors = scipy.linalg.lu_factor(h_square)
        diag = np.abs(np.diag(self._factors[0]))
        self.singular = bool(self.m) and float(diag.min()) == 0.0  # repro: allow[RPL005] exact zero pivot is the singularity sentinel

    def _shifted_factors(self):
        """Factors of the identity-shifted block (singular fallback)."""
        delta = 1e-30 * (1.0 + float(np.abs(self.h_square).max()))
        shifted = self.h_square + delta * np.eye(self.m)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return scipy.linalg.lu_factor(shifted)

    def inverse(self) -> np.ndarray:
        """``H⁻¹`` by m substitutions against the shared factors."""
        factors = self._shifted_factors() if self.singular else self._factors
        return scipy.linalg.lu_solve(factors, np.eye(self.m))

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        """``H^{-T} rhs`` (the ``e_m^T H⁻¹`` row of Eqs. 8/10).

        Raises
        ------
        numpy.linalg.LinAlgError
            If the block is exactly singular — matching the pre-factored
            ``np.linalg.solve`` behaviour the error estimates rely on.
        """
        if self.singular:
            raise np.linalg.LinAlgError(
                "singular Hessenberg block has no H^{-1} row"
            )
        return scipy.linalg.lu_solve(self._factors, rhs, trans=1)


class KrylovExpmOperator:
    """Base class: one factorisation + Arnoldi-based ``exp(hA)v`` products.

    Subclasses define which matrix is factored (``X1``), which is applied
    (``X2``), how the Arnoldi Hessenberg maps to the effective exponent
    matrix, and the posterior error estimate used as the convergence test
    in Alg. 1 lines 10-12.
    """

    method: str = "base"

    def __init__(self, C: sp.spmatrix, G: sp.spmatrix):
        self.C = sp.csc_matrix(C)
        self.G = sp.csc_matrix(G)
        if self.C.shape != self.G.shape:
            raise ValueError(
                f"C and G must have identical shapes, "
                f"got {self.C.shape} vs {self.G.shape}"
            )
        self._lu: SparseLU | None = None
        self._x2: sp.csc_matrix | None = None
        self._factor()

    # -- subclass hooks --------------------------------------------------------

    def _factor(self) -> None:
        raise NotImplementedError

    def effective_hm(
        self, H: np.ndarray, factors: HessenbergFactors | None = None
    ) -> np.ndarray:
        """Map the Arnoldi Hessenberg block to the exponent matrix.

        ``factors`` lets callers that already factored ``H`` (the error
        estimates, ``build_basis``) reuse the LU instead of refactoring.
        """
        raise NotImplementedError

    def _hess_factors(self, h_square: np.ndarray) -> HessenbergFactors | None:
        """Factor the Hessenberg block once for all ``H⁻¹`` consumers.

        The standard subspace never inverts ``H`` and returns ``None``.
        """
        return None

    # -- shared machinery --------------------------------------------------------

    @property
    def lu(self) -> SparseLU:
        """The single factorisation this operator performs."""
        return self._lu

    @property
    def n_solves(self) -> int:
        """Forward/backward substitution pairs consumed so far."""
        return self._lu.n_solves

    @property
    def factor_seconds(self) -> float:
        """Wall time of the one-off factorisation."""
        return self._lu.factor_seconds

    def apply(self, v: np.ndarray) -> np.ndarray:
        """One Arnoldi operator application: ``X1⁻¹ (X2 v)``."""
        return self._lu.solve(self._x2 @ v)

    def apply_block(self, V: np.ndarray) -> np.ndarray:
        """Batched operator application over a dense column block.

        One sparse mat-mat product plus one multi-RHS substitution; the
        accounting charges one forward/backward pair per column, and
        each output column is bit-for-bit identical to a scalar
        :meth:`apply` of that column: CSC products scatter
        column-by-column, and the level-scheduled substitution kernel
        (:mod:`repro.linalg.triangular`) reproduces the scalar sweep's
        accumulation order per column at any batch width.  This is the
        primitive the lockstep block-Arnoldi builds on.
        """
        if V.ndim == 1:
            return self.apply(V)
        return self._lu.solve_many(self._x2 @ V)

    def error_estimate(
        self,
        h: float,
        H: np.ndarray,
        beta: float,
        factors: HessenbergFactors | None = None,
    ) -> float:
        """Posterior error of the current subspace at step ``h``.

        Base implementation: the standard-Krylov residual norm of paper
        Eq. (7), ``‖r_m(h)‖ = β |h_{m+1,m} e_m^T exp(h·Hm) e_1|``.  The
        inverted/rational subclasses override this with the Eq. (8)/(10)
        forms, which carry an extra ``e_m^T H⁻¹`` row factor (empirically
        the difference between stopping correctly and stopping ~10 orders
        of magnitude too early on stiff PDNs — see tests).
        """
        m = H.shape[1]
        h_next = float(H[m, m - 1])
        heff = self.effective_hm(H[:m, :m])
        col = expm_e1(h * heff)
        return beta * abs(h_next * col[m - 1])

    def _hinv_row_estimate(
        self,
        h: float,
        H: np.ndarray,
        beta: float,
        factors: HessenbergFactors | None = None,
    ) -> float:
        """Residual estimate ``β |h_{m+1,m} · e_m^T H⁻¹ exp(h·Hm) e_1|``.

        This is the regularization-free specialisation of Eqs. (8)/(10):
        the leading operator factors (``A`` resp. ``(I-γA)/γ``) cannot be
        applied when ``C`` is singular, and numerically the remaining row
        functional already tracks the true error within a small factor
        (validated against dense ``expm`` in the test suite).

        One LU of the small block serves both ``H⁻¹`` products — the
        effective exponent and the ``e_m^T H⁻¹`` row.
        """
        m = H.shape[1]
        h_next = float(H[m, m - 1])
        h_square = H[:m, :m]
        try:
            with np.errstate(over="ignore", invalid="ignore"):
                if factors is None:
                    factors = self._hess_factors(h_square)
                heff = self.effective_hm(h_square, factors=factors)
                col = expm_e1(h * heff)
                e_m = np.zeros(m)
                e_m[m - 1] = 1.0
                row = factors.solve_transposed(e_m)  # e_m^T H^{-1}
                est = beta * abs(h_next * float(row @ col))
        except (ValueError, np.linalg.LinAlgError):
            return np.inf
        # A spurious positive Ritz value (oblique projection artefact,
        # possible mid-iteration on RLC systems) overflows the small
        # exponential; report "not converged" so Arnoldi keeps going.
        if not np.isfinite(est):
            return np.inf
        return est

    def _error_row(
        self,
        h_square: np.ndarray,
        factors: HessenbergFactors | None = None,
    ) -> np.ndarray:
        """Row functional of the posterior estimate (for basis reuse)."""
        m = h_square.shape[0]
        e_m = np.zeros(m)
        e_m[m - 1] = 1.0
        return e_m

    def build_basis(
        self,
        v: np.ndarray,
        h: float,
        tol: float,
        m_max: int = 100,
        min_dim: int = 2,
    ) -> KrylovBasis:
        """Run Alg. 1: Arnoldi with the posterior-error stopping rule.

        Parameters
        ----------
        v:
            Starting vector (in MATEX: ``x(t) + F(t, h)``).
        h:
            The step size used in the convergence test.
        tol:
            Error budget ``ε`` for ``‖r_m(h)‖``.
        m_max:
            Hard cap on the basis dimension (MEXP on stiff circuits runs
            into this; I-/R-MATEX converge around m ≈ 10).
        min_dim:
            Iterations before the first convergence test.
        """

        def converged(m: int, H: np.ndarray, V: np.ndarray, beta: float) -> bool:
            # Each test costs an m×m expm; once the basis is large (only
            # MEXP on stiff circuits gets there) testing every iteration
            # would dominate, so throttle to every 5th vector.
            if m > 60 and m % 5 != 0:
                return False
            return self.error_estimate(h, H, beta) < tol

        res: ArnoldiResult = arnoldi(
            self.apply, v, m_max=m_max, convergence=converged, min_dim=min_dim
        )
        if res.m == 0:
            return KrylovBasis(
                Vm=res.V[:, :0], Hm=np.zeros((0, 0)), beta=0.0,
                h_built=h, m=0, error_estimate=0.0, method=self.method,
            )
        # One LU of the final Hessenberg block serves the effective
        # exponent, the posterior estimate and the reuse error row.
        factors = self._hess_factors(res.Hm)
        heff = self.effective_hm(res.Hm, factors=factors)
        if res.happy_breakdown:
            err = 0.0
            h_next = 0.0
            err_row = None
        else:
            err = self.error_estimate(h, res.H, res.beta, factors=factors)
            h_next = res.h_next
            err_row = self._error_row(res.Hm, factors=factors)
        return KrylovBasis(
            Vm=res.Vm.copy(), Hm=heff, beta=res.beta,
            h_built=h, m=res.m, error_estimate=err, method=self.method,
            h_next=h_next, err_row=err_row,
        )

    def expm_multiply(
        self,
        v: np.ndarray,
        h: float,
        tol: float = 1e-8,
        m_max: int = 100,
        min_dim: int = 2,
    ) -> tuple[np.ndarray, KrylovBasis]:
        """Approximate ``exp(hA) v``; returns the value and reusable basis."""
        basis = self.build_basis(v, h, tol=tol, m_max=m_max, min_dim=min_dim)
        return basis.evaluate(h), basis


class StandardKrylov(KrylovExpmOperator):
    """MEXP's standard Krylov subspace ``K_m(A, v)`` (paper Sec. 2.3).

    Factors ``C`` (hence *requires regularization* when ``C`` is
    singular) and applies ``C⁻¹G = -A``.  On stiff circuits the basis must
    grow large to capture the dominant small-magnitude eigenvalues, which
    is exactly the weakness Table 1 quantifies.
    """

    method = "standard"

    def _factor(self) -> None:
        try:
            self._lu = FACTORIZATION_CACHE.factor(self.C, label="C")
        except FactorizationError as exc:
            raise RegularizationRequiredError(
                "standard Krylov (MEXP) must factor C, which is singular "
                "for this circuit; regularize the MNA system or use the "
                "inverted/rational methods (paper Sec. 3.3.3)"
            ) from exc
        self._x2 = self.G

    def effective_hm(
        self, H: np.ndarray, factors: HessenbergFactors | None = None
    ) -> np.ndarray:
        # Arnoldi ran on C⁻¹G = -A, so exp(hA) = exp(-h·H) on the subspace.
        return -H

    def error_estimate(
        self,
        h: float,
        H: np.ndarray,
        beta: float,
        factors: HessenbergFactors | None = None,
    ) -> float:
        """Integrated (hump-aware) version of the Eq. (7) residual.

        On stiff circuits the point residual at τ = h underflows long
        before the approximation is accurate: the residual mass sits in a
        boundary layer τ ≲ 1/‖A‖ (the "hump").  The error transfer
        ``e(h) = ∫ exp((h-τ)A) r(τ) dτ`` suggests the integrated residual

            ‖e(h)‖ ≲ β |h_{m+1,m}| · |e_m^T h·φ1(h·Hm) e_1|

        with ``φ1(z) = (e^z - 1)/z``, evaluated through one augmented
        matrix exponential.  This keeps MEXP iterating until m ≈ h·‖A‖,
        exactly the basis blow-up the paper's Table 1 reports (m in the
        hundreds where I-/R-MATEX need ~10).
        """
        m = H.shape[1]
        h_next = float(H[m, m - 1])
        heff = self.effective_hm(H[:m, :m])
        # exp([[hH, h e1],[0, 0]]) has top-right column h·φ1(hH)·e1.
        aug = np.zeros((m + 1, m + 1))
        aug[:m, :m] = h * heff
        aug[0, m] = h
        try:
            col = expm(aug)[:m, m]
        except (ValueError, np.linalg.LinAlgError):
            return np.inf
        val = abs(col[m - 1])
        if not np.isfinite(val):
            return np.inf
        return beta * abs(h_next) * val


class InvertedKrylov(KrylovExpmOperator):
    """I-MATEX inverted subspace ``K_m(A⁻¹, v)`` (paper Sec. 3.3.1).

    Factors ``G`` and applies ``G⁻¹C = -A⁻¹``; small-magnitude eigenvalues
    of ``A`` become dominant in ``A⁻¹`` and are captured by a tiny basis.
    Regularization-free: ``C`` is never factored.
    """

    method = "inverted"

    def _factor(self) -> None:
        self._lu = FACTORIZATION_CACHE.factor(self.G, label="G")
        self._x2 = self.C

    def _hess_factors(self, h_square: np.ndarray) -> HessenbergFactors:
        return HessenbergFactors(h_square)

    def effective_hm(
        self, H: np.ndarray, factors: HessenbergFactors | None = None
    ) -> np.ndarray:
        # Arnoldi ran on -A⁻¹ ⇒ A ≈ -H⁻¹ on the subspace.
        if factors is None:
            factors = self._hess_factors(H)
        return -factors.inverse()

    def error_estimate(
        self,
        h: float,
        H: np.ndarray,
        beta: float,
        factors: HessenbergFactors | None = None,
    ) -> float:
        """Eq. (8) residual estimate (regularization-free form)."""
        return self._hinv_row_estimate(h, H, beta, factors=factors)

    def _error_row(
        self,
        h_square: np.ndarray,
        factors: HessenbergFactors | None = None,
    ) -> np.ndarray:
        m = h_square.shape[0]
        e_m = np.zeros(m)
        e_m[m - 1] = 1.0
        if factors is None:
            factors = self._hess_factors(h_square)
        return factors.solve_transposed(e_m)


class RationalKrylov(KrylovExpmOperator):
    """R-MATEX shift-and-invert subspace ``K_m((I-γA)⁻¹, v)`` (Sec. 3.3.2).

    Factors ``C + γG`` and applies ``(C+γG)⁻¹C = (I-γA)⁻¹``.  The shift
    compresses the whole spectrum of ``A`` into the unit disk, so the
    basis dimension is small *and* spread evenly across time points —
    the best performer in the paper.  γ should sit near the order of the
    time steps used (paper: γ = 1e-10 for 10ps-scale stepping; Table 3).

    Parameters
    ----------
    gamma:
        The shift parameter γ in seconds.
    """

    method = "rational"

    def __init__(self, C: sp.spmatrix, G: sp.spmatrix, gamma: float = 1e-10):
        if gamma <= 0.0:
            raise ValueError(f"gamma must be positive, got {gamma!r}")
        # Canonicalise γ before it touches the pencil: γ values equal up
        # to arithmetic-order noise (h/2 vs 0.5*h-style derivations) must
        # build the same C+γG and share one FACTORIZATION_CACHE entry.
        self.gamma = canonical_shift(float(gamma))
        super().__init__(C, G)

    def _factor(self) -> None:
        shifted = (self.C + self.gamma * self.G).tocsc()
        self._lu = FACTORIZATION_CACHE.factor(
            shifted, label=f"C+{self.gamma:g}*G", key_extra=("gamma", self.gamma)
        )
        self._x2 = self.C

    def _hess_factors(self, h_square: np.ndarray) -> HessenbergFactors:
        return HessenbergFactors(h_square)

    def effective_hm(
        self, H: np.ndarray, factors: HessenbergFactors | None = None
    ) -> np.ndarray:
        # Arnoldi ran on (I-γA)⁻¹ ⇒ A ≈ (I - H̃⁻¹)/γ on the subspace.
        m = H.shape[0]
        if factors is None:
            factors = self._hess_factors(H)
        return (np.eye(m) - factors.inverse()) / self.gamma

    def error_estimate(
        self,
        h: float,
        H: np.ndarray,
        beta: float,
        factors: HessenbergFactors | None = None,
    ) -> float:
        """Eq. (10) residual estimate (regularization-free form)."""
        return self._hinv_row_estimate(h, H, beta, factors=factors)

    def _error_row(
        self,
        h_square: np.ndarray,
        factors: HessenbergFactors | None = None,
    ) -> np.ndarray:
        m = h_square.shape[0]
        e_m = np.zeros(m)
        e_m[m - 1] = 1.0
        if factors is None:
            factors = self._hess_factors(h_square)
        return factors.solve_transposed(e_m)


def make_krylov_operator(
    method: str,
    C: sp.spmatrix,
    G: sp.spmatrix,
    gamma: float = 1e-10,
) -> KrylovExpmOperator:
    """Factory accepting paper aliases (``mexp``/``imatex``/``rmatex``).

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES` (case-insensitive).
    C, G:
        The MNA descriptor matrices.
    gamma:
        Shift for the rational method; ignored otherwise.
    """
    canonical = METHOD_NAMES.get(method.lower())
    if canonical is None:
        raise ValueError(
            f"unknown Krylov method {method!r}; "
            f"choose from {sorted(set(METHOD_NAMES))}"
        )
    if canonical == "standard":
        return StandardKrylov(C, G)
    if canonical == "inverted":
        return InvertedKrylov(C, G)
    return RationalKrylov(C, G, gamma=gamma)
