"""Sparse LU factorisation wrapper with operation accounting.

The paper's entire complexity argument (Sec. 3.4) is phrased in terms of
*pairs of forward and backward substitutions* against a matrix factored
**once** at the start of the simulation.  This wrapper makes that currency
explicit: every :meth:`SparseLU.solve` increments a counter, and the
factorisation wall-time is recorded separately so experiments can report
"transient part excluding LU" exactly like the paper's Table 3.

The paper uses UMFPACK; SciPy's ``splu`` (SuperLU) plays the same role
here — factor once, reuse many times (documented substitution, DESIGN.md).

On top of the wrapper sits the process-wide :data:`FACTORIZATION_CACHE`:
the paper's amortisation claim (one ``C + γG`` factorisation serves an
entire adaptive run, and — Sec. 3.4 — *every* node task of a distributed
run, since all sub-tasks share the same MNA pencil) made explicit.  The
cache is keyed by a content fingerprint of the matrix plus an optional
extra key (the rational shift γ), and a **hit costs no factorisation
time**: consumers receive a fresh handle that shares the factors but
counts its own substitutions, so solver statistics stay per-consumer.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = [
    "SparseLU",
    "FactorizationError",
    "FactorizationCache",
    "FACTORIZATION_CACHE",
    "canonical_shift",
    "matrix_fingerprint",
]


class FactorizationError(RuntimeError):
    """Raised when LU factorisation fails (structurally singular matrix)."""


@dataclass
class SparseLU:
    """LU factorisation of a sparse matrix with solve counting.

    Parameters
    ----------
    matrix:
        Square sparse matrix to factor (converted to CSC).
    label:
        Human-readable tag used in error messages and stats, e.g. ``"G"``
        or ``"C+gamma*G"``.

    Attributes
    ----------
    factor_seconds:
        Wall-clock time spent inside the factorisation.
    n_solves:
        Number of forward/backward substitution pairs performed so far.
    """

    matrix: sp.spmatrix
    label: str = "A"
    factor_seconds: float = field(init=False, default=0.0)
    n_solves: int = field(init=False, default=0)
    _lu: spla.SuperLU = field(init=False, repr=False, default=None)

    def __post_init__(self):
        m = sp.csc_matrix(self.matrix)
        if m.shape[0] != m.shape[1]:
            raise ValueError(f"{self.label}: matrix must be square, got {m.shape}")
        t0 = time.perf_counter()
        try:
            self._lu = spla.splu(m)
        except RuntimeError as exc:  # SuperLU signals singularity this way
            raise FactorizationError(
                f"LU factorisation of {self.label} failed: {exc}"
            ) from exc
        self.factor_seconds = time.perf_counter() - t0
        self.matrix = m

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """One forward/backward substitution pair: return ``A⁻¹ rhs``."""
        self.n_solves += 1
        return self._lu.solve(np.asarray(rhs, dtype=float))

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against a dense block of right-hand sides (columns).

        Counts one substitution pair per column, matching the paper's
        accounting (each column is an independent pair).
        """
        rhs = np.asarray(rhs, dtype=float)
        n_cols = 1 if rhs.ndim == 1 else rhs.shape[1]
        self.n_solves += n_cols
        return self._lu.solve(rhs)

    def reset_counters(self) -> None:
        """Zero the solve counter (factor time is kept)."""
        self.n_solves = 0

    @classmethod
    def _shared_view(cls, origin: "SparseLU", label: str) -> "SparseLU":
        """A handle sharing ``origin``'s factors with fresh counters.

        Used by :class:`FactorizationCache` on a hit: the substitution
        counters belong to the new consumer, and ``factor_seconds`` is
        zero because the hit paid no factorisation — which is exactly the
        amortisation the cache exists to demonstrate.
        """
        view = object.__new__(cls)
        view.matrix = origin.matrix
        view.label = label
        view.factor_seconds = 0.0
        view.n_solves = 0
        view._lu = origin._lu
        return view


def canonical_shift(gamma: float, sig_digits: int = 12) -> float:
    """Quantize a rational shift γ to its canonical representative.

    γ values that are mathematically equal but derived through different
    arithmetic orders (``h/2`` vs ``(t1-t0)/2`` vs a running sum) can
    differ by an ulp.  Used raw, such values build pencils ``C + γG``
    that differ in the last bit — a silent :data:`FACTORIZATION_CACHE`
    miss that refactors a matrix the cache already holds.  Rounding to
    ``sig_digits`` significant decimal digits (default 12, ~40 bits —
    far below solver accuracy requirements on γ, far above float noise)
    collapses those representations onto one key **and one pencil**, so
    consumers that canonicalise γ before building the shifted matrix
    hit the cache and agree bit-for-bit.

    Values already expressible in ``sig_digits`` digits (every literal
    like ``1e-10`` or ``5e-11``) round-trip unchanged.
    """
    g = float(gamma)
    if g == 0.0 or not math.isfinite(g):
        return g
    return float(f"{g:.{sig_digits - 1}e}")


def matrix_fingerprint(matrix: sp.spmatrix) -> str:
    """Content digest of a sparse matrix (shape + structure + values).

    Two matrices collide only if they are numerically identical in CSC
    form, so a fingerprint match means the cached factors solve the new
    system bit-for-bit.  Hashing is O(nnz) — orders of magnitude cheaper
    than the factorisation it may save.
    """
    m = sp.csc_matrix(matrix)
    h = hashlib.sha256()
    h.update(np.asarray(m.shape, dtype=np.int64).tobytes())
    h.update(m.indptr.tobytes())
    h.update(m.indices.tobytes())
    h.update(np.ascontiguousarray(m.data, dtype=float).tobytes())
    return h.hexdigest()


class FactorizationCache:
    """Process-wide LRU cache of :class:`SparseLU` factorisations.

    Keyed by :func:`matrix_fingerprint` plus an optional ``key_extra``
    (e.g. the rational shift γ, so R-MATEX pencils built for different
    shifts never alias even if their entries happened to coincide).

    Every :meth:`factor` call returns a handle with **its own** solve
    counters: the first consumer gets the original (carrying the real
    ``factor_seconds``), later consumers get shared views that report
    zero factorisation time — the amortised cost of a hit.

    The cache is per-process.  Worker processes of the distributed
    :class:`~repro.dist.executors.MultiprocessExecutor` each grow their
    own (their factors cannot be shipped through a pipe); the in-process
    :class:`~repro.dist.executors.SerialExecutor` shares one cache with
    the scheduler, which is where the Sec. 3.4 "same pencil, many tasks"
    reuse shows up as hits.

    Residency is bounded two ways: at most ``max_entries`` factors, and
    at most ``max_bytes`` of estimated factor + matrix storage (SuperLU
    reports its L+U fill, so the estimate tracks reality).  Sweeps over
    many large pencils therefore evict old factors instead of pinning
    multi-GB of LU data for the life of the process; call :meth:`clear`
    to release everything eagerly.
    """

    def __init__(self, max_entries: int = 32, max_bytes: int = 256 << 20):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, SparseLU] = OrderedDict()
        self._bytes: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _entry_bytes(lu: "SparseLU") -> int:
        """Approximate resident bytes of one entry (factors + matrix).

        12 bytes per stored nonzero (8 data + 4 index) for both the
        CSC matrix and the SuperLU L+U fill.
        """
        factor_nnz = getattr(lu._lu, "nnz", lu.matrix.nnz)
        return 12 * (int(factor_nnz) + int(lu.matrix.nnz))

    def factor(
        self,
        matrix: sp.spmatrix,
        label: str = "A",
        key_extra: object = None,
    ) -> SparseLU:
        """Return an LU of ``matrix``, reusing cached factors when possible.

        Parameters
        ----------
        matrix:
            Square sparse matrix; fingerprinted by content.
        label:
            Label for the returned handle (hits keep their own label so
            error messages stay truthful about the consumer).
        key_extra:
            Extra hashable key component, e.g. the γ of a shifted pencil.
        """
        key = (matrix_fingerprint(matrix), key_extra)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return SparseLU._shared_view(cached, label)
            self.misses += 1
        # Factor outside the lock: a rare duplicate factorisation beats
        # serialising every factorisation in the process behind one lock.
        lu = SparseLU(matrix, label=label)
        with self._lock:
            self._entries[key] = lu
            self._bytes[key] = self._entry_bytes(lu)
            # Evict LRU until both bounds hold.  A single pencil larger
            # than the whole byte budget ends up passing through
            # uncached (it is evicted too) rather than pinning
            # arbitrary memory for the life of the process.
            while self._entries and (
                len(self._entries) > self.max_entries
                or sum(self._bytes.values()) > self.max_bytes
            ):
                evicted, _ = self._entries.popitem(last=False)
                self._bytes.pop(evicted, None)
        return lu

    def counters(self) -> tuple[int, int]:
        """Snapshot of ``(hits, misses)`` for delta-based attribution."""
        with self._lock:
            return self.hits, self.misses

    @property
    def resident_bytes(self) -> int:
        """Estimated bytes currently pinned by cached factors."""
        with self._lock:
            return sum(self._bytes.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all cached factors and zero the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._bytes.clear()
            self.hits = 0
            self.misses = 0


#: The process-wide cache used by solvers, workers and the scheduler.
FACTORIZATION_CACHE = FactorizationCache()
