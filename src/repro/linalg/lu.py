"""Sparse LU factorisation wrapper with operation accounting.

The paper's entire complexity argument (Sec. 3.4) is phrased in terms of
*pairs of forward and backward substitutions* against a matrix factored
**once** at the start of the simulation.  This wrapper makes that currency
explicit: every :meth:`SparseLU.solve` increments a counter, and the
factorisation wall-time is recorded separately so experiments can report
"transient part excluding LU" exactly like the paper's Table 3.

The paper uses UMFPACK; SciPy's ``splu`` (SuperLU) plays the same role
here — factor once, reuse many times (documented substitution, DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["SparseLU", "FactorizationError"]


class FactorizationError(RuntimeError):
    """Raised when LU factorisation fails (structurally singular matrix)."""


@dataclass
class SparseLU:
    """LU factorisation of a sparse matrix with solve counting.

    Parameters
    ----------
    matrix:
        Square sparse matrix to factor (converted to CSC).
    label:
        Human-readable tag used in error messages and stats, e.g. ``"G"``
        or ``"C+gamma*G"``.

    Attributes
    ----------
    factor_seconds:
        Wall-clock time spent inside the factorisation.
    n_solves:
        Number of forward/backward substitution pairs performed so far.
    """

    matrix: sp.spmatrix
    label: str = "A"
    factor_seconds: float = field(init=False, default=0.0)
    n_solves: int = field(init=False, default=0)
    _lu: spla.SuperLU = field(init=False, repr=False, default=None)

    def __post_init__(self):
        m = sp.csc_matrix(self.matrix)
        if m.shape[0] != m.shape[1]:
            raise ValueError(f"{self.label}: matrix must be square, got {m.shape}")
        t0 = time.perf_counter()
        try:
            self._lu = spla.splu(m)
        except RuntimeError as exc:  # SuperLU signals singularity this way
            raise FactorizationError(
                f"LU factorisation of {self.label} failed: {exc}"
            ) from exc
        self.factor_seconds = time.perf_counter() - t0
        self.matrix = m

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """One forward/backward substitution pair: return ``A⁻¹ rhs``."""
        self.n_solves += 1
        return self._lu.solve(np.asarray(rhs, dtype=float))

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against a dense block of right-hand sides (columns).

        Counts one substitution pair per column, matching the paper's
        accounting (each column is an independent pair).
        """
        rhs = np.asarray(rhs, dtype=float)
        n_cols = 1 if rhs.ndim == 1 else rhs.shape[1]
        self.n_solves += n_cols
        return self._lu.solve(rhs)

    def reset_counters(self) -> None:
        """Zero the solve counter (factor time is kept)."""
        self.n_solves = 0
