"""Sparse LU factorisation wrapper with operation accounting.

The paper's entire complexity argument (Sec. 3.4) is phrased in terms of
*pairs of forward and backward substitutions* against a matrix factored
**once** at the start of the simulation.  This wrapper makes that currency
explicit: every :meth:`SparseLU.solve` increments a counter, and the
factorisation wall-time is recorded separately so experiments can report
"transient part excluding LU" exactly like the paper's Table 3.

The paper uses UMFPACK; SciPy's ``splu`` (SuperLU) plays the same role
here — factor once, reuse many times (documented substitution, DESIGN.md).

On top of the wrapper sits the process-wide :data:`FACTORIZATION_CACHE`:
the paper's amortisation claim (one ``C + γG`` factorisation serves an
entire adaptive run, and — Sec. 3.4 — *every* node task of a distributed
run, since all sub-tasks share the same MNA pencil) made explicit.  The
cache is keyed by a content fingerprint of the matrix plus an optional
extra key (the rational shift γ), and a **hit costs no factorisation
time**: consumers receive a fresh handle that shares the factors but
counts its own substitutions, so solver statistics stay per-consumer.
"""

from __future__ import annotations

import hashlib
import math
import os
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.linalg.triangular import TriangularHolder, kernel_mode

__all__ = [
    "SparseLU",
    "FactorizationError",
    "FactorizationCache",
    "FACTORIZATION_CACHE",
    "DEFAULT_CACHE_MAX_ENTRIES",
    "DEFAULT_CACHE_MAX_BYTES",
    "ENV_CACHE_MAX_ENTRIES",
    "ENV_CACHE_MAX_BYTES",
    "canonical_shift",
    "matrix_fingerprint",
    "parse_byte_size",
]


class FactorizationError(RuntimeError):
    """Raised when LU factorisation fails (structurally singular matrix)."""


@dataclass
class SparseLU:
    """LU factorisation of a sparse matrix with solve counting.

    Parameters
    ----------
    matrix:
        Square sparse matrix to factor (converted to CSC).
    label:
        Human-readable tag used in error messages and stats, e.g. ``"G"``
        or ``"C+gamma*G"``.

    Attributes
    ----------
    factor_seconds:
        Wall-clock time spent inside the factorisation.
    n_solves:
        Number of forward/backward substitution pairs performed so far.
    """

    matrix: sp.spmatrix
    label: str = "A"
    factor_seconds: float = field(init=False, default=0.0)
    n_solves: int = field(init=False, default=0)
    _lu: spla.SuperLU = field(init=False, repr=False, default=None)
    _tri: TriangularHolder = field(init=False, repr=False, default=None)

    def __post_init__(self):
        m = sp.csc_matrix(self.matrix)
        if m.shape[0] != m.shape[1]:
            raise ValueError(f"{self.label}: matrix must be square, got {m.shape}")
        t0 = time.perf_counter()
        try:
            self._lu = spla.splu(m)
        except RuntimeError as exc:  # SuperLU signals singularity this way
            raise FactorizationError(
                f"LU factorisation of {self.label} failed: {exc}"
            ) from exc
        self.factor_seconds = time.perf_counter() - t0
        self.matrix = m
        self._tri = TriangularHolder()

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """One forward/backward substitution pair: return ``A⁻¹ rhs``.

        Substitutes through the exported column-sweep kernel
        (:mod:`repro.linalg.triangular`) — the arithmetic definition the
        multi-RHS level kernel matches bit-for-bit per column — falling
        back to SuperLU's own solve in ``legacy`` mode or when the
        export could not be verified.  A 2-D right-hand side is routed
        through :meth:`solve_many` (one counted pair per column).
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim != 1:
            return self.solve_many(rhs)
        self.n_solves += 1
        tri = None
        if kernel_mode() != "legacy":
            tri = self._tri.get(self._lu, self.matrix)
        if tri is None:
            return self._lu.solve(rhs)
        return tri.solve(rhs)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against a dense block of right-hand sides (columns).

        Counts one substitution pair per column, matching the paper's
        accounting (each column is an independent pair).

        Output contract (pinned by ``tests/test_lu.py``): a 2-D input of
        ``k`` columns — including ``k = 0`` — returns an **F-ordered**
        float64 ``(n, k)`` block; a 1-D input returns a 1-D float64
        vector bit-identical to :meth:`solve`.

        All columns are substituted in lockstep by the level-scheduled
        kernel (:class:`repro.linalg.triangular.TriangularFactors`):
        SuperLU's factors are exported once per factorisation, each
        triangular factor is scheduled into topological levels of its
        dependency DAG, and every level applies one CSR block-matvec
        whose per-row accumulation order is exactly the scalar column
        sweep's (ascending original columns for ``L``, descending for
        ``U``).  Each output column is therefore **bit-for-bit
        identical** to :meth:`solve` of that column *by construction* —
        at any batch width and any offset within the batch — which is
        the invariant the lockstep block march (and the scenario sweeps
        stacked on top of it) is built on, while the batch runs ~3×
        faster than substituting column by column.  Handing SuperLU the
        whole block instead would not be per-column deterministic: its
        supernodal BLAS kernels change accumulation order with the RHS
        count (bit-stable on pg1t's ``G``, divergent at nrhs = 8 on
        pg4t's pencil).

        Escape hatches (``REPRO_TRIANGULAR_KERNEL`` / the CLI's
        ``--triangular-kernel``): ``column`` loops over the exported
        scalar path — same bits, no level kernel — and ``legacy``
        restores SuperLU's own per-column solves.  Factors whose export
        fails verification use the legacy path automatically.
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.ndim == 1:
            return self.solve(rhs)
        n, n_cols = rhs.shape
        self.n_solves += n_cols
        if n_cols == 0:
            return np.empty((n, 0), dtype=float, order="F")
        mode = kernel_mode()
        tri = None
        if mode != "legacy":
            tri = self._tri.get(
                self._lu, self.matrix,
                schedule=(mode == "level" and n_cols > 1),
            )
        if tri is not None and mode == "level" and n_cols > 1:
            return tri.solve_many(rhs)
        out = np.empty((n, n_cols), dtype=float, order="F")
        if tri is None:
            for i in range(n_cols):
                out[:, i] = self._lu.solve(rhs[:, i])
        else:
            for i in range(n_cols):
                out[:, i] = tri.solve(rhs[:, i])
        return out

    def prime_kernel(self, wide: bool = True) -> bool:
        """Eagerly export the substitution kernel for later solves.

        ``wide`` also builds the level schedules the multi-RHS kernel
        runs on.  Called at plan-compile time so a scenario sweep's
        first lockstep round pays no export latency; a no-op (returning
        ``False``) in ``legacy`` mode or when the export falls back.
        """
        if kernel_mode() == "legacy":
            return False
        return self._tri.get(self._lu, self.matrix, schedule=wide) is not None

    def resident_bytes(self) -> int:
        """Estimated bytes pinned by this factorisation right now.

        12 bytes per stored nonzero (8 data + 4 index) for the CSC
        matrix and the SuperLU L+U fill, plus the *actual* bytes of the
        exported triangular factors and level schedules once they are
        built — the quantity :class:`FactorizationCache` budgets with.
        """
        factor_nnz = getattr(self._lu, "nnz", self.matrix.nnz)
        return (
            12 * (int(factor_nnz) + int(self.matrix.nnz))
            + self._tri.nbytes()
        )

    def reset_counters(self) -> None:
        """Zero the solve counter (factor time is kept)."""
        self.n_solves = 0

    @classmethod
    def _shared_view(cls, origin: "SparseLU", label: str) -> "SparseLU":
        """A handle sharing ``origin``'s factors with fresh counters.

        Used by :class:`FactorizationCache` on a hit: the substitution
        counters belong to the new consumer, and ``factor_seconds`` is
        zero because the hit paid no factorisation — which is exactly the
        amortisation the cache exists to demonstrate.  The triangular
        holder is shared too: exports and level schedules are built once
        per factorisation, never per view.
        """
        view = object.__new__(cls)
        view.matrix = origin.matrix
        view.label = label
        view.factor_seconds = 0.0
        view.n_solves = 0
        view._lu = origin._lu
        view._tri = origin._tri
        return view


def canonical_shift(gamma: float, sig_digits: int = 12) -> float:
    """Quantize a rational shift γ to its canonical representative.

    γ values that are mathematically equal but derived through different
    arithmetic orders (``h/2`` vs ``(t1-t0)/2`` vs a running sum) can
    differ by an ulp.  Used raw, such values build pencils ``C + γG``
    that differ in the last bit — a silent :data:`FACTORIZATION_CACHE`
    miss that refactors a matrix the cache already holds.  Rounding to
    ``sig_digits`` significant decimal digits (default 12, ~40 bits —
    far below solver accuracy requirements on γ, far above float noise)
    collapses those representations onto one key **and one pencil**, so
    consumers that canonicalise γ before building the shifted matrix
    hit the cache and agree bit-for-bit.

    Values already expressible in ``sig_digits`` digits (every literal
    like ``1e-10`` or ``5e-11``) round-trip unchanged.
    """
    g = float(gamma)
    if g == 0.0 or not math.isfinite(g):  # repro: allow[RPL005] exact zero passes through rounding unchanged
        return g
    return float(f"{g:.{sig_digits - 1}e}")


def matrix_fingerprint(matrix: sp.spmatrix) -> str:
    """Content digest of a sparse matrix (shape + structure + values).

    Two matrices collide only if they are numerically identical in CSC
    form, so a fingerprint match means the cached factors solve the new
    system bit-for-bit.  Hashing is O(nnz) — orders of magnitude cheaper
    than the factorisation it may save.
    """
    m = sp.csc_matrix(matrix)
    h = hashlib.sha256()
    h.update(np.asarray(m.shape, dtype=np.int64).tobytes())
    h.update(m.indptr.tobytes())
    h.update(m.indices.tobytes())
    h.update(np.ascontiguousarray(m.data, dtype=float).tobytes())
    return h.hexdigest()


#: Built-in residency limits of the process-wide cache.
DEFAULT_CACHE_MAX_ENTRIES = 32
DEFAULT_CACHE_MAX_BYTES = 256 << 20

#: Environment variables overriding the limits at process start (the
#: CLI's ``--factor-cache-entries`` / ``--factor-cache-bytes`` flags
#: reconfigure the live cache instead).
ENV_CACHE_MAX_ENTRIES = "REPRO_FACTOR_CACHE_ENTRIES"
ENV_CACHE_MAX_BYTES = "REPRO_FACTOR_CACHE_BYTES"

_BYTE_SUFFIXES = {
    "k": 1 << 10, "kb": 1 << 10, "kib": 1 << 10,
    "m": 1 << 20, "mb": 1 << 20, "mib": 1 << 20,
    "g": 1 << 30, "gb": 1 << 30, "gib": 1 << 30,
}


def parse_byte_size(text: str | int) -> int:
    """Parse a byte count with an optional K/M/G (or KiB/MiB/GiB) suffix.

    >>> parse_byte_size("512M")
    536870912
    """
    if isinstance(text, int):
        return text
    s = str(text).strip().lower()
    for suffix, mult in sorted(_BYTE_SUFFIXES.items(), key=lambda kv: -len(kv[0])):
        if s.endswith(suffix):
            return int(float(s[: -len(suffix)]) * mult)
    return int(s)


def _limit_from_env(name: str, default: int, parse) -> int:
    """Read one cache limit from the environment, falling back loudly.

    A malformed value must not make ``import repro`` raise, but it must
    not be silently ignored either — sweeps sized via these variables
    would otherwise thrash the default-sized cache invisibly.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = parse(raw)
        if value < 1:
            raise ValueError("must be >= 1")
        return value
    except (ValueError, TypeError):
        warnings.warn(
            f"ignoring invalid {name}={raw!r}; using default {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default


class FactorizationCache:
    """Process-wide LRU cache of :class:`SparseLU` factorisations.

    Keyed by :func:`matrix_fingerprint` plus an optional ``key_extra``
    (e.g. the rational shift γ, so R-MATEX pencils built for different
    shifts never alias even if their entries happened to coincide).

    Every :meth:`factor` call returns a handle with **its own** solve
    counters: the first consumer gets the original (carrying the real
    ``factor_seconds``), later consumers get shared views that report
    zero factorisation time — the amortised cost of a hit.

    The cache is per-process.  Worker processes of the distributed
    :class:`~repro.dist.executors.MultiprocessExecutor` each grow their
    own (their factors cannot be shipped through a pipe); the in-process
    :class:`~repro.dist.executors.SerialExecutor` shares one cache with
    the scheduler, which is where the Sec. 3.4 "same pencil, many tasks"
    reuse shows up as hits.

    Residency is bounded two ways: at most ``max_entries`` factors, and
    at most ``max_bytes`` of estimated factor + matrix storage (SuperLU
    reports its L+U fill, and the exported triangular factors / level
    schedules of :mod:`repro.linalg.triangular` are measured exactly
    and re-measured on every size-based decision, so the estimate
    tracks reality even though exports build lazily).  Sweeps over
    many large pencils therefore evict old factors instead of pinning
    multi-GB of LU data for the life of the process; call :meth:`clear`
    to release everything eagerly.

    The process-wide :data:`FACTORIZATION_CACHE` limits default to
    :data:`DEFAULT_CACHE_MAX_ENTRIES` / :data:`DEFAULT_CACHE_MAX_BYTES`
    and can be overridden per process through the
    :data:`ENV_CACHE_MAX_ENTRIES` / :data:`ENV_CACHE_MAX_BYTES`
    environment variables (byte sizes accept K/M/G suffixes) or at run
    time via :meth:`configure` (the CLI's ``--factor-cache-*`` flags).
    The ``evictions`` counter — surfaced by ``repro info`` and
    :class:`~repro.dist.messages.DistributedResult` — tells when a sweep
    over many pencils is silently thrashing the residency limits.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_CACHE_MAX_ENTRIES,
        max_bytes: int = DEFAULT_CACHE_MAX_BYTES,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, SparseLU] = OrderedDict()
        self._bytes: dict[tuple, int] = {}
        self._external: dict[str, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _entry_bytes(lu: "SparseLU") -> int:
        """Resident bytes of one entry (factors + matrix + exports).

        Delegates to :meth:`SparseLU.resident_bytes`, which includes the
        exported triangular factors and level schedules — without them
        the limits would undercount true memory by roughly the L+U fill
        once a consumer triggers the export.
        """
        return lu.resident_bytes()

    def _refresh_bytes_locked(self) -> None:
        """Re-measure every entry's residency (caller holds the lock).

        Kernel exports and level schedules are built lazily *after* an
        entry is inserted, so the recorded sizes go stale; refreshing
        before any size-based decision keeps the byte limit honest.
        """
        for key, lu in self._entries.items():
            self._bytes[key] = self._entry_bytes(lu)

    def factor(
        self,
        matrix: sp.spmatrix,
        label: str = "A",
        key_extra: object = None,
    ) -> SparseLU:
        """Return an LU of ``matrix``, reusing cached factors when possible.

        Parameters
        ----------
        matrix:
            Square sparse matrix; fingerprinted by content.
        label:
            Label for the returned handle (hits keep their own label so
            error messages stay truthful about the consumer).
        key_extra:
            Extra hashable key component, e.g. the γ of a shifted pencil.
        """
        key = (matrix_fingerprint(matrix), key_extra)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return SparseLU._shared_view(cached, label)
            self.misses += 1
        # Factor outside the lock: a rare duplicate factorisation beats
        # serialising every factorisation in the process behind one lock.
        lu = SparseLU(matrix, label=label)
        with self._lock:
            self._entries[key] = lu
            self._refresh_bytes_locked()
            self._evict_to_limits_locked()
        return lu

    def _evict_to_limits_locked(self) -> None:
        """Evict LRU entries until both residency bounds hold.

        A single pencil larger than the whole byte budget ends up
        passing through uncached (it is evicted too) rather than
        pinning arbitrary memory for the life of the process.  Caller
        holds ``self._lock``.
        """
        while self._entries and (
            len(self._entries) > self.max_entries
            or sum(self._bytes.values()) > self.max_bytes
        ):
            evicted, _ = self._entries.popitem(last=False)
            self._bytes.pop(evicted, None)
            self.evictions += 1

    def configure(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        """Re-bound the cache in place (evicting immediately if needed).

        ``None`` keeps the current value.  Counters are preserved —
        evictions triggered by a shrink are counted like any other.
        """
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        with self._lock:
            if max_entries is not None:
                self.max_entries = max_entries
            if max_bytes is not None:
                self.max_bytes = max_bytes
            self._refresh_bytes_locked()
            self._evict_to_limits_locked()

    def register_external(self, key: str, nbytes: int) -> None:
        """Account dense derived operators against the cache's books.

        Consumers that bake large dense operators *out of* cached
        factors — e.g. a :class:`repro.rom.ReducedModel` inside a
        compiled plan — register their footprint here so ``repro info``
        and :meth:`stats` report the true pinned memory.  External
        bytes are observability only: they are owned by their objects
        (a plan keeps its model alive regardless of LRU pressure), so
        they never trigger or suffer evictions.  Re-registering a key
        overwrites its size; ``nbytes <= 0`` unregisters.
        """
        with self._lock:
            if nbytes > 0:
                self._external[str(key)] = int(nbytes)
            else:
                self._external.pop(str(key), None)

    def unregister_external(self, key: str) -> None:
        """Drop one external registration (idempotent)."""
        with self._lock:
            self._external.pop(str(key), None)

    def stats(self) -> dict[str, int]:
        """One consistent snapshot of counters, residency and limits."""
        with self._lock:
            self._refresh_bytes_locked()
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "resident_bytes": sum(self._bytes.values()),
                "external_bytes": sum(self._external.values()),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }

    def counters(self) -> tuple[int, int]:
        """Snapshot of ``(hits, misses)`` for delta-based attribution."""
        with self._lock:
            return self.hits, self.misses

    @property
    def resident_bytes(self) -> int:
        """Estimated bytes currently pinned by cached factors."""
        with self._lock:
            self._refresh_bytes_locked()
            return sum(self._bytes.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all cached factors and zero the hit/miss/eviction counters."""
        with self._lock:
            self._entries.clear()
            self._bytes.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


#: The process-wide cache used by solvers, workers and the scheduler.
#: Limits come from the environment when set (see the class docstring).
FACTORIZATION_CACHE = FactorizationCache(
    max_entries=_limit_from_env(
        ENV_CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_ENTRIES, int
    ),
    max_bytes=_limit_from_env(
        ENV_CACHE_MAX_BYTES, DEFAULT_CACHE_MAX_BYTES, parse_byte_size
    ),
)
