"""Deterministic fault injection for the distributed executors.

Resilience code that only runs when real hardware misbehaves is
untested code.  This module makes the failure paths *schedulable*: a
:class:`FaultPlan` is a small, ordered list of faults, each armed at a
specific task id, that the dist layer consults at well-defined hook
points:

* ``kill@N``    — SIGKILL the worker process as it starts task ``N``
  (the classic mid-batch node death; only armed inside pool worker
  processes, so a degraded in-process rerun never shoots the host);
* ``delay@N:S`` — sleep ``S`` seconds at the start of task ``N``
  (drives the per-batch timeout path);
* ``shmfail@N`` — make the parent's shared-memory attach of task
  ``N``'s result fail (the segment is unlinked under the ref, so the
  *real* :class:`~repro.dist.shm.ShmAttachError` path runs);
* ``evict@N``   — clear the evaluating process's factorisation cache at
  task ``N`` (an eviction storm: every later factor is a miss).

Determinism contract
--------------------
Each directive fires **exactly once per plan state**, across processes
and across pool respawns: firing is an atomic ``O_CREAT | O_EXCL``
marker-file creation in a state directory shared by the parent and
every worker (workers inherit the environment).  Two identical
directives (``kill@0,kill@0``) therefore fire on two *successive*
deliveries of task 0 — which is how a test scripts "the first two
attempts of this batch die".  With the supervision layer retrying the
batch, a faulted run's results are bit-identical to the fault-free run.

Activation
----------
The plan travels through two environment variables so worker processes
see the same faults as the parent:

* ``REPRO_FAULTS`` — the comma-separated directive spec;
* ``REPRO_FAULTS_STATE`` — the shared fire-once marker directory.

:func:`install` sets both (creating a fresh state directory) and is
what the CLI ``--faults`` flag calls; tests may also set the variables
directly.  When ``REPRO_FAULTS_STATE`` is missing, a directory derived
from the spec's hash under the system temp dir is used — stable across
processes, but stale markers from a previous run with the identical
spec persist, so prefer :func:`install` / an explicit state dir.
"""

from __future__ import annotations

import hashlib
import os
import signal
import tempfile
import time
from dataclasses import dataclass

__all__ = [
    "FAULT_KINDS",
    "ENV_SPEC",
    "ENV_STATE",
    "FaultError",
    "FaultSpec",
    "FaultPlan",
    "active_plan",
    "install",
    "uninstall",
    "mark_worker_process",
    "in_worker_process",
    "on_task_start",
    "should_fail_attach",
]

ENV_SPEC = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"

#: Recognised directive kinds (see the module docstring for semantics).
FAULT_KINDS = ("kill", "delay", "shmfail", "evict")


class FaultError(ValueError):
    """A ``REPRO_FAULTS`` spec does not parse."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: ``kind`` at the start of task ``task_id``.

    ``index`` is the directive's position in the plan — it names the
    fire-once marker, so repeated directives stay distinct.
    """

    index: int
    kind: str
    task_id: int
    arg: float = 0.0

    @property
    def marker(self) -> str:
        """Fire-once marker filename (unique per directive)."""
        return f"{self.index:03d}.{self.kind}@{self.task_id}"

    def __str__(self) -> str:
        base = f"{self.kind}@{self.task_id}"
        return f"{base}:{self.arg:g}" if self.kind == "delay" else base


def _default_state_dir(spec: str) -> str:
    digest = hashlib.sha256(spec.encode()).hexdigest()[:12]
    return os.path.join(tempfile.gettempdir(), f"repro-faults-{digest}")


class FaultPlan:
    """A parsed, fire-once-stateful set of :class:`FaultSpec` directives."""

    def __init__(self, specs: list[FaultSpec], state_dir: str):
        self.specs = tuple(specs)
        self.state_dir = state_dir
        self._by_task: dict[int, list[FaultSpec]] = {}
        for f in self.specs:
            self._by_task.setdefault(f.task_id, []).append(f)

    @classmethod
    def parse(cls, spec: str, state_dir: str | None = None) -> "FaultPlan":
        """Parse ``kind@task[:arg](,kind@task[:arg])*`` into a plan.

        ``delay`` requires a positive ``:seconds`` argument; the other
        kinds reject one.  Raises :class:`FaultError` on anything else.
        """
        specs: list[FaultSpec] = []
        for index, raw in enumerate(spec.split(",")):
            raw = raw.strip()
            if not raw:
                raise FaultError(
                    f"empty directive at position {index} in {spec!r}"
                )
            kind, sep, rest = raw.partition("@")
            if kind not in FAULT_KINDS or not sep:
                raise FaultError(
                    f"bad directive {raw!r}: expected kind@task[:arg] "
                    f"with kind in {'/'.join(FAULT_KINDS)}"
                )
            task_part, sep, arg_part = rest.partition(":")
            try:
                task_id = int(task_part)
                if task_id < 0:
                    raise ValueError
            except ValueError:
                raise FaultError(
                    f"bad directive {raw!r}: task id must be a "
                    f"non-negative integer, got {task_part!r}"
                ) from None
            if kind == "delay":
                try:
                    arg = float(arg_part)
                    if not sep or arg <= 0.0:
                        raise ValueError
                except ValueError:
                    raise FaultError(
                        f"bad directive {raw!r}: delay needs "
                        f"delay@task:seconds with seconds > 0"
                    ) from None
            elif sep:
                raise FaultError(
                    f"bad directive {raw!r}: only delay takes an "
                    f":arg suffix"
                )
            else:
                arg = 0.0
            specs.append(FaultSpec(index, kind, task_id, arg))
        return cls(specs, state_dir or _default_state_dir(spec))

    # -- fire-once state --------------------------------------------------------

    def _fire(self, fault: FaultSpec) -> bool:
        """Atomically claim ``fault``; True exactly once across processes."""
        os.makedirs(self.state_dir, exist_ok=True)
        try:
            fd = os.open(
                os.path.join(self.state_dir, fault.marker),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fired(self) -> list[str]:
        """Markers of the directives that have fired (sorted)."""
        try:
            return sorted(os.listdir(self.state_dir))
        except FileNotFoundError:
            return []

    def reset(self) -> None:
        """Re-arm every directive (remove all fire-once markers)."""
        for name in self.fired():
            try:
                os.unlink(os.path.join(self.state_dir, name))
            except FileNotFoundError:
                pass

    # -- hook points ------------------------------------------------------------

    def on_task_start(self, task_id: int) -> None:
        """Worker-side hook: a task is about to be simulated.

        Fires at most one ``kill`` (the process dies) but any number of
        pending ``delay``/``evict`` directives armed at this task.
        """
        for fault in self._by_task.get(task_id, ()):
            if fault.kind == "delay":
                if self._fire(fault):
                    time.sleep(fault.arg)
            elif fault.kind == "evict":
                if self._fire(fault):
                    from repro.linalg.lu import FACTORIZATION_CACHE

                    FACTORIZATION_CACHE.clear()
            elif fault.kind == "kill":
                # Only pool workers are fair game: a degraded in-process
                # rerun (or a SerialExecutor host) must never be shot.
                if in_worker_process() and self._fire(fault):
                    os.kill(os.getpid(), signal.SIGKILL)

    def should_fail_attach(self, task_id: int) -> bool:
        """Parent-side hook: should this result's shm attach fail?"""
        for fault in self._by_task.get(task_id, ()):
            if fault.kind == "shmfail" and self._fire(fault):
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"FaultPlan({','.join(str(f) for f in self.specs)!r}, "
            f"state={self.state_dir!r})"
        )


# -- ambient activation ----------------------------------------------------------

_WORKER_PROCESS = False
#: Parse cache, keyed by the (spec, state_dir) environment pair.
_PLAN_CACHE: dict[tuple[str, str | None], FaultPlan] = {}


def mark_worker_process() -> None:
    """Arm lethal faults: this process is a disposable pool worker."""
    global _WORKER_PROCESS
    _WORKER_PROCESS = True


def in_worker_process() -> bool:
    """Whether this process declared itself a disposable pool worker."""
    return _WORKER_PROCESS


def active_plan() -> FaultPlan | None:
    """The ambient :class:`FaultPlan`, or ``None`` when faults are off.

    Reads ``REPRO_FAULTS`` / ``REPRO_FAULTS_STATE`` on every call (the
    parse itself is cached), so a test that sets the environment after
    import — or a worker process that inherited it — is picked up.
    """
    spec = os.environ.get(ENV_SPEC)
    if not spec:
        return None
    state = os.environ.get(ENV_STATE)
    key = (spec, state)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = FaultPlan.parse(spec, state)
        _PLAN_CACHE[key] = plan
    return plan


def install(spec: str, state_dir: str | None = None) -> FaultPlan:
    """Activate a fault spec process-tree-wide (CLI ``--faults`` body).

    Parses eagerly (a typo fails at argv time, not mid-sweep inside a
    worker), creates a fresh private state directory unless one is
    given, resets any stale markers in it, and exports both environment
    variables so every later-spawned worker inherits the plan.
    """
    if state_dir is None:
        state_dir = tempfile.mkdtemp(prefix="repro-faults-")
    plan = FaultPlan.parse(spec, state_dir)
    plan.reset()
    os.environ[ENV_SPEC] = spec
    os.environ[ENV_STATE] = state_dir
    _PLAN_CACHE[(spec, state_dir)] = plan
    return plan


def uninstall() -> None:
    """Deactivate ambient fault injection in this process."""
    os.environ.pop(ENV_SPEC, None)
    os.environ.pop(ENV_STATE, None)


# -- module-level hook shims (what the dist layer calls) --------------------------


def on_task_start(task_id: int) -> None:
    """Dispatch the task-start hook to the ambient plan, if any."""
    plan = active_plan()
    if plan is not None:
        plan.on_task_start(task_id)


def should_fail_attach(task_id: int) -> bool:
    """Dispatch the shm-attach hook to the ambient plan, if any."""
    plan = active_plan()
    return plan is not None and plan.should_fail_attach(task_id)
