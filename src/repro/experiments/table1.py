"""Table 1 — MEXP vs I-MATEX vs R-MATEX on stiff RC meshes.

Reproduces the paper's Sec. 4.1 experiment: transient simulation of RC
meshes over [0, 0.3ns] with 5ps steps, at three stiffness levels, with a
tiny-step backward-Euler reference (0.05ps, exactly as the paper).
Reported per (stiffness, method): average and peak Krylov basis
dimension (``ma``/``mp``), relative error, and the runtime speedup over
MEXP.

Expected shape (paper Table 1): MEXP's basis grows with stiffness into
the tens/hundreds while I-MATEX and R-MATEX stay around 5-20 and run
orders of magnitude faster; all methods hit comparable accuracy.
Absolute speedups are smaller here than the paper's 229X-2735X because
both the mesh and MEXP's basis are scaled down (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.errors import relative_error_pct
from repro.analysis.tables import Table
from repro.baselines.reference import reference_backward_euler
from repro.circuit.mna import assemble
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver
from repro.core.transition import build_schedule
from repro.pdn.rc_mesh import stiff_rc_mesh
from repro.pdn.stiffness import eigenvalue_extremes

__all__ = ["Table1Row", "STIFFNESS_LEVELS", "run_table1"]

#: The three stiffness levels: (label, fast_ratio, slow_ratio).  The
#: knobs scale both spectral extremes so the measured stiffness walks up
#: by decades while MEXP's basis requirement (∝ h·|λ_fast|) grows too.
STIFFNESS_LEVELS: list[tuple[str, float, float]] = [
    ("low", 10.0, 1e3),
    ("medium", 30.0, 1e6),
    ("high", 90.0, 1e9),
]

#: Method order of the paper's Table 1.
METHODS = ["standard", "inverted", "rational"]

METHOD_LABELS = {
    "standard": "MEXP",
    "inverted": "I-MATEX",
    "rational": "R-MATEX",
}


@dataclass
class Table1Row:
    """One (stiffness, method) measurement."""

    level: str
    stiffness: float
    method: str
    ma: float
    mp: int
    err_pct: float
    seconds: float
    speedup_vs_mexp: float
    n_solves: int


def run_table1(
    rows: int = 20,
    cols: int = 20,
    t_end: float = 3e-10,
    h: float = 5e-12,
    h_ref: float = 5e-14,
    eps_abs: float = 1e-10,
    m_max: int = 360,
    levels: list[tuple[str, float, float]] | None = None,
    n_sources: int = 5,
    verbose: bool = False,
) -> tuple[Table, list[Table1Row]]:
    """Run the Table 1 experiment.

    Parameters
    ----------
    rows, cols:
        Mesh size (paper does not disclose theirs; 20x20 keeps the dense
        reference and eigensolve cheap).
    t_end, h:
        The paper's [0, 0.3ns] window with 5ps steps.
    h_ref:
        Reference BE step (paper: 0.05ps).
    eps_abs:
        Absolute Arnoldi error budget ε (the ETD offset vectors scale
        with the slow time constant, so a relative budget would be
        meaningless on stiff meshes).
    m_max:
        Krylov dimension cap.
    levels:
        Override the stiffness ladder.
    n_sources:
        Pulse loads per mesh.
    verbose:
        Print each row as it is measured.

    Returns
    -------
    (table, rows):
        A rendered-table object and the raw measurements.
    """
    levels = levels if levels is not None else STIFFNESS_LEVELS
    grid = [i * h for i in range(int(round(t_end / h)) + 1)]
    table = Table(
        ["Stiffness", "Method", "ma", "mp", "Err(%)", "Spdp"],
        title="Table 1: MEXP vs I-MATEX vs R-MATEX (stiff RC meshes)",
    )
    out: list[Table1Row] = []

    for label, fast_ratio, slow_ratio in levels:
        net = stiff_rc_mesh(
            rows, cols, fast_ratio=fast_ratio, slow_ratio=slow_ratio,
            n_sources=n_sources,
        )
        system = assemble(net)
        lam_min, lam_max = eigenvalue_extremes(system)
        stiff = lam_min / lam_max

        x0 = np.zeros(system.dim)
        ref = reference_backward_euler(
            system, t_end, h_ref, x0=x0, record_times=grid
        )
        schedule = build_schedule(system, t_end, global_points=grid)

        timings: dict[str, float] = {}
        level_rows: list[Table1Row] = []
        for method in METHODS:
            opts = SolverOptions(
                method=method, gamma=h, eps_rel=0.0, eps_abs=eps_abs,
                m_max=m_max,
            )
            solver = MatexSolver(system, opts)
            t0 = time.perf_counter()
            res = solver.simulate(t_end, x0=x0, schedule=schedule)
            wall = time.perf_counter() - t0
            timings[method] = wall
            err = relative_error_pct(res, ref, times=np.asarray(grid))
            level_rows.append(
                Table1Row(
                    level=label,
                    stiffness=stiff,
                    method=method,
                    ma=res.stats.avg_krylov_dim,
                    mp=res.stats.peak_krylov_dim,
                    err_pct=err,
                    seconds=wall,
                    speedup_vs_mexp=0.0,
                    n_solves=res.stats.n_solves_transient,
                )
            )
        for row in level_rows:
            row.speedup_vs_mexp = timings["standard"] / timings[row.method]
            table.add_row([
                f"{row.stiffness:.1e}",
                METHOD_LABELS[row.method],
                f"{row.ma:.1f}",
                row.mp,
                f"{row.err_pct:.4f}",
                "--" if row.method == "standard" else f"{row.speedup_vs_mexp:.1f}X",
            ])
            if verbose:
                print(table.rows[-1])
        out.extend(level_rows)
    return table, out


if __name__ == "__main__":  # pragma: no cover - manual driver
    tbl, _ = run_table1(verbose=False)
    print(tbl.render())
