"""Speedup-model validation — paper Sec. 3.4, Eqs. (11) and (12).

Fits the model constants (``Tbs``, ``TH+Te``, ``Tserial``) from measured
micro-costs on one suite case, then compares the *predicted* distributed
speedup against the *measured* one while sweeping the number of
computing nodes (by merging bump groups with
:func:`repro.core.decomposition.merge_to_limit`).

This is the ablation the paper argues qualitatively: decomposing input
transitions shrinks the per-node LTS count ``k`` while the snapshot term
``K·(TH+Te)`` stays, so speedup saturates once ``k·m·Tbs`` stops
dominating.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.speedup import SpeedupModel
from repro.analysis.tables import Table
from repro.baselines.trapezoidal import simulate_trapezoidal
from repro.core.options import SolverOptions
from repro.dist.scheduler import MatexScheduler
from repro.linalg.lu import SparseLU
from repro.pdn.suite import build_case

__all__ = ["SpeedupSample", "fit_model_constants", "run_speedup_model"]


@dataclass
class SpeedupSample:
    """Measured vs predicted speedup at one node count."""

    n_nodes: int
    k_max: int
    m_avg: float
    measured_spdp4: float
    predicted_spdp4: float


def fit_model_constants(system, n_probe: int = 50) -> SpeedupModel:
    """Measure ``Tbs`` and ``TH+Te`` on the given system.

    ``Tbs`` is timed over ``n_probe`` substitution pairs against the
    R-MATEX matrix; ``TH+Te`` over ``n_probe`` snapshot evaluations of a
    representative small basis.
    """
    rng = np.random.default_rng(0)
    lu = SparseLU((system.C + 1e-10 * system.G).tocsc(), label="probe")
    rhs = rng.normal(size=system.dim)
    t0 = time.perf_counter()
    for _ in range(n_probe):
        lu.solve(rhs)
    t_bs = (time.perf_counter() - t0) / n_probe

    m = 8
    vm = rng.normal(size=(system.dim, m))
    hm = -np.abs(rng.normal(size=(m, m)))
    from repro.linalg.krylov import KrylovBasis

    basis = KrylovBasis(
        Vm=vm, Hm=hm, beta=1.0, h_built=1e-11, m=m,
        error_estimate=0.0, method="rational",
    )
    basis.evaluate(1e-11)  # warm the eigen cache
    t0 = time.perf_counter()
    for i in range(n_probe):
        basis.evaluate(1e-11 * (1 + i))
    t_he = (time.perf_counter() - t0) / n_probe
    return SpeedupModel(t_bs=t_bs, t_he=t_he, t_serial=lu.factor_seconds)


def run_speedup_model(
    case: str = "pg2t",
    node_counts: list[int] | None = None,
    verbose: bool = False,
) -> tuple[Table, list[SpeedupSample]]:
    """Sweep node counts; compare measured vs Eq. (12) predicted speedup.

    Parameters
    ----------
    case:
        Suite case to run on.
    node_counts:
        Node-count ladder (default 1, 5, 25, then the natural count).
    verbose:
        Print rows as they complete.
    """
    system, case_def = build_case(case)
    gts = system.global_transition_spots(case_def.t_end)
    K = len(gts)
    N = int(round(case_def.t_end / case_def.h_tr))

    tr = simulate_trapezoidal(system, case_def.h_tr, case_def.t_end,
                              record_times=[case_def.t_end])
    t1000 = tr.stats.transient_seconds

    model = fit_model_constants(system)
    natural = MatexScheduler(system, decomposition="bump").groups()
    if node_counts is None:
        node_counts = sorted({1, 5, 25, len(natural)})

    table = Table(
        ["Nodes", "k(max LTS)", "m(avg)", "Spdp4 measured", "Spdp4 Eq.(12)"],
        title=f"Speedup model validation on {case} "
              f"(K={K}, N={N}, Tbs={model.t_bs*1e6:.0f}us, "
              f"THe={model.t_he*1e6:.0f}us)",
    )
    samples: list[SpeedupSample] = []
    for n_nodes in node_counts:
        scheduler = MatexScheduler(
            system,
            SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6),
            decomposition="bump",
            max_nodes=n_nodes,
        )
        dres = scheduler.run(case_def.t_end)
        k_max = max(s.n_krylov_bases for s in dres.node_stats)
        m_avg = float(np.mean([
            s.avg_krylov_dim for s in dres.node_stats if s.krylov_dims
        ]))
        measured = t1000 / dres.tr_matex
        predicted = SpeedupModel(
            t_bs=model.t_bs, t_he=model.t_he, t_serial=0.0
        ).speedup_over_fixed(N=N, K=K, k=k_max, m=m_avg)
        samples.append(SpeedupSample(
            n_nodes=dres.n_nodes, k_max=k_max, m_avg=m_avg,
            measured_spdp4=measured, predicted_spdp4=predicted,
        ))
        table.add_row([
            dres.n_nodes, k_max, f"{m_avg:.1f}",
            f"{measured:.1f}X", f"{predicted:.1f}X",
        ])
        if verbose:
            print(table.rows[-1])
    return table, samples


if __name__ == "__main__":  # pragma: no cover - manual driver
    tbl, _ = run_speedup_model()
    print(tbl.render())
