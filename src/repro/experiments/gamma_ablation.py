"""γ-sensitivity ablation for R-MATEX (paper Sec. 3.3.2 claim).

The paper asserts the shift-and-invert basis "is not very sensitive to
γ, once it is set to around the order near time steps used in transient
simulation".  This ablation sweeps γ across several decades around the
10ps step scale on a suite case and reports basis sizes, accuracy and
runtime, quantifying the claim (and showing the degradation when γ is
pushed far off the time-step scale).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.errors import error_metrics
from repro.analysis.tables import Table
from repro.baselines.trapezoidal import simulate_trapezoidal
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver
from repro.pdn.suite import build_case

__all__ = ["GammaSample", "run_gamma_ablation"]


@dataclass
class GammaSample:
    """Measurements at one γ."""

    gamma: float
    ma: float
    mp: int
    max_err: float
    seconds: float


def run_gamma_ablation(
    case: str = "pg1t",
    gammas: list[float] | None = None,
    golden_h: float = 1e-12,
    verbose: bool = False,
) -> tuple[Table, list[GammaSample]]:
    """Sweep the R-MATEX shift γ on one suite case.

    Parameters
    ----------
    case:
        Suite case name.
    gammas:
        Shift values (default 1e-13 … 1e-8, the paper's 1e-10 included).
    golden_h:
        Step of the golden TR reference for the error column.
    verbose:
        Print rows as they complete.
    """
    gammas = gammas if gammas is not None else [
        1e-13, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8,
    ]
    system, case_def = build_case(case)
    gts = system.global_transition_spots(case_def.t_end)
    golden = simulate_trapezoidal(
        system, golden_h, case_def.t_end, record_times=gts
    )

    table = Table(
        ["gamma", "ma", "mp", "Max.Err", "Total(s)"],
        title=f"R-MATEX gamma ablation on {case} "
              f"(paper default: 1e-10 at 10ps steps)",
    )
    samples: list[GammaSample] = []
    for gamma in gammas:
        opts = SolverOptions(method="rational", gamma=gamma, eps_rel=1e-6)
        t0 = time.perf_counter()
        solver = MatexSolver(system, opts)
        res = solver.simulate(case_def.t_end)
        wall = time.perf_counter() - t0
        errs = error_metrics(res, golden, times=np.asarray(gts))
        samples.append(GammaSample(
            gamma=gamma,
            ma=res.stats.avg_krylov_dim,
            mp=res.stats.peak_krylov_dim,
            max_err=errs["max"],
            seconds=wall,
        ))
        table.add_row([
            f"{gamma:.0e}", f"{samples[-1].ma:.1f}", samples[-1].mp,
            f"{samples[-1].max_err:.1e}", f"{wall:.2f}",
        ])
        if verbose:
            print(table.rows[-1])
    return table, samples


if __name__ == "__main__":  # pragma: no cover - manual driver
    tbl, _ = run_gamma_ablation()
    print(tbl.render())
