"""Table 3 — distributed MATEX vs fixed-step TR (h = 10ps, 1000 steps).

The paper's headline experiment (Sec. 4.3): R-MATEX with the bump-shape
decomposition spread over ~100 computing nodes versus the TAU-contest
baseline, fixed-step trapezoidal at h = 10ps.  Columns follow the paper:

* ``t1000``      — TR pure transient time (1000 substitution pairs),
* ``tt_total``   — TR total (LU + DC + transient),
* ``Group #``    — number of bump groups = computing nodes,
* ``trmatex``    — max pure-transient time over MATEX nodes,
* ``tr_total``   — MATEX total (per-node LU + DC + transient + superpose),
* ``Max/Avg Err``— node-voltage error vs a golden reference
  (the paper compares to IBM-provided solutions; we use TR at h = 1ps),
* ``Spdp4``      — t1000 / trmatex, ``Spdp5`` — tt_total / tr_total.

Expected shape: Spdp4 around an order of magnitude, Spdp5 smaller (the
serial LU/DC parts dominate once the transient part shrinks — the
paper's closing observation), errors ~1e-4 V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.errors import error_metrics
from repro.analysis.tables import Table
from repro.baselines.trapezoidal import simulate_trapezoidal
from repro.core.options import SolverOptions
from repro.dist.scheduler import MatexScheduler
from repro.pdn.suite import SUITE, build_case

__all__ = ["Table3Row", "run_table3"]


@dataclass
class Table3Row:
    """One benchmark-case measurement."""

    case: str
    t1000: float
    tt_total: float
    n_groups: int
    tr_matex: float
    tr_total: float
    max_err: float
    avg_err: float
    avg_node_pairs: float

    @property
    def spdp4(self) -> float:
        """Transient-part speedup (paper: ~13X on average)."""
        return self.t1000 / self.tr_matex

    @property
    def spdp5(self) -> float:
        """Total-runtime speedup (paper: ~7X on average)."""
        return self.tt_total / self.tr_total


def run_table3(
    cases: list[str] | None = None,
    gamma: float = 1e-10,
    eps_rel: float = 1e-6,
    golden_h: float | None = 1e-12,
    verbose: bool = False,
) -> tuple[Table, list[Table3Row]]:
    """Run the Table 3 experiment.

    Parameters
    ----------
    cases:
        Suite subset (default: all six).
    gamma:
        R-MATEX shift; the paper sets 1e-10 "to sit among the order of
        varied time steps during the simulation".
    eps_rel:
        Relative Arnoldi budget for the node solvers.
    golden_h:
        Step of the golden TR reference used for the error columns
        (paper: IBM-provided solutions).  ``None`` skips the golden run
        and reports the MATEX-vs-TR(10ps) difference instead.
    verbose:
        Print rows as they complete.
    """
    cases = cases if cases is not None else list(SUITE)
    table = Table(
        ["Design", "t1000(s)", "tt_total(s)", "Group #", "trmatex(s)",
         "tr_total(s)", "Max.Err", "Avg.Err", "Spdp4", "Spdp5"],
        title="Table 3: distributed MATEX (R-MATEX) vs TR (h=10ps)",
    )
    out: list[Table3Row] = []

    for name in cases:
        system, case = build_case(name)
        gts = system.global_transition_spots(case.t_end)

        # Baseline: fixed-step TR, recording at the GTS for comparison.
        tr = simulate_trapezoidal(
            system, case.h_tr, case.t_end, record_times=gts
        )
        t1000 = tr.stats.transient_seconds
        tt_total = tr.stats.total_seconds

        # Distributed MATEX with the bump decomposition.
        scheduler = MatexScheduler(
            system,
            SolverOptions(method="rational", gamma=gamma, eps_rel=eps_rel),
            decomposition="bump",
        )
        dres = scheduler.run(case.t_end)

        # Error columns vs the golden reference.
        if golden_h is not None:
            golden = simulate_trapezoidal(
                system, golden_h, case.t_end, record_times=gts
            )
            errs = error_metrics(dres.result, golden, times=np.asarray(gts))
        else:
            errs = error_metrics(dres.result, tr, times=np.asarray(gts))

        pairs = [s.n_solves_transient for s in dres.node_stats]
        row = Table3Row(
            case=name,
            t1000=t1000,
            tt_total=tt_total,
            n_groups=dres.n_nodes,
            tr_matex=dres.tr_matex,
            tr_total=dres.tr_total,
            max_err=errs["max"],
            avg_err=errs["avg"],
            avg_node_pairs=float(np.mean(pairs)) if pairs else 0.0,
        )
        out.append(row)
        table.add_row([
            name, f"{row.t1000:.2f}", f"{row.tt_total:.2f}", row.n_groups,
            f"{row.tr_matex:.3f}", f"{row.tr_total:.3f}",
            f"{row.max_err:.1e}", f"{row.avg_err:.1e}",
            f"{row.spdp4:.1f}X", f"{row.spdp5:.1f}X",
        ])
        if verbose:
            print(table.rows[-1])
    return table, out


if __name__ == "__main__":  # pragma: no cover - manual driver
    tbl, _ = run_table3()
    print(tbl.render())
