"""Figure 5 — rational-Krylov error vs step size and basis dimension.

Reproduces the paper's Fig. 5: the error
``|exp(hA)v − β V_m exp(h·Hm) e_1|`` of the rational (shift-and-invert)
Krylov approximation on a small matrix, swept over the step ``h`` and the
basis dimension ``m``, with a dense ``expm`` as ground truth (the paper
uses MATLAB's; we use our Padé implementation, which is itself validated
against SciPy).

The paper's observation — crucial for snapshot reuse in Alg. 2 — is that
for fixed ``m`` the error *decreases* as ``h`` increases, because larger
steps make the well-captured small-magnitude eigenvalues dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.analysis.tables import Table
from repro.circuit.mna import assemble
from repro.linalg.arnoldi import arnoldi
from repro.linalg.krylov import RationalKrylov
from repro.pdn.rc_mesh import stiff_rc_mesh

__all__ = ["Fig5Point", "run_fig5"]


@dataclass(frozen=True)
class Fig5Point:
    """One (m, h) error sample."""

    m: int
    h: float
    error: float


def run_fig5(
    rows: int = 8,
    cols: int = 8,
    gamma: float = 1e-11,
    dims: list[int] | None = None,
    steps: list[float] | None = None,
    seed: int = 7,
) -> tuple[Table, list[Fig5Point]]:
    """Sweep the rational-Krylov error surface.

    Parameters
    ----------
    rows, cols:
        Mesh size; "A is a relative small matrix" in the paper, so the
        dense exponential stays exact and cheap.
    gamma:
        Fixed shift (the paper fixes γ for the whole figure).
    dims:
        Basis dimensions to sample (default 2..12).
    steps:
        Step sizes (default 8 log-spaced points in [1e-12, 1e-9]).
    seed:
        RNG seed for the start vector.

    Returns
    -------
    (table, points):
        A rendered m × h error table and the raw samples.
    """
    dims = dims if dims is not None else [2, 4, 6, 8, 10, 12]
    steps = steps if steps is not None else list(
        np.logspace(-12, -9, 8)
    )

    net = stiff_rc_mesh(
        rows, cols, fast_ratio=20.0, slow_ratio=1e4, n_sources=2, seed=seed
    )
    system = assemble(net)
    c = np.asarray(system.C.todense())
    g = np.asarray(system.G.todense())
    a = -np.linalg.solve(c, g)

    rng = np.random.default_rng(seed)
    v = rng.normal(size=system.dim)
    beta = float(np.linalg.norm(v))

    op = RationalKrylov(system.C, system.G, gamma=gamma)
    res = arnoldi(op.apply, v, m_max=max(dims))

    points: list[Fig5Point] = []
    table = Table(
        ["m \\ h"] + [f"{h:.1e}" for h in steps],
        title="Fig. 5: |exp(hA)v - beta*Vm*exp(h*Hm)*e1| (rational Krylov)",
    )
    for m in dims:
        m_eff = min(m, res.m)
        heff = op.effective_hm(res.H[:m_eff, :m_eff])
        row_errors = []
        for h in steps:
            exact = sla.expm(h * a) @ v
            approx = beta * (res.V[:, :m_eff] @ sla.expm(h * heff)[:, 0])
            err = float(np.linalg.norm(exact - approx))
            points.append(Fig5Point(m=m_eff, h=float(h), error=err))
            row_errors.append(f"{err:.1e}")
        table.add_row([str(m_eff)] + row_errors)
    return table, points


if __name__ == "__main__":  # pragma: no cover - manual driver
    tbl, _ = run_fig5()
    print(tbl.render())
