"""Experiment drivers: one module per paper table/figure plus ablations."""

from repro.experiments.fig5 import run_fig5
from repro.experiments.gamma_ablation import run_gamma_ablation
from repro.experiments.speedup_model import run_speedup_model
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

__all__ = [
    "run_fig5",
    "run_gamma_ablation",
    "run_speedup_model",
    "run_table1",
    "run_table2",
    "run_table3",
]
