"""Experiment CLI: ``python -m repro.experiments.runner <experiment>``.

Regenerates the paper's tables and figure from the command line::

    python -m repro.experiments.runner table1
    python -m repro.experiments.runner table3 --cases pg1t pg4t
    python -m repro.experiments.runner all

Each experiment prints a paper-style ASCII table; see EXPERIMENTS.md for
the recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.fig5 import run_fig5
from repro.experiments.gamma_ablation import run_gamma_ablation
from repro.experiments.speedup_model import run_speedup_model
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

__all__ = ["main", "EXPERIMENTS"]

#: name -> callable(cases) returning (Table, rows).
EXPERIMENTS = {
    "table1": lambda cases: run_table1(),
    "table2": lambda cases: run_table2(cases=cases),
    "table3": lambda cases: run_table3(cases=cases),
    "fig5": lambda cases: run_fig5(),
    "speedup-model": lambda cases: run_speedup_model(
        case=cases[0] if cases else "pg2t"
    ),
    "gamma-ablation": lambda cases: run_gamma_ablation(
        case=cases[0] if cases else "pg1t"
    ),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.engine import available_integrators

    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the MATEX paper's tables and figure.",
        epilog=(
            "Integrators compared by the tables are resolved through the "
            "repro.engine registry: "
            + ", ".join(available_integrators())
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--cases", nargs="*", default=None,
        help="suite-case subset for table2/table3 (e.g. pg1t pg4t)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        table, _ = EXPERIMENTS[name](args.cases)
        print(table.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
