"""Table 2 — adaptive TR vs I-MATEX vs R-MATEX (single node).

Reproduces the paper's Sec. 4.2 comparison: on each power-grid case, the
LTE-controlled adaptive trapezoidal method (which must re-factorise on
every step-size change) against the I-MATEX and R-MATEX circuit solvers
running non-decomposed on a single node (every global transition spot
generates a Krylov basis; no reuse).  Columns follow the paper:
``DC(s)``, per-method ``Total(s)``, and the speedups

* ``Spdp1`` — I-MATEX over TR(adpt),
* ``Spdp2`` — R-MATEX over TR(adpt),
* ``Spdp3`` — R-MATEX over I-MATEX.

Expected shape: R-MATEX fastest, I-MATEX in between (its inverted
subspace needs a larger basis on PDNs with a wide capacitance spread),
and the ``pg4t`` case — few transition spots — showing the largest
MATEX advantage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.baselines.adaptive_tr import simulate_adaptive_trapezoidal
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver
from repro.pdn.suite import SUITE, build_case

__all__ = ["Table2Row", "run_table2"]


@dataclass
class Table2Row:
    """One benchmark-case measurement."""

    case: str
    dc_seconds: float
    tr_adaptive_seconds: float
    tr_adaptive_steps: int
    tr_adaptive_factorizations: int
    imatex_seconds: float
    rmatex_seconds: float

    @property
    def spdp1(self) -> float:
        """I-MATEX over TR(adpt)."""
        return self.tr_adaptive_seconds / self.imatex_seconds

    @property
    def spdp2(self) -> float:
        """R-MATEX over TR(adpt)."""
        return self.tr_adaptive_seconds / self.rmatex_seconds

    @property
    def spdp3(self) -> float:
        """R-MATEX over I-MATEX."""
        return self.imatex_seconds / self.rmatex_seconds


def _run_matex_single_node(system, method: str, t_end: float, gamma: float) -> float:
    """Total single-node MATEX runtime (factor + DC + transient)."""
    t0 = time.perf_counter()
    solver = MatexSolver(
        system,
        SolverOptions(method=method, gamma=gamma, eps_rel=1e-6, eps_abs=1e-12),
    )
    solver.simulate(t_end)
    return time.perf_counter() - t0


def run_table2(
    cases: list[str] | None = None,
    lte_tol: float = 1e-6,
    gamma: float = 1e-10,
    verbose: bool = False,
) -> tuple[Table, list[Table2Row]]:
    """Run the Table 2 experiment.

    Parameters
    ----------
    cases:
        Suite subset (default: all six).
    lte_tol:
        LTE tolerance of the adaptive TR controller, chosen to give
        accuracy comparable to the MATEX runs.
    gamma:
        R-MATEX shift (the paper's 1e-10).
    verbose:
        Print rows as they complete.
    """
    cases = cases if cases is not None else list(SUITE)
    table = Table(
        ["Design", "DC(s)", "TR(adpt)(s)", "I-MATEX(s)", "R-MATEX(s)",
         "Spdp1", "Spdp2", "Spdp3"],
        title="Table 2: TR(adaptive) vs I-MATEX vs R-MATEX",
    )
    out: list[Table2Row] = []
    for name in cases:
        system, case = build_case(name)

        t0 = time.perf_counter()
        adaptive = simulate_adaptive_trapezoidal(
            system, case.t_end, tol=lte_tol,
            h_init=case.t_end / 1000.0,
        )
        tr_seconds = time.perf_counter() - t0

        i_seconds = _run_matex_single_node(system, "inverted", case.t_end, gamma)
        r_seconds = _run_matex_single_node(system, "rational", case.t_end, gamma)

        row = Table2Row(
            case=name,
            dc_seconds=adaptive.stats.dc_seconds,
            tr_adaptive_seconds=tr_seconds,
            tr_adaptive_steps=adaptive.stats.n_steps,
            tr_adaptive_factorizations=adaptive.stats.n_krylov_bases,
            imatex_seconds=i_seconds,
            rmatex_seconds=r_seconds,
        )
        out.append(row)
        table.add_row([
            name, f"{row.dc_seconds:.3f}", f"{row.tr_adaptive_seconds:.2f}",
            f"{row.imatex_seconds:.2f}", f"{row.rmatex_seconds:.2f}",
            f"{row.spdp1:.1f}X", f"{row.spdp2:.1f}X", f"{row.spdp3:.1f}X",
        ])
        if verbose:
            print(table.rows[-1])
    return table, out


if __name__ == "__main__":  # pragma: no cover - manual driver
    tbl, _ = run_table2()
    print(tbl.render())
