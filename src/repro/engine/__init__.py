"""Unified integrator engine: registry, shared stepping loop, sinks.

The engine is the architectural backbone added by the integrator
refactor:

* :mod:`repro.engine.registry` — every integrator (MATEX flavours and
  baselines) is a strategy object resolved by name through
  :func:`get_integrator`;
* :mod:`repro.engine.loop` — one :class:`SteppingLoop` owns marching
  mechanics (recording, acceptance, statistics) for every integrator;
* :mod:`repro.engine.sinks` — recorded states stream to a
  :class:`ResultSink` (in-memory, downsampling, or NPZ-on-disk), so
  million-step runs stop holding dense trajectories in RAM.

Together with the process-wide
:data:`~repro.linalg.lu.FACTORIZATION_CACHE` this makes every future
integrator and workload a drop-in: implement the strategy, register a
name, and the loop/cache/sink machinery comes for free.
"""

from repro.engine.loop import StepController, SteppingLoop
from repro.engine.registry import (
    Integrator,
    available_integrators,
    get_integrator,
    integrator_aliases,
    register_integrator,
)
from repro.engine.sinks import (
    DownsamplingSink,
    MemorySink,
    NpzStreamSink,
    ResultSink,
    make_sink,
)

__all__ = [
    "DownsamplingSink",
    "Integrator",
    "MemorySink",
    "NpzStreamSink",
    "ResultSink",
    "StepController",
    "SteppingLoop",
    "available_integrators",
    "get_integrator",
    "integrator_aliases",
    "make_sink",
    "register_integrator",
]
