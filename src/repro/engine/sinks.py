"""Streaming result sinks: where a marching loop puts accepted states.

A transient run over a million-point schedule does not have to hold the
dense ``(steps × dim)`` trajectory in RAM: the stepping loop hands every
recorded ``(t, x)`` to a :class:`ResultSink`, and the sink decides what
to keep —

* :class:`MemorySink` — everything, preallocated when the point count is
  known (the historical behaviour, and the default);
* :class:`DownsamplingSink` — every ``stride``-th point plus the first
  and last, bounding memory by ``len/stride`` for plots and droop scans;
* :class:`NpzStreamSink` — states stream straight to an on-disk ``.npy``
  memmap and are packaged as ``.npz`` on finalize; the arrays handed
  back to :class:`~repro.core.results.TransientResult` stay
  memmap-backed, so peak RSS is bounded by one state vector.

``finalize`` returns ``(times, states)`` ready for ``TransientResult``;
:func:`make_sink` parses the CLI spellings ``memory``,
``downsample:<stride>`` and ``npz:<path>``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

__all__ = [
    "ResultSink",
    "MemorySink",
    "DownsamplingSink",
    "NpzStreamSink",
    "make_sink",
]


class ResultSink(ABC):
    """Receives the recorded trajectory of one marching loop."""

    @abstractmethod
    def open(self, dim: int, n_hint: int | None = None) -> None:
        """Begin a run of ``dim``-sized states, ``n_hint`` points if known."""

    @abstractmethod
    def append(self, t: float, x: np.ndarray) -> None:
        """Record state ``x`` at time ``t`` (called in time order)."""

    @abstractmethod
    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Close the run; return ``(times, states)`` for the result."""


class MemorySink(ResultSink):
    """Keep every recorded point in RAM (the default sink).

    With a point-count hint the states block is preallocated in one
    piece — identical storage to the pre-sink code path; without a hint
    it grows as a list and stacks on finalize.
    """

    def __init__(self):
        self._times: list[float] = []
        self._block: np.ndarray | None = None
        self._rows: list[np.ndarray] = []
        self._count = 0

    def open(self, dim: int, n_hint: int | None = None) -> None:
        self._times = []
        self._rows = []
        self._count = 0
        self._block = np.empty((n_hint, dim)) if n_hint else None

    def append(self, t: float, x: np.ndarray) -> None:
        self._times.append(float(t))
        if self._block is not None and self._count < self._block.shape[0]:
            self._block[self._count] = x
        else:
            self._rows.append(np.array(x, dtype=float))
        self._count += 1

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        times = np.asarray(self._times, dtype=float)
        if self._block is not None and not self._rows:
            states = self._block[: self._count]
        else:
            head = [] if self._block is None else [self._block[: min(
                self._count, self._block.shape[0])]]
            states = (
                np.vstack(head + [np.asarray(self._rows)])
                if (head or self._rows)
                else np.empty((0, 0))
            )
        return times, states


class DownsamplingSink(ResultSink):
    """Keep every ``stride``-th recorded point, plus the first and last.

    The final point is always kept (appended on finalize if the stride
    skipped it), so droop extrema at the horizon and steady-state checks
    still see the end of the run.
    """

    def __init__(self, stride: int):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = int(stride)
        self._inner = MemorySink()
        self._seen = 0
        self._tail: tuple[float, np.ndarray] | None = None

    def open(self, dim: int, n_hint: int | None = None) -> None:
        hint = None if n_hint is None else (n_hint + self.stride - 1) // self.stride
        self._inner.open(dim, hint)
        self._seen = 0
        self._tail = None

    def append(self, t: float, x: np.ndarray) -> None:
        if self._seen % self.stride == 0:
            self._inner.append(t, x)
            self._tail = None
        else:
            self._tail = (float(t), np.array(x, dtype=float))
        self._seen += 1

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        if self._tail is not None:
            self._inner.append(*self._tail)
            self._tail = None
        return self._inner.finalize()


class NpzStreamSink(ResultSink):
    """Stream states to disk; package as ``.npz`` on finalize.

    States go row-by-row into a ``.npy`` memmap next to the target file
    (``<path>.states.npy``), growing geometrically when the run length
    is unknown.  ``finalize`` writes ``np.savez(path, times=...,
    states=...)`` — numpy copies from the memmap in bounded chunks — and
    returns the memmap-backed view, so neither the run nor the returned
    :class:`~repro.core.results.TransientResult` ever materialises the
    full trajectory in RAM.  The workfile is kept alongside the ``.npz``
    for zero-copy reopening; delete it freely once the ``.npz`` exists.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        if self.path.suffix != ".npz":
            raise ValueError(
                f"NpzStreamSink writes .npz archives, got {self.path.name!r}"
            )
        self.workfile = self.path.with_suffix(".states.npy")
        self._times: list[float] = []
        self._mm: np.ndarray | None = None
        self._count = 0
        self._dim = 0

    def open(self, dim: int, n_hint: int | None = None) -> None:
        self._dim = int(dim)
        self._times = []
        self._count = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        capacity = n_hint if n_hint else 1024
        self._mm = np.lib.format.open_memmap(
            self.workfile, mode="w+", dtype=np.float64,
            shape=(max(int(capacity), 1), self._dim),
        )

    def _resize(self, capacity: int) -> None:
        resized = np.lib.format.open_memmap(
            self.workfile.with_suffix(".grow.npy"), mode="w+",
            dtype=np.float64, shape=(capacity, self._dim),
        )
        resized[: self._count] = self._mm[: self._count]
        resized.flush()
        del self._mm  # release the old map before replacing the file
        self.workfile.with_suffix(".grow.npy").replace(self.workfile)
        self._mm = np.lib.format.open_memmap(self.workfile, mode="r+")

    def append(self, t: float, x: np.ndarray) -> None:
        if self._count >= self._mm.shape[0]:
            self._resize(2 * self._mm.shape[0])
        self._mm[self._count] = x
        self._times.append(float(t))
        self._count += 1

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        times = np.asarray(self._times, dtype=float)
        self._mm.flush()
        if 0 < self._count < self._mm.shape[0]:
            # Truncate the workfile to the rows actually written, so a
            # zero-copy np.load of it never exposes uninitialised tail
            # capacity left over from geometric growth.
            self._resize(self._count)
        states = self._mm[: self._count]
        np.savez(self.path, times=times, states=states)
        return times, states


def make_sink(spec: str) -> ResultSink:
    """Build a sink from a CLI spec.

    * ``memory`` — :class:`MemorySink`;
    * ``downsample:<stride>`` — :class:`DownsamplingSink`;
    * ``npz:<path>`` — :class:`NpzStreamSink` writing ``<path>`` (.npz).
    """
    kind, _, arg = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "memory":
        return MemorySink()
    if kind == "downsample":
        if not arg:
            raise ValueError("downsample sink needs a stride: downsample:<k>")
        return DownsamplingSink(int(arg))
    if kind == "npz":
        if not arg:
            raise ValueError("npz sink needs a target path: npz:<file.npz>")
        return NpzStreamSink(arg)
    raise ValueError(
        f"unknown sink spec {spec!r}; use memory, downsample:<stride> "
        f"or npz:<path>"
    )
