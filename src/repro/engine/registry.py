"""Pluggable integrator registry (the paper's methods as components).

Every time integrator in the repository — the three MATEX Krylov
flavours and the traditional baselines — registers itself here under a
canonical name (plus paper aliases), so callers resolve *strategies* by
name instead of importing concrete solver classes:

>>> from repro.engine import get_integrator
>>> Tr = get_integrator("tr")
>>> result = Tr(system, h=1e-11).simulate(1e-9)

The pattern follows the solver-registry architecture of simulation
codebases like SHARPy: integrators are thin strategy objects behind one
:class:`Integrator` interface, and the shared
:class:`~repro.engine.loop.SteppingLoop` owns the marching mechanics
(recording, acceptance, statistics), so adding an integrator never means
writing another stepping loop.

Built-in integrators live in :mod:`repro.core.solver` (MATEX) and
:mod:`repro.baselines`; they are imported lazily on first lookup so the
registry module itself stays dependency-free.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from typing import ClassVar

__all__ = [
    "Integrator",
    "register_integrator",
    "get_integrator",
    "available_integrators",
    "integrator_aliases",
]

#: canonical name -> integrator class
_REGISTRY: dict[str, type] = {}
#: every accepted spelling (canonical + aliases) -> canonical name
_ALIASES: dict[str, str] = {}
#: modules whose import registers the built-in integrators
_BUILTIN_MODULES = (
    "repro.engine.integrators",
)
_builtins_loaded = False


class Integrator(ABC):
    """Strategy interface every registered integrator implements.

    Construction performs the one-off work (matrix factorisations —
    possibly served by the process-wide
    :data:`~repro.linalg.lu.FACTORIZATION_CACHE`); :meth:`simulate`
    marches ``[0, t_end]`` through the shared stepping loop.

    Attributes
    ----------
    name:
        Canonical registry name, set by :func:`register_integrator`.
    aliases:
        Accepted alternative spellings.
    needs_step_size:
        True for integrators that march a fixed uniform grid and
        therefore require a step size ``h`` at construction (TR, BE,
        FE).  Capability flag — callers like the CLI dispatch on it
        instead of hard-coding integrator names.
    """

    name: ClassVar[str] = ""
    aliases: ClassVar[tuple[str, ...]] = ()
    needs_step_size: ClassVar[bool] = False

    @abstractmethod
    def simulate(self, t_end: float, **kwargs):
        """Simulate ``[0, t_end]``; returns a ``TransientResult``.

        All integrators accept ``x0`` (initial state, default DC
        operating point) and ``sink`` (a
        :class:`~repro.engine.sinks.ResultSink` receiving the recorded
        trajectory) keyword arguments.
        """


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only after every import succeeded: a failed import must surface
    # its real exception again on the next lookup, not an empty registry.
    _builtins_loaded = True


def register_integrator(name: str, *aliases: str):
    """Class decorator: register an integrator under ``name`` (+aliases).

    >>> @register_integrator("be", "backward-euler", "be-fixed")
    ... class BackwardEulerIntegrator(Integrator):
    ...     ...

    Re-registering a name replaces the previous entry (latest wins),
    which keeps interactive reloads painless.
    """
    canonical = name.lower()

    def _decorate(cls):
        _REGISTRY[canonical] = cls
        _ALIASES[canonical] = canonical
        for alias in aliases:
            _ALIASES[alias.lower()] = canonical
        cls.name = canonical
        cls.aliases = tuple(a.lower() for a in aliases)
        return cls

    return _decorate


def get_integrator(name: str) -> type:
    """Resolve an integrator class by canonical name or alias.

    Raises
    ------
    ValueError
        If the name is unknown; the message lists every registered
        integrator (and its aliases) so the caller can self-serve.
    """
    _ensure_builtins()
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        catalogue = "; ".join(
            f"{reg}" + (
                f" (aliases: {', '.join(_REGISTRY[reg].aliases)})"
                if _REGISTRY[reg].aliases else ""
            )
            for reg in sorted(_REGISTRY)
        )
        raise ValueError(
            f"unknown integrator {name!r}; registered integrators: "
            f"{catalogue}"
        )
    return _REGISTRY[canonical]


def available_integrators() -> tuple[str, ...]:
    """Sorted canonical names of every registered integrator."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def integrator_aliases() -> dict[str, str]:
    """Every accepted spelling mapped to its canonical name."""
    _ensure_builtins()
    return dict(_ALIASES)
