"""Built-in integrator registrations.

Importing this module (which :func:`repro.engine.get_integrator` does
lazily on first lookup) populates the registry with every integrator in
the repository:

=============  =============================================  ==========
name           implementation                                 kind
=============  =============================================  ==========
``r-matex``    :class:`repro.core.solver.MatexSolver`         rational
``i-matex``    :class:`repro.core.solver.MatexSolver`         inverted
``mexp``       :class:`repro.core.solver.MatexSolver`         standard
``tr``         :class:`repro.baselines.TrapezoidalIntegrator` fixed-step
``be``         :class:`repro.baselines.BackwardEulerIntegrator` fixed-step
``fe``         :class:`repro.baselines.ForwardEulerIntegrator` fixed-step
``tr-adaptive`` :class:`repro.baselines.AdaptiveTrapezoidalIntegrator` adaptive
=============  =============================================  ==========

The MATEX entries are thin strategies over :class:`MatexSolver` with the
Krylov flavour pinned; everything else about the solver (the shared
stepping loop, the factorisation cache, sinks) is inherited.
"""

from __future__ import annotations

from typing import ClassVar

# Importing the baseline modules runs their @register_integrator
# decorators; keep these imports even though the names go unused here.
import repro.baselines.adaptive_tr    # noqa: F401
import repro.baselines.backward_euler  # noqa: F401
import repro.baselines.forward_euler   # noqa: F401
import repro.baselines.trapezoidal     # noqa: F401
from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver
from repro.engine.registry import Integrator, register_integrator

__all__ = ["RMatexIntegrator", "IMatexIntegrator", "MexpIntegrator"]


class _MatexIntegrator(MatexSolver, Integrator):
    """MATEX strategy with the Krylov flavour pinned by the registry name.

    Accepts either a full :class:`SolverOptions` (its ``method`` is
    overridden to this strategy's flavour) or the option fields as
    keyword arguments (``gamma=...``, ``eps_rel=...``).
    """

    krylov_method: ClassVar[str] = "rational"

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        deviation_mode: bool = False,
        **option_fields,
    ):
        if options is None:
            options = SolverOptions(
                method=self.krylov_method, **option_fields
            )
        else:
            if option_fields:
                raise TypeError(
                    f"pass either a SolverOptions object or option fields "
                    f"({', '.join(sorted(option_fields))}), not both — the "
                    f"fields would be silently ignored"
                )
            options = options.with_method(self.krylov_method)
        super().__init__(system, options, deviation_mode=deviation_mode)


@register_integrator("r-matex", "rmatex", "rational")
class RMatexIntegrator(_MatexIntegrator):
    """R-MATEX: rational (shift-and-invert) Krylov, the paper's best."""

    krylov_method = "rational"


@register_integrator("i-matex", "imatex", "inverted")
class IMatexIntegrator(_MatexIntegrator):
    """I-MATEX: inverted Krylov on ``A⁻¹`` (factors ``G`` only)."""

    krylov_method = "inverted"


@register_integrator("mexp", "standard")
class MexpIntegrator(_MatexIntegrator):
    """MEXP: standard Krylov on ``A`` (needs invertible ``C``)."""

    krylov_method = "standard"
