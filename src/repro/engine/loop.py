"""The shared stepping loop every integrator marches through.

Historically ``MatexSolver`` and each baseline owned a private copy of
the same mechanics — iterate the time axis, record accepted states,
count steps, time the transient part.  :class:`SteppingLoop` owns those
mechanics once, for both axis shapes:

* :meth:`march_grid` — a fixed sequence of points (a uniform baseline
  grid or a MATEX :class:`~repro.core.transition.TransitionSchedule`);
  the strategy supplies one ``advance`` callback producing the next
  state (or ``None`` to truncate, e.g. explicit-Euler divergence);
* :meth:`march_adaptive` — a controller-driven axis with step
  acceptance/rejection (adaptive trapezoidal); the loop owns the
  accept/reject bookkeeping and recording, the controller owns the
  step-size policy and trial states.

Recorded states go to a :class:`~repro.engine.sinks.ResultSink`
(defaulting to the in-memory sink, which reproduces the historical
dense-array behaviour bit-for-bit).  The loop mutates the caller's
``SolverStats``: ``n_steps`` counts attempted solver advances and
``transient_seconds`` accumulates the pure marching wall time — the
paper's "pure transient computing" (Table 3), excluding input
pre-evaluation and factorisations, which strategies perform before
entering the loop.

Strategies that mark their ``advance`` callback with
``supports_out = True`` march **allocation-free**: the loop owns a pair
of preallocated state buffers and hands one to every call as ``out=``;
the callback fills it in place (ufunc ``out=`` arithmetic is
bit-identical to the allocating form) and the loop double-buffers, so
the hot loop creates no arrays per step.
"""

from __future__ import annotations

import time
from typing import Callable, Collection, Protocol, Sequence

import numpy as np

from repro.engine.sinks import MemorySink, ResultSink

__all__ = ["SteppingLoop", "StepController"]

#: advance(i, t, t_next, x) -> next state, or None to truncate the run.
AdvanceFn = Callable[[int, float, float, np.ndarray], "np.ndarray | None"]


class StepController(Protocol):
    """Strategy half of :meth:`SteppingLoop.march_adaptive`.

    The controller owns step-size policy; the loop owns everything else.
    """

    def propose(self, t: float) -> float:
        """Next trial step from ``t`` (already clamped to events)."""

    def attempt(
        self, t: float, h: float, x: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        """Trial state over ``[t, t+h]`` and whether to accept it.

        On rejection the controller adjusts its internal step size; the
        loop simply retries from the same ``t``.
        """

    def accepted(self, t: float, x: np.ndarray) -> None:
        """Notification that ``x`` was accepted at ``t`` (history, growth)."""


class SteppingLoop:
    """Owns marching mechanics: recording, acceptance, stats, timing.

    Parameters
    ----------
    dim:
        State dimension (sinks preallocate against it).
    stats:
        The run's ``SolverStats``; mutated in place.
    sink:
        Recorded-state destination; defaults to :class:`MemorySink`.
    """

    def __init__(self, dim: int, stats, sink: ResultSink | None = None):
        self.dim = int(dim)
        self.stats = stats
        self.sink = sink if sink is not None else MemorySink()

    # -- fixed axis ---------------------------------------------------------------

    def march_grid(
        self,
        points: Sequence[float],
        x0: np.ndarray,
        advance: AdvanceFn,
        record: Collection[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """March a fixed sequence of time points.

        Parameters
        ----------
        points:
            Monotone time axis; ``advance`` is called once per positive
            interval (zero-length intervals — duplicated transition
            spots — are recorded without a step, as Alg. 2 does).
        x0:
            State at ``points[0]``.
        advance:
            ``advance(i, t, t_next, x) -> x_next``; returning ``None``
            truncates the run at the last accepted point (explicit
            instability).
        record:
            Indices of ``points`` to hand to the sink (``None`` = all).
            Index 0 and the final point should normally be included;
            the fixed-step strategies guarantee that.

        Returns
        -------
        (times, states):
            The sink's finalized arrays.
        """
        pts = np.asarray(points, dtype=float)
        keep = None if record is None else frozenset(int(i) for i in record)
        n_hint = len(pts) if keep is None else len(keep)
        self.sink.open(self.dim, n_hint)

        x = np.asarray(x0, dtype=float).copy()
        if keep is None or 0 in keep:
            self.sink.append(pts[0], x)

        # Strategies advertising `supports_out` write each new state
        # into a loop-owned scratch buffer; double-buffering (the old
        # state array becomes the next scratch) keeps the hot loop free
        # of per-step allocations.
        use_out = bool(getattr(advance, "supports_out", False))
        scratch = np.empty(self.dim) if use_out else None

        t_loop = time.perf_counter()
        for i in range(len(pts) - 1):
            t, t_next = pts[i], pts[i + 1]
            if t_next - t > 0.0:
                self.stats.n_steps += 1
                if use_out:
                    x_new = advance(i, t, t_next, x, out=scratch)
                else:
                    x_new = advance(i, t, t_next, x)
                if x_new is None:
                    break  # truncate where the strategy gave up
                if x_new is scratch:
                    scratch, x = x, x_new
                else:
                    x = x_new
            if keep is None or (i + 1) in keep:
                self.sink.append(t_next, x)
        self.stats.transient_seconds += time.perf_counter() - t_loop
        return self.sink.finalize()

    # -- adaptive axis ---------------------------------------------------------------

    def march_adaptive(
        self,
        t_end: float,
        x0: np.ndarray,
        controller: StepController,
    ) -> tuple[np.ndarray, np.ndarray]:
        """March ``[0, t_end]`` under a step controller.

        Every accepted state is recorded; rejected trials only cost the
        controller's work.  ``stats.n_steps`` counts *attempts* (the
        quantity solver effort scales with).
        """
        self.sink.open(self.dim, None)
        x = np.asarray(x0, dtype=float).copy()
        self.sink.append(0.0, x)

        t = 0.0
        t_loop = time.perf_counter()
        while t < t_end - 1e-18 * t_end:
            h = controller.propose(t)
            x_new, accept = controller.attempt(t, h, x)
            self.stats.n_steps += 1
            if not accept:
                continue
            t += h
            x = x_new
            self.sink.append(t, x)
            controller.accepted(t, x)
        self.stats.transient_seconds += time.perf_counter() - t_loop
        return self.sink.finalize()
