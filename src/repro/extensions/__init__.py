"""Extensions beyond the paper, built on the MATEX core.

Currently: periodic-steady-state (shooting) analysis, which treats one
MATEX period simulation as a matrix-free linear operator.
"""

from repro.extensions.periodic import (
    PssResult,
    check_input_periodicity,
    periodic_steady_state,
)

__all__ = [
    "PssResult",
    "check_input_periodicity",
    "periodic_steady_state",
]
