"""Periodic steady-state (PSS) analysis — an extension beyond the paper.

Clock-driven PDN load currents are periodic, and after the start-up
transient the grid settles into a *periodic steady state*: the state at
the end of one clock period equals the state at its start.  Because the
circuit is linear, one period of simulation is an affine map

    x(T) = Φ x(0) + d,

so the steady state is the solution of ``(I − Φ) x* = d``.  Forming Φ
(the monodromy matrix) is out of the question for large grids; instead
this module solves the system **matrix-free** with GMRES, where every
operator application is one MATEX period simulation — inheriting the
single-factorisation, Krylov-reuse machinery of the core solver.

This is exactly the kind of follow-on the paper's framework enables:
the expensive primitive ("simulate one period") is cheap under MATEX, so
shooting-method analyses come almost for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.core.solver import MatexSolver

__all__ = ["PssResult", "periodic_steady_state", "check_input_periodicity"]


@dataclass
class PssResult:
    """Outcome of a periodic-steady-state solve.

    Attributes
    ----------
    state:
        The steady state ``x*`` at the period boundary.
    residual:
        ``‖x(T; x*) − x*‖`` — how well one simulated period maps the
        state onto itself (the physically meaningful check).
    gmres_iterations:
        Operator applications (= period simulations) GMRES needed.
    period:
        The period used.
    """

    state: np.ndarray
    residual: float
    gmres_iterations: int
    period: float


def check_input_periodicity(
    system: MNASystem, period: float, rtol: float = 1e-9, samples: int = 7
) -> bool:
    """True when every varying input repeats with the given period."""
    for w in system.waveforms:
        if w.is_constant():
            continue
        for k in range(samples):
            t = (0.13 + 0.77 * k / samples) * period
            a, b = w.value(t), w.value(t + period)
            if not math.isclose(a, b, rel_tol=rtol,
                                abs_tol=rtol * (abs(a) + abs(b) + 1e-30)):
                return False
    return True


def periodic_steady_state(
    system: MNASystem,
    period: float,
    options: SolverOptions | None = None,
    tol: float = 1e-9,
    maxiter: int = 60,
    verify_inputs: bool = True,
) -> PssResult:
    """Solve for the periodic steady state with matrix-free GMRES.

    Parameters
    ----------
    system:
        Assembled MNA system with ``period``-periodic inputs.
    period:
        The input period ``T``.
    options:
        MATEX solver options for the period simulations (defaults to
        R-MATEX with a tight budget — the GMRES operator should be as
        close to exactly linear as possible).
    tol:
        Relative GMRES tolerance on ``(I − Φ) x* = d``.
    maxiter:
        Cap on GMRES iterations (period simulations).
    verify_inputs:
        Check input periodicity first (cheap; catches mistakes like a
        pulse whose bump spills across the period boundary).

    Returns
    -------
    PssResult

    Raises
    ------
    ValueError
        If the inputs are not ``period``-periodic (when verifying).
    RuntimeError
        If GMRES fails to converge within ``maxiter`` iterations.
    """
    if period <= 0.0:
        raise ValueError("period must be positive")
    if verify_inputs and not check_input_periodicity(system, period):
        raise ValueError(
            f"inputs are not periodic with period {period!r}; "
            f"pass verify_inputs=False to override"
        )
    opts = options if options is not None else SolverOptions(
        method="rational", gamma=period / 100.0, eps_rel=1e-10, eps_abs=1e-16
    )
    solver = MatexSolver(system, opts)

    def propagate(x0: np.ndarray) -> np.ndarray:
        return solver.simulate(period, x0=x0).final_state

    d = propagate(np.zeros(system.dim))

    n_applies = 0

    def one_minus_phi(v: np.ndarray) -> np.ndarray:
        nonlocal n_applies
        n_applies += 1
        return v - (propagate(v) - d)

    op = spla.LinearOperator((system.dim, system.dim), matvec=one_minus_phi)
    x_star, info = spla.gmres(op, d, rtol=tol, maxiter=maxiter)
    if info != 0:
        raise RuntimeError(
            f"PSS GMRES did not converge (info={info}) within "
            f"{maxiter} period simulations; loosen tol or check stiffness"
        )
    residual = float(np.linalg.norm(propagate(x_star) - x_star))
    return PssResult(
        state=x_star,
        residual=residual,
        gmres_iterations=n_applies,
        period=period,
    )
