"""``repro serve``: a long-lived plan-server daemon over a local socket.

ROADMAP item 1's "millions of users" unlock: the expensive half of a
MATEX run (ingest, decomposition, DC, schedules, factorisation priming,
worker-pool spawn) is paid once per catalogued plan and amortised across
every run/sweep job any client submits afterwards.  Jobs flow through a
bounded queue with per-job deadlines, execute under a retry-supervised
executor, and the daemon drains gracefully on SIGTERM — see
:mod:`repro.serve.daemon` for the full failure-semantics contract and
the README's "Failure semantics" section for the operator's view.

>>> from repro.serve import connect
>>> with connect("/tmp/repro.sock") as client:
...     client.run(scenario={"name": "hot", "scale_loads": 1.3})
"""

from repro.serve.client import ServeClient, ServeError, connect
from repro.serve.daemon import PlanServer, ServeConfig
from repro.serve.protocol import MAX_LINE, ProtocolError

__all__ = [
    "MAX_LINE",
    "PlanServer",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "connect",
]
