"""``repro serve``: a supervised plan-server daemon (ROADMAP item 1).

The realistic PDN workload behind the paper's throughput story is not
one sweep but a *stream* of what-if questions arriving over time — and
the expensive half of answering each one (ingest, decomposition, DC,
schedule construction, factorisation priming, worker-pool spawn) is
identical across all of them.  This daemon keeps that half **warm**: a
catalogue of :class:`~repro.plan.plan.CompiledPlan` entries, each with a
live :class:`~repro.plan.session.Session` over a persistent (optionally
multiprocess, retry-supervised) executor, answering run/sweep jobs from
concurrent clients over a local stream socket.

Failure semantics, by construction:

* **bounded admission** — jobs enter a bounded queue; a full queue
  rejects immediately (``kind="busy"``) instead of building unbounded
  backlog;
* **per-job deadline** — a job that waited past its deadline is
  answered ``kind="deadline"`` without executing (the client has
  usually given up; running it anyway would delay everyone behind it);
* **crash isolation** — each job body runs under a supervised executor
  in a worker thread; any failure (including a SIGKILLed pool worker
  exhausting its :class:`~repro.dist.supervision.RetryPolicy`) answers
  that one job ``kind="job"`` and the daemon lives on;
* **draining shutdown** — SIGTERM (or the ``shutdown`` op) stops
  accepting work, answers every already-accepted job, then closes the
  plan catalogue (worker pools, shm segments, socket) and exits 0.

The protocol is NDJSON (:mod:`repro.serve.protocol`); trajectories
never cross the wire — results return as SHA-256 digests of the state
bytes plus summary scalars, which is exactly what bit-reproducibility
audits need (two daemons agree on a scenario iff the digests match).
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import os
import signal
from dataclasses import dataclass

from repro.core.options import SolverOptions
from repro.dist.executors import MultiprocessExecutor
from repro.dist.messages import DistributedResult
from repro.dist.supervision import RetryPolicy
from repro.plan.plan import CompiledPlan, SimulationPlan
from repro.plan.scenario import Scenario, scenario_from_spec
from repro.plan.session import Session
from repro.serve.protocol import ProtocolError, encode, read_message

__all__ = ["ServeConfig", "PlanServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration (the CLI ``serve`` flags, as an object).

    Attributes
    ----------
    socket_path:
        Filesystem path of the stream socket to listen on (created at
        start, unlinked at shutdown; a stale leftover is replaced).
    max_queue:
        Bounded admission: at most this many jobs may be queued
        (>= 1 — an unbounded queue is exactly the failure mode this
        daemon exists to prevent).
    job_timeout:
        Per-job deadline in seconds, measured from admission; expired
        jobs are answered ``kind="deadline"`` without executing.
        ``None`` disables deadlines.
    processes:
        Worker processes per plan entry (0 = in-process serial
        execution — still warm, just not parallel).
    retry:
        :class:`~repro.dist.supervision.RetryPolicy` for multiprocess
        entries (ignored when ``processes == 0``).  ``None`` keeps the
        executor's raise-through default — with crash isolation the
        daemon survives either way, but without retries a faulted job
        is answered as failed instead of transparently healed.
    stack:
        Stacking policy handed to :meth:`Session.sweep` for sweep jobs.
    """

    socket_path: str
    max_queue: int = 16
    job_timeout: float | None = 120.0
    processes: int = 0
    retry: RetryPolicy | None = None
    stack: object = "auto"

    def __post_init__(self):
        if self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0.0:
            raise ValueError(
                f"job_timeout must be positive (or None), "
                f"got {self.job_timeout}"
            )
        if self.processes < 0:
            raise ValueError(
                f"processes must be >= 0, got {self.processes}"
            )


class _PlanEntry:
    """One catalogue slot: a compiled plan with its warm session."""

    def __init__(
        self, name: str, compiled: CompiledPlan,
        processes: int, retry: RetryPolicy | None,
    ):
        self.name = name
        self.compiled = compiled
        self.system = compiled.system
        self.executor: MultiprocessExecutor | None = None
        if processes:
            batch = compiled.batch
            self.executor = MultiprocessExecutor(
                compiled.system,
                compiled.options,
                max_workers=processes,
                batch_width=None if batch == "off" else batch,
                retry=retry,
            )
            self.executor.prepare()
        self.session = Session(compiled, executor=self.executor)
        self.jobs_answered = 0

    def close(self) -> None:
        self.session.close()
        if self.executor is not None:
            self.executor.close()

    def describe(self) -> dict:
        info = {
            "n_nodes": self.compiled.n_nodes,
            "t_end": self.compiled.t_end,
            "jobs_answered": self.jobs_answered,
        }
        if self.executor is not None:
            info["supervision"] = self.executor.supervision.as_dict()
        return info


@dataclass
class _Job:
    """One admitted unit of queued work."""

    writer: asyncio.StreamWriter
    req_id: object
    op: str
    payload: dict
    deadline: float | None


class PlanServer:
    """The daemon: plan catalogue + bounded job queue + stream server."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.plans: dict[str, _PlanEntry] = {}
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self._queue: asyncio.Queue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._worker_task: asyncio.Task | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False
        self._writers: set[asyncio.StreamWriter] = set()

    # -- plan catalogue (synchronous: callable before the loop starts) ---------

    def add_plan(self, name: str, compiled: CompiledPlan) -> _PlanEntry:
        """Admit a compiled plan under ``name`` (replaces an old entry)."""
        old = self.plans.pop(name, None)
        if old is not None:
            old.close()
        entry = _PlanEntry(
            name, compiled, self.config.processes, self.config.retry
        )
        self.plans[name] = entry
        return entry

    def load_plan(
        self,
        name: str,
        netlist: str,
        t_end: float | None = None,
        method: str = "rational",
        gamma: float = 1e-10,
        eps_rel: float = 1e-7,
        decomposition: str = "bump",
        batch="auto",
        rom=None,
    ) -> _PlanEntry:
        """Ingest a deck and compile it into a catalogue entry.

        The expensive path — streamed ingest, decomposition, DC,
        schedules, (for in-process entries) factorisation priming —
        runs exactly once, here; every later job against ``name`` is
        warm.  ``t_end=None`` falls back to the deck's ``.tran`` stop
        time.
        """
        from repro.circuit.ingest import ingest_file

        res = ingest_file(netlist)
        if t_end is None:
            t_end = res.stats.tran_stop
            if t_end is None:
                raise ValueError(
                    f"deck {netlist} has no .tran directive; pass t_end"
                )
        options = SolverOptions(
            method=method, gamma=gamma, eps_rel=eps_rel
        )
        plan = SimulationPlan(
            res.system, options, t_end=t_end,
            decomposition=decomposition, batch=batch,
        )
        compiled = plan.compile(
            prime=self.config.processes == 0, rom=rom
        )
        return self.add_plan(name, compiled)

    def close_plans(self) -> None:
        """Release every entry's session/executor (idempotent)."""
        for entry in self.plans.values():
            entry.close()
        self.plans.clear()

    # -- job bodies (run in a worker thread, one at a time) ---------------------

    def _entry(self, payload: dict) -> _PlanEntry:
        name = payload.get("plan", "default")
        entry = self.plans.get(name)
        if entry is None:
            raise KeyError(
                f"unknown plan {name!r}; loaded: {sorted(self.plans)}"
            )
        return entry

    def _result_payload(
        self, entry: _PlanEntry, dres: DistributedResult
    ) -> dict:
        states = dres.result.states
        rails = states[:, : entry.system.netlist.n_nodes]
        return {
            "scenario": dres.scenario,
            "digest": hashlib.sha256(states.tobytes()).hexdigest(),
            "shape": list(states.shape),
            "min_rail": float(rails.min()) if rails.size else None,
            "retries": dres.retries,
            "degraded_runs": dres.degraded_runs,
            "rom_fallback": dres.rom_fallback,
        }

    def _execute(self, op: str, payload: dict) -> dict:
        """One queued job, executed to a response payload (thread body)."""
        if op == "load":
            netlist = payload.get("netlist")
            if not netlist:
                raise ValueError("load needs a 'netlist' path")
            entry = self.load_plan(
                payload.get("name", "default"),
                netlist,
                t_end=payload.get("t_end"),
                method=payload.get("method", "rational"),
                gamma=payload.get("gamma", 1e-10),
                eps_rel=payload.get("eps", 1e-7),
                decomposition=payload.get("decomposition", "bump"),
                batch=payload.get("batch", "auto"),
            )
            return {"plan": entry.name, "info": entry.describe()}
        entry = self._entry(payload)
        if op == "run":
            spec = payload.get("scenario")
            scenario = (
                scenario_from_spec(spec, entry.system)
                if spec is not None else Scenario()
            )
            dres = entry.session.run(scenario)
            entry.jobs_answered += 1
            return self._result_payload(entry, dres)
        if op == "sweep":
            specs = payload.get("scenarios")
            if not isinstance(specs, list) or not specs:
                raise ValueError(
                    "sweep needs a non-empty 'scenarios' list"
                )
            scenarios = [
                scenario_from_spec(s, entry.system, index=i)
                for i, s in enumerate(specs)
            ]
            results = entry.session.sweep(
                scenarios, stack=self.config.stack
            )
            entry.jobs_answered += len(results)
            return {
                "results": [
                    self._result_payload(entry, r) for r in results
                ],
            }
        raise ValueError(f"unknown queued op {op!r}")

    # -- asyncio machinery ------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, start the job worker, install SIGTERM drain."""
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._stopped = asyncio.Event()
        path = self.config.socket_path
        with contextlib.suppress(FileNotFoundError):
            os.unlink(path)
        from repro.serve.protocol import MAX_LINE

        self._server = await asyncio.start_unix_server(
            self._handle_client, path=path, limit=MAX_LINE
        )
        self._worker_task = loop.create_task(self._job_worker())
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )

    async def serve(self) -> None:
        """Run until a drain (SIGTERM / ``shutdown`` op) completes."""
        await self.start()
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Draining shutdown: no new work, answer the backlog, exit.

        Idempotent.  Order matters: close the listener first (no new
        connections), mark draining (live connections get clean
        ``kind="draining"`` rejections), **join the queue** — the job
        worker writes each response before ``task_done()``, so the join
        returning proves every accepted job was answered — then stop
        the worker and release the catalogue (worker pools and their
        shared-memory namespaces).
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.join()
        self._worker_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._worker_task
        for writer in list(self._writers):
            writer.close()
        # Executor teardown can take a moment (pool shutdown); it is
        # synchronous but we are past answering anyone, so inline is fine.
        self.close_plans()
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.config.socket_path)
        self._stopped.set()

    async def _respond(
        self, writer: asyncio.StreamWriter, payload: dict
    ) -> None:
        try:
            writer.write(encode(payload))
            await writer.drain()
        except (ConnectionError, RuntimeError):
            # Client hung up; the job (if any) still ran to completion.
            pass

    def _status_payload(self) -> dict:
        return {
            "ok": True,
            "draining": self._draining,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "max_queue": self.config.max_queue,
            "processes": self.config.processes,
            "jobs": {
                "done": self.jobs_done,
                "failed": self.jobs_failed,
                "rejected": self.jobs_rejected,
            },
            "plans": {
                name: entry.describe()
                for name, entry in self.plans.items()
            },
        }

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    msg = await read_message(reader)
                except ProtocolError as exc:
                    await self._respond(
                        writer,
                        {"id": None, "ok": False, "kind": "protocol",
                         "error": str(exc)},
                    )
                    break
                if msg is None:
                    break
                await self._dispatch(writer, msg)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _dispatch(
        self, writer: asyncio.StreamWriter, msg: dict
    ) -> None:
        req_id = msg.get("id")
        op = msg.get("op")
        if op == "ping":
            await self._respond(
                writer,
                {"id": req_id, "ok": True, "pong": True,
                 "draining": self._draining},
            )
            return
        if op == "status":
            await self._respond(
                writer, {"id": req_id, **self._status_payload()}
            )
            return
        if op == "shutdown":
            await self._respond(writer, {"id": req_id, "ok": True})
            asyncio.ensure_future(self.shutdown())
            return
        if op not in ("load", "run", "sweep"):
            await self._respond(
                writer,
                {"id": req_id, "ok": False, "kind": "protocol",
                 "error": f"unknown op {op!r}"},
            )
            return
        if self._draining:
            self.jobs_rejected += 1
            await self._respond(
                writer,
                {"id": req_id, "ok": False, "kind": "draining",
                 "error": "daemon is draining; not accepting new jobs"},
            )
            return
        deadline = None
        if self.config.job_timeout is not None:
            deadline = (
                asyncio.get_running_loop().time() + self.config.job_timeout
            )
        job = _Job(writer, req_id, op, msg, deadline)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.jobs_rejected += 1
            await self._respond(
                writer,
                {"id": req_id, "ok": False, "kind": "busy",
                 "error": f"job queue full "
                          f"({self.config.max_queue} pending)"},
            )

    async def _job_worker(self) -> None:
        """Single consumer: answer queued jobs one at a time.

        One consumer means the warm sessions/executors are only ever
        touched from one thread at a time — the concurrency lives in
        admission and the pools, not in racing sessions.  The worker
        writes each job's response itself **before** ``task_done()``,
        which is what makes :meth:`shutdown`'s ``queue.join()`` a proof
        that every accepted job was answered.
        """
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            try:
                if job.deadline is not None and loop.time() > job.deadline:
                    self.jobs_rejected += 1
                    resp = {
                        "ok": False, "kind": "deadline",
                        "error": f"job waited past its "
                                 f"{self.config.job_timeout:g}s deadline",
                    }
                else:
                    try:
                        result = await asyncio.to_thread(
                            self._execute, job.op, job.payload
                        )
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except asyncio.CancelledError:
                        raise
                    except BaseException as exc:
                        # Crash isolation: one failed job answers as
                        # failed; the daemon (and every other job) lives.
                        self.jobs_failed += 1
                        resp = {
                            "ok": False, "kind": "job",
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    else:
                        self.jobs_done += 1
                        resp = {"ok": True, **result}
                resp["id"] = job.req_id
                await self._respond(job.writer, resp)
            finally:
                self._queue.task_done()
