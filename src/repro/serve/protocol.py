"""Wire protocol of the ``repro serve`` daemon: NDJSON over a socket.

One request and one response are each a single ``\\n``-terminated JSON
object — trivially debuggable (``nc -U`` works), streamable, and free of
framing state.  Requests carry ``op`` (what to do) and an optional
``id`` the response echoes back, so a pipelining client can match
out-of-order answers (queued jobs complete after inline pings).

Responses always carry ``ok``; failures add ``error`` (human-readable)
and ``kind`` (machine-matchable: ``protocol``, ``busy``, ``draining``,
``deadline``, ``job``).
"""

from __future__ import annotations

import json

__all__ = ["MAX_LINE", "ProtocolError", "encode", "decode", "read_message"]

#: Hard per-line size cap (requests carry scenario lists, not
#: trajectories — 8 MiB is generous; trajectories never cross the wire,
#: results travel as digests + summary scalars).
MAX_LINE = 8 * 2**20


class ProtocolError(ValueError):
    """A line on the wire is not a valid protocol message."""


def encode(message: dict) -> bytes:
    """One protocol message as a single NDJSON line (bytes)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> dict:
    """Parse one wire line into a message dict, or raise ProtocolError."""
    if len(line) > MAX_LINE:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE}-byte cap"
        )
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_message(reader) -> dict | None:
    """Read one message from an asyncio stream (``None`` on EOF)."""
    import asyncio

    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(f"oversized protocol line: {exc}") from None
    if not line:
        return None
    return decode(line)
