"""Blocking client for the ``repro serve`` daemon.

A thin synchronous wrapper over the NDJSON socket protocol — enough for
scripts, tests and notebook use.  Each :meth:`ServeClient.request` is
strictly request/response on one connection; run several clients (or
threads, one client each) for concurrency — the daemon interleaves them
through its bounded queue.
"""

from __future__ import annotations

import socket
import time

from repro.serve.protocol import decode, encode

__all__ = ["ServeError", "ServeClient", "connect"]


class ServeError(RuntimeError):
    """The daemon answered ``ok=false`` (or the connection died).

    ``kind`` carries the daemon's machine-matchable failure class:
    ``protocol``, ``busy``, ``draining``, ``deadline``, ``job`` — or
    ``closed`` when the connection dropped without an answer.
    """

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.daemon.PlanServer`.

    Parameters
    ----------
    socket_path:
        The daemon's stream-socket path.
    timeout:
        Per-request socket timeout in seconds.  Generous by default:
        a queued sweep answers only when its turn comes.
    """

    def __init__(self, socket_path: str, timeout: float = 600.0):
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(self.socket_path)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- protocol --------------------------------------------------------------

    def request(self, op: str, check: bool = True, **payload) -> dict:
        """Send one request and block for its response.

        ``check=True`` (default) raises :class:`ServeError` on an
        ``ok=false`` answer; ``check=False`` returns it for callers
        that want to branch on ``kind`` (busy/draining probes).
        """
        self._next_id += 1
        req_id = self._next_id
        self._sock.sendall(encode({"id": req_id, "op": op, **payload}))
        line = self._file.readline()
        if not line:
            raise ServeError(
                "connection closed by the daemon before answering",
                kind="closed",
            )
        resp = decode(line)
        if check and not resp.get("ok"):
            raise ServeError(
                resp.get("error", "daemon reported failure"),
                kind=resp.get("kind", "error"),
            )
        return resp

    # -- convenience ops --------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        return self.request("status")

    def load(self, netlist: str, name: str = "default", **options) -> dict:
        return self.request("load", netlist=str(netlist), name=name,
                            **options)

    def run(self, plan: str = "default", scenario: dict | None = None,
            check: bool = True) -> dict:
        return self.request("run", plan=plan, scenario=scenario,
                            check=check)

    def sweep(self, scenarios: list, plan: str = "default",
              check: bool = True) -> dict:
        return self.request("sweep", plan=plan, scenarios=scenarios,
                            check=check)

    def shutdown(self) -> dict:
        return self.request("shutdown")


def connect(
    socket_path: str, timeout: float = 10.0, request_timeout: float = 600.0
) -> ServeClient:
    """Connect to a daemon, waiting up to ``timeout`` for it to come up.

    A freshly-spawned daemon needs a moment to ingest/compile its plan
    before binding the socket; this polls until the socket accepts.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            return ServeClient(socket_path, timeout=request_timeout)
        except (FileNotFoundError, ConnectionRefusedError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
