"""Traditional integrators MATEX is compared against.

Each baseline is a strategy object registered in the
:mod:`repro.engine` integrator registry (``"tr"``, ``"be"``, ``"fe"``,
``"tr-adaptive"``); the ``simulate_*`` functions remain as thin
conveniences over the classes.
"""

from repro.baselines.adaptive_tr import (
    AdaptiveTrapezoidalIntegrator,
    simulate_adaptive_trapezoidal,
)
from repro.baselines.backward_euler import (
    BackwardEulerIntegrator,
    simulate_backward_euler,
)
from repro.baselines.fixed_step import (
    FixedStepImplicitIntegrator,
    dc_operating_point,
)
from repro.baselines.forward_euler import (
    ForwardEulerIntegrator,
    simulate_forward_euler,
)
from repro.baselines.reference import reference_backward_euler, reference_exact
from repro.baselines.trapezoidal import (
    TrapezoidalIntegrator,
    simulate_trapezoidal,
)

__all__ = [
    "AdaptiveTrapezoidalIntegrator",
    "BackwardEulerIntegrator",
    "FixedStepImplicitIntegrator",
    "ForwardEulerIntegrator",
    "TrapezoidalIntegrator",
    "dc_operating_point",
    "reference_backward_euler",
    "reference_exact",
    "simulate_adaptive_trapezoidal",
    "simulate_backward_euler",
    "simulate_forward_euler",
    "simulate_trapezoidal",
]
