"""Traditional integrators MATEX is compared against."""

from repro.baselines.adaptive_tr import simulate_adaptive_trapezoidal
from repro.baselines.backward_euler import simulate_backward_euler
from repro.baselines.fixed_step import dc_operating_point
from repro.baselines.forward_euler import simulate_forward_euler
from repro.baselines.reference import reference_backward_euler, reference_exact
from repro.baselines.trapezoidal import simulate_trapezoidal

__all__ = [
    "dc_operating_point",
    "reference_backward_euler",
    "reference_exact",
    "simulate_adaptive_trapezoidal",
    "simulate_backward_euler",
    "simulate_forward_euler",
    "simulate_trapezoidal",
]
