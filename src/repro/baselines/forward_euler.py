"""Fixed-step forward (explicit) Euler.

Included to demonstrate *why* implicit methods rule PDN simulation
(paper Sec. 1): the stability region forces ``h < 2/|λ_max|``, and PDN
stiffness puts ``|λ_max|`` around 1e15 s⁻¹ — forward Euler either takes
astronomically many steps or blows up.  The stability test suite checks
exactly this behaviour.

    x(t+h) = x(t) + h C⁻¹ (−G x(t) + B u(t))

Note forward Euler must factor ``C`` (like MEXP, it fails outright on
singular ``C``).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines.fixed_step import dc_operating_point
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.linalg.lu import FactorizationError, SparseLU

__all__ = ["simulate_forward_euler"]


def simulate_forward_euler(
    system: MNASystem,
    h: float,
    t_end: float,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
) -> TransientResult:
    """Simulate with explicit Euler.

    The trajectory is truncated at the first non-finite state so callers
    can observe where instability strikes (``result.times[-1] < t_end``).

    Parameters mirror
    :func:`repro.baselines.trapezoidal.simulate_trapezoidal`.

    Raises
    ------
    repro.linalg.lu.FactorizationError
        If ``C`` is singular (explicit methods need ``C⁻¹``).
    """
    if h <= 0.0:
        raise ValueError(f"step size must be positive, got {h!r}")
    n_steps = int(round(t_end / h))
    if n_steps < 1:
        raise ValueError(f"t_end={t_end!r} shorter than one step h={h!r}")

    stats = SolverStats()
    try:
        lu_c = SparseLU(system.C, label="C")
    except FactorizationError:
        raise FactorizationError(
            "forward Euler needs a non-singular C (explicit update is "
            "x + h·C⁻¹(−Gx + Bu)); this circuit requires an implicit or "
            "inverted/rational-Krylov method"
        ) from None
    stats.factor_seconds += lu_c.factor_seconds

    if x0 is None:
        t_dc = time.perf_counter()
        x0, lu_g = dc_operating_point(system)
        stats.dc_seconds = time.perf_counter() - t_dc
        stats.factor_seconds += lu_g.factor_seconds
        stats.n_solves_dc += 1
    x = np.asarray(x0, dtype=float).copy()

    grid = h * np.arange(n_steps + 1)
    if record_times is None:
        keep = set(range(n_steps + 1))
    else:
        keep = {0, n_steps} | {
            int(round(t / h)) for t in record_times
            if 0 <= int(round(t / h)) <= n_steps
        }

    times_out: list[float] = []
    states_out: list[np.ndarray] = []
    if 0 in keep:
        times_out.append(0.0)
        states_out.append(x.copy())

    g = system.G.tocsr()
    t_loop = time.perf_counter()
    bu_grid = system.bu_series(grid)
    for n in range(n_steps):
        x = x + h * lu_c.solve(bu_grid[:, n] - g @ x)
        stats.n_steps += 1
        if not np.all(np.isfinite(x)):
            break  # explicit instability: stop where divergence strikes
        if (n + 1) in keep:
            times_out.append(grid[n + 1])
            states_out.append(x.copy())
    stats.transient_seconds = time.perf_counter() - t_loop
    stats.n_solves_etd = lu_c.n_solves

    return TransientResult(
        system=system,
        times=np.asarray(times_out),
        states=np.asarray(states_out),
        stats=stats,
        method="fe-fixed",
    )
