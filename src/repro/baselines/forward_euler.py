"""Fixed-step forward (explicit) Euler.

Included to demonstrate *why* implicit methods rule PDN simulation
(paper Sec. 1): the stability region forces ``h < 2/|λ_max|``, and PDN
stiffness puts ``|λ_max|`` around 1e15 s⁻¹ — forward Euler either takes
astronomically many steps or blows up.  The stability test suite checks
exactly this behaviour.

    x(t+h) = x(t) + h C⁻¹ (−G x(t) + B u(t))

Note forward Euler must factor ``C`` (like MEXP, it fails outright on
singular ``C``).

Registered in the integrator registry as ``"fe"``; the marching loop —
including the divergence truncation — is the shared
:class:`~repro.engine.loop.SteppingLoop`.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.baselines.fixed_step import dc_operating_point, select_record_indices
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.engine.loop import SteppingLoop
from repro.engine.registry import Integrator, register_integrator
from repro.engine.sinks import ResultSink
from repro.linalg.lu import FACTORIZATION_CACHE, FactorizationError

__all__ = ["ForwardEulerIntegrator", "simulate_forward_euler"]


@register_integrator("fe", "forward-euler", "fe-fixed")
class ForwardEulerIntegrator(Integrator):
    """Explicit-Euler strategy; see module docstring.

    Raises
    ------
    repro.linalg.lu.FactorizationError
        If ``C`` is singular (explicit methods need ``C⁻¹``).
    """

    method_label = "fe-fixed"
    needs_step_size = True

    def __init__(self, system: MNASystem, h: float):
        if h <= 0.0:
            raise ValueError(f"step size must be positive, got {h!r}")
        self.system = system
        self.h = float(h)
        try:
            self.lu_c = FACTORIZATION_CACHE.factor(system.C, label="C")
        except FactorizationError:
            raise FactorizationError(
                "forward Euler needs a non-singular C (explicit update is "
                "x + h·C⁻¹(−Gx + Bu)); this circuit requires an implicit or "
                "inverted/rational-Krylov method"
            ) from None
        # Attributed to the first simulate call only (see fixed_step).
        self._factor_seconds_pending = self.lu_c.factor_seconds

    def simulate(
        self,
        t_end: float,
        x0: np.ndarray | None = None,
        record_times: Sequence[float] | None = None,
        sink: ResultSink | None = None,
    ) -> TransientResult:
        """Simulate with explicit Euler.

        The trajectory is truncated at the first non-finite state so
        callers can observe where instability strikes
        (``result.times[-1] < t_end``).

        Parameters mirror
        :func:`repro.baselines.trapezoidal.simulate_trapezoidal`.
        """
        h = self.h
        n_steps = int(round(t_end / h))
        if n_steps < 1:
            raise ValueError(f"t_end={t_end!r} shorter than one step h={h!r}")

        stats = SolverStats()
        stats.factor_seconds += self._factor_seconds_pending
        self._factor_seconds_pending = 0.0

        if x0 is None:
            t_dc = time.perf_counter()
            x0, lu_g = dc_operating_point(self.system)
            stats.dc_seconds = time.perf_counter() - t_dc
            stats.factor_seconds += lu_g.factor_seconds
            stats.n_solves_dc += 1

        grid = h * np.arange(n_steps + 1)
        record = select_record_indices(n_steps, record_times, h)
        bu_grid = self.system.bu_series(grid)
        g = self.system.G.tocsr()
        solves_before = self.lu_c.n_solves

        def advance(i: int, t: float, t_next: float, x: np.ndarray):
            x_new = x + h * self.lu_c.solve(bu_grid[:, i] - g @ x)
            if not np.all(np.isfinite(x_new)):
                return None  # explicit instability: stop at divergence
            return x_new

        loop = SteppingLoop(self.system.dim, stats, sink=sink)
        times, states = loop.march_grid(grid, x0, advance, record=record)
        stats.n_solves_etd = self.lu_c.n_solves - solves_before

        return TransientResult(
            system=self.system,
            times=times,
            states=states,
            stats=stats,
            method=self.method_label,
            sink=sink,
        )


def simulate_forward_euler(
    system: MNASystem,
    h: float,
    t_end: float,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
    sink: ResultSink | None = None,
) -> TransientResult:
    """Simulate with explicit Euler; see the class docstring."""
    return ForwardEulerIntegrator(system, h).simulate(
        t_end, x0=x0, record_times=record_times, sink=sink
    )
