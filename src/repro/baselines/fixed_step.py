"""Shared machinery for the fixed-step implicit baselines (TR / BE).

Both methods factor one shifted matrix at the start and then march with a
single forward/backward substitution pair per step — the strategy of the
TAU power-grid-contest solvers that the paper benchmarks against
(Sec. 2.1): ``N`` uniform steps cost ``N`` substitution pairs after one
LU (paper Eq. 12's ``N·Tbs + Tserial``).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.linalg.lu import SparseLU

__all__ = ["run_fixed_step", "dc_operating_point"]


def dc_operating_point(system: MNASystem) -> tuple[np.ndarray, SparseLU]:
    """DC analysis ``G x = B u(0)``; returns the state and the G-LU."""
    lu_g = SparseLU(system.G, label="G")
    return lu_g.solve(system.bu(0.0)), lu_g


def _select_record_indices(
    n_steps: int, record_times: Sequence[float] | None, h: float
) -> np.ndarray:
    """Map requested record times to step indices (always 0 and last)."""
    if record_times is None:
        return np.arange(n_steps + 1)
    idx = {0, n_steps}
    for t in record_times:
        i = int(round(t / h))
        if 0 <= i <= n_steps:
            idx.add(i)
    return np.array(sorted(idx))


def run_fixed_step(
    system: MNASystem,
    h: float,
    t_end: float,
    lhs: sp.spmatrix,
    rhs_fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    method: str,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
) -> TransientResult:
    """March a one-LU fixed-step implicit scheme.

    Parameters
    ----------
    system:
        Assembled MNA system.
    h:
        Uniform step size (the paper's 10ps for Table 3).
    t_end:
        Horizon; the number of steps is ``round(t_end / h)``.
    lhs:
        The matrix factored once (e.g. ``C/h + G/2`` for TR).
    rhs_fn:
        Builds the step right-hand side from
        ``(x, bu_this_step, bu_next_step)``.
    method:
        Label for the result.
    x0:
        Initial state; defaults to the DC operating point.
    record_times:
        Times (multiples of ``h``) whose states should be kept.  ``None``
        keeps every step — fine for small circuits, wasteful for suites.

    Returns
    -------
    TransientResult
        Recorded trajectory with solve counts and timing in ``stats``.
    """
    n_steps = int(round(t_end / h))
    if n_steps < 1:
        raise ValueError(f"t_end={t_end!r} shorter than one step h={h!r}")

    stats = SolverStats()

    lu = SparseLU(lhs, label=f"{method}-lhs")
    stats.factor_seconds += lu.factor_seconds

    if x0 is None:
        t_dc = time.perf_counter()
        x0, lu_g = dc_operating_point(system)
        stats.dc_seconds = time.perf_counter() - t_dc
        stats.factor_seconds += lu_g.factor_seconds
        stats.n_solves_dc += 1
    x = np.asarray(x0, dtype=float).copy()

    grid = h * np.arange(n_steps + 1)
    record_idx = _select_record_indices(n_steps, record_times, h)
    recorded = np.empty((len(record_idx), system.dim))
    rec_pos = {int(i): k for k, i in enumerate(record_idx)}
    if 0 in rec_pos:
        recorded[rec_pos[0]] = x

    t_loop = time.perf_counter()
    bu_grid = system.bu_series(grid)
    for n in range(n_steps):
        rhs = rhs_fn(x, bu_grid[:, n], bu_grid[:, n + 1])
        x = lu.solve(rhs)
        stats.n_steps += 1
        pos = rec_pos.get(n + 1)
        if pos is not None:
            recorded[pos] = x
    stats.transient_seconds = time.perf_counter() - t_loop
    stats.n_solves_krylov = 0
    stats.n_solves_etd = lu.n_solves  # all transient pairs for baselines

    return TransientResult(
        system=system,
        times=grid[record_idx],
        states=recorded,
        stats=stats,
        method=method,
    )
