"""Shared machinery for the fixed-step implicit baselines (TR / BE).

Both methods factor one shifted matrix at the start and then march with a
single forward/backward substitution pair per step — the strategy of the
TAU power-grid-contest solvers that the paper benchmarks against
(Sec. 2.1): ``N`` uniform steps cost ``N`` substitution pairs after one
LU (paper Eq. 12's ``N·Tbs + Tserial``).

Since the engine refactor the baselines are thin strategy objects: the
subclass supplies the shifted left-hand side and the per-step right-hand
side, the factorisation is served by the process-wide
:data:`~repro.linalg.lu.FACTORIZATION_CACHE`, and the marching itself —
recording, statistics, truncation — lives in the shared
:class:`~repro.engine.loop.SteppingLoop`.  No baseline owns a stepping
loop anymore.
"""

from __future__ import annotations

import time
from typing import ClassVar, Sequence

import numpy as np
import scipy.sparse as sp

from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.engine.loop import SteppingLoop
from repro.engine.registry import Integrator
from repro.engine.sinks import ResultSink
from repro.linalg.lu import FACTORIZATION_CACHE, SparseLU

__all__ = [
    "FixedStepImplicitIntegrator",
    "dc_operating_point",
    "select_record_indices",
]


def dc_operating_point(system: MNASystem) -> tuple[np.ndarray, SparseLU]:
    """DC analysis ``G x = B u(0)``; returns the state and the G-LU.

    The factorisation comes from the process-wide cache, so a DC solve
    after any solver already factored ``G`` costs only a substitution.
    """
    lu_g = FACTORIZATION_CACHE.factor(system.G, label="G")
    return lu_g.solve(system.bu(0.0)), lu_g


def select_record_indices(
    n_steps: int, record_times: Sequence[float] | None, h: float
) -> np.ndarray | None:
    """Map requested record times to step indices (always 0 and last).

    ``None`` (record everything) passes through — the
    :class:`~repro.engine.loop.SteppingLoop` treats it as "no mask".
    """
    if record_times is None:
        return None
    idx = {0, n_steps}
    for t in record_times:
        i = int(round(t / h))
        if 0 <= i <= n_steps:
            idx.add(i)
    return np.array(sorted(idx))


class FixedStepImplicitIntegrator(Integrator):
    """Strategy base for one-LU fixed-step implicit schemes (TR, BE).

    Parameters
    ----------
    system:
        Assembled MNA system.
    h:
        Uniform step size (the paper's 10ps for Table 3).

    Notes
    -----
    Construction factors the shifted matrix (cache-served); each
    :meth:`simulate` call then costs one substitution pair per step.
    Subclasses set :attr:`method_label` and implement :meth:`_lhs` /
    :meth:`_rhs`.
    """

    method_label: ClassVar[str] = "fixed"
    needs_step_size = True

    def __init__(self, system: MNASystem, h: float):
        if h <= 0.0:
            raise ValueError(f"step size must be positive, got {h!r}")
        self.system = system
        self.h = float(h)
        self.lu = FACTORIZATION_CACHE.factor(
            self._lhs(), label=f"{self.method_label}-lhs"
        )
        # Construction cost is attributed to the *first* simulate call;
        # later calls on a reused instance paid no factorisation and
        # must not re-report it (the paper's "serial part" is wall time
        # actually spent).
        self._factor_seconds_pending = self.lu.factor_seconds

    # -- subclass hooks --------------------------------------------------------

    def _lhs(self) -> sp.spmatrix:
        """The shifted matrix factored once (e.g. ``C/h + G/2`` for TR)."""
        raise NotImplementedError

    def _rhs(
        self, x: np.ndarray, bu0: np.ndarray, bu1: np.ndarray
    ) -> np.ndarray:
        """Step right-hand side from ``(x, bu_this_step, bu_next_step)``."""
        raise NotImplementedError

    # -- public API --------------------------------------------------------------

    def simulate(
        self,
        t_end: float,
        x0: np.ndarray | None = None,
        record_times: Sequence[float] | None = None,
        sink: ResultSink | None = None,
    ) -> TransientResult:
        """March ``round(t_end/h)`` uniform steps through the shared loop.

        Parameters
        ----------
        t_end:
            Horizon; must cover at least one step.
        x0:
            Initial state; defaults to the DC operating point.
        record_times:
            Times (multiples of ``h``) whose states should be kept.
            ``None`` keeps every step — fine for small circuits, wasteful
            for suites.
        sink:
            Recorded-state destination (default: dense in-memory).
        """
        n_steps = int(round(t_end / self.h))
        if n_steps < 1:
            raise ValueError(
                f"t_end={t_end!r} shorter than one step h={self.h!r}"
            )

        stats = SolverStats()
        stats.factor_seconds += self._factor_seconds_pending
        self._factor_seconds_pending = 0.0

        if x0 is None:
            t_dc = time.perf_counter()
            x0, lu_g = dc_operating_point(self.system)
            stats.dc_seconds = time.perf_counter() - t_dc
            stats.factor_seconds += lu_g.factor_seconds
            stats.n_solves_dc += 1

        grid = self.h * np.arange(n_steps + 1)
        record = select_record_indices(n_steps, record_times, self.h)
        bu_grid = self.system.bu_series(grid)
        solves_before = self.lu.n_solves

        def advance(i: int, t: float, t_next: float, x: np.ndarray):
            return self.lu.solve(self._rhs(x, bu_grid[:, i], bu_grid[:, i + 1]))

        loop = SteppingLoop(self.system.dim, stats, sink=sink)
        times, states = loop.march_grid(grid, x0, advance, record=record)
        stats.n_solves_krylov = 0
        stats.n_solves_etd = self.lu.n_solves - solves_before

        return TransientResult(
            system=self.system,
            times=times,
            states=states,
            stats=stats,
            method=self.method_label,
            sink=sink,
        )
