"""Fixed-step backward Euler.

First-order A-stable (indeed L-stable) companion baseline::

    (C/h + G) x(t+h) = (C/h) x(t) + B u(t+h)

Its strong damping makes it the paper's accuracy *reference* when run at
a tiny step (Table 1 uses BE at 0.05ps); see
:mod:`repro.baselines.reference`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.fixed_step import run_fixed_step
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult

__all__ = ["simulate_backward_euler"]


def simulate_backward_euler(
    system: MNASystem,
    h: float,
    t_end: float,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
) -> TransientResult:
    """Simulate with fixed-step BE; see module docstring.

    Parameters mirror
    :func:`repro.baselines.trapezoidal.simulate_trapezoidal`.
    """
    if h <= 0.0:
        raise ValueError(f"step size must be positive, got {h!r}")
    lhs = (system.C / h + system.G).tocsc()
    rhs_matrix = (system.C / h).tocsr()

    def rhs(x: np.ndarray, bu0: np.ndarray, bu1: np.ndarray) -> np.ndarray:
        return rhs_matrix @ x + bu1

    return run_fixed_step(
        system, h, t_end,
        lhs=lhs, rhs_fn=rhs,
        method="be-fixed", x0=x0, record_times=record_times,
    )
