"""Fixed-step backward Euler.

First-order A-stable (indeed L-stable) companion baseline::

    (C/h + G) x(t+h) = (C/h) x(t) + B u(t+h)

Its strong damping makes it the paper's accuracy *reference* when run at
a tiny step (Table 1 uses BE at 0.05ps); see
:mod:`repro.baselines.reference`.

Registered in the integrator registry as ``"be"``; the marching loop is
the shared :class:`~repro.engine.loop.SteppingLoop`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.fixed_step import FixedStepImplicitIntegrator
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.engine.registry import register_integrator
from repro.engine.sinks import ResultSink

__all__ = ["BackwardEulerIntegrator", "simulate_backward_euler"]


@register_integrator("be", "backward-euler", "be-fixed")
class BackwardEulerIntegrator(FixedStepImplicitIntegrator):
    """Fixed-step BE strategy; see module docstring."""

    method_label = "be-fixed"

    def __init__(self, system: MNASystem, h: float):
        super().__init__(system, h)
        self._rhs_matrix = (system.C / self.h).tocsr()

    def _lhs(self):
        return (self.system.C / self.h + self.system.G).tocsc()

    def _rhs(self, x, bu0, bu1):
        return self._rhs_matrix @ x + bu1


def simulate_backward_euler(
    system: MNASystem,
    h: float,
    t_end: float,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
    sink: ResultSink | None = None,
) -> TransientResult:
    """Simulate with fixed-step BE; see module docstring.

    Parameters mirror
    :func:`repro.baselines.trapezoidal.simulate_trapezoidal`.
    """
    return BackwardEulerIntegrator(system, h).simulate(
        t_end, x0=x0, record_times=record_times, sink=sink
    )
