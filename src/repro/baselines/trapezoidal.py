"""Fixed-step trapezoidal method (paper Eq. 2) — the primary baseline.

TR with a fixed step is "an efficient framework adopted by the top PG
solvers in the 2012 TAU PG simulation contest" (Sec. 2.1): one LU of
``C/h + G/2`` up front, then one substitution pair per step::

    (C/h + G/2) x(t+h) = (C/h − G/2) x(t) + B (u(t) + u(t+h)) / 2

Table 3 pits MATEX against this with ``h = 10ps`` over 1000 steps.

Registered in the integrator registry as ``"tr"``; the marching loop is
the shared :class:`~repro.engine.loop.SteppingLoop`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.fixed_step import FixedStepImplicitIntegrator
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.engine.registry import register_integrator
from repro.engine.sinks import ResultSink

__all__ = ["TrapezoidalIntegrator", "simulate_trapezoidal"]


@register_integrator("tr", "trapezoidal", "tr-fixed")
class TrapezoidalIntegrator(FixedStepImplicitIntegrator):
    """Fixed-step TR strategy; see module docstring."""

    method_label = "tr-fixed"

    def __init__(self, system: MNASystem, h: float):
        super().__init__(system, h)
        self._rhs_matrix = (system.C / self.h - system.G / 2.0).tocsr()

    def _lhs(self):
        return (self.system.C / self.h + self.system.G / 2.0).tocsc()

    def _rhs(self, x, bu0, bu1):
        return self._rhs_matrix @ x + 0.5 * (bu0 + bu1)


def simulate_trapezoidal(
    system: MNASystem,
    h: float,
    t_end: float,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
    sink: ResultSink | None = None,
) -> TransientResult:
    """Simulate with fixed-step TR; see module docstring.

    Parameters
    ----------
    system:
        Assembled MNA system.
    h:
        Fixed step size.
    t_end:
        Simulation horizon (``round(t_end/h)`` steps are taken).
    x0:
        Initial state; defaults to the DC operating point.
    record_times:
        Optional subset of grid times to keep (all by default).
    sink:
        Recorded-state destination (default: dense in-memory).
    """
    return TrapezoidalIntegrator(system, h).simulate(
        t_end, x0=x0, record_times=record_times, sink=sink
    )
