"""Fixed-step trapezoidal method (paper Eq. 2) — the primary baseline.

TR with a fixed step is "an efficient framework adopted by the top PG
solvers in the 2012 TAU PG simulation contest" (Sec. 2.1): one LU of
``C/h + G/2`` up front, then one substitution pair per step::

    (C/h + G/2) x(t+h) = (C/h − G/2) x(t) + B (u(t) + u(t+h)) / 2

Table 3 pits MATEX against this with ``h = 10ps`` over 1000 steps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.fixed_step import run_fixed_step
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult

__all__ = ["simulate_trapezoidal"]


def simulate_trapezoidal(
    system: MNASystem,
    h: float,
    t_end: float,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
) -> TransientResult:
    """Simulate with fixed-step TR; see module docstring.

    Parameters
    ----------
    system:
        Assembled MNA system.
    h:
        Fixed step size.
    t_end:
        Simulation horizon (``round(t_end/h)`` steps are taken).
    x0:
        Initial state; defaults to the DC operating point.
    record_times:
        Optional subset of grid times to keep (all by default).
    """
    if h <= 0.0:
        raise ValueError(f"step size must be positive, got {h!r}")
    lhs = (system.C / h + system.G / 2.0).tocsc()
    rhs_matrix = (system.C / h - system.G / 2.0).tocsr()

    def rhs(x: np.ndarray, bu0: np.ndarray, bu1: np.ndarray) -> np.ndarray:
        return rhs_matrix @ x + 0.5 * (bu0 + bu1)

    return run_fixed_step(
        system, h, t_end,
        lhs=lhs, rhs_fn=rhs,
        method="tr-fixed", x0=x0, record_times=record_times,
    )
