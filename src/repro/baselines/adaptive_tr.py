"""Adaptive trapezoidal method with LTE step control (paper Table 2).

The traditional adaptive competitor: TR whose step size is governed by a
local-truncation-error estimate (Najm, *Circuit Simulation*, 2010).  Its
structural handicap versus MATEX is the whole point of the comparison:
**every step-size change forces a new LU factorisation** of
``C/h + G/2``, while MATEX re-scales a Hessenberg exponent.

Controller
----------
* the TR LTE is ``-h³/12 · x‴``; ``x‴`` is estimated from third divided
  differences of the last four accepted states;
* reject and halve ``h`` when the estimate exceeds ``tol``;
* double ``h`` after several consecutive comfortably-accepted steps
  (estimate below ``tol/16``);
* ``h`` is always clamped so steps land exactly on input transition
  spots (skipping a pulse edge would silently miss the event);
* factorisations are cached by step size — the controller typically
  bounces between a few sizes, and real implementations cache too.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.baselines.fixed_step import dc_operating_point
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.linalg.lu import SparseLU

__all__ = ["simulate_adaptive_trapezoidal"]


def _third_derivative_estimate(
    history: deque, t_new: float, x_new: np.ndarray
) -> float:
    """Max-norm third divided difference × 3! over the last 4 points."""
    pts = list(history)[-3:] + [(t_new, x_new)]
    if len(pts) < 4:
        return 0.0

    def divided(points):
        if len(points) == 1:
            return points[0][1]
        num = divided(points[1:]) - divided(points[:-1])
        den = points[-1][0] - points[0][0]
        return num / den

    return 6.0 * float(np.max(np.abs(divided(pts))))


def simulate_adaptive_trapezoidal(
    system: MNASystem,
    t_end: float,
    tol: float = 1e-4,
    h_init: float | None = None,
    h_min: float | None = None,
    h_max: float | None = None,
    x0: np.ndarray | None = None,
    max_factorizations: int = 200,
) -> TransientResult:
    """Adaptive-step TR with LTE control.

    Parameters
    ----------
    system:
        Assembled MNA system.
    t_end:
        Horizon.
    tol:
        Absolute LTE tolerance per step (volts).
    h_init, h_min, h_max:
        Step-size bounds; defaults are ``t_end/1000``, ``t_end/65536``
        and ``t_end/20``.
    x0:
        Initial state (default: DC operating point).
    max_factorizations:
        Safety valve against pathological thrashing.

    Returns
    -------
    TransientResult
        Accepted-step trajectory.  ``stats.n_krylov_bases`` is abused to
        carry the number of LU factorisations performed (the quantity
        the paper's comparison hinges on); ``stats.factor_seconds``
        accumulates their wall time.
    """
    h_init = h_init if h_init is not None else t_end / 1000.0
    h_min = h_min if h_min is not None else t_end / 65536.0
    h_max = h_max if h_max is not None else t_end / 20.0
    if not (0 < h_min <= h_init <= h_max):
        raise ValueError(
            f"need 0 < h_min <= h_init <= h_max, got "
            f"{h_min!r}, {h_init!r}, {h_max!r}"
        )

    stats = SolverStats()
    lu_cache: dict[float, SparseLU] = {}

    def factored(h: float) -> SparseLU:
        lu = lu_cache.get(h)
        if lu is None:
            if len(lu_cache) >= max_factorizations:
                raise RuntimeError(
                    f"adaptive TR exceeded {max_factorizations} "
                    f"factorisations; tolerance {tol!r} may be too tight"
                )
            lu = SparseLU((system.C / h + system.G / 2.0).tocsc(), label=f"TR h={h:g}")
            stats.factor_seconds += lu.factor_seconds
            stats.n_krylov_bases += 1  # = number of LU factorisations here
            lu_cache[h] = lu
        return lu

    if x0 is None:
        t_dc = time.perf_counter()
        x0, lu_g = dc_operating_point(system)
        stats.dc_seconds = time.perf_counter() - t_dc
        stats.factor_seconds += lu_g.factor_seconds
        stats.n_solves_dc += 1
    x = np.asarray(x0, dtype=float).copy()

    gts = system.global_transition_spots(t_end)
    c_over = system.C.tocsr()
    g_half = (system.G / 2.0).tocsr()

    times = [0.0]
    states = [x.copy()]
    history: deque = deque(maxlen=4)
    history.append((0.0, x.copy()))

    t = 0.0
    h = h_init
    good_streak = 0
    gts_idx = 1

    t_loop = time.perf_counter()
    while t < t_end - 1e-18 * t_end:
        # Clamp the step to land exactly on the next transition spot.
        while gts_idx < len(gts) and gts[gts_idx] <= t * (1 + 1e-12):
            gts_idx += 1
        limit = gts[gts_idx] - t if gts_idx < len(gts) else t_end - t
        h_step = min(h, limit, t_end - t)

        lu = factored(h_step)
        bu0 = system.bu(t)
        bu1 = system.bu(t + h_step)
        rhs = (c_over @ x) / h_step - g_half @ x + 0.5 * (bu0 + bu1)
        x_new = lu.solve(rhs)
        stats.n_steps += 1

        d3 = _third_derivative_estimate(history, t + h_step, x_new)
        lte = (h_step ** 3) / 12.0 * d3

        if lte > tol and h_step > h_min:
            # Reject: halve and retry (new factorisation unless cached).
            h = max(h_step / 2.0, h_min)
            good_streak = 0
            continue

        t += h_step
        x = x_new
        times.append(t)
        states.append(x.copy())
        history.append((t, x.copy()))

        if lte < tol / 16.0:
            good_streak += 1
            if good_streak >= 3 and h < h_max:
                h = min(h * 2.0, h_max)
                good_streak = 0
        else:
            good_streak = 0
    stats.transient_seconds = time.perf_counter() - t_loop
    stats.n_solves_etd = sum(lu.n_solves for lu in lu_cache.values())

    return TransientResult(
        system=system,
        times=np.asarray(times),
        states=np.asarray(states),
        stats=stats,
        method="tr-adaptive",
    )
