"""Adaptive trapezoidal method with LTE step control (paper Table 2).

The traditional adaptive competitor: TR whose step size is governed by a
local-truncation-error estimate (Najm, *Circuit Simulation*, 2010).  Its
structural handicap versus MATEX is the whole point of the comparison:
**every step-size change forces a new LU factorisation** of
``C/h + G/2``, while MATEX re-scales a Hessenberg exponent.

Controller
----------
* the TR LTE is ``-h³/12 · x‴``; ``x‴`` is estimated from third divided
  differences of the last four accepted states;
* reject and halve ``h`` when the estimate exceeds ``tol``;
* double ``h`` after several consecutive comfortably-accepted steps
  (estimate below ``tol/16``);
* ``h`` is always clamped so steps land exactly on input transition
  spots (skipping a pulse edge would silently miss the event);
* factorisations are cached by step size — the controller typically
  bounces between a few sizes, and real implementations cache too.

Registered in the integrator registry as ``"tr-adaptive"``.  The
step-size *policy* lives in :class:`_LteController`; the accept/reject
marching itself is the shared
:meth:`~repro.engine.loop.SteppingLoop.march_adaptive`.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.baselines.fixed_step import dc_operating_point
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.engine.loop import SteppingLoop
from repro.engine.registry import Integrator, register_integrator
from repro.engine.sinks import ResultSink
from repro.linalg.lu import SparseLU

__all__ = ["AdaptiveTrapezoidalIntegrator", "simulate_adaptive_trapezoidal"]


def _third_derivative_estimate(
    history: deque, t_new: float, x_new: np.ndarray
) -> float:
    """Max-norm third divided difference × 3! over the last 4 points."""
    pts = list(history)[-3:] + [(t_new, x_new)]
    if len(pts) < 4:
        return 0.0

    def divided(points):
        if len(points) == 1:
            return points[0][1]
        num = divided(points[1:]) - divided(points[:-1])
        den = points[-1][0] - points[0][0]
        return num / den

    return 6.0 * float(np.max(np.abs(divided(pts))))


class _LteController:
    """Step-size policy of the adaptive TR run (the strategy half).

    Owns the LTE estimate, the per-step-size factorisation cache (served
    by the process-wide cache underneath) and the halve/double policy;
    the :class:`~repro.engine.loop.SteppingLoop` owns everything else.
    """

    def __init__(
        self,
        system: MNASystem,
        stats: SolverStats,
        t_end: float,
        tol: float,
        h_init: float,
        h_min: float,
        h_max: float,
        max_factorizations: int,
        x0: np.ndarray,
    ):
        self.system = system
        self.stats = stats
        self.t_end = t_end
        self.tol = tol
        self.h = h_init
        self.h_min = h_min
        self.h_max = h_max
        self.max_factorizations = max_factorizations
        self.lu_cache: dict[float, SparseLU] = {}
        self.gts = system.global_transition_spots(t_end)
        self.gts_idx = 1
        self.good_streak = 0
        self.history: deque = deque(maxlen=4)
        self.history.append((0.0, np.array(x0, dtype=float)))
        self._c_over = system.C.tocsr()
        self._g_half = (system.G / 2.0).tocsr()
        self._lte = 0.0

    def factored(self, h: float) -> SparseLU:
        # Deliberately NOT routed through the process-wide cache: a
        # thrashing controller can produce dozens of step-size-specific
        # matrices that are never reused across runs, and inserting them
        # would evict the shared pencils (G, C+γG) the global cache
        # exists to amortise.  The per-run dict is the right scope here.
        lu = self.lu_cache.get(h)
        if lu is None:
            if len(self.lu_cache) >= self.max_factorizations:
                raise RuntimeError(
                    f"adaptive TR exceeded {self.max_factorizations} "
                    f"factorisations; tolerance {self.tol!r} may be too tight"
                )
            lu = SparseLU(
                (self.system.C / h + self.system.G / 2.0).tocsc(),
                label=f"TR h={h:g}",
            )
            self.stats.factor_seconds += lu.factor_seconds
            self.stats.n_krylov_bases += 1  # = number of LU factorisations
            self.lu_cache[h] = lu
        return lu

    # -- StepController interface ------------------------------------------------

    def propose(self, t: float) -> float:
        """Clamp the step to land exactly on the next transition spot."""
        while (self.gts_idx < len(self.gts)
               and self.gts[self.gts_idx] <= t * (1 + 1e-12)):
            self.gts_idx += 1
        limit = (self.gts[self.gts_idx] - t
                 if self.gts_idx < len(self.gts) else self.t_end - t)
        step = min(self.h, limit, self.t_end - t)
        # A step below ~100 ulp of the current time cannot advance the
        # march (t + h rounds back to t) — the loop would spin forever.
        # The final approach to t_end legitimately shrinks to ulp scale
        # (step == remaining), so only a *policy*-shrunk step trips this.
        remaining = self.t_end - t
        if step < 1e2 * np.spacing(t) and step < remaining:
            raise RuntimeError(
                f"adaptive TR step-size underflow: dt={step:.3e} is below "
                f"100 ulp of t={t:.3e} and can no longer advance the "
                f"march; tol={self.tol:g} is too tight (or "
                f"h_min={self.h_min:g} too small) for this circuit"
            )
        return step

    def attempt(
        self, t: float, h_step: float, x: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        lu = self.factored(h_step)
        bu0 = self.system.bu(t)
        bu1 = self.system.bu(t + h_step)
        rhs = (self._c_over @ x) / h_step - self._g_half @ x + 0.5 * (bu0 + bu1)
        x_new = lu.solve(rhs)

        d3 = _third_derivative_estimate(self.history, t + h_step, x_new)
        self._lte = (h_step ** 3) / 12.0 * d3
        if self._lte > self.tol and h_step > self.h_min:
            # Reject: halve and retry (new factorisation unless cached).
            self.h = max(h_step / 2.0, self.h_min)
            self.good_streak = 0
            return x_new, False
        return x_new, True

    def accepted(self, t: float, x: np.ndarray) -> None:
        self.history.append((t, np.array(x, dtype=float)))
        if self._lte < self.tol / 16.0:
            self.good_streak += 1
            if self.good_streak >= 3 and self.h < self.h_max:
                self.h = min(self.h * 2.0, self.h_max)
                self.good_streak = 0
        else:
            self.good_streak = 0


@register_integrator("tr-adaptive", "adaptive-tr", "tr-lte")
class AdaptiveTrapezoidalIntegrator(Integrator):
    """Adaptive-step TR strategy; see module docstring.

    Parameters
    ----------
    system:
        Assembled MNA system.
    tol:
        Absolute LTE tolerance per step (volts).
    h_init, h_min, h_max:
        Step-size bounds; defaults (resolved per run against the
        horizon) are ``t_end/1000``, ``t_end/65536`` and ``t_end/20``.
    max_factorizations:
        Safety valve against pathological thrashing.
    """

    method_label = "tr-adaptive"

    def __init__(
        self,
        system: MNASystem,
        tol: float = 1e-4,
        h_init: float | None = None,
        h_min: float | None = None,
        h_max: float | None = None,
        max_factorizations: int = 200,
    ):
        self.system = system
        self.tol = tol
        self.h_init = h_init
        self.h_min = h_min
        self.h_max = h_max
        self.max_factorizations = max_factorizations

    def simulate(
        self,
        t_end: float,
        x0: np.ndarray | None = None,
        sink: ResultSink | None = None,
    ) -> TransientResult:
        """Run the LTE-controlled march over ``[0, t_end]``.

        Returns
        -------
        TransientResult
            Accepted-step trajectory.  ``stats.n_krylov_bases`` is abused
            to carry the number of LU factorisations performed (the
            quantity the paper's comparison hinges on);
            ``stats.factor_seconds`` accumulates their wall time.
        """
        h_init = self.h_init if self.h_init is not None else t_end / 1000.0
        h_min = self.h_min if self.h_min is not None else t_end / 65536.0
        h_max = self.h_max if self.h_max is not None else t_end / 20.0
        if not (0 < h_min <= h_init <= h_max):
            raise ValueError(
                f"need 0 < h_min <= h_init <= h_max, got "
                f"{h_min!r}, {h_init!r}, {h_max!r}"
            )

        stats = SolverStats()
        if x0 is None:
            t_dc = time.perf_counter()
            x0, lu_g = dc_operating_point(self.system)
            stats.dc_seconds = time.perf_counter() - t_dc
            stats.factor_seconds += lu_g.factor_seconds
            stats.n_solves_dc += 1
        x0 = np.asarray(x0, dtype=float)

        controller = _LteController(
            self.system, stats, t_end, self.tol,
            h_init, h_min, h_max, self.max_factorizations, x0,
        )
        loop = SteppingLoop(self.system.dim, stats, sink=sink)
        times, states = loop.march_adaptive(t_end, x0, controller)
        stats.n_solves_etd = sum(
            lu.n_solves for lu in controller.lu_cache.values()
        )

        return TransientResult(
            system=self.system,
            times=times,
            states=states,
            stats=stats,
            method=self.method_label,
            sink=sink,
        )


def simulate_adaptive_trapezoidal(
    system: MNASystem,
    t_end: float,
    tol: float = 1e-4,
    h_init: float | None = None,
    h_min: float | None = None,
    h_max: float | None = None,
    x0: np.ndarray | None = None,
    max_factorizations: int = 200,
) -> TransientResult:
    """Adaptive-step TR with LTE control; see the class docstring."""
    return AdaptiveTrapezoidalIntegrator(
        system, tol=tol, h_init=h_init, h_min=h_min, h_max=h_max,
        max_factorizations=max_factorizations,
    ).simulate(t_end, x0=x0)
