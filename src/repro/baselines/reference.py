"""High-accuracy reference trajectories.

Two reference generators:

* :func:`reference_backward_euler` — the paper's Table 1 reference: BE
  with a tiny uniform step (0.05ps there).  Works for singular ``C`` and
  any size, at O(steps) substitution cost.
* :func:`reference_exact` — the dense augmented-``expm`` oracle from
  :mod:`repro.linalg.dense_reference`, exact to machine precision but
  limited to small systems with invertible ``C``.

Both return a :class:`~repro.core.results.TransientResult` so the error
metrics in :mod:`repro.analysis.errors` apply uniformly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.backward_euler import simulate_backward_euler
from repro.circuit.mna import MNASystem
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.linalg.dense_reference import exact_transient

__all__ = ["reference_backward_euler", "reference_exact"]


def reference_backward_euler(
    system: MNASystem,
    t_end: float,
    h: float,
    x0: np.ndarray | None = None,
    record_times: Sequence[float] | None = None,
) -> TransientResult:
    """Tiny-step BE reference (paper Table 1 uses h = 0.05ps).

    A thin wrapper that exists to make call sites self-documenting.
    """
    result = simulate_backward_euler(
        system, h, t_end, x0=x0, record_times=record_times
    )
    result.method = "reference-be"
    return result


def reference_exact(
    system: MNASystem,
    t_end: float,
    x0: np.ndarray | None = None,
    extra_times: Sequence[float] | None = None,
) -> TransientResult:
    """Machine-precision ETD oracle (small systems, invertible ``C``)."""
    if x0 is None:
        from repro.baselines.fixed_step import dc_operating_point

        x0, _ = dc_operating_point(system)
    times, states = exact_transient(
        system, np.asarray(x0, dtype=float), t_end,
        extra_times=list(extra_times) if extra_times else None,
    )
    return TransientResult(
        system=system,
        times=times,
        states=states,
        stats=SolverStats(n_steps=len(times) - 1),
        method="reference-exact",
    )
