"""Block rational-Krylov projection basis for the MNA pencil.

The reduced-order tier rests on one observation (paper Sec. 2 + the
R-MATEX shift): every quantity a scenario sweep asks for lives close to
a low-dimensional subspace spanned by

* the **quasi-static block** ``G^-1 B`` — the per-input DC responses
  (superposition makes the steady-state part of any input pattern an
  exact linear combination of these columns), and
* the **rational Krylov moment blocks** ``(C + γG)^-1 B``,
  ``(C + γG)^-1 C (C + γG)^-1 B``, … — the transient responses of the
  γ-shifted pencil, the same pencil the full-order R-MATEX march
  factors (so building the basis reuses the cached factorisation and
  its level-scheduled multi-RHS substitution kernel).

The blocks are heavily rank-deficient for realistic PDNs — hundreds of
load currents injected into one stiff grid excite far fewer independent
responses — so the projector deflates them: candidate columns are
normalised and passed through one **pivoted QR**, and columns whose
pivoted diagonal falls below ``deflation_tol`` relative to the leading
pivot are dropped (the same breakdown treatment block-Arnoldi codes
apply per iteration, applied across the whole candidate set so the
``q_max`` budget is spent on the *globally* most independent
directions, not on whichever block happened to be orthogonalised
first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from repro.linalg.lu import FACTORIZATION_CACHE, canonical_shift

__all__ = ["BasisInfo", "RomBuildError", "rational_krylov_basis"]


class RomBuildError(RuntimeError):
    """Reduced-model construction failed (the full-order path remains)."""


@dataclass(frozen=True)
class BasisInfo:
    """How the projection basis was built (reported by ``repro sweep``).

    Attributes
    ----------
    n_candidates:
        Candidate columns generated (``(1 + moments) * n_inputs``).
    n_deflated:
        Candidates dropped as numerically dependent (pivoted-QR
        deflation), *before* the ``q_max`` cap.
    rank:
        Columns kept — the reduced dimension ``q``.
    truncated:
        True when the numerical rank exceeded ``q_max`` and the basis
        was capped (the error bound, not the builder, polices the
        resulting accuracy).
    """

    n_candidates: int
    n_deflated: int
    rank: int
    truncated: bool


def _dense_inputs(B) -> np.ndarray:
    """The input selector as a dense, contiguous ``(n, p)`` block."""
    if sp.issparse(B):
        return np.asarray(B.todense(), dtype=float, order="F")
    return np.asarray(B, dtype=float, order="F")


def rational_krylov_basis(
    C: sp.spmatrix,
    G: sp.spmatrix,
    B,
    gamma: float,
    moments: int = 2,
    q_max: int = 200,
    deflation_tol: float = 1e-10,
) -> tuple[np.ndarray, BasisInfo]:
    """Orthonormal basis ``V`` for the reduced space, with deflation.

    Parameters
    ----------
    C, G:
        The MNA descriptor matrices (``C x' = -G x + B u``).
    B:
        Input selector, sparse or dense ``(n, p)``.
    gamma:
        Rational shift of the pencil ``S = C + γG`` (must match the
        sweep's solver options so the factorisation cache is shared).
    moments:
        Number of rational moment blocks (``>= 1``); block ``j`` is
        ``(S^-1 C)^(j-1) S^-1 B``.  The quasi-static block ``G^-1 B``
        always rides along.
    q_max:
        Hard cap on the reduced dimension.
    deflation_tol:
        Relative pivot threshold below which a candidate column is
        deflated as linearly dependent.

    Returns
    -------
    (V, info):
        ``V`` is ``(n, q)`` with orthonormal columns, ``q <= q_max``.

    Raises
    ------
    RomBuildError
        On an empty/degenerate input block or a factorisation failure.
    """
    if moments < 1:
        raise ValueError(f"moments must be >= 1, got {moments}")
    if q_max < 1:
        raise ValueError(f"q_max must be >= 1, got {q_max}")
    if not 0.0 < deflation_tol < 1.0:
        raise ValueError(
            f"deflation_tol must be in (0, 1), got {deflation_tol!r}"
        )

    Bd = _dense_inputs(B)
    if Bd.size == 0:
        raise RomBuildError("system has no inputs: nothing to project")

    try:
        lu_g = FACTORIZATION_CACHE.factor(G, label="G(rom)")
        S = (C + gamma * G).tocsc()
        lu_s = FACTORIZATION_CACHE.factor(
            S, label="S(rom)", key_extra=canonical_shift(gamma)
        )
    except Exception as exc:  # singular G / S: no reduced model
        raise RomBuildError(
            f"pencil factorisation failed while building the reduced "
            f"basis: {exc}"
        ) from exc

    blocks = [np.asarray(lu_g.solve_many(Bd))]
    X = np.asarray(lu_s.solve_many(Bd))
    blocks.append(X)
    for _ in range(moments - 1):
        X = np.asarray(lu_s.solve_many(np.asarray(C @ X)))
        blocks.append(X)

    cand = np.concatenate(blocks, axis=1)
    if not np.all(np.isfinite(cand)):
        raise RomBuildError(
            "candidate blocks contain non-finite entries (near-singular "
            "pencil?); refusing to build a reduced model"
        )

    # Column-normalise so the pivoted QR ranks *directions*, not input
    # magnitudes (a microamp load deserves the same chance as a rail).
    norms = np.linalg.norm(cand, axis=0)
    dead = norms == 0.0  # repro: allow[RPL005] exactly-zero columns only; near-zero must keep their scale
    norms[dead] = 1.0
    n_candidates = cand.shape[1]

    try:
        Q, R, _ = sla.qr(cand / norms, mode="economic", pivoting=True)
    except Exception as exc:
        raise RomBuildError(f"pivoted QR failed: {exc}") from exc

    diag = np.abs(np.diag(R))
    lead = diag[0] if diag.size else 0.0
    if lead == 0.0:  # repro: allow[RPL005] exact zero leading pivot: all columns numerically zero
        raise RomBuildError(
            "all candidate columns are numerically zero: the inputs do "
            "not excite the system"
        )
    rank = int(np.sum(diag > deflation_tol * lead))
    n_deflated = n_candidates - rank - int(np.sum(dead))
    keep = min(q_max, rank)
    V = np.ascontiguousarray(Q[:, :keep])
    return V, BasisInfo(
        n_candidates=n_candidates,
        n_deflated=max(n_deflated, 0),
        rank=keep,
        truncated=rank > q_max,
    )
