"""Reduced-order model tier: answer scenario sweeps from a projected pencil.

The package projects the MNA descriptor system onto a block
rational-Krylov subspace once (:mod:`repro.rom.projector`), bakes a
picklable :class:`~repro.rom.model.ReducedModel`
(:func:`~repro.rom.model.build_reduced_model`), and answers each sweep
scenario with a few dense ``q``-sized products plus a posterior
residual error bound — accepted answers skip the full-order march
entirely, rejected ones transparently fall back to it.  Wired through
``SimulationPlan.compile(rom=...)``, ``Session.sweep`` and
``repro sweep --rom``.
"""

from repro.rom.model import (
    ReducedModel,
    RomAnswer,
    RomConfig,
    build_reduced_model,
)
from repro.rom.projector import BasisInfo, RomBuildError, rational_krylov_basis

__all__ = [
    "BasisInfo",
    "ReducedModel",
    "RomAnswer",
    "RomBuildError",
    "RomConfig",
    "build_reduced_model",
    "rational_krylov_basis",
]
