"""Reduced-order transient model with a posterior residual bound.

``build_reduced_model`` compresses the descriptor system
``C x' = -G x + B u(t)`` onto the block rational-Krylov subspace of
:mod:`repro.rom.projector` and precomputes everything a scenario sweep
needs, so answering one scenario is a few dense BLAS products of size
``q`` instead of a full-order MATEX march:

**Passive projection.**  MNA as stamped here is symmetric but
indefinite (voltage-source and inductor branch rows), and a Galerkin
projection of an indefinite pencil can produce an *unstable* reduced
system even though the circuit is passive.  Negating the branch-current
rows — a pure row scaling that changes no solution — yields the
passive form ``C ⪰ 0``, ``G + Gᵀ ⪰ 0``, for which the projected pencil
``(V'CV, V'GV)`` provably keeps every finite eigenvalue in the closed
left half-plane.

**γ-regularised modal march.**  The reduced pencil is diagonalised
through ``M = (Ĉ + γĜ)^-1 Ĉ`` — the reduced twin of the R-MATEX
rational operator ``(C + γG)^-1 C``.  Its eigenvalues map to pencil
eigenvalues via ``λ = (1 - 1/μ)/γ``; algebraic (singular-``Ĉ``)
directions arrive as ``μ → 0`` and are sent to enormously negative
exponents, exactly how the full-order path treats singular Hessenberg
blocks.  Per distinct segment width ``h`` (the frozen GTS grid has few)
three diagonal propagator vectors are tabulated, so one scenario's
march over the grid is ``K`` small elementwise updates — **exact** for
the piecewise-linear inputs between transition spots, the same
assumption the full-order integrator makes.  The identities
``F/μ = F(1 - γλ)`` and ``h φ1(hλ)/μ = γ(1 - e^{hλ})/(1 - μ)`` keep
every coefficient finite without ever dividing by a vanishing ``μ``.

**Posterior bound.**  Each answered scenario gets a residual-based
error indicator: with ``v(t) = V w(t)`` the lifted reduced trajectory,
the defect ``r(t) = B ũ - C v̇ - G v`` is mapped through ``G^-1`` (the
quasi-static error amplification of a stiff PDN) and the reported
bound is ``safety · max_t ‖G^-1 r(t)‖∞`` over the grid.  The error
``e = x - v`` solves ``C ė = -G e + r`` with ``e(0) = 0``, for which
the grid maximum of ``‖G^-1 r‖`` is the natural stiff-limit estimate;
the ``safety`` factor covers inter-grid excursions and transient
overshoot of that estimate.  Scenarios whose *relative* bound exceeds
``tol`` are transparently re-run on the full-order path by
:meth:`repro.plan.Session.sweep` — the tier accelerates, it never
silently degrades.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.circuit.mna import MNASystem
from repro.core.options import SolverOptions
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.rom.projector import BasisInfo, RomBuildError, rational_krylov_basis

__all__ = ["RomConfig", "RomAnswer", "ReducedModel", "build_reduced_model"]

#: Below this |μ| a reduced mode is treated as purely algebraic: its
#: exponent is floored (λ ~ -1/(γ·μ_floor)) so the propagators evaluate
#: in their quasi-static limit instead of overflowing.
MU_FLOOR = 1e-8


@dataclass(frozen=True)
class RomConfig:
    """Accuracy/size knobs of the reduced-order sweep tier.

    Attributes
    ----------
    tol:
        Acceptance threshold on the **relative** posterior bound (the
        absolute bound divided by the scenario's response scale).  A
        scenario above it falls back to the full-order path.
    q_max:
        Reduced-dimension cap handed to the projector.
    moments:
        Rational Krylov moment blocks in the basis (see
        :func:`repro.rom.projector.rational_krylov_basis`).
    deflation_tol:
        Relative pivot threshold for QR deflation of dependent
        candidate columns.
    safety:
        Multiplier on the raw residual indicator; the *reported* bound
        is ``safety × max‖G^-1 r‖∞``.  The indicator empirically tracks
        the true error to within a few percent on PDN workloads
        (``benchmarks/bench_rom.py`` asserts it), so the default 2.0 is
        a conservative margin, not a fudge looking for tuning.
    """

    tol: float = 0.05
    q_max: int = 200
    moments: int = 2
    deflation_tol: float = 1e-10
    safety: float = 2.0

    def __post_init__(self):
        if not self.tol > 0.0:
            raise ValueError(f"tol must be positive, got {self.tol!r}")
        if self.q_max < 1:
            raise ValueError(f"q_max must be >= 1, got {self.q_max}")
        if self.moments < 1:
            raise ValueError(f"moments must be >= 1, got {self.moments}")
        if not 0.0 < self.deflation_tol < 1.0:
            raise ValueError(
                f"deflation_tol must be in (0, 1), "
                f"got {self.deflation_tol!r}"
            )
        if self.safety < 1.0:
            raise ValueError(
                f"safety must be >= 1 (a bound may not shrink the "
                f"indicator), got {self.safety!r}"
            )


@dataclass(frozen=True, eq=False)
class RomAnswer:
    """One scenario answered in reduced space.

    ``states`` is the lifted ``(K, dim)`` trajectory on the plan's GTS
    grid; ``bound_abs``/``bound_rel`` the posterior error bound (already
    including the configured safety factor); ``accepted`` whether the
    relative bound met the tolerance (callers fall back otherwise).
    """

    states: np.ndarray
    bound_abs: float
    bound_rel: float
    accepted: bool
    seconds: float


@dataclass(frozen=True, eq=False)
class ReducedModel:
    """Precomputed reduced-order sweep answerer (picklable).

    Every field is a plain array/dict, so a compiled plan carrying the
    model ships to executor processes unchanged.  All heavy operators
    (``V``, ``G^-1 B``, the modal tables) are baked in at build time;
    :meth:`answer` performs only dense products.
    """

    config: RomConfig
    gamma: float
    n_full: int
    n_inputs: int
    grid: np.ndarray                 # (K,) global transition spots
    mu: np.ndarray                   # (q,) complex eigenvalues of M
    lam: np.ndarray                  # (q,) mapped pencil exponents
    F_re: np.ndarray                 # (q, p) modal input map, real part
    F_im: np.ndarray                 # (q, p) … imaginary part
    VX: np.ndarray                   # (n, q) complex modal lift  V·X
    YX: np.ndarray                   # (n, q) complex  (G^-1 C V)·X
    W: np.ndarray                    # (n, p) quasi-static responses G^-1 B
    U_base: np.ndarray               # (p, K) base inputs on the grid
    tables: dict                     # h -> (a, b, c) diagonal propagators
    basis: BasisInfo
    build_seconds: float
    constant_columns: np.ndarray = field(repr=False)

    # -- geometry ----------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Reduced dimension ``q``."""
        return int(self.mu.shape[0])

    @property
    def n_points(self) -> int:
        """Grid length ``K``."""
        return int(self.grid.shape[0])

    def resident_bytes(self) -> int:
        """Bytes pinned by the model's dense operators and tables."""
        total = (
            self.mu.nbytes + self.lam.nbytes + self.F_re.nbytes
            + self.F_im.nbytes + self.VX.nbytes + self.YX.nbytes
            + self.W.nbytes + self.U_base.nbytes + self.grid.nbytes
            + self.constant_columns.nbytes
        )
        for abc in self.tables.values():
            total += sum(v.nbytes for v in abc)
        return int(total)

    # -- scenario inputs ---------------------------------------------------------

    def input_matrix(self, scenario=None, bound: MNASystem | None = None):
        """The ``(p, K)`` input values a scenario puts on the grid.

        Amplitude-only scenarios are served by row-scaling the baked
        base matrix; waveform overrides re-evaluate just the changed
        columns from the scenario-bound system.
        """
        if scenario is None or scenario.is_baseline:
            return self.U_base
        if not scenario.overrides:
            svec = np.ones(self.n_inputs)
            for col, factor in scenario.scales:
                svec[col] = factor
            return self.U_base * svec[:, None]
        if bound is None:
            raise ValueError(
                "scenarios with waveform overrides need the bound "
                "system to re-evaluate the changed columns"
            )
        U = self.U_base.copy()
        for col in scenario.changed_columns:
            U[col] = bound.waveforms[col].values_array(self.grid)
        return U

    # -- the reduced march -------------------------------------------------------

    def answer(self, U: np.ndarray) -> RomAnswer:
        """March one scenario entirely in reduced space.

        Parameters
        ----------
        U:
            Input values on the grid, shape ``(n_inputs, K)`` (see
            :meth:`input_matrix`).

        Returns
        -------
        RomAnswer
            Lifted trajectory + posterior bound.  ``accepted`` is the
            caller's cue to keep it or fall back.
        """
        t0 = time.perf_counter()
        K = self.n_points
        q = self.dim
        grid = self.grid

        # Deviation inputs ũ = u - u(0): the march starts from the
        # scenario's DC point, so the reduced state starts at zero and
        # the initial error is exactly zero.
        Ut = U - U[:, :1]
        qs = self.W @ Ut                       # quasi-static responses
        x_dc = self.W @ U[:, 0]                # scenario DC point  G^-1 B u(0)

        FU = self.F_re @ Ut + 1j * (self.F_im @ Ut)
        Y = np.empty((q, K), dtype=complex)
        y = np.zeros(q, dtype=complex)
        Y[:, 0] = y
        for i in range(K - 1):
            h = grid[i + 1] - grid[i]
            a, b, c = self.tables[h]
            d = (FU[:, i + 1] - FU[:, i]) / h
            y = a * y + b * FU[:, i] + c * d
            Y[:, i + 1] = y

        dev = (self.VX @ Y).real               # lifted deviation (n, K)

        # Modal derivatives, singular-μ-safe:  ẏ = λ(y - γFũ) + Fũ.
        Ydot = self.lam[:, None] * (Y - self.gamma * FU) + FU
        res = qs - (self.YX @ Ydot).real - dev
        bound_abs = self.config.safety * float(np.abs(res).max(initial=0.0))
        scale = max(
            float(np.abs(qs).max(initial=0.0)),
            float(np.abs(dev).max(initial=0.0)),
        )
        bound_rel = bound_abs / scale if scale > 0.0 else 0.0

        states = (x_dc[:, None] + dev).T
        return RomAnswer(
            states=states,
            bound_abs=bound_abs,
            bound_rel=bound_rel,
            accepted=bound_rel <= self.config.tol,
            seconds=time.perf_counter() - t0,
        )

    def summary(self) -> str:
        """One-line digest for CLI/bench reporting."""
        b = self.basis
        return (
            f"reduced model: q={self.dim} of n={self.n_full} "
            f"({b.n_candidates} candidates, {b.n_deflated} deflated"
            f"{', capped' if b.truncated else ''}), "
            f"{len(self.tables)} segment widths, "
            f"tol {self.config.tol:g}, safety {self.config.safety:g}, "
            f"{self.resident_bytes() / 2**20:.1f} MiB, "
            f"build {self.build_seconds * 1e3:.0f} ms"
        )


def _segment_tables(
    grid: np.ndarray, lam: np.ndarray, mu: np.ndarray, gamma: float
) -> dict:
    """Diagonal propagators ``(a, b, c)`` per distinct segment width.

    The exact piecewise-linear-input update in modal coordinates is::

        y⁺ = a ⊙ y + b ⊙ (F u_i) + c ⊙ (F d_i)      d_i = (u_{i+1}-u_i)/h

    with ``a = e^{hλ}``, ``b = h φ1(hλ)/μ`` and ``c = h² φ2(hλ)/μ``.
    The μ divisions are folded away through ``λμ = -(1-μ)/γ``::

        b = γ (1 - e^{hλ}) / (1 - μ)
        c = γ (hλ + 1 - e^{hλ}) / (λ (1 - μ))

    so algebraic directions (μ → 0, λ → -∞) evaluate smoothly to their
    quasi-static limits ``a → 0``, ``b → γ/(1-μ)``, ``c → γh/(1-μ)``
    instead of dividing by zero, and the small-``hλ`` branch switches
    to a series to dodge cancellation.
    """
    tables: dict = {}
    one_minus_mu = 1.0 - mu
    for h in sorted({float(w) for w in np.diff(grid)}):
        z = h * lam
        # λ ≤ 0 by construction, so exp never overflows.
        a = np.exp(z)
        b = gamma * (1.0 - a) / one_minus_mu
        small = np.abs(z) < 1e-5
        lam_safe = np.where(small, 1.0, lam)
        with np.errstate(invalid="ignore"):
            c_big = gamma * (z + 1.0 - a) / (lam_safe * one_minus_mu)
        c_small = -gamma * h * z * (0.5 + z / 6.0 + z * z / 24.0) \
            / one_minus_mu
        c = np.where(small, c_small, c_big)
        tables[h] = (a, b, c)
    return tables


def build_reduced_model(
    system: MNASystem,
    options: SolverOptions,
    t_end: float,
    config: RomConfig,
) -> ReducedModel:
    """Project ``system`` onto the rational-Krylov subspace and bake
    the scenario answerer.

    Raises :class:`~repro.rom.projector.RomBuildError` when no sound
    reduced model can be built — callers (``SimulationPlan.compile``)
    degrade to the full-order path and report why.
    """
    t0 = time.perf_counter()
    gamma = options.gamma
    n = system.dim
    p = system.n_inputs
    C, G = system.C, system.G

    V, info = rational_krylov_basis(
        C, G, system.B, gamma,
        moments=config.moments,
        q_max=config.q_max,
        deflation_tol=config.deflation_tol,
    )

    # Passive form: negate every branch-current row (voltage sources and
    # inductors live past the node block).  A row scaling changes no
    # solution, but it makes Ĉ ⪰ 0 and sym(Ĝ) ⪰ 0, which is what keeps
    # the projected pencil provably stable.
    n_nodes = system.netlist.n_nodes
    if n_nodes < n:
        d = np.ones(n)
        d[n_nodes:] = -1.0
        D = sp.diags(d)
        Cf, Gf, Bf = (D @ C).tocsc(), (D @ G).tocsc(), D @ system.B
    else:
        Cf, Gf, Bf = C, G, system.B
    Bf = np.asarray(
        Bf.todense() if sp.issparse(Bf) else Bf, dtype=float
    )

    Ch = V.T @ (Cf @ V)
    Gh = V.T @ (Gf @ V)
    Bh = V.T @ Bf
    Sh = Ch + gamma * Gh
    try:
        import scipy.linalg as sla

        lu_sh = sla.lu_factor(Sh)
        M = sla.lu_solve(lu_sh, Ch)
        mu, X = np.linalg.eig(M)
        F = np.linalg.solve(X, sla.lu_solve(lu_sh, Bh))
    except Exception as exc:
        raise RomBuildError(
            f"reduced pencil diagonalisation failed: {exc}"
        ) from exc
    if not (np.all(np.isfinite(mu)) and np.all(np.isfinite(F))):
        raise RomBuildError(
            "reduced modal decomposition produced non-finite values"
        )

    # μ → λ through the rational map; floor algebraic modes and clamp
    # rounding-level stability violations (exactly zero in exact
    # arithmetic for the passive form).
    mu_c = np.where(np.abs(mu) < MU_FLOOR, MU_FLOOR, mu)
    lam = (1.0 - 1.0 / mu_c) / gamma
    lam = np.where(lam.real > 0.0, 1j * lam.imag, lam)

    lu_g = FACTORIZATION_CACHE.factor(G, label="G(rom)")
    W = np.asarray(lu_g.solve_many(
        np.asarray(system.B.todense(), dtype=float, order="F")
    ))
    VX = V.astype(complex) @ X
    YX = np.asarray(lu_g.solve_many(np.asarray(C @ V))) @ X

    grid = np.asarray(system.global_transition_spots(t_end), dtype=float)
    U_base = np.empty((p, grid.shape[0]))
    constant = np.empty(p, dtype=bool)
    for k, w in enumerate(system.waveforms):
        U_base[k] = w.values_array(grid)
        constant[k] = w.is_constant()

    tables = _segment_tables(grid, lam, mu_c, gamma)

    return ReducedModel(
        config=config,
        gamma=gamma,
        n_full=n,
        n_inputs=p,
        grid=grid,
        mu=mu_c,
        lam=lam,
        F_re=np.ascontiguousarray(F.real),
        F_im=np.ascontiguousarray(F.imag),
        VX=VX,
        YX=YX,
        W=W,
        U_base=U_base,
        tables=tables,
        basis=info,
        build_seconds=time.perf_counter() - t0,
        constant_columns=constant,
    )
