"""Solver statistics.

The paper's evaluation currency is explicit (Sec. 3.4): pairs of
forward/backward substitutions, Krylov dimensions (average ``ma`` and peak
``mp`` — Table 1), and wall-clock split into serial part (LU + DC) and
"pure transient computing" (Table 3).  :class:`SolverStats` collects all
of it so every experiment can print paper-style rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolverStats"]


@dataclass
class SolverStats:
    """Operation counts and timing of one transient run.

    Attributes
    ----------
    n_steps:
        Time steps marched (= number of GTS intervals visited).
    n_krylov_bases:
        Krylov subspace generations (= LTS visited); the rest of the
        steps reused an existing basis (paper Alg. 2 line 11).
    n_reuses:
        Steps served from a reused basis.
    krylov_dims:
        Dimension of every generated basis (``ma``/``mp`` derive from it).
    n_solves_krylov:
        Substitution pairs consumed inside Arnoldi iterations.
    n_solves_etd:
        Substitution pairs consumed building the ETD auxiliary vectors
        F/P (three ``G⁻¹`` solves per input segment).
    n_solves_dc:
        Substitution pairs for the DC operating point.
    factor_seconds:
        Wall time of matrix factorisation(s) — the paper's serial part.
        Factorisations served by the process-wide
        :data:`~repro.linalg.lu.FACTORIZATION_CACHE` cost (and report)
        ~zero here; the hit counters below record how often that
        amortisation fired.
    dc_seconds:
        Wall time of DC analysis.
    transient_seconds:
        Wall time of the stepping loop itself ("pure transient
        computing", the ``trmatex``/``t1000`` quantity of Table 3).
    n_factor_cache_hits:
        Factorisations this run reused from the process-wide cache
        (Sec. 3.4's shared-pencil claim, made measurable).
    n_factor_cache_misses:
        Factorisations this run actually performed (and cached).
    """

    n_steps: int = 0
    n_krylov_bases: int = 0
    n_reuses: int = 0
    krylov_dims: list[int] = field(default_factory=list)
    n_solves_krylov: int = 0
    n_solves_etd: int = 0
    n_solves_dc: int = 0
    factor_seconds: float = 0.0
    dc_seconds: float = 0.0
    transient_seconds: float = 0.0
    n_factor_cache_hits: int = 0
    n_factor_cache_misses: int = 0

    @property
    def n_solves_transient(self) -> int:
        """Substitution pairs in the transient part (Krylov + ETD)."""
        return self.n_solves_krylov + self.n_solves_etd

    @property
    def n_solves_total(self) -> int:
        """All substitution pairs including DC analysis."""
        return self.n_solves_transient + self.n_solves_dc

    @property
    def avg_krylov_dim(self) -> float:
        """The paper's ``ma`` (Table 1)."""
        if not self.krylov_dims:
            return 0.0
        return sum(self.krylov_dims) / len(self.krylov_dims)

    @property
    def peak_krylov_dim(self) -> int:
        """The paper's ``mp`` (Table 1)."""
        return max(self.krylov_dims, default=0)

    @property
    def total_seconds(self) -> float:
        """Factorisation + DC + transient wall time (Table 2's Total)."""
        return self.factor_seconds + self.dc_seconds + self.transient_seconds

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Element-wise accumulation (used to aggregate node stats)."""
        return SolverStats(
            n_steps=self.n_steps + other.n_steps,
            n_krylov_bases=self.n_krylov_bases + other.n_krylov_bases,
            n_reuses=self.n_reuses + other.n_reuses,
            krylov_dims=self.krylov_dims + other.krylov_dims,
            n_solves_krylov=self.n_solves_krylov + other.n_solves_krylov,
            n_solves_etd=self.n_solves_etd + other.n_solves_etd,
            n_solves_dc=self.n_solves_dc + other.n_solves_dc,
            factor_seconds=self.factor_seconds + other.factor_seconds,
            dc_seconds=self.dc_seconds + other.dc_seconds,
            transient_seconds=self.transient_seconds + other.transient_seconds,
            n_factor_cache_hits=(
                self.n_factor_cache_hits + other.n_factor_cache_hits
            ),
            n_factor_cache_misses=(
                self.n_factor_cache_misses + other.n_factor_cache_misses
            ),
        )

    def summary(self) -> str:
        """Compact human-readable digest."""
        return (
            f"steps={self.n_steps} bases={self.n_krylov_bases} "
            f"reuses={self.n_reuses} ma={self.avg_krylov_dim:.1f} "
            f"mp={self.peak_krylov_dim} solves={self.n_solves_total} "
            f"t={self.total_seconds:.3f}s"
        )
