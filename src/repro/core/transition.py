"""Transition-spot bookkeeping (paper Sec. 3.1 definitions).

* **LTS** (Local Transition Spot): slope-change times of *one* input
  source — or, after decomposition, of one *group* of sources.
* **GTS** (Global Transition Spot): the union of all LTS.
* **Snapshot**: GTS points that are *not* LTS of the local group — the
  points a MATEX node must still evaluate (for the final superposition)
  but can serve from the most recent Krylov basis by rescaling ``h``.

:class:`TransitionSchedule` materialises this for one solver run: the
ordered marching points, with a flag telling Alg. 2 whether each point
starts a new input segment (generate a Krylov basis) or is a snapshot
(reuse).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.circuit.mna import MNASystem

__all__ = ["TransitionSchedule", "build_schedule"]

#: Relative tolerance for matching a GTS point against an LTS point.
_MATCH_RTOL = 1e-9


@dataclass(frozen=True)
class TransitionSchedule:
    """Marching schedule of one MATEX node.

    Attributes
    ----------
    points:
        Sorted global transition spots in ``[0, t_end]``, always starting
        at 0 and ending at ``t_end``.
    is_lts:
        Parallel flags: ``is_lts[i]`` is true when ``points[i]`` is a
        local transition spot of the node's own source group, i.e. the
        input slope changes there and a fresh Krylov subspace is needed.
    t_end:
        Simulation horizon.
    """

    points: tuple[float, ...]
    is_lts: tuple[bool, ...]
    t_end: float

    def __post_init__(self):
        if len(self.points) != len(self.is_lts):
            raise ValueError("points and is_lts must have equal length")
        if not self.points:
            raise ValueError("schedule needs at least one point")

    @property
    def n_lts(self) -> int:
        """Number of Krylov-generation points (paper's ``k`` in Eq. 12)."""
        return sum(self.is_lts)

    @property
    def n_points(self) -> int:
        """Number of GTS points (paper's ``K`` in Eq. 11)."""
        return len(self.points)

    @property
    def n_snapshots(self) -> int:
        """Points served by Krylov-basis reuse."""
        return self.n_points - self.n_lts

    def segments(self) -> list[tuple[float, float, bool]]:
        """Steps as ``(t_from, t_to, from_is_lts)`` triples."""
        return [
            (t0, t1, lts)
            for t0, t1, lts in zip(self.points, self.points[1:], self.is_lts)
        ]


def _match_sorted(haystack: Sequence[float], needle: float) -> bool:
    """Binary-search membership with relative tolerance."""
    import bisect

    i = bisect.bisect_left(haystack, needle)
    for j in (i - 1, i, i + 1):
        if 0 <= j < len(haystack) and math.isclose(
            haystack[j], needle, rel_tol=_MATCH_RTOL, abs_tol=1e-30
        ):
            return True
    return False


def _match_sorted_many(haystack: Sequence[float], needles: Sequence[float]):
    """Vectorised :func:`_match_sorted` over a whole needle grid.

    Same ``math.isclose`` arithmetic (``|a−b| ≤ max(rtol·max(|a|,|b|),
    atol)``) applied to the bisection neighbours of every needle at
    once; decomposed runs call this once per node task with ~10² grid
    points, where the scalar loop was a measurable slice of the
    schedule-building cost.
    """
    import numpy as np

    hs = np.asarray(haystack, dtype=float)
    nd = np.asarray(needles, dtype=float)
    out = np.zeros(nd.shape, dtype=bool)
    if hs.size == 0:
        return out
    i = np.searchsorted(hs, nd, side="left")
    for off in (-1, 0, 1):
        j = i + off
        valid = (j >= 0) & (j < hs.size)
        a = hs[np.clip(j, 0, hs.size - 1)]
        close = np.abs(a - nd) <= np.maximum(
            _MATCH_RTOL * np.maximum(np.abs(a), np.abs(nd)), 1e-30
        )
        out |= valid & close
    return out


def build_schedule(
    system: MNASystem,
    t_end: float,
    local_inputs: Sequence[int] | None = None,
    global_points: Sequence[float] | None = None,
    waveform_overrides: dict | None = None,
) -> TransitionSchedule:
    """Build the LTS/GTS schedule for a (possibly decomposed) solver run.

    Parameters
    ----------
    system:
        Assembled MNA system.
    t_end:
        Simulation horizon (> 0).
    local_inputs:
        The input columns this node owns.  ``None`` means *all* inputs —
        the non-decomposed case, where every GTS point is an LTS.
    global_points:
        Pre-computed GTS (so the scheduler computes them once and every
        node shares the identical grid for superposition).  Computed from
        the full system when omitted.
    waveform_overrides:
        Optional ``{column: waveform}`` replacements (split-bump
        decomposition); the local transition spots come from the
        replacement waveforms.

    Returns
    -------
    TransitionSchedule
        Marching points with per-point LTS flags.  Point 0.0 is always an
        LTS (the initial basis must be generated).
    """
    if t_end <= 0.0:
        raise ValueError(f"t_end must be positive, got {t_end!r}")
    if waveform_overrides:
        system = system.with_waveforms(waveform_overrides)

    if global_points is None:
        gts = system.global_transition_spots(t_end)
    else:
        gts = sorted(float(t) for t in global_points if 0.0 <= t <= t_end)
        if not gts or gts[0] > 0.0:
            gts.insert(0, 0.0)
        if gts[-1] < t_end:
            gts.append(t_end)

    if local_inputs is None:
        flags = [True] * len(gts)
        return TransitionSchedule(tuple(gts), tuple(flags), t_end)

    # Collect the raw slope-change times of the local group only; the
    # horizon t_end is a marching point but not a slope change, so it
    # counts as LTS only if some local waveform really transitions there.
    raw_lts = set()
    for k in local_inputs:
        raw_lts.update(system.local_transition_spots(k, t_end))
    lts_sorted = sorted(raw_lts)

    flags = [bool(f) for f in _match_sorted_many(lts_sorted, gts)]
    flags[0] = True  # the initial basis is always generated at t = 0
    return TransitionSchedule(tuple(gts), tuple(flags), t_end)
