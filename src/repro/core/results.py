"""Transient-simulation result container.

All integrators in this repository (MATEX variants and the traditional
baselines) return a :class:`TransientResult`: a time grid, the state
trajectory and the solver statistics.  The container knows how to

* extract node-voltage series by node name,
* interpolate states at arbitrary times (linear — consistent with the
  PWL-input assumption between transition spots),
* compare against another result on a common grid (the max/avg error
  metrics of the paper's Table 3 are implemented on top of this in
  :mod:`repro.analysis.errors`).

Since the engine refactor the trajectory arrives through a
:class:`~repro.engine.sinks.ResultSink`: the default in-memory sink
reproduces the historical dense arrays, a downsampling sink thins them,
and the NPZ streaming sink leaves ``states`` memmap-backed on disk — the
container is agnostic, and :attr:`TransientResult.sink` records which
sink produced the run (e.g. to locate the streamed archive).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.mna import MNASystem
from repro.core.stats import SolverStats

__all__ = ["TransientResult"]


@dataclass
class TransientResult:
    """Trajectory of one transient simulation.

    Attributes
    ----------
    system:
        The simulated MNA system (for node-name lookups).
    times:
        Monotonically increasing evaluation times, shape ``(k,)``.
    states:
        State vectors, shape ``(k, dim)``; row ``i`` is ``x(times[i])``.
    stats:
        Operation counts and timings.
    method:
        Name of the integrator that produced the result.
    sink:
        The :class:`~repro.engine.sinks.ResultSink` that recorded the
        trajectory, when one was supplied (``None`` for plain in-memory
        runs).  Lets callers reach sink artefacts, e.g. the ``.npz``
        path of a streamed run.
    """

    system: MNASystem
    times: np.ndarray
    states: np.ndarray
    stats: SolverStats = field(default_factory=SolverStats)
    method: str = ""
    sink: object | None = None

    @property
    def states_nbytes(self) -> int:
        """In-process bytes of the states block (0 when memmap-backed)."""
        base = self.states
        while isinstance(base, np.ndarray):
            if isinstance(base, np.memmap):
                return 0
            base = base.base
        return int(self.states.nbytes)

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim != 2 or self.states.shape[0] != self.times.shape[0]:
            raise ValueError(
                f"states shape {self.states.shape} inconsistent with "
                f"{self.times.shape[0]} time points"
            )
        if np.any(np.diff(self.times) < 0):
            raise ValueError("times must be non-decreasing")

    # -- accessors -----------------------------------------------------------

    @property
    def n_points(self) -> int:
        return self.times.shape[0]

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1]

    def voltage(self, node: str) -> np.ndarray:
        """Voltage series of one node (zeros for ground)."""
        idx = self.system.netlist.node_index(node)
        if idx < 0:
            return np.zeros(self.n_points)
        return self.states[:, idx]

    def at(self, t: float) -> np.ndarray:
        """State at time ``t`` by linear interpolation.

        Linear interpolation is exact for the inputs (PWL) but not for the
        exponential response; use the native grid when exactness matters.
        """
        t = float(t)
        if t <= self.times[0]:
            return self.states[0].copy()
        if t >= self.times[-1]:
            return self.states[-1].copy()
        i = int(np.searchsorted(self.times, t, side="right")) - 1
        t0, t1 = self.times[i], self.times[i + 1]
        if t1 == t0:
            return self.states[i + 1].copy()
        w = (t - t0) / (t1 - t0)
        return (1.0 - w) * self.states[i] + w * self.states[i + 1]

    def sample(self, times: np.ndarray) -> np.ndarray:
        """States at several times, shape ``(len(times), dim)``."""
        return np.vstack([self.at(t) for t in np.asarray(times, dtype=float)])

    # -- algebra (superposition support) ------------------------------------------

    def node_block(self) -> np.ndarray:
        """The node-voltage columns only (drops MNA branch currents)."""
        return self.states[:, : self.system.netlist.n_nodes]

    def shifted(self, offset: np.ndarray) -> "TransientResult":
        """A copy with ``offset`` added to every state (superposition)."""
        return TransientResult(
            system=self.system,
            times=self.times.copy(),
            states=self.states + np.asarray(offset, dtype=float),
            stats=self.stats,
            method=self.method,
        )
