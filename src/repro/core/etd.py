"""Exponential-time-differencing auxiliary vectors (paper Eq. 5/6).

For ``C x' = -G x + B u`` with piecewise-linear ``u`` of slope ``s_u``
over a segment starting at ``t``, the exact update is

    x(t+h) = exp(hA) (x(t) + F) − P(h),      A = -C⁻¹G,

with (derivation in DESIGN.md — only ``G⁻¹`` solves appear, which is the
regularization-free property of paper Sec. 3.3.3)::

    w1 = G⁻¹ B u(t)         (1 solve)
    w2 = G⁻¹ B s_u          (1 solve)
    w3 = G⁻¹ C w2           (1 solve)
    F    = -w1 + w3
    P(h) = F − h · w2

``F`` is *constant* within the segment and ``P`` is affine in ``h`` — the
algebra behind Krylov-basis reuse at snapshots: the basis built on
``v = x(t) + F`` serves every step length until the next local transition
spot, at the cost of re-evaluating one small matrix exponential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.circuit.mna import MNASystem
from repro.linalg.lu import FACTORIZATION_CACHE, SparseLU

__all__ = ["EtdSegment", "EtdWorkspace"]


@dataclass(frozen=True)
class EtdSegment:
    """Frozen ETD data of one input segment ``[t, next local LTS)``.

    Attributes
    ----------
    t_start:
        Segment start time (a local transition spot).
    F:
        The constant offset added to the state before Krylov projection.
    w2:
        ``G⁻¹ B s_u`` — the slope response; ``P(h) = F − h·w2``.
    """

    t_start: float
    F: np.ndarray
    w2: np.ndarray

    def P(self, h: float) -> np.ndarray:
        """The subtractive term of Eq. (5) at local step ``h``."""
        return self.F - h * self.w2


class EtdWorkspace:
    """Computes ETD segment vectors and DC operating points.

    Owns (or shares) the LU factorisation of ``G``.  The I-MATEX solver
    already factors ``G`` for its Krylov operator, in which case the same
    :class:`~repro.linalg.lu.SparseLU` is shared and each substitution is
    counted once, exactly as a real implementation would behave.

    Parameters
    ----------
    system:
        Assembled MNA system.
    lu_g:
        Optional pre-existing factorisation of ``G`` to share.
    deviation_mode:
        When true, inputs are evaluated as ``u(t) − u(0)`` — the
        superposition decomposition simulates each node against the
        *deviation* from the DC operating point with a zero initial
        state (see :mod:`repro.core.superposition`).
    """

    def __init__(
        self,
        system: MNASystem,
        lu_g: SparseLU | None = None,
        deviation_mode: bool = False,
    ):
        self.system = system
        if lu_g is None:
            lu_g = FACTORIZATION_CACHE.factor(system.G, label="G")
        self.lu_g = lu_g
        self.deviation_mode = deviation_mode
        self._u0_cache: dict[tuple[int, ...] | None, np.ndarray] = {}

    # -- input evaluation ------------------------------------------------------

    def _bu(self, t: float, active: Sequence[int] | None) -> np.ndarray:
        bu = self.system.bu(t, active=active)
        if self.deviation_mode:
            key = None if active is None else tuple(active)
            bu0 = self._u0_cache.get(key)
            if bu0 is None:
                bu0 = self.system.bu(0.0, active=active)
                self._u0_cache[key] = bu0
            bu = bu - bu0
        return bu

    # -- public API -----------------------------------------------------------------

    def dc_solution(self, active: Sequence[int] | None = None) -> np.ndarray:
        """DC operating point: solve ``G x = B u(0)`` (one solve)."""
        return self.lu_g.solve(self.system.bu(0.0, active=active))

    def segment(
        self,
        t: float,
        t_probe: float,
        active: Sequence[int] | None = None,
    ) -> EtdSegment:
        """Build the ETD vectors for the input segment starting at ``t``.

        Exactly three forward/backward substitution pairs against ``G``
        (the paper's ``Pk``/``Fk`` precomputation of Alg. 2's inputs).

        Parameters
        ----------
        t:
            Segment start (a local transition spot).
        t_probe:
            Any point strictly inside the linear segment — typically the
            next global transition spot.  The input slope is taken as the
            finite difference over ``[t, t_probe]``, which is exact for
            PWL inputs and immune to ulp noise at breakpoints.
        active:
            Input columns driving this node.
        """
        bu = self._bu(t, active)
        su = self.system.b_slope_fd(t, t_probe, active=active)
        return self.segment_from_vectors(t, bu, su)

    def segment_from_vectors(
        self, t: float, bu: np.ndarray, su: np.ndarray
    ) -> EtdSegment:
        """Build an :class:`EtdSegment` from precomputed input vectors.

        ``bu`` is ``B·u(t)`` (already deviation-shifted if applicable)
        and ``su`` the segment slope ``B·du/dt``.  The solver uses this
        fast path with inputs evaluated once over the whole schedule.
        """
        w1 = self.lu_g.solve(bu)
        w2 = self.lu_g.solve(su)
        w3 = self.lu_g.solve(self.system.C @ w2)
        return EtdSegment(t_start=float(t), F=-w1 + w3, w2=w2)

    @property
    def n_solves(self) -> int:
        """Substitution pairs performed against ``G`` so far."""
        return self.lu_g.n_solves
