"""MATEX core: ETD update, transition schedules, solver, decomposition."""

from repro.core.decomposition import (
    SourceGroup,
    decompose_by_bump,
    decompose_by_bump_split,
    decompose_by_source,
    merge_to_limit,
)
from repro.core.etd import EtdSegment, EtdWorkspace
from repro.core.options import SolverOptions
from repro.core.results import TransientResult
from repro.core.solver import MatexSolver
from repro.core.stats import SolverStats
from repro.core.superposition import superpose
from repro.core.transition import TransitionSchedule, build_schedule

__all__ = [
    "EtdSegment",
    "EtdWorkspace",
    "MatexSolver",
    "SolverOptions",
    "SolverStats",
    "SourceGroup",
    "TransientResult",
    "TransitionSchedule",
    "build_schedule",
    "decompose_by_bump",
    "decompose_by_bump_split",
    "decompose_by_source",
    "merge_to_limit",
    "superpose",
]
