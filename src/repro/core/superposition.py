"""Superposition of distributed sub-task results (paper Sec. 3.2).

The PDN is linear, so the response to ``u = Σ_k u_k`` decomposes.  The
scheduler uses the *deviation* form, which keeps every node's initial
condition trivially zero:

1. DC analysis once: ``G x_dc = B u(0)``.
2. Node ``k`` simulates ``C y'_k = -G y_k + B (u_k(t) − u_k(0))`` with
   ``y_k(0) = 0`` (that is :class:`~repro.core.solver.MatexSolver` in
   ``deviation_mode``).
3. Superpose on the shared GTS grid: ``x(t) = x_dc + Σ_k y_k(t)``.

Step 3 is the only cross-node communication — the "write back" of the
paper's Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import TransientResult
from repro.core.stats import SolverStats

__all__ = ["superpose"]


def superpose(
    dc_state: np.ndarray,
    node_results: list[TransientResult],
    method: str = "matex-distributed",
) -> TransientResult:
    """Sum per-node deviation responses onto the DC operating point.

    Parameters
    ----------
    dc_state:
        The DC operating point ``x_dc``.
    node_results:
        Per-node deviation trajectories.  All must share the identical
        time grid (the scheduler hands every node the same GTS schedule).
    method:
        Label recorded on the combined result.

    Returns
    -------
    TransientResult
        The full-system trajectory; statistics are merged across nodes
        (wall-clock aggregation for the paper's max-over-nodes timing is
        done by the scheduler, which knows per-node runtimes).
    """
    if not node_results:
        raise ValueError("superpose needs at least one node result")

    reference = node_results[0]
    times = reference.times
    for r in node_results[1:]:
        if r.times.shape != times.shape or not np.allclose(
            r.times, times, rtol=1e-12, atol=0.0
        ):
            raise ValueError(
                "node results are not aligned on a common time grid; "
                "pass the scheduler's shared schedule to every node"
            )

    total = np.tile(np.asarray(dc_state, dtype=float), (len(times), 1))
    stats = SolverStats()
    for r in node_results:
        total += r.states
        stats = stats.merge(r.stats)

    return TransientResult(
        system=reference.system,
        times=times.copy(),
        states=total,
        stats=stats,
        method=method,
    )
