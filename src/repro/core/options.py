"""Solver configuration.

One dataclass shared by the single-node circuit solver (Alg. 2) and the
distributed framework, mirroring the paper's experimental knobs:

* Krylov flavour (``standard`` = MEXP / ``inverted`` = I-MATEX /
  ``rational`` = R-MATEX),
* the rational shift γ ("set to sit among the order of varied time steps
  during the simulation", Sec. 4.3 uses 1e-10 for 10ps-scale stepping),
* the Arnoldi error budget ε of Alg. 1,
* basis-size limits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.linalg.krylov import METHOD_NAMES

__all__ = ["SolverOptions"]


@dataclass(frozen=True)
class SolverOptions:
    """Options for :class:`repro.core.solver.MatexSolver`.

    Attributes
    ----------
    method:
        Krylov flavour; accepts paper aliases (``mexp``, ``imatex``,
        ``rmatex``) — canonicalised on construction.
    gamma:
        Shift of the rational Krylov subspace, in seconds.  Should be of
        the order of the time steps taken (paper Sec. 3.3.2); the γ
        ablation benchmark quantifies the claimed insensitivity.
    eps_rel:
        Relative part of the Arnoldi error budget: the convergence test of
        Alg. 1 uses ``ε = eps_rel · ‖v‖ + eps_abs``.
    eps_abs:
        Absolute floor of the error budget (guards near-zero states).
    m_max:
        Hard cap on the Krylov dimension.  MEXP on stiff circuits runs
        into this cap; I-/R-MATEX stay around 10 (paper Table 1).
    m_min:
        Iterations before the first posterior-error check.
    """

    method: str = "rational"
    gamma: float = 1e-10
    eps_rel: float = 1e-7
    eps_abs: float = 1e-12
    m_max: int = 300
    m_min: int = 2

    def __post_init__(self):
        canonical = METHOD_NAMES.get(self.method.lower())
        if canonical is None:
            raise ValueError(
                f"unknown method {self.method!r}; "
                f"choose from {sorted(set(METHOD_NAMES))}"
            )
        object.__setattr__(self, "method", canonical)
        if self.gamma <= 0.0:
            raise ValueError("gamma must be positive")
        if self.eps_rel < 0.0 or self.eps_abs < 0.0:
            raise ValueError("error budgets must be non-negative")
        if self.m_max < 1 or self.m_min < 1:
            raise ValueError("basis-size limits must be at least 1")

    def with_method(self, method: str) -> "SolverOptions":
        """Copy of these options with another Krylov flavour."""
        return replace(self, method=method)
