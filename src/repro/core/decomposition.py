"""Input-source decomposition (paper Sec. 3.1, Figs. 1 & 3).

The distributed framework splits the simulation by *input sources*: each
computing node owns a group of sources, sees only their Local Transition
Spots, and therefore generates far fewer Krylov subspaces than a single
solver facing the union (GTS) of all transitions.

Two strategies from the paper:

* :func:`decompose_by_source` — one group per (non-constant) input.
* :func:`decompose_by_bump` — the aggressive variant: pulse sources with
  identical ``(t_delay, t_rise, t_fall, t_width)`` "bump" shapes share
  *all* their transition spots, so they can ride on a single node without
  increasing its LTS count (Fig. 3's Groups 1-4).  This is what turns
  tens of thousands of IBM-benchmark sources into ~100 groups (Table 3).

Constant inputs (DC supply pads, DC loads) generate no transitions and no
deviation from the operating point; they are excluded from every group
and handled once by the scheduler's DC analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.mna import MNASystem
from repro.circuit.waveforms import Pulse, Waveform

__all__ = [
    "SourceGroup",
    "decompose_by_source",
    "decompose_by_bump",
    "decompose_by_bump_split",
    "merge_to_limit",
]


@dataclass(frozen=True)
class SourceGroup:
    """One distributed sub-task: a set of input columns plus a label.

    Attributes
    ----------
    group_id:
        Dense index of the group (node number).
    label:
        Human-readable description (bump shape or source name).
    input_columns:
        Columns of ``B`` (indices into ``system.waveforms``) owned by
        this group.
    waveform_overrides:
        Optional ``(column, waveform)`` replacements: the node simulates
        the replacement instead of the original waveform.  Used by the
        split-bump decomposition (Fig. 3), where each node owns one bump
        of a (possibly periodic) source; summed over groups the
        overrides reconstruct the original deviation inputs.
    """

    group_id: int
    label: str
    input_columns: tuple[int, ...]
    waveform_overrides: tuple[tuple[int, Waveform], ...] = ()

    def __len__(self) -> int:
        return len(self.input_columns)

    def overrides_dict(self) -> dict[int, Waveform]:
        """The overrides as a dict keyed by input column."""
        return dict(self.waveform_overrides)


def _varying_inputs(system: MNASystem) -> list[int]:
    """Input columns whose waveforms actually change over time."""
    return [
        k for k, w in enumerate(system.waveforms) if not w.is_constant()
    ]


def decompose_by_source(system: MNASystem) -> list[SourceGroup]:
    """One group per non-constant input source (paper Fig. 1)."""
    return [
        SourceGroup(group_id=i, label=f"input[{k}]", input_columns=(k,))
        for i, k in enumerate(_varying_inputs(system))
    ]


def decompose_by_bump(system: MNASystem) -> list[SourceGroup]:
    """Group pulse inputs by bump shape (paper Fig. 3).

    Pulse waveforms are grouped by their exact
    ``(t_delay, t_rise, t_fall, t_width)`` tuple (and period): every
    member transitions at identical times, so the group's LTS is as small
    as a single source's.  Non-pulse varying waveforms are grouped by
    their transition-spot signature for the same reason; unique
    signatures get singleton groups.
    """
    buckets: dict[tuple, list[int]] = {}
    labels: dict[tuple, str] = {}
    horizon_probe = 1.0  # signature probe horizon; only relative identity matters

    for k in _varying_inputs(system):
        w = system.waveforms[k]
        if isinstance(w, Pulse):
            key = ("bump",) + w.bump_shape().key() + (w.t_period,)
            labels.setdefault(
                key,
                f"bump(d={w.t_delay:g},r={w.t_rise:g},"
                f"f={w.t_fall:g},w={w.t_width:g})",
            )
        else:
            key = ("ts",) + tuple(w.transition_spots(horizon_probe))
            labels.setdefault(key, f"ts-signature[{k}]")
        buckets.setdefault(key, []).append(k)

    return [
        SourceGroup(group_id=i, label=labels[key], input_columns=tuple(cols))
        for i, (key, cols) in enumerate(sorted(buckets.items(), key=str))
    ]


def decompose_by_bump_split(
    system: MNASystem, t_end: float
) -> list[SourceGroup]:
    """The paper's aggressive Fig. 3 decomposition: split *within* sources.

    Every pulse source is unrolled into its individual bumps over
    ``[0, t_end)`` (one per period for periodic pulses).  Bumps are then
    grouped by their **absolute** timing signature
    ``(t_delay, t_rise, t_fall, t_width)`` — Fig. 3's Group 4 contains
    the *second* bump of source #1 together with source #3's bump
    because they coincide in time.  Each group member is expressed as a
    waveform override (a single-bump pulse replacing the original
    waveform on that input column), so one column may appear in several
    groups; superposition of the groups reconstructs the original
    deviation input exactly.

    Non-pulse varying waveforms cannot be split and get singleton groups
    without overrides.
    """
    if t_end <= 0.0:
        raise ValueError("t_end must be positive")
    buckets: dict[tuple, list[tuple[int, Waveform]]] = {}
    singles: list[tuple[int, Waveform | None]] = []
    for k in _varying_inputs(system):
        w = system.waveforms[k]
        if isinstance(w, Pulse):
            for bump in w.split_bumps(t_end):
                key = bump.bump_shape().key()
                buckets.setdefault(key, []).append((k, bump))
        else:
            singles.append((k, None))

    groups: list[SourceGroup] = []
    for key, members in sorted(buckets.items()):
        delay, rise, fall, width = key
        groups.append(
            SourceGroup(
                group_id=len(groups),
                label=f"bump@{delay:g}(r={rise:g},f={fall:g},w={width:g})",
                input_columns=tuple(sorted({k for k, _ in members})),
                waveform_overrides=tuple(members),
            )
        )
    for k, _ in singles:
        groups.append(
            SourceGroup(
                group_id=len(groups),
                label=f"unsplittable[{k}]",
                input_columns=(k,),
            )
        )
    return groups


def merge_to_limit(groups: list[SourceGroup], limit: int) -> list[SourceGroup]:
    """Merge groups round-robin so at most ``limit`` nodes are needed.

    Merging unions the members' transition spots, so each node's LTS
    grows — the graceful degradation when fewer computing nodes are
    available than natural bump groups.
    """
    if limit < 1:
        raise ValueError("limit must be at least 1")
    if len(groups) <= limit:
        return list(groups)
    if any(g.waveform_overrides for g in groups):
        raise ValueError(
            "cannot merge split-bump groups: one input column may appear "
            "in several groups with different bump overrides; lower the "
            "node count by using the plain 'bump' decomposition instead"
        )
    merged_cols: list[list[int]] = [[] for _ in range(limit)]
    merged_labels: list[list[str]] = [[] for _ in range(limit)]
    for i, g in enumerate(groups):
        merged_cols[i % limit].extend(g.input_columns)
        merged_labels[i % limit].append(g.label)
    return [
        SourceGroup(
            group_id=i,
            label="+".join(labels[:3]) + ("+..." if len(labels) > 3 else ""),
            input_columns=tuple(sorted(cols)),
        )
        for i, (cols, labels) in enumerate(zip(merged_cols, merged_labels))
        if cols
    ]
