"""MATEX circuit solver — paper Algorithm 2.

One matrix factorisation at the start, then adaptive time stepping with
**no further factorisations**:

* at a **Local Transition Spot** the input slope changes, so the solver
  rebuilds the ETD segment vectors (three ``G⁻¹`` solves) and generates a
  fresh Krylov basis from ``v = x(t) + F`` (Alg. 1);
* at a **Snapshot** (a global transition spot belonging to *other*
  nodes' sources) it reuses the most recent basis, re-evaluating only the
  small-matrix exponential with the elapsed time ``ha = t + h − alts``
  (Alg. 2 line 11).

The Arnoldi convergence test is run at the *first* sub-step length after
the LTS.  For the inverted/rational subspaces this is the conservative
choice: their approximation error *decreases* as ``h`` grows (paper
Fig. 5, re-verified by ``benchmarks/bench_fig5_error_surface.py``), so
later snapshots served with larger ``ha`` are at least as accurate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.circuit.mna import MNASystem
from repro.core.etd import EtdWorkspace
from repro.core.options import SolverOptions
from repro.core.results import TransientResult
from repro.core.stats import SolverStats
from repro.core.transition import TransitionSchedule, build_schedule
from repro.engine.loop import SteppingLoop
from repro.engine.sinks import ResultSink
from repro.linalg.krylov import make_krylov_operator
from repro.linalg.lu import FACTORIZATION_CACHE

__all__ = ["MatexSolver", "REUSE_SAFETY"]

#: Basis reuse is accepted while the re-evaluated posterior error stays
#: within this factor of the generation-time budget (Fig. 5 says it
#: normally *shrinks* with h; the guard catches exceptions).  Shared
#: with the block-batched runner so reuse decisions coincide.
REUSE_SAFETY = 10.0


@dataclass
class _Alg2State:
    """Mutable cross-step state of one Alg. 2 run (basis + segment)."""

    eps_segment: float
    alts: float                 # time of the last Krylov generation
    basis: object = None        # current KrylovBasis (None before t=0 LTS)
    segment: object = None      # current EtdSegment
    v_alts: np.ndarray | None = None  # Krylov start vector at `alts`


class MatexSolver:
    """Matrix-exponential transient solver for one (sub-)task.

    Parameters
    ----------
    system:
        Assembled MNA descriptor system.
    options:
        Solver options; defaults to R-MATEX with the paper's settings.
    deviation_mode:
        Simulate the response to ``u(t) − u(0)`` from a zero initial
        state.  This is what each distributed node runs; the scheduler
        adds the DC operating point back during superposition.

    Notes
    -----
    Construction performs the factorisation(s): ``C + γG`` (rational),
    ``G`` (inverted) or ``C`` (standard), plus ``G`` for the ETD vectors
    and DC analysis.  For the inverted method the ``G`` factorisation is
    shared — only one LU exists, as in the paper.
    """

    def __init__(
        self,
        system: MNASystem,
        options: SolverOptions | None = None,
        deviation_mode: bool = False,
    ):
        self.system = system
        self.options = options if options is not None else SolverOptions()
        hits0, misses0 = FACTORIZATION_CACHE.counters()
        self.op = make_krylov_operator(
            self.options.method, system.C, system.G, gamma=self.options.gamma
        )
        shared_lu = self.op.lu if self.options.method == "inverted" else None
        self.workspace = EtdWorkspace(
            system, lu_g=shared_lu, deviation_mode=deviation_mode
        )
        hits1, misses1 = FACTORIZATION_CACHE.counters()
        #: factorisations this construction reused from / added to the
        #: process-wide cache (the paper's shared-pencil amortisation).
        self.construction_cache_hits = hits1 - hits0
        self.construction_cache_misses = misses1 - misses0
        self.deviation_mode = deviation_mode
        # Reusable input-grid buffer: the per-node march calls simulate
        # once per task over one shared grid shape, and bu_series fills
        # a caller-held buffer bit-identically to a fresh allocation.
        self._bu_buffer: np.ndarray | None = None

    # -- public API ---------------------------------------------------------------

    @property
    def factor_seconds(self) -> float:
        """Total one-off factorisation time (the paper's serial part)."""
        total = self.op.factor_seconds
        if self.workspace.lu_g is not self.op.lu:
            total += self.workspace.lu_g.factor_seconds
        return total

    def dc_operating_point(self) -> tuple[np.ndarray, float]:
        """Solve ``G x = B u(0)``; returns the state and wall time."""
        t0 = time.perf_counter()
        x0 = self.workspace.dc_solution()
        return x0, time.perf_counter() - t0

    def simulate(
        self,
        t_end: float,
        x0: np.ndarray | None = None,
        active_inputs: Sequence[int] | None = None,
        schedule: TransitionSchedule | None = None,
        waveform_overrides: dict | None = None,
        sink: ResultSink | None = None,
    ) -> TransientResult:
        """Run Alg. 2 over ``[0, t_end]``.

        Parameters
        ----------
        t_end:
            Simulation horizon.
        x0:
            Initial state.  Defaults to the DC operating point (or zeros
            in deviation mode).
        active_inputs:
            Input columns driving this run (``None`` = all).  The
            schedule marks their slope changes as LTS; all other global
            transition spots become snapshots.
        schedule:
            Pre-built marching schedule; shared across nodes by the
            distributed scheduler so all results align for superposition.
        waveform_overrides:
            Optional ``{column: waveform}`` replacements evaluated
            instead of the originals (split-bump decomposition).  The
            factorisations are untouched — only input evaluation changes.
        sink:
            Destination for the recorded trajectory (default: dense
            in-memory).  Downsampling or on-disk sinks bound the memory
            of very long schedules; see :mod:`repro.engine.sinks`.

        Returns
        -------
        TransientResult
            States at every schedule point, plus statistics.
        """
        opts = self.options
        stats = SolverStats(factor_seconds=self.factor_seconds)

        input_system = self.system
        if waveform_overrides:
            input_system = self.system.with_waveforms(waveform_overrides)

        if schedule is None:
            schedule = build_schedule(
                input_system, t_end, local_inputs=active_inputs
            )

        if x0 is None:
            if self.deviation_mode:
                x0 = np.zeros(self.system.dim)
            else:
                dc_t0 = time.perf_counter()
                x0 = self.workspace.dc_solution()
                stats.dc_seconds = time.perf_counter() - dc_t0
                stats.n_solves_dc += 1
        x = np.asarray(x0, dtype=float).copy()

        points = schedule.points

        state = _Alg2State(eps_segment=opts.eps_abs, alts=points[0])
        reuse_safety = REUSE_SAFETY

        # Solve counts are taken as deltas around each call so the
        # shared-LU case (inverted method) attributes every substitution
        # pair exactly once.
        etd_lu = self.workspace.lu_g

        # Evaluate all inputs over the schedule once (vectorised across
        # pulse sources); segment slopes are exact finite differences of
        # these columns.  In deviation mode the t=0 column is subtracted
        # (constant offsets cancel in the slopes).
        grid_shape = (self.system.dim, len(points))
        if self._bu_buffer is None or self._bu_buffer.shape != grid_shape:
            self._bu_buffer = np.empty(grid_shape)
        bu_grid = input_system.bu_series(
            np.asarray(points), active=active_inputs, out=self._bu_buffer
        )
        if self.deviation_mode:
            bu0 = bu_grid[:, 0].copy()
            bu_grid -= bu0[:, None]

        def finish_step(y: np.ndarray, h: float, out: np.ndarray | None):
            """``y − P(h)`` — in place when the loop provides a buffer.

            The ufunc ``out=`` chain performs the identical operations
            (``h·w2``, ``F − ·``, ``y − ·``) as the allocating
            ``y − segment.P(h)``, so the results are bit-for-bit equal.
            """
            seg = state.segment
            if out is None:
                return y - seg.P(h)
            np.multiply(seg.w2, h, out=out)
            np.subtract(seg.F, out, out=out)
            np.subtract(y, out, out=out)
            return out

        def advance(
            i: int, t: float, t_next: float, x: np.ndarray,
            out: np.ndarray | None = None,
        ):
            """One Alg. 2 step: fresh basis at an LTS, reuse at a snapshot."""
            h = t_next - t
            if schedule.is_lts[i] or state.basis is None:
                # Fresh input segment: new ETD vectors + new Krylov basis.
                before_etd = etd_lu.n_solves
                su = (bu_grid[:, i + 1] - bu_grid[:, i]) / h
                state.segment = self.workspace.segment_from_vectors(
                    t, bu_grid[:, i], su
                )
                stats.n_solves_etd += etd_lu.n_solves - before_etd

                v = x + state.segment.F
                state.eps_segment = (
                    opts.eps_rel * float(np.linalg.norm(v)) + opts.eps_abs
                )
                before_kry = self.op.n_solves
                state.basis = self.op.build_basis(
                    v, h, tol=state.eps_segment,
                    m_max=opts.m_max, min_dim=opts.m_min,
                )
                stats.n_solves_krylov += self.op.n_solves - before_kry
                stats.n_krylov_bases += 1
                stats.krylov_dims.append(state.basis.m)
                state.alts = t
                state.v_alts = v
                return finish_step(state.basis.evaluate(h), h, out)

            # Snapshot: reuse the basis generated at `alts`, after
            # re-checking its posterior error at the longer step.
            ha = t_next - state.alts
            y, reuse_err = state.basis.evaluate_with_error(ha)
            if reuse_err > reuse_safety * state.eps_segment:
                before_kry = self.op.n_solves
                state.basis = self.op.build_basis(
                    state.v_alts, ha, tol=state.eps_segment,
                    m_max=opts.m_max, min_dim=opts.m_min,
                )
                stats.n_solves_krylov += self.op.n_solves - before_kry
                stats.n_krylov_bases += 1
                stats.krylov_dims.append(state.basis.m)
                y = state.basis.evaluate(ha)
            else:
                stats.n_reuses += 1
            return finish_step(y, ha, out)

        advance.supports_out = True
        loop = SteppingLoop(self.system.dim, stats, sink=sink)
        times, states = loop.march_grid(points, x, advance)

        return TransientResult(
            system=self.system,
            times=times,
            states=states,
            stats=stats,
            method=f"matex-{opts.method}",
            sink=sink,
        )
