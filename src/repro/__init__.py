"""MATEX — distributed matrix-exponential transient simulation of PDNs.

Reproduction of Zhuang, Weng, Lin, Cheng, *"MATEX: A Distributed
Framework for Transient Simulation of Power Distribution Networks"*,
DAC 2014.

Quick tour of the public API (see README.md for a walkthrough):

* build circuits — :mod:`repro.circuit` (netlists, waveforms, MNA,
  SPICE-dialect I/O) and :mod:`repro.pdn` (synthetic power grids, stiff
  RC meshes, workloads, the ibmpg-like suite);
* simulate — :class:`repro.core.MatexSolver` (single node, Alg. 2) and
  :class:`repro.dist.MatexScheduler` (distributed, Fig. 4), plus the
  traditional baselines in :mod:`repro.baselines`;
* sweep — :mod:`repro.plan` (compiled plans: freeze decomposition /
  DC / schedules / factorisations once, execute many what-if
  :class:`~repro.plan.Scenario` input patterns bit-identically);
* analyse — :mod:`repro.analysis` (error metrics, the Sec. 3.4 speedup
  model) and :mod:`repro.experiments` (the paper's tables and figure).
"""

from repro.circuit import (
    DC,
    PWL,
    MNASystem,
    Netlist,
    Pulse,
    assemble,
    parse_file,
    parse_netlist,
)
from repro.core import (
    MatexSolver,
    SolverOptions,
    TransientResult,
    build_schedule,
    decompose_by_bump,
    superpose,
)
from repro.dist import MatexScheduler, MultiprocessExecutor, SerialExecutor
from repro.plan import CompiledPlan, Scenario, Session, SimulationPlan

__version__ = "0.1.0"

__all__ = [
    "DC",
    "CompiledPlan",
    "MNASystem",
    "MatexScheduler",
    "MatexSolver",
    "MultiprocessExecutor",
    "Netlist",
    "PWL",
    "Pulse",
    "Scenario",
    "SerialExecutor",
    "Session",
    "SimulationPlan",
    "SolverOptions",
    "TransientResult",
    "assemble",
    "build_schedule",
    "decompose_by_bump",
    "parse_file",
    "parse_netlist",
    "superpose",
    "__version__",
]
