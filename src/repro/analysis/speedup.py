"""The paper's analytic speedup model (Sec. 3.4, Eqs. 11-12).

With ``K`` global transition spots, ``k`` local spots per node, average
Krylov dimension ``m``, substitution-pair cost ``Tbs``, small-exponential
evaluation cost ``TH + Te`` and serial part ``Tserial``::

    Speedup  = (K·m·Tbs + K·(TH+Te) + Tserial)
             / (k·m·Tbs + K·(TH+Te) + Tserial)                    (11)

    Speedup' = (N·Tbs + Tserial)
             / (k·m·Tbs + K·(TH+Te) + Tserial)                    (12)

Eq. 11 is distributed-MATEX over single-node MATEX; Eq. 12 is over the
fixed-step baseline with ``N`` steps.  The ``bench_speedup_model``
benchmark fits the constants from measured runs and checks the model
against measured speedups.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedupModel"]


@dataclass(frozen=True)
class SpeedupModel:
    """Cost constants of the Sec. 3.4 model.

    Attributes
    ----------
    t_bs:
        Seconds per forward/backward substitution pair.
    t_he:
        Seconds per small-exponential evaluation (``TH + Te``).
    t_serial:
        Serial seconds (LU factorisation + DC analysis).
    """

    t_bs: float
    t_he: float
    t_serial: float = 0.0

    def single_node_cost(self, K: int, m: float) -> float:
        """Runtime of non-decomposed MATEX (numerator of Eq. 11)."""
        return K * m * self.t_bs + K * self.t_he + self.t_serial

    def distributed_cost(self, K: int, k: int, m: float) -> float:
        """Runtime of one distributed node (denominator of Eq. 11/12)."""
        return k * m * self.t_bs + K * self.t_he + self.t_serial

    def fixed_step_cost(self, N: int) -> float:
        """Runtime of the fixed-step baseline (numerator of Eq. 12)."""
        return N * self.t_bs + self.t_serial

    def speedup_over_single(self, K: int, k: int, m: float) -> float:
        """Eq. (11)."""
        return self.single_node_cost(K, m) / self.distributed_cost(K, k, m)

    def speedup_over_fixed(self, N: int, K: int, k: int, m: float) -> float:
        """Eq. (12)."""
        return self.fixed_step_cost(N) / self.distributed_cost(K, k, m)
