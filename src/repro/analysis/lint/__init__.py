"""``repro.analysis.lint``: the project-invariant linter.

Public API::

    from repro.analysis.lint import lint_paths, all_rules

    result = lint_paths(["src", "tests"])
    result.clean, result.findings, result.exit_code

CLI::

    python -m repro.analysis src tests --format json
    python -m repro.cli lint --list-rules

See :mod:`repro.analysis.lint.core` for the framework and
:mod:`repro.analysis.lint.rules` for the rule families.
"""

from repro.analysis.lint.core import (
    Finding,
    LintError,
    LintResult,
    Rule,
    all_rules,
    get_rule,
    known_codes,
    lint_paths,
    register,
)
from repro.analysis.lint.report import render_json, render_text
from repro.analysis.lint.suppress import parse_suppressions

__all__ = [
    "Finding",
    "LintError",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "known_codes",
    "lint_paths",
    "parse_suppressions",
    "register",
    "render_json",
    "render_text",
]
