"""Determinism rules (RPL001-RPL005).

The paper's superposition trick — and every layer built since — depends
on node trajectories being **bitwise deterministic**: the distributed
scheduler asserts byte-equality between batched and per-node marches
(PR 3), retried batches after a worker SIGKILL must be bit-identical to
never-failed ones (PR 8), the ROM tier splices full-order reruns back
into sweeps on the promise that a rerun reproduces the original run
exactly (PR 7), and ``repro serve`` audits agreement between daemons by
comparing SHA-256 state digests.  Anything that injects wall-clock
time, OS entropy, hidden global RNG state or unordered-container
iteration into a numeric path silently voids all of that.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.core import Rule, register

WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
})

#: numpy module-level samplers draw from the hidden global RandomState.
GLOBAL_SAMPLERS = frozenset(
    "numpy.random." + name for name in (
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "uniform", "normal", "standard_normal", "choice",
        "shuffle", "permutation", "bytes",
    )
) | frozenset({
    "random.random", "random.randint", "random.uniform",
    "random.choice", "random.shuffle", "random.sample",
    "random.getrandbits",
})

SEED_CALLS = frozenset({"numpy.random.seed", "random.seed"})

#: Accumulators whose result depends on operand order in float arithmetic.
ACCUM_CALLS = frozenset({
    "sum", "math.fsum", "numpy.sum", "numpy.prod", "numpy.dot",
    "numpy.cumsum",
})


@register
class WallClockEntropy(Rule):
    code = "RPL001"
    name = "wall-clock-entropy"
    summary = ("time.time()/datetime.now()/os.urandom in library code — "
               "results must be a pure function of their inputs")
    invariant = ("bitwise-deterministic kernels: identical inputs yield "
                 "byte-identical trajectories")
    established = "PR 5/6"
    library_only = True

    def check_file(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qn = ctx.call_name(node)
            if qn in WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self, node,
                    f"{qn}() injects wall-clock/OS entropy into library "
                    f"code; results must be a pure function of inputs "
                    f"(time.perf_counter() is fine for *measuring* wall "
                    f"time)",
                )


@register
class UnseededRng(Rule):
    code = "RPL002"
    name = "unseeded-rng"
    summary = ("unseeded np.random.default_rng() or module-level "
               "numpy.random samplers (hidden global state)")
    invariant = ("every random draw is reproducible from an explicit "
                 "seed (scenario sweeps pin PCG64 values cross-platform)")
    established = "PR 5"

    def check_file(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qn = ctx.call_name(node)
            if qn == "numpy.random.default_rng":
                seeded = bool(node.args) or any(
                    kw.arg == "seed" for kw in node.keywords
                )
                if not seeded:
                    yield ctx.finding(
                        self, node,
                        "default_rng() without a seed is a fresh OS-"
                        "entropy stream; pass an explicit seed",
                    )
            elif qn in GLOBAL_SAMPLERS:
                yield ctx.finding(
                    self, node,
                    f"{qn}() draws from the hidden module-level RNG; "
                    f"use an explicitly seeded np.random.default_rng "
                    f"generator instead",
                )


@register
class GlobalSeed(Rule):
    code = "RPL003"
    name = "global-rng-seed"
    summary = "global np.random.seed()/random.seed() calls"
    invariant = ("no process-wide RNG state: seeding globally leaks "
                 "determinism assumptions across modules and tests")
    established = "PR 5"

    def check_file(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qn = ctx.call_name(node)
            if qn in SEED_CALLS:
                yield ctx.finding(
                    self, node,
                    f"{qn}() mutates process-wide RNG state; construct "
                    f"a local np.random.default_rng(seed) instead",
                )


def _scope_bodies(tree):
    """Yield (body_statements,) per scope: module + each function."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _walk_scope(stmts):
    """Walk statements without descending into nested function scopes."""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _is_set_expr(node, set_names) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _accumulates(body) -> bool:
    for stmt in body:
        for node in _walk_scope([stmt]):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                return True
    return False


@register
class SetIterationAccumulation(Rule):
    code = "RPL004"
    name = "set-order-accumulation"
    summary = ("numeric accumulation over set/frozenset iteration "
               "(undefined order x float non-associativity)")
    invariant = ("iteration feeding float arithmetic is always over a "
                 "deterministically ordered sequence")
    established = "PR 3"

    def check_file(self, ctx):
        for stmts in _scope_bodies(ctx.tree):
            set_names: set[str] = set()
            # First pass, in order: names assigned from set expressions.
            for node in _walk_scope(stmts):
                if isinstance(node, ast.Assign):
                    if _is_set_expr(node.value, set_names):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                set_names.add(target.id)
            for node in _walk_scope(stmts):
                if isinstance(node, ast.For) and _is_set_expr(
                    node.iter, set_names
                ):
                    if _accumulates(node.body):
                        yield ctx.finding(
                            self, node,
                            "accumulating over set iteration: set order "
                            "is undefined and float addition is not "
                            "associative — iterate sorted(...) instead",
                        )
                elif isinstance(node, ast.Call):
                    qn = ctx.call_name(node)
                    if qn not in ACCUM_CALLS or not node.args:
                        continue
                    arg = node.args[0]
                    direct = _is_set_expr(arg, set_names)
                    via_comp = (
                        isinstance(
                            arg,
                            (ast.GeneratorExp, ast.ListComp, ast.SetComp),
                        )
                        and arg.generators
                        and _is_set_expr(arg.generators[0].iter, set_names)
                    )
                    if direct or via_comp:
                        yield ctx.finding(
                            self, node,
                            f"{qn}() over a set: reduction order is "
                            f"undefined — sort the operands first",
                        )


def _is_floatish(node) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_floatish(node.operand)
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"):
        return True
    return False


@register
class FloatEquality(Rule):
    code = "RPL005"
    name = "float-equality"
    summary = ("== / != against float values in library code (exact "
               "sentinels need an explicit justification)")
    invariant = ("float comparisons in library logic are either "
                 "tolerance-based or documented exact sentinels — in "
                 "tests, exact equality is the *assertion idiom* of a "
                 "bitwise-deterministic suite, so tests are exempt")
    established = "PR 5/6"
    library_only = True

    def check_file(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_floatish(o) for o in operands):
                yield ctx.finding(
                    self, node,
                    "exact float ==/!= in library code: if this is a "
                    "deliberate exact sentinel (breakdown beta, "
                    "untouched scale factor), suppress with a written "
                    "justification; otherwise compare with a tolerance",
                )
