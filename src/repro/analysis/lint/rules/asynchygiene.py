"""Async-hygiene rules (RPL030).

``repro serve`` (PR 8) is a single-process asyncio daemon whose
availability story — bounded admission, per-job deadlines, draining
SIGTERM shutdown — only holds while the event loop keeps turning.  One
blocking call directly inside a coroutine (a sleep, a subprocess wait,
a synchronous ``Executor.run`` march) freezes admission, deadline
checks and the drain at once.  The established boundary is
``asyncio.to_thread``: job bodies run in a worker thread, the loop only
awaits.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.core import Rule, register

BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid",
    "socket.create_connection",
    "urllib.request.urlopen",
})

#: Socket-ish method names that block regardless of the receiver.
BLOCKING_METHODS = frozenset({
    "recv", "recv_into", "recvfrom", "accept", "sendall", "makefile",
})

#: A blocking simulation march: ``.run(...)`` / ``.sweep(...)`` on an
#: executor/session/scheduler-shaped receiver.
_MARCH_METHODS = frozenset({"run", "sweep"})
_MARCH_RECEIVER_RE = re.compile(
    r"(executor|session|scheduler|worker|runner|pool)", re.IGNORECASE
)


def _shallow_walk(stmts):
    """Walk a coroutine body without entering nested function scopes."""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            stack.append(child)


@register
class BlockingCallInAsync(Rule):
    code = "RPL030"
    name = "blocking-call-in-async"
    summary = ("time.sleep/subprocess/socket recv/Executor.run directly "
               "inside async def — enforce the asyncio.to_thread "
               "boundary")
    invariant = ("the serve daemon's event loop never blocks: "
                 "admission, deadlines and the SIGTERM drain stay live "
                 "while job bodies run in worker threads")
    established = "PR 8"

    def check_file(self, ctx):
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _shallow_walk(fn.body):
                if not isinstance(node, ast.Call):
                    continue
                qn = ctx.call_name(node)
                if qn in BLOCKING_CALLS:
                    yield ctx.finding(
                        self, node,
                        f"blocking {qn}() inside async def {fn.name}: "
                        f"the event loop stalls until it returns — "
                        f"await asyncio.to_thread(...) (or the async "
                        f"equivalent, e.g. asyncio.sleep)",
                    )
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                method = node.func.attr
                if method in BLOCKING_METHODS:
                    yield ctx.finding(
                        self, node,
                        f"blocking socket-style .{method}() inside "
                        f"async def {fn.name}: use the asyncio stream "
                        f"APIs or asyncio.to_thread",
                    )
                elif method in _MARCH_METHODS:
                    receiver = ast.unparse(node.func.value)
                    if _MARCH_RECEIVER_RE.search(receiver):
                        yield ctx.finding(
                            self, node,
                            f"{receiver}.{method}(...) is a blocking "
                            f"simulation march inside async def "
                            f"{fn.name}: run job bodies through "
                            f"asyncio.to_thread so the loop keeps "
                            f"answering pings and deadlines",
                        )
