"""Rule families of the invariant linter.

Importing this package registers every rule with the framework
registry (:mod:`repro.analysis.lint.core`); each module documents the
invariant its family guards and the PR that established it:

* :mod:`~repro.analysis.lint.rules.determinism` — RPL001-RPL005
* :mod:`~repro.analysis.lint.rules.forkshm` — RPL010-RPL012
* :mod:`~repro.analysis.lint.rules.picklable` — RPL020-RPL021
* :mod:`~repro.analysis.lint.rules.asynchygiene` — RPL030
"""

from repro.analysis.lint.rules import (  # noqa: F401 - registration
    asynchygiene,
    determinism,
    forkshm,
    picklable,
)
