"""Fork- and shared-memory-lifecycle rules (RPL010-RPL012).

The zero-copy transport (PR 3) hands ``/dev/shm`` segments from worker
to parent; PR 8 closed the remaining leak windows with registered
sweeps (``new_segment_prefix`` remembers every prefix until its
``cleanup_segments`` runs, ``atexit``/SIGTERM hooks reclaim the rest).
The fork-started worker pool additionally showed (PR 8) that objects
captured at initializer time — locks, event loops, signal wakeup fds —
are silently shared with the parent and corrupt it from the child.
These rules keep both lifecycles honest at commit time.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.core import Rule, register

SEGMENT_CALLS = frozenset({"new_segment", "new_segment_prefix"})
SWEEP_NAMES = frozenset({
    "cleanup_segments", "sweep_run_segments", "install_signal_sweep",
})

#: Identifier tokens that smell like live concurrency state.
_SUSPECT_TOKENS = frozenset({
    "lock", "rlock", "thread", "loop", "queue", "event", "semaphore",
    "condition", "socket", "pipe", "writer", "reader",
})

_IDENT_RE = re.compile(r"[A-Za-z]+")


def _terminal_name(node) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _suspect_tokens(text: str):
    tokens = set()
    for ident in _IDENT_RE.findall(text.lower()):
        if ident in _SUSPECT_TOKENS:
            tokens.add(ident)
    return sorted(tokens)


@register
class UnsweptSegmentPrefix(Rule):
    code = "RPL010"
    name = "unswept-segment-prefix"
    summary = ("new_segment_prefix()/new_segment() call without a "
               "registered sweep in the same module")
    invariant = ("every /dev/shm prefix is reclaimed on failure and "
                 "exit: no leaked segments survive the process")
    established = "PR 3/8"

    def check_file(self, ctx):
        sites = []
        has_sweep = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name in SEGMENT_CALLS:
                    sites.append((node, name))
            name = _terminal_name(node)
            if name in SWEEP_NAMES:
                has_sweep = True
        if has_sweep:
            return
        for node, name in sites:
            yield ctx.finding(
                self, node,
                f"{name}() allocates a /dev/shm namespace but this "
                f"module never references cleanup_segments/"
                f"sweep_run_segments/install_signal_sweep — a crashed "
                f"consumer leaks the segments",
            )


@register
class PoolInitializerCapture(Rule):
    code = "RPL011"
    name = "pool-initializer-capture"
    summary = ("process-pool initializer/initargs capturing locks, "
               "threads, loops or sockets")
    invariant = ("worker processes rebuild concurrency state from "
                 "plain data; a forked lock/loop/wakeup-fd is shared "
                 "with the parent and corrupts it from the child")
    established = "PR 8"

    def check_file(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            if "initializer" not in kwargs:
                continue
            init = kwargs["initializer"]
            if isinstance(init, ast.Lambda):
                yield ctx.finding(
                    self, init,
                    "pool initializer is a lambda: it closes over the "
                    "parent's live state and cannot pickle under spawn "
                    "— use a module-level function",
                )
            initargs = kwargs.get("initargs")
            if initargs is None:
                continue
            elts = (
                initargs.elts
                if isinstance(initargs, (ast.Tuple, ast.List))
                else [initargs]
            )
            for elt in elts:
                tokens = _suspect_tokens(ast.unparse(elt))
                if tokens:
                    yield ctx.finding(
                        self, elt,
                        f"initargs element {ast.unparse(elt)!r} looks "
                        f"like live {'/'.join(tokens)} state; ship "
                        f"plain data and rebuild concurrency objects "
                        f"inside the worker",
                    )


#: Roots whose calls are unsafe from a Python signal handler: they can
#: block on, or deadlock with, state the interrupted main thread holds.
_UNSAFE_HANDLER_ROOTS = frozenset({
    "threading", "multiprocessing", "subprocess", "logging", "queue",
    "concurrent",
})
_UNSAFE_HANDLER_METHODS = frozenset({"acquire"})


@register
class SignalHandlerSafety(Rule):
    code = "RPL012"
    name = "signal-handler-safety"
    summary = ("signal handlers doing non-async-signal-safe work "
               "(locks, threads, logging)")
    invariant = ("handlers installed with signal.signal() only sweep "
                 "files, set flags and re-raise — they interrupt "
                 "arbitrary bytecode, so anything that can hold a lock "
                 "can deadlock")
    established = "PR 8"

    def check_file(self, ctx):
        defs = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.call_name(node) != "signal.signal":
                continue
            if len(node.args) < 2:
                continue
            handler = node.args[1]
            if not isinstance(handler, ast.Name):
                continue  # SIG_DFL/SIG_IGN or an expression
            fn = defs.get(handler.id)
            if fn is None:
                continue
            for sub in ast.walk(fn):
                if not isinstance(sub, ast.Call):
                    continue
                qn = ctx.call_name(sub) or ""
                root = qn.split(".")[0]
                method = (
                    sub.func.attr
                    if isinstance(sub.func, ast.Attribute) else None
                )
                if (root in _UNSAFE_HANDLER_ROOTS
                        or method in _UNSAFE_HANDLER_METHODS):
                    yield ctx.finding(
                        self, sub,
                        f"signal handler {fn.name}() calls "
                        f"{qn or method}: handlers interrupt arbitrary "
                        f"bytecode — restrict them to async-signal-safe "
                        f"work (sweep files, set a flag, re-raise)",
                    )
