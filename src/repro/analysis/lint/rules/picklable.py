"""Picklability rules (RPL020-RPL021) — semi-dynamic.

Every cross-process message (PR 1) travels by pickle: the scheduler's
``SimulationTask``/``NodeResult``/``DistributedResult``, compiled plans
and scenarios shipped to persistent pools (PR 5), retry policies (PR 8)
and the serve daemon's config.  A field that sneaks in a lock, a
socket, an event loop or a lambda breaks the executor at runtime, on
the first multiprocess run, far from the edit that caused it.

Unlike the AST rules this checker **imports the real modules**: for
every *public* dataclass defined in a target module it (a) walks the
declared field types against a denylist of never-picklable leaves,
recursing through nested project dataclasses, and (b) when a probe
instance can be synthesized from defaults and primitive field types,
pickle-round-trips it and compares the fields.  Private (``_``-prefixed)
dataclasses are process-local by convention and skipped — e.g. the
serve daemon's ``_Job`` deliberately holds its client's stream writer.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import importlib
import importlib.util
import inspect
import pickle
import types
import typing

from repro.analysis.lint.core import Finding, Rule, register

#: Modules whose public dataclasses form the cross-process surface.
TARGET_MODULES = (
    "repro.dist.messages",
    "repro.dist.supervision",
    "repro.serve.protocol",
    "repro.serve.daemon",
    "repro.plan.scenario",
    "repro.plan.plan",
)

#: Leaf types from these modules can never cross a process boundary.
DENY_MODULE_PREFIXES = (
    "threading", "_thread", "asyncio", "socket", "select", "selectors",
    "io", "weakref", "ctypes", "subprocess",
    "multiprocessing.pool", "multiprocessing.queues",
    "multiprocessing.synchronize", "multiprocessing.connection",
    "concurrent.futures",
)

_DENY_TYPES = (
    types.FunctionType, types.LambdaType, types.GeneratorType,
    types.CoroutineType, types.ModuleType, types.FrameType,
)

_PRIMITIVE_SYNTH = {
    int: 1, float: 1.0, bool: True, str: "probe", bytes: b"probe",
}

_CANT = object()


def _leaf_problems(ann, seen) -> list:
    """Offending type names reachable from one field annotation."""
    if ann is None or ann is type(None) or ann is typing.Any:
        return []
    origin = typing.get_origin(ann)
    if origin is collections.abc.Callable:
        return ["Callable (lambdas/bound methods do not pickle)"]
    if origin is not None:
        out = []
        for arg in typing.get_args(ann):
            if arg is Ellipsis:
                continue
            out.extend(_leaf_problems(arg, seen))
        return out
    if not isinstance(ann, type):
        return []  # unresolved forward reference / typing special form
    if issubclass(ann, _DENY_TYPES):
        return [ann.__name__]
    module = ann.__module__ or ""
    for prefix in DENY_MODULE_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return [f"{module}.{ann.__qualname__}"]
    if dataclasses.is_dataclass(ann) and module.startswith("repro."):
        if ann in seen:
            return []
        seen.add(ann)
        out = []
        try:
            hints = typing.get_type_hints(ann)
        except Exception:
            hints = {}
        for f in dataclasses.fields(ann):
            for problem in _leaf_problems(hints.get(f.name), seen):
                out.append(f"{ann.__name__}.{f.name}: {problem}")
        return out
    return []


def _synthesize(ann):
    """A probe value for one annotation, or ``_CANT``."""
    if ann is None or ann is typing.Any or ann is object:
        return None
    origin = typing.get_origin(ann)
    if origin is typing.Union or origin is types.UnionType:
        args = typing.get_args(ann)
        if type(None) in args:
            return None
        for arg in args:
            value = _synthesize(arg)
            if value is not _CANT:
                return value
        return _CANT
    if origin in (tuple, collections.abc.Sequence):
        return ()
    if origin in (list,):
        return []
    if origin in (dict, collections.abc.Mapping):
        return {}
    if origin in (set, frozenset):
        return frozenset()
    if isinstance(ann, type):
        if ann in _PRIMITIVE_SYNTH:
            return _PRIMITIVE_SYNTH[ann]
        if ann is tuple:
            return ()
        if ann is dict:
            return {}
        if ann is list:
            return []
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a hard dep
            return _CANT
        if issubclass(ann, np.ndarray):
            return np.zeros(1)
    return _CANT


def _construct_probe(cls, hints):
    """Best-effort probe instance, or ``None`` when not synthesizable."""
    try:
        sig = inspect.signature(cls)
    except (TypeError, ValueError):
        return None
    kwargs = {}
    for param in sig.parameters.values():
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if param.default is not inspect.Parameter.empty:
            continue
        ann = hints.get(param.name)
        if ann is None and param.annotation is not inspect.Parameter.empty:
            ann = param.annotation
        value = _synthesize(ann)
        if value is _CANT:
            return None
        kwargs[param.name] = value
    try:
        return cls(**kwargs)
    except Exception:
        # The class's own validation rejected the synthetic values —
        # the round-trip probe is skipped, the type check still ran.
        return None


def _fields_equal(a, b) -> bool:
    try:
        import numpy as np

        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return bool(np.array_equal(a, b))
    except ImportError:  # pragma: no cover
        pass
    try:
        return bool(a == b)
    except Exception:
        return True  # incomparable payloads: the round-trip itself passed


def _anchor(cls):
    """(path, line) of a class definition, best effort."""
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return "<unknown>", 1
    return path, line


def check_modules(module_names=TARGET_MODULES):
    """Run both picklability checks over ``module_names``.

    Returns every RPL020/RPL021 finding; the two registered rules each
    filter this shared pass by their own code.
    """
    findings: list[Finding] = []
    for mod_name in module_names:
        try:
            mod = importlib.import_module(mod_name)
        except Exception as exc:
            spec = None
            try:
                spec = importlib.util.find_spec(mod_name)
            except Exception:
                pass
            path = getattr(spec, "origin", None) or "<unknown>"
            findings.append(Finding(
                code="RPL020",
                message=f"cannot import message module {mod_name}: "
                        f"{type(exc).__name__}: {exc}",
                path=path, line=1,
            ))
            continue
        for obj in vars(mod).values():
            if not (isinstance(obj, type)
                    and dataclasses.is_dataclass(obj)
                    and obj.__module__ == mod.__name__
                    and not obj.__name__.startswith("_")):
                continue
            findings.extend(_check_dataclass(obj))
    return findings


def _check_dataclass(cls):
    findings = []
    path, line = _anchor(cls)
    try:
        hints = typing.get_type_hints(cls)
    except Exception:
        hints = {}
    for f in dataclasses.fields(cls):
        for problem in _leaf_problems(hints.get(f.name), {cls}):
            findings.append(Finding(
                code="RPL020",
                message=f"field {cls.__name__}.{f.name} declares "
                        f"{problem}: it cannot cross a process "
                        f"boundary by pickle",
                path=path, line=line,
            ))
    obj = _construct_probe(cls, hints)
    if obj is None:
        return findings
    try:
        clone = pickle.loads(pickle.dumps(obj))
    except Exception as exc:
        findings.append(Finding(
            code="RPL021",
            message=f"{cls.__name__} probe instance failed the pickle "
                    f"round-trip: {type(exc).__name__}: {exc}",
            path=path, line=line,
        ))
        return findings
    for f in dataclasses.fields(cls):
        a, b = getattr(obj, f.name), getattr(clone, f.name)
        if not _fields_equal(a, b):
            findings.append(Finding(
                code="RPL021",
                message=f"field {cls.__name__}.{f.name} changed across "
                        f"the pickle round-trip ({a!r} -> {b!r})",
                path=path, line=line,
            ))
    return findings


@register
class MessageFieldTypes(Rule):
    code = "RPL020"
    name = "message-field-types"
    summary = ("cross-process message dataclasses declare only "
               "picklable field types (semi-dynamic: imports the real "
               "modules)")
    invariant = ("every scheduler/plan/serve message crosses process "
                 "boundaries by pickle")
    established = "PR 1"
    dynamic = True

    def check_project(self, roots):
        return [f for f in check_modules() if f.code == self.code]


@register
class MessageRoundTrip(Rule):
    code = "RPL021"
    name = "message-pickle-round-trip"
    summary = ("synthesized message instances survive a pickle "
               "round-trip with identical fields (semi-dynamic)")
    invariant = ("pickling a message is lossless — executors rely on "
                 "task/result payloads surviving the pipe bit-for-bit")
    established = "PR 1"
    dynamic = True

    def check_project(self, roots):
        return [f for f in check_modules() if f.code == self.code]
