"""Reporters for lint results: human text and machine JSON."""

from __future__ import annotations

import json

__all__ = ["render_text", "render_json", "render_rule_table"]


def render_text(result) -> str:
    """GCC-style ``path:line:col: CODE message`` lines plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.code} {f.message}"
        for f in result.findings
    ]
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files} file(s)"
        )
    else:
        lines.append(f"clean: {result.files} file(s), 0 findings")
    return "\n".join(lines)


def render_json(result) -> str:
    """Stable JSON for CI gates and tooling."""
    return json.dumps(
        {
            "version": 1,
            "files": result.files,
            "count": len(result.findings),
            "findings": [f.as_dict() for f in result.findings],
        },
        indent=2,
        sort_keys=True,
    )


def render_rule_table(rules) -> str:
    """The ``--list-rules`` listing: code, flags, invariant, origin."""
    lines = []
    for rule in rules:
        flags = []
        if rule.meta:
            flags.append("meta")
        if rule.dynamic:
            flags.append("dynamic")
        if rule.library_only:
            flags.append("library-only")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        lines.append(f"{rule.code} {rule.name}{suffix}")
        lines.append(f"    {rule.summary}")
        if rule.invariant:
            lines.append(
                f"    guards: {rule.invariant} ({rule.established})"
            )
    return "\n".join(lines)
