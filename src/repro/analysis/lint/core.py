"""Rule framework of the project-invariant linter (``repro lint``).

The codebase rests on a handful of hard-won invariants — bitwise
deterministic kernels, fork/shared-memory lifecycle safety, picklable
cross-process messages, a never-blocking asyncio daemon — that nothing
enforced except tests that happen to trip.  This module is the
framework half of the enforcement: a rule registry (one ``RPL0xx`` code
per rule), a per-file AST pass, project-level *semi-dynamic* rules
(they import and probe real modules), and a suppression mechanism
(``repro: allow[CODE] reason`` trailing comments, parsed from real
comment tokens so docstrings about the syntax never count).

The rules themselves live in :mod:`repro.analysis.lint.rules`; each one
documents the invariant it guards and the PR that established it.
Reporters live in :mod:`repro.analysis.lint.report`, the CLI in
:mod:`repro.analysis.lint.cli`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.analysis.lint.suppress import parse_suppressions

__all__ = [
    "Finding",
    "Rule",
    "LintError",
    "LintResult",
    "register",
    "all_rules",
    "get_rule",
    "known_codes",
    "lint_paths",
    "iter_python_files",
    "is_test_file",
    "FileContext",
]

#: Directory names never descended into when expanding a directory
#: argument.  ``lint_fixtures`` holds the self-test suite's deliberately
#: violating rule fixtures — linting them would make the clean-tree
#: gate impossible.  An explicitly named *file* is always linted, so the
#: self-tests can still point the linter at a fixture directly.
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".hypothesis", "lint_fixtures"}
)

_CODE_RE = re.compile(r"RPL\d{3}\Z")


class LintError(ValueError):
    """A lint invocation problem (bad path, bad code) — a usage error."""


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def as_dict(self) -> dict:
        return asdict(self)


class Rule:
    """Base class all ``RPL`` rules subclass and register.

    Class attributes double as the rule's documentation — ``repro lint
    --list-rules`` and the README table are generated from them.

    Attributes
    ----------
    code:
        ``RPL0xx`` identifier (stable; suppressions reference it).
    name:
        Short kebab-case label.
    summary:
        One-line statement of what the rule flags.
    invariant:
        The project invariant the rule guards.
    established:
        Which PR established that invariant.
    library_only:
        True — the rule skips test files (``tests/`` or ``test_*.py``):
        e.g. exact float comparison is an *assertion idiom* in a
        bitwise-deterministic test suite but a smell in library code.
    dynamic:
        True — the rule runs once per lint invocation via
        :meth:`check_project` (importing and probing real modules)
        instead of per-file over an AST.
    meta:
        True — the code is emitted by the engine itself (syntax errors,
        suppression problems); meta codes are not suppressible.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    invariant: str = ""
    established: str = ""
    library_only: bool = False
    dynamic: bool = False
    meta: bool = False

    def check_file(self, ctx: FileContext):
        """Yield :class:`Finding` objects for one parsed file."""
        return ()

    def check_project(self, roots):
        """Yield findings for a whole invocation (dynamic rules)."""
        return ()


_REGISTRY: dict[str, Rule] = {}
_RULES_LOADED = False


def register(cls):
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not _CODE_RE.match(rule.code):
        raise ValueError(
            f"rule code must match RPLnnn, got {rule.code!r}"
        )
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def _load_rules() -> None:
    global _RULES_LOADED
    if _RULES_LOADED:
        return
    _RULES_LOADED = True
    # Importing the rules package registers every rule via @register.
    import repro.analysis.lint.rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by code."""
    _load_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _load_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise LintError(f"unknown rule code {code!r}") from None


def known_codes() -> frozenset:
    _load_rules()
    return frozenset(_REGISTRY)


# -- engine meta rules (emitted by the engine, not by a visitor) -------------


@register
class SyntaxErrorRule(Rule):
    code = "RPL000"
    name = "syntax-error"
    summary = "file does not parse; no other rule can run"
    invariant = "lintability itself"
    established = "PR 9"
    meta = True


@register
class MalformedSuppression(Rule):
    code = "RPL090"
    name = "malformed-suppression"
    summary = "a 'repro: allow' comment that does not parse"
    invariant = "every suppression carries codes and a justification"
    established = "PR 9"
    meta = True


@register
class UnknownSuppressionCode(Rule):
    code = "RPL091"
    name = "unknown-suppression-code"
    summary = "a suppression references an unknown or non-suppressible code"
    invariant = "suppressions stay in sync with the rule registry"
    established = "PR 9"
    meta = True


@register
class StaleSuppression(Rule):
    code = "RPL092"
    name = "stale-suppression"
    summary = "a suppression no longer matches any finding on its line"
    invariant = "suppressions are removed when the violation is fixed"
    established = "PR 9"
    meta = True


# -- per-file context --------------------------------------------------------


def _dotted(node) -> list | None:
    """``a.b.c`` attribute/name chain as parts, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _collect_aliases(tree) -> dict:
    """Map local names to the qualified names their imports bind."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                qualified = (
                    f"{module}.{alias.name}" if module else alias.name
                )
                aliases[local] = qualified
    return aliases


class FileContext:
    """Everything a per-file rule needs: source, AST, import aliases."""

    def __init__(self, path: str, source: str, tree, is_test: bool):
        self.path = path
        self.source = source
        self.tree = tree
        self.is_test = is_test
        self.aliases = _collect_aliases(tree)

    def qualname(self, node) -> str | None:
        """Resolve an expression to a dotted name through the imports.

        ``np.random.seed`` resolves to ``numpy.random.seed`` under
        ``import numpy as np``; ``now()`` resolves to
        ``datetime.datetime.now`` under ``from datetime import
        datetime`` + attribute access, and so on.  ``None`` when the
        expression is not a plain name/attribute chain.
        """
        parts = _dotted(node)
        if not parts:
            return None
        base = self.aliases.get(parts[0])
        if base is not None:
            parts = base.split(".") + parts[1:]
        return ".".join(parts)

    def call_name(self, call) -> str | None:
        """Qualified name of a call's target (or ``None``)."""
        return self.qualname(call.func)

    def finding(self, rule: Rule, node, message: str) -> Finding:
        return Finding(
            code=rule.code,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


# -- file discovery ----------------------------------------------------------


def is_test_file(path) -> bool:
    """Test files: under a ``tests`` directory or named ``test_*.py``."""
    p = Path(path)
    return "tests" in p.parts or p.name.startswith("test_")


def iter_python_files(paths):
    """Expand path arguments into the ordered list of files to lint."""
    seen: dict[Path, None] = {}
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(part in EXCLUDED_DIR_NAMES for part in f.parts):
                    continue
                seen.setdefault(f, None)
        elif p.is_file():
            if p.suffix == ".py":
                seen.setdefault(p, None)
        else:
            raise LintError(f"path {raw!r} does not exist")
    return list(seen)


# -- the engine --------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    findings: list
    files: int

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def _resolve_select(select) -> frozenset:
    if select is None:
        return known_codes()
    chosen = []
    for code in select:
        code = code.strip()
        if not code:
            continue
        if code not in known_codes():
            raise LintError(
                f"unknown rule code {code!r} in --select "
                f"(known: {', '.join(sorted(known_codes()))})"
            )
        chosen.append(code)
    if not chosen:
        raise LintError("--select named no rules")
    return frozenset(chosen)


def _apply_suppressions(path, source, raw_findings, selected):
    """Filter findings through the file's suppression comments.

    Returns the surviving findings plus the engine's meta findings:
    malformed suppressions (RPL090), unknown/non-suppressible codes
    (RPL091) and stale suppressions (RPL092).  Staleness is only
    reported when every code a suppression names was actually checked
    in this invocation — a ``--select`` subset must not flag the
    suppressions of the rules it skipped.
    """
    suppressions, problems = parse_suppressions(source)
    out: list[Finding] = []
    if "RPL090" in selected:
        for prob in problems:
            out.append(Finding(
                code="RPL090", message=prob.message,
                path=path, line=prob.line,
            ))
    valid = []
    for supp in suppressions:
        bad = None
        for code in supp.codes:
            if code not in known_codes():
                bad = f"suppression names unknown rule code {code!r}"
            elif get_rule(code).meta:
                bad = (
                    f"engine code {code} is not suppressible — fix the "
                    f"suppression itself instead"
                )
            if bad:
                break
        if bad:
            if "RPL091" in selected:
                out.append(Finding(
                    code="RPL091", message=bad,
                    path=path, line=supp.comment_line,
                ))
        else:
            valid.append(supp)
    for finding in raw_findings:
        matched = None
        for supp in valid:
            if (finding.line == supp.target_line
                    and finding.code in supp.codes):
                matched = supp
                break
        if matched is not None:
            matched.used = True
        else:
            out.append(finding)
    if "RPL092" in selected:
        for supp in valid:
            if supp.used or not all(c in selected for c in supp.codes):
                continue
            out.append(Finding(
                code="RPL092",
                message=(
                    f"stale suppression allow[{','.join(supp.codes)}]: "
                    f"no matching finding on line {supp.target_line} — "
                    f"remove it (reason was: {supp.reason})"
                ),
                path=path, line=supp.comment_line,
            ))
    return out


def _lint_file(path: Path, rules, selected) -> list:
    source = path.read_text(encoding="utf-8")
    str_path = str(path)
    try:
        tree = ast.parse(source, filename=str_path)
    except SyntaxError as exc:
        return [Finding(
            code="RPL000",
            message=f"syntax error: {exc.msg}",
            path=str_path, line=exc.lineno or 1,
        )]
    ctx = FileContext(str_path, source, tree, is_test_file(path))
    raw: list[Finding] = []
    for rule in rules:
        if rule.dynamic or rule.meta or rule.code not in selected:
            continue
        if rule.library_only and ctx.is_test:
            continue
        raw.extend(rule.check_file(ctx))
    return _apply_suppressions(str_path, source, raw, selected)


def _within_roots(path: str, roots) -> bool:
    resolved = Path(path).resolve()
    for root in roots:
        try:
            resolved.relative_to(root)
        except ValueError:
            continue
        return True
    return False


def lint_paths(paths, select=None, dynamic=True) -> LintResult:
    """Lint files/directories; the API behind ``repro lint``.

    Parameters
    ----------
    paths:
        Files and/or directories.  Directories are walked recursively
        (skipping :data:`EXCLUDED_DIR_NAMES`); explicit files are always
        linted, wherever they live.
    select:
        Optional iterable of ``RPL`` codes restricting the run.
    dynamic:
        Run the semi-dynamic project rules (module import + pickle
        probes).  Their findings are only reported when the offending
        module's source file lies under one of ``paths``.
    """
    selected = _resolve_select(select)
    rules = all_rules()
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for path in files:
        findings.extend(_lint_file(path, rules, selected))
    if dynamic:
        roots = [Path(p).resolve() for p in paths]
        for rule in rules:
            if not rule.dynamic or rule.code not in selected:
                continue
            for finding in rule.check_project(roots):
                if _within_roots(finding.path, roots):
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return LintResult(findings=findings, files=len(files))
