"""CLI of the invariant linter: ``repro lint`` / ``python -m repro.analysis``.

Exit codes follow lint convention: 0 — clean, 1 — findings, 2 — usage
error (unknown path, unknown rule code).  ``--format json`` is the CI
gate's interface; ``--list-rules`` documents every registered rule with
the invariant it guards.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint.core import (
    LintError,
    all_rules,
    lint_paths,
)
from repro.analysis.lint.report import (
    render_json,
    render_rule_table,
    render_text,
)

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by ``repro lint`` and ``-m``)."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI gate's interface)")
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated RPL codes to run (default: all)")
    parser.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the semi-dynamic rules (message-dataclass import + "
             "pickle round-trip probes)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule with the invariant it guards")


def run_lint(args) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        print(render_rule_table(all_rules()))
        return 0
    paths = args.paths or ["src", "tests"]
    select = None
    if args.select is not None:
        select = args.select.split(",")
    try:
        result = lint_paths(
            paths, select=select, dynamic=not args.no_dynamic
        )
    except LintError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv=None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Project-invariant static analysis (RPL rules): "
                    "determinism, fork/shm safety, picklability, "
                    "async hygiene.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
