"""Suppression comments: ``repro: allow[CODE,...] reason``.

A finding is silenced by a comment naming its rule code **with a
written justification**, either trailing the offending line::

    if beta == 0.0:  # repro: allow[RPL005] exact breakdown sentinel

or on its own line directly above it::

    # repro: allow[RPL005] exact breakdown sentinel
    if beta == 0.0:

Comments are extracted with :mod:`tokenize`, so the syntax can be
*mentioned* in strings and docstrings (like this one) without being
parsed as a suppression.  Malformed attempts (missing brackets, empty
code list, no reason) are never silently ignored — the engine reports
them as ``RPL090`` findings, unknown or non-suppressible codes as
``RPL091``, and suppressions that no longer match a finding as
``RPL092`` (stale).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "SuppressionProblem", "parse_suppressions"]

#: Anything that *looks like* a suppression attempt.  Parsed strictly by
#: :data:`_STRICT_RE`; attempts that miss the strict form are malformed.
_ATTEMPT_RE = re.compile(r"#\s*repro\s*:\s*allow\b")

_STRICT_RE = re.compile(
    r"#\s*repro\s*:\s*allow\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)\Z"
)

_CODE_TOKEN_RE = re.compile(r"[A-Za-z]+\d+\Z")


@dataclass
class Suppression:
    """One well-formed allow comment."""

    codes: tuple
    reason: str
    comment_line: int
    target_line: int
    used: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class SuppressionProblem:
    """A malformed allow attempt (reported as RPL090)."""

    line: int
    message: str


def _iter_comments(source: str):
    """(line, col, text, line_text) for every real comment token."""
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string, tok.line
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files already fail lint with RPL000.
        return


def parse_suppressions(source: str):
    """Extract ``(suppressions, problems)`` from a file's comments."""
    suppressions: list[Suppression] = []
    problems: list[SuppressionProblem] = []
    for line, col, text, line_text in _iter_comments(source):
        if not _ATTEMPT_RE.search(text):
            continue
        match = _STRICT_RE.search(text)
        if not match:
            problems.append(SuppressionProblem(
                line=line,
                message=(
                    "malformed suppression: expected "
                    "'# repro: allow[RPL0xx,...] reason'"
                ),
            ))
            continue
        codes = tuple(
            c.strip() for c in match.group("codes").split(",")
            if c.strip()
        )
        reason = match.group("reason").strip()
        if not codes:
            problems.append(SuppressionProblem(
                line=line,
                message="suppression names no rule codes: allow[] is empty",
            ))
            continue
        bad_tokens = [c for c in codes if not _CODE_TOKEN_RE.match(c)]
        if bad_tokens:
            problems.append(SuppressionProblem(
                line=line,
                message=(
                    f"suppression code list does not parse "
                    f"({', '.join(map(repr, bad_tokens))}): expected "
                    f"comma-separated RPL0xx codes"
                ),
            ))
            continue
        if not reason:
            problems.append(SuppressionProblem(
                line=line,
                message=(
                    f"suppression allow[{','.join(codes)}] has no "
                    f"justification — every suppression must say why "
                    f"the violation is intentional"
                ),
            ))
            continue
        # Trailing a statement → suppresses that line; standalone → the
        # line below.
        standalone = not line_text[:col].strip()
        suppressions.append(Suppression(
            codes=codes,
            reason=reason,
            comment_line=line,
            target_line=line + 1 if standalone else line,
        ))
    return suppressions, problems
