"""Analysis: error metrics, droop reports, speedup model, tables."""

from repro.analysis.droop import DroopReport, droop_report, worst_droop
from repro.analysis.errors import (
    avg_error,
    error_metrics,
    max_error,
    relative_error_pct,
)
from repro.analysis.speedup import SpeedupModel
from repro.analysis.tables import Table

__all__ = [
    "DroopReport",
    "SpeedupModel",
    "Table",
    "avg_error",
    "droop_report",
    "error_metrics",
    "max_error",
    "relative_error_pct",
    "worst_droop",
]
