"""``python -m repro.analysis``: run the project-invariant linter."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
