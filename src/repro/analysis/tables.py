"""Minimal fixed-width table rendering for experiment output.

The experiment drivers print rows shaped like the paper's tables; this
keeps the formatting in one place (and out of the science code).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["Table"]


class Table:
    """Accumulate rows, render a fixed-width ASCII table.

    >>> t = Table(["a", "b"], title="demo")
    >>> t.add_row([1, 2.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            if cell == 0.0:  # repro: allow[RPL005] exact zero renders as "0" in tables
                return "0"
            if abs(cell) >= 1e4 or abs(cell) < 1e-3:
                return f"{cell:.3g}"
            return f"{cell:.4g}"
        return str(cell)

    def add_row(self, cells: Sequence) -> None:
        """Append one row (cells are formatted on render)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([self._fmt(c) for c in cells])

    def render(self) -> str:
        """The formatted table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
