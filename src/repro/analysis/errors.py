"""Error metrics between transient results (paper Table 1 & 3 columns).

All metrics compare *node voltages only* (MNA branch currents are
excluded, as in the IBM benchmark scoring) on an explicit common time
grid, interpolating each trajectory linearly where needed.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import TransientResult

__all__ = ["error_metrics", "max_error", "avg_error", "relative_error_pct"]


def _aligned_node_blocks(
    result: TransientResult,
    reference: TransientResult,
    times: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    if times is None:
        times = reference.times
    times = np.asarray(times, dtype=float)
    n_nodes = result.system.netlist.n_nodes
    a = result.sample(times)[:, :n_nodes]
    b = reference.sample(times)[:, :n_nodes]
    return a, b


def error_metrics(
    result: TransientResult,
    reference: TransientResult,
    times: np.ndarray | None = None,
) -> dict[str, float]:
    """Max and average absolute node-voltage error vs a reference.

    Parameters
    ----------
    result, reference:
        Trajectories over the same system.
    times:
        Comparison grid; defaults to the reference's native grid.

    Returns
    -------
    dict
        ``{"max": ..., "avg": ...}`` in volts — the Table 3 columns.
    """
    a, b = _aligned_node_blocks(result, reference, times)
    diff = np.abs(a - b)
    return {"max": float(diff.max()), "avg": float(diff.mean())}


def max_error(
    result: TransientResult,
    reference: TransientResult,
    times: np.ndarray | None = None,
) -> float:
    """Max absolute node-voltage error (volts)."""
    return error_metrics(result, reference, times)["max"]


def avg_error(
    result: TransientResult,
    reference: TransientResult,
    times: np.ndarray | None = None,
) -> float:
    """Average absolute node-voltage error (volts)."""
    return error_metrics(result, reference, times)["avg"]


def relative_error_pct(
    result: TransientResult,
    reference: TransientResult,
    times: np.ndarray | None = None,
) -> float:
    """Table 1's ``Err (%)``: max error relative to the signal swing."""
    a, b = _aligned_node_blocks(result, reference, times)
    swing = float(np.max(np.abs(b)))
    if swing == 0.0:  # repro: allow[RPL005] exact zero-swing guard before division
        return 0.0
    return float(np.max(np.abs(a - b)) / swing * 100.0)
