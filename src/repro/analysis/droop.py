"""IR-drop / supply-droop analysis of PDN transients.

The engineering question PDN simulation answers (paper Sec. 1): how far
do the supply rails sag under switching load?  These helpers turn a
:class:`~repro.core.results.TransientResult` into the quantities a power
integrity engineer reports: worst-case droop, per-node peak droop, and
the set of nodes violating a noise budget.

Only *rail* nodes are meaningful for droop; by convention every grid
node is a rail, while MNA branch currents are excluded automatically and
auxiliary nodes can be filtered with ``node_filter``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.results import TransientResult

__all__ = ["DroopReport", "droop_report", "worst_droop"]


@dataclass(frozen=True)
class DroopReport:
    """Supply-droop summary of one transient run.

    Attributes
    ----------
    vdd:
        Nominal rail voltage the droop is measured against.
    worst_droop:
        Largest ``vdd − v(node, t)`` over all rail nodes and times.
    worst_node:
        Node where it occurs.
    worst_time:
        Time at which it occurs.
    node_droops:
        Per-node peak droop, keyed by node name (volts, ≥ 0 means the
        rail sagged below nominal; negative = overshoot only).
    violations:
        Nodes whose peak droop exceeds the requested budget.
    budget:
        The noise budget used for ``violations``.
    """

    vdd: float
    worst_droop: float
    worst_node: str
    worst_time: float
    node_droops: dict[str, float]
    violations: tuple[str, ...]
    budget: float

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"worst droop {self.worst_droop * 1e3:.2f} mV at "
            f"{self.worst_node} (t = {self.worst_time * 1e9:.3f} ns); "
            f"{len(self.violations)} node(s) over the "
            f"{self.budget * 1e3:.1f} mV budget"
        )


def droop_report(
    result: TransientResult,
    vdd: float,
    budget: float = 0.05,
    node_filter: Callable[[str], bool] | None = None,
) -> DroopReport:
    """Analyse supply droop across a transient trajectory.

    Parameters
    ----------
    result:
        The simulated trajectory.
    vdd:
        Nominal supply voltage.
    budget:
        Allowed droop in volts (default 50 mV); nodes exceeding it are
        listed in :attr:`DroopReport.violations`.
    node_filter:
        Optional predicate selecting rail nodes by name (default: all
        non-ground nodes).

    Returns
    -------
    DroopReport
    """
    names = result.system.netlist.node_names()
    keep = [
        (i, name) for i, name in enumerate(names)
        if node_filter is None or node_filter(name)
    ]
    if not keep:
        raise ValueError("node_filter excluded every node")

    idx = [i for i, _ in keep]
    block = result.states[:, idx]            # (times, rails)
    droops = vdd - block                     # positive = sag

    per_node = droops.max(axis=0)
    node_droops = {name: float(per_node[k]) for k, (_, name) in enumerate(keep)}

    flat = int(np.argmax(droops))
    t_idx, n_idx = np.unravel_index(flat, droops.shape)
    violations = tuple(
        name for name, d in node_droops.items() if d > budget
    )
    return DroopReport(
        vdd=vdd,
        worst_droop=float(droops[t_idx, n_idx]),
        worst_node=keep[n_idx][1],
        worst_time=float(result.times[t_idx]),
        node_droops=node_droops,
        violations=violations,
        budget=budget,
    )


def worst_droop(result: TransientResult, vdd: float) -> float:
    """Shortcut: the single worst droop value in volts."""
    return droop_report(result, vdd).worst_droop
