"""Stiffness metric of a descriptor system (paper Sec. 4.1).

The paper defines stiffness as ``Re(λ_min)/Re(λ_max)`` of the eigenvalues
of ``A = -C⁻¹G`` — the ratio between the fastest and slowest decay rates
(both real parts are negative for a passive RC network, so the ratio is a
large positive number on stiff circuits; Table 1 goes up to 2.1e16).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.circuit.mna import MNASystem

__all__ = ["stiffness", "eigenvalue_extremes"]

#: Above this dimension the dense eigensolver is refused.
_DENSE_LIMIT = 3000


def eigenvalue_extremes(
    system: MNASystem, dense_limit: int = _DENSE_LIMIT
) -> tuple[float, float]:
    """Most- and least-negative real parts of the spectrum of ``-C⁻¹G``.

    Returns
    -------
    (lam_min, lam_max):
        ``lam_min`` is the most negative real part (fastest mode),
        ``lam_max`` the least negative (slowest mode).

    Notes
    -----
    Dense generalised eigensolve for systems up to ``dense_limit``
    unknowns; beyond that a sparse two-sided Arnoldi estimate is used
    (largest-magnitude eigenvalue of ``C⁻¹G`` and of its inverse).
    """
    n = system.dim
    if n <= dense_limit:
        c = np.asarray(system.C.todense(), dtype=float)
        g = np.asarray(system.G.todense(), dtype=float)
        lam = np.linalg.eigvals(np.linalg.solve(c, -g))
        real = lam.real
        finite = real[np.isfinite(real)]
        negative = finite[finite < 0]
        if negative.size == 0:
            raise ValueError("system has no decaying modes")
        return float(negative.min()), float(negative.max())

    # Sparse path: |λ|max of C⁻¹G via Arnoldi on LinearOperator, |λ|min
    # via the inverted operator G⁻¹C.
    lu_c = spla.splu(sp.csc_matrix(system.C))
    lu_g = spla.splu(sp.csc_matrix(system.G))
    g = system.G.tocsr()
    c = system.C.tocsr()

    fast_op = spla.LinearOperator(
        (n, n), matvec=lambda v: lu_c.solve(g @ v)
    )
    slow_op = spla.LinearOperator(
        (n, n), matvec=lambda v: lu_g.solve(c @ v)
    )
    lam_fast = spla.eigs(fast_op, k=1, which="LM", return_eigenvectors=False)
    lam_slow_inv = spla.eigs(slow_op, k=1, which="LM", return_eigenvectors=False)
    lam_min = -abs(complex(lam_fast[0]).real)
    lam_max = -1.0 / abs(complex(lam_slow_inv[0]).real)
    return lam_min, lam_max


def stiffness(system: MNASystem, dense_limit: int = _DENSE_LIMIT) -> float:
    """The paper's stiffness ratio ``Re(λ_min)/Re(λ_max)`` (≥ 1)."""
    lam_min, lam_max = eigenvalue_extremes(system, dense_limit=dense_limit)
    return lam_min / lam_max
