"""The ibmpg-like benchmark suite (paper Sec. 4.2/4.3 substrate).

Six synthetic cases named after the IBM power grid transient benchmarks
(``pg1t`` … ``pg6t``).  Sizes are scaled down from the originals (which
reach 1.6M nodes) to keep pure-Python experiments in seconds, but the
*relationships* the paper's tables depend on are preserved:

* monotonically growing node counts across the suite,
* thousands of pulse loads falling into ~``n_shapes`` bump groups
  (100 for most cases, 15 for ``pg4t`` — mirroring why the paper's
  ibmpg4t, with its ~44-point GTS, gets the best adaptive speedups),
* a 10 ns horizon so the Table 3 baseline is exactly "1000 TR steps at
  h = 10 ps",
* singular ``C`` (voltage-source pad rows), exercising the
  regularization-free solvers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.mna import MNASystem, assemble
from repro.circuit.netlist import Netlist
from repro.pdn.grid import PdnConfig, generate_power_grid
from repro.pdn.workloads import WorkloadSpec, attach_pulse_loads

__all__ = ["SuiteCase", "SUITE", "build_case", "case_names"]


@dataclass(frozen=True)
class SuiteCase:
    """Definition of one suite entry.

    Attributes
    ----------
    name:
        Case identifier (``pg1t`` ...).
    grid:
        PDN generator configuration.
    workload:
        Load-current workload configuration.
    t_end:
        Transient horizon (10 ns, as in the paper's Table 3 baseline).
    h_tr:
        Fixed TR baseline step (10 ps ⇒ 1000 steps).
    """

    name: str
    grid: PdnConfig
    workload: WorkloadSpec
    t_end: float = 1e-8
    h_tr: float = 1e-11

    @property
    def n_groups(self) -> int:
        """Natural group count (Table 3's "Group #")."""
        return self.workload.n_shapes


def _case(
    name: str, rows: int, cols: int, n_pads: int,
    n_sources: int, n_shapes: int, seed: int, grid_points: int = 150,
) -> SuiteCase:
    return SuiteCase(
        name=name,
        grid=PdnConfig(
            rows=rows, cols=cols, n_pads=n_pads,
            coarse_pitch=max(4, min(rows, cols) // 5), seed=seed,
        ),
        workload=WorkloadSpec(
            n_sources=n_sources, n_shapes=n_shapes, t_end=1e-8,
            time_grid_points=grid_points, seed=seed,
        ),
    )


#: The six scaled cases.  ``pg4t`` intentionally has few shape groups and
#: a coarse clock grid (the paper's ibmpg4t has a ~44-point GTS where the
#: other benchmarks exceed 140 points).
SUITE: dict[str, SuiteCase] = {
    "pg1t": _case("pg1t", 30, 34, 4, 800, 100, seed=101),
    "pg2t": _case("pg2t", 40, 44, 6, 1200, 100, seed=102),
    "pg3t": _case("pg3t", 50, 56, 8, 2000, 100, seed=103),
    "pg4t": _case("pg4t", 56, 60, 8, 2400, 15, seed=104, grid_points=40),
    "pg5t": _case("pg5t", 64, 70, 10, 3200, 100, seed=105),
    "pg6t": _case("pg6t", 72, 80, 12, 4000, 100, seed=106),
}


def case_names() -> list[str]:
    """Suite case names in canonical order."""
    return list(SUITE)


def build_netlist(case: SuiteCase | str) -> Netlist:
    """Generate the netlist of a suite case (grid + workload)."""
    if isinstance(case, str):
        case = SUITE[case]
    net = generate_power_grid(case.grid)
    attach_pulse_loads(net, case.workload)
    net.title = case.name
    return net


def build_case(case: SuiteCase | str) -> tuple[MNASystem, SuiteCase]:
    """Generate and assemble a suite case.

    Returns the MNA system and the (resolved) case definition.
    """
    if isinstance(case, str):
        case = SUITE[case]
    system = assemble(build_netlist(case))
    return system, case
