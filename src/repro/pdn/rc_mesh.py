"""Stiff RC mesh generator (paper Sec. 4.1, Table 1).

The paper evaluates the three Krylov flavours on RC meshes whose
stiffness — defined as ``Re(λ_min)/Re(λ_max)`` of ``-C⁻¹G`` — is dialled
"by changing the entries of C, G".  We reproduce that with a rectangular
resistor mesh holding a grounded capacitor at every node, where the two
spectral extremes are controlled independently through the capacitor
population:

* a fraction of nodes carries the small ``c_base / fast_ratio``
  (fast time constants ⇒ ``λ_min``, which sets the Krylov dimension the
  *standard* method needs: m ≈ h·|λ_min|),
* one anchor node carries the large ``c_base · slow_ratio``
  (slow time constant ⇒ ``λ_max``).

Stiffness therefore scales ≈ ``fast_ratio · slow_ratio``, while the mesh
stays strongly tied to ground — important because the ETD auxiliary
vectors involve ``G⁻¹``, and a nearly-floating ``G`` would poison them
with catastrophic cancellation (see DESIGN.md).

These meshes are deliberately *voltage-source-free*: ``C`` is
non-singular so MEXP (standard Krylov) can run at all, matching the
paper's Table 1 setup.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.netlist import Netlist
from repro.circuit.waveforms import Pulse

__all__ = ["stiff_rc_mesh", "mesh_node"]


def mesh_node(i: int, j: int) -> str:
    """Canonical node name of mesh position ``(i, j)``."""
    return f"n{i}_{j}"


def stiff_rc_mesh(
    rows: int,
    cols: int,
    fast_ratio: float = 10.0,
    slow_ratio: float = 1.0,
    resistance: float = 1.0,
    c_base: float = 1e-12,
    fast_fraction: float = 0.3,
    n_sources: int = 1,
    pulse_peak: float = 1e-3,
    seed: int = 2014,
    r_ground: float | None = None,
    sources_on_fast: bool = True,
) -> Netlist:
    """Build a stiff RC mesh with pulse current loads.

    Parameters
    ----------
    rows, cols:
        Mesh dimensions; the circuit has ``rows*cols`` nodes.
    fast_ratio:
        ``c_base / c_fast``; raises ``|λ_min|`` (the fast modes).  At the
        paper's h = 5ps, MEXP's basis requirement is ≈ ``h·|λ_min|``.
    slow_ratio:
        ``c_slow / c_base`` of the single anchor capacitor; lowers
        ``|λ_max|`` (the slow mode).  Stiffness grows ∝ this knob while
        the fast spectrum — and hence MEXP's basis size — stays put,
        which is exactly the paper's Table 1 progression.
    resistance:
        Mesh segment resistance in ohms.
    c_base:
        Median node capacitance in farads.
    fast_fraction:
        Fraction of nodes given the small capacitance.
    n_sources:
        Number of pulse current loads sprinkled over the mesh.
    pulse_peak:
        Load current amplitude in amps.
    seed:
        RNG seed for cap placement and source positions (deterministic).
    r_ground:
        Per-corner tie to ground (default ``resistance/10`` — strong,
        keeping ``G⁻¹`` well-scaled).
    sources_on_fast:
        Attach the loads to fast (small-cap) nodes.  A slope change then
        excites the fast modes directly, which is what forces the
        standard Krylov basis into the hundreds (Table 1's MEXP rows);
        loads on slow nodes would let every method converge early.

    Returns
    -------
    Netlist
        Current-driven RC mesh (no voltage sources ⇒ ``C`` invertible).
        Measure the achieved stiffness with
        :func:`repro.pdn.stiffness.stiffness`; Table 1 reports measured
        values, not the knobs.
    """
    if rows < 2 or cols < 2:
        raise ValueError("mesh needs at least 2x2 nodes")
    if fast_ratio < 1.0 or slow_ratio < 1.0:
        raise ValueError("fast_ratio and slow_ratio must be >= 1")
    if not (0.0 < fast_fraction <= 1.0):
        raise ValueError("fast_fraction must be in (0, 1]")

    rng = np.random.default_rng(seed)
    net = Netlist(
        f"stiff-rc-mesh-{rows}x{cols}-fast{fast_ratio:g}-slow{slow_ratio:g}"
    )

    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                net.add_resistor(
                    f"Rh{i}_{j}", mesh_node(i, j), mesh_node(i, j + 1), resistance
                )
            if i + 1 < rows:
                net.add_resistor(
                    f"Rv{i}_{j}", mesh_node(i, j), mesh_node(i + 1, j), resistance
                )

    # Capacitor population: mostly c_base, a fast subset, one slow anchor
    # at the mesh centre.
    c_fast = c_base / fast_ratio
    c_slow = c_base * slow_ratio
    anchor = (rows // 2) * cols + cols // 2
    fast_mask = rng.random(rows * cols) < fast_fraction
    for i in range(rows):
        for j in range(cols):
            pos = i * cols + j
            if pos == anchor:
                c = c_slow
            elif fast_mask[pos]:
                c = c_fast
            else:
                c = c_base
            net.add_capacitor(f"C{i}_{j}", mesh_node(i, j), "0", c)

    # Strong ground ties at all four corners: keeps G well-conditioned so
    # the regularization-free ETD vectors (G⁻¹-based) stay well-scaled.
    tie = r_ground if r_ground is not None else resistance / 10.0
    for k, (i, j) in enumerate(
        [(0, 0), (0, cols - 1), (rows - 1, 0), (rows - 1, cols - 1)]
    ):
        net.add_resistor(f"Rgnd{k}", mesh_node(i, j), "0", tie)

    # Pulse loads: the paper simulates [0, 0.3ns] with 5ps steps, so the
    # default bump fits comfortably inside that window.
    if sources_on_fast:
        candidates = np.flatnonzero(fast_mask)
        if candidates.size == 0:
            candidates = np.arange(rows * cols)
    else:
        candidates = np.arange(rows * cols)
    positions = rng.choice(
        candidates, size=min(n_sources, candidates.size), replace=False
    )
    for k, pos in enumerate(sorted(positions)):
        i, j = divmod(int(pos), cols)
        net.add_current_source(
            f"I{k}",
            mesh_node(i, j),
            "0",
            Pulse(
                v1=0.0, v2=pulse_peak,
                t_delay=5e-11, t_rise=2e-11, t_width=1e-10, t_fall=2e-11,
            ),
        )
    return net
