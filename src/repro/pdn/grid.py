"""Synthetic power-distribution-network generator (paper Fig. 2 substrate).

Stands in for the IBM power grid benchmarks (see DESIGN.md for the
substitution rationale).  The generated PDN has the structural features
MATEX exploits and the baselines stumble on:

* a fine rectangular metal mesh of wire resistances,
* an optional coarse upper metal layer strapped down through vias,
* VDD pads modelled as ideal voltage sources behind a pad resistance
  (their MNA branch rows make ``C`` **singular**, exercising the
  regularization-free path of Sec. 3.3.3),
* a grounded decoupling capacitor at every node with log-spread values
  (this spread is what makes real PDNs stiff),
* load current sources attached separately by
  :mod:`repro.pdn.workloads`.

All values are deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Netlist
from repro.pdn.rc_mesh import mesh_node

__all__ = ["PdnConfig", "generate_power_grid"]


@dataclass(frozen=True)
class PdnConfig:
    """Parameters of the synthetic PDN.

    Attributes
    ----------
    rows, cols:
        Fine-mesh dimensions (``rows*cols`` grid nodes).
    vdd:
        Supply voltage at the pads, volts.
    r_wire:
        Nominal fine-mesh segment resistance, ohms.
    r_via:
        Via resistance from the coarse layer to the fine mesh.
    r_pad:
        Series resistance between a pad voltage source and the grid.
    c_node:
        Median node decap, farads; values are log-normally spread.
    cap_spread_decades:
        Total log10 spread of node capacitances (drives stiffness).
    n_pads:
        Number of VDD pads, distributed around the perimeter.
    coarse_pitch:
        Every ``coarse_pitch``-th node hosts a coarse-layer strap;
        0 disables the second layer.
    l_package:
        Series package/bond-wire inductance per pad, henries; 0 disables
        it.  A realistic 0.1-1 nH makes the pad current paths RLC and
        the rail response ring at ``~1/(2π√(L·C))`` — the full
        descriptor-system path (inductor branch currents in the MNA
        unknowns) that the regularization-free solvers must handle.
    seed:
        RNG seed.
    """

    rows: int = 24
    cols: int = 24
    vdd: float = 1.8
    r_wire: float = 0.5
    r_via: float = 0.2
    r_pad: float = 0.05
    c_node: float = 2e-13
    cap_spread_decades: float = 2.0
    n_pads: int = 4
    coarse_pitch: int = 6
    l_package: float = 0.0
    seed: int = 2014

    def __post_init__(self):
        if self.rows < 2 or self.cols < 2:
            raise ValueError("grid needs at least 2x2 nodes")
        if self.n_pads < 1:
            raise ValueError("need at least one VDD pad")


def _perimeter_positions(rows: int, cols: int, count: int) -> list[tuple[int, int]]:
    """``count`` evenly spaced positions along the grid perimeter."""
    ring: list[tuple[int, int]] = []
    ring += [(0, j) for j in range(cols)]
    ring += [(i, cols - 1) for i in range(1, rows)]
    ring += [(rows - 1, j) for j in range(cols - 2, -1, -1)]
    ring += [(i, 0) for i in range(rows - 2, 0, -1)]
    step = max(1, len(ring) // count)
    return [ring[(k * step) % len(ring)] for k in range(count)]


def generate_power_grid(config: PdnConfig) -> Netlist:
    """Build the PDN netlist described by ``config``.

    Returns
    -------
    Netlist
        Grid with pads and decaps, but **no loads** — attach a workload
        with :func:`repro.pdn.workloads.attach_pulse_loads`.
    """
    rng = np.random.default_rng(config.seed)
    net = Netlist(
        f"pdn-{config.rows}x{config.cols}-pads{config.n_pads}"
    )
    rows, cols = config.rows, config.cols

    # Fine mesh with ±20% wire-resistance variation.
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                r = config.r_wire * rng.uniform(0.8, 1.2)
                net.add_resistor(f"Rh{i}_{j}", mesh_node(i, j), mesh_node(i, j + 1), r)
            if i + 1 < rows:
                r = config.r_wire * rng.uniform(0.8, 1.2)
                net.add_resistor(f"Rv{i}_{j}", mesh_node(i, j), mesh_node(i + 1, j), r)

    # Node decaps, log-normally spread around c_node.
    half = config.cap_spread_decades / 2.0
    for i in range(rows):
        for j in range(cols):
            c = config.c_node * 10.0 ** rng.uniform(-half, half)
            net.add_capacitor(f"C{i}_{j}", mesh_node(i, j), "0", c)

    # Coarse upper layer: low-resistance straps every `coarse_pitch`
    # rows/columns, tied to the mesh through vias.
    if config.coarse_pitch > 0:
        pitch = config.coarse_pitch
        coarse = [
            (i, j)
            for i in range(0, rows, pitch)
            for j in range(0, cols, pitch)
        ]
        for a, (i, j) in enumerate(coarse):
            net.add_resistor(
                f"Rvia{a}", f"s{i}_{j}", mesh_node(i, j), config.r_via
            )
        # Connect coarse nodes in a chain (ring-like strap network).
        for a in range(len(coarse) - 1):
            i0, j0 = coarse[a]
            i1, j1 = coarse[a + 1]
            net.add_resistor(
                f"Rstrap{a}", f"s{i0}_{j0}", f"s{i1}_{j1}", config.r_wire / 5.0
            )

    # VDD pads: ideal source behind a pad resistance (and optionally a
    # package inductance).  The source branch rows have no capacitive
    # stamp, so C is singular by construction.
    pads = _perimeter_positions(rows, cols, config.n_pads)
    for k, (i, j) in enumerate(pads):
        pad_node = f"pad{k}"
        net.add_voltage_source(f"Vdd{k}", pad_node, "0", config.vdd)
        if config.l_package > 0.0:
            bump_node = f"pkg{k}"
            net.add_inductor(f"Lpkg{k}", pad_node, bump_node,
                             config.l_package)
            net.add_resistor(f"Rpad{k}", bump_node, mesh_node(i, j),
                             config.r_pad)
        else:
            net.add_resistor(f"Rpad{k}", pad_node, mesh_node(i, j),
                             config.r_pad)

    return net
