"""What-if scenario generators for PDN workloads.

The realistic PDN verification workload is "one grid, hundreds of
what-if input patterns": the same power grid is re-simulated under many
switching-activity hypotheses — higher activity in one block, a quiet
corner, a global derating.  Because activity hypotheses rescale load
*amplitudes* without moving clock-aligned transition times, every
pattern is expressible as a :class:`~repro.plan.Scenario` of amplitude
scalings — exactly the class of scenarios a compiled
:class:`~repro.plan.SimulationPlan` executes without recompiling.

The generators here work on any assembled system with pulse/PWL current
loads: the Table-3 suite grids (:func:`repro.pdn.suite.build_case`) and
the synthesized ibmpg-style decks streamed through
:mod:`repro.circuit.ingest` alike.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mna import MNASystem
from repro.plan.scenario import Scenario

__all__ = ["load_pattern_scenarios", "corner_scenarios"]


def _varying_load_columns(system: MNASystem) -> list[int]:
    """Load-current input columns that actually switch."""
    return [
        k for k in system.current_input_indices
        if not system.waveforms[k].is_constant()
    ]


def load_pattern_scenarios(
    system: MNASystem,
    n: int = 8,
    seed: int = 2014,
    spread: float = 0.5,
) -> list[Scenario]:
    """``n`` random switching-activity patterns over a system's loads.

    Each scenario rescales every varying load current by an independent
    factor drawn uniformly from ``[1 - spread, 1 + spread]`` — the
    "different blocks switch with different intensity" workload.  All
    factors stay positive (``spread`` must be < 1), so no source ever
    degenerates to a constant and every scenario is valid against a
    compiled plan of the base system.

    Deterministic given ``seed`` — and deterministic *across platforms*:
    the factors come from one ``np.random.default_rng(seed)`` (PCG64),
    whose ``uniform`` stream is specified bit-exactly by NumPy
    independent of OS and word size, so ``repro sweep --scenarios
    random:<n>:<seed>`` names the same workload everywhere
    (``tests/test_cli.py`` pins the stream).  Seeds must be
    non-negative (``default_rng`` rejects negative ones).  Usable for
    the Table-3 suite cases and streamed ibmpg-style decks alike.
    """
    if not 0.0 < spread < 1.0:
        raise ValueError(f"spread must be in (0, 1), got {spread!r}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    cols = _varying_load_columns(system)
    if not cols:
        raise ValueError(
            "system has no varying load-current inputs to rescale"
        )
    rng = np.random.default_rng(seed)
    scenarios = []
    for i in range(n):
        factors = rng.uniform(1.0 - spread, 1.0 + spread, size=len(cols))
        scenarios.append(
            Scenario(
                name=f"pattern{i}",
                scales={c: float(f) for c, f in zip(cols, factors)},
            )
        )
    return scenarios


def corner_scenarios(
    system: MNASystem,
    deratings: tuple[float, ...] = (0.5, 0.8, 1.0, 1.2, 1.5),
) -> list[Scenario]:
    """Uniform activity-corner scenarios (every load scaled alike).

    The classic sign-off sweep: bound the rail droop across global
    activity corners.  ``1.0`` produces the baseline scenario (executed
    from the plan's own pre-computed DC state).
    """
    cols = _varying_load_columns(system)
    if not cols:
        raise ValueError(
            "system has no varying load-current inputs to rescale"
        )
    scenarios = []
    for d in deratings:
        if d <= 0.0:
            raise ValueError(f"derating factors must be positive, got {d}")
        if d == 1.0:  # repro: allow[RPL005] derating exactly 1.0 means the untouched nominal corner
            scenarios.append(Scenario(name="corner-nominal"))
        else:
            scenarios.append(
                Scenario(
                    name=f"corner-{d:g}x",
                    scales={c: float(d) for c in cols},
                )
            )
    return scenarios
