"""Switching-current workload generation (paper Secs. 2.1, 3.1, 4.3).

PDN load currents are "often characterised as pulse inputs"; the
decomposition of Sec. 3.1 relies on many sources *sharing* their bump
shape ``(t_delay, t_rise, t_width, t_fall)``.  The IBM benchmarks have
tens of thousands of sources falling into ~100 such shapes (Table 3's
"Group #").

:func:`make_bump_library` draws a library of distinct shapes;
:func:`attach_pulse_loads` sprinkles current sources over grid nodes,
each using one library shape with its own amplitude (amplitude does not
affect grouping — the LTS are amplitude-independent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Netlist
from repro.circuit.waveforms import BumpShape, Pulse

__all__ = ["WorkloadSpec", "make_bump_library", "attach_pulse_loads"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Workload parameters.

    Attributes
    ----------
    n_sources:
        Number of load current sources to attach.
    n_shapes:
        Size of the bump-shape library (the natural group count, i.e.
        the number of distributed computing nodes in Table 3).
    t_end:
        Simulation horizon the bumps must fit into.
    time_grid_points:
        Size of the shared "clock grid" the bump transition times are
        drawn from.  Switching activity in a real chip aligns to clock
        edges, so distinct bump shapes *share* transition times: the
        IBM benchmarks have ~100 groups yet only ~150 global transition
        spots (~44 for ibmpg4t).  The GTS size is ≈ this grid size, not
        4×n_shapes.
    peak_min, peak_max:
        Uniform range of load amplitudes, amps.
    seed:
        RNG seed.
    """

    n_sources: int = 200
    n_shapes: int = 20
    t_end: float = 1e-8
    time_grid_points: int = 150
    peak_min: float = 1e-4
    peak_max: float = 5e-3
    seed: int = 2014

    def __post_init__(self):
        if self.n_shapes < 1 or self.n_sources < 1:
            raise ValueError("need at least one shape and one source")
        if self.n_sources < self.n_shapes:
            raise ValueError("n_sources must be >= n_shapes")
        if self.time_grid_points < 4:
            raise ValueError("time grid needs at least 4 points")


def make_bump_library(spec: WorkloadSpec) -> list[BumpShape]:
    """Draw ``n_shapes`` distinct bump shapes on a shared clock grid.

    Each shape is four increasing points ``t0 < t1 < t2 < t3`` sampled
    from a uniform grid spanning ``[2%, 85%]`` of the horizon, giving
    ``delay = t0``, ``rise = t1-t0``, ``width = t2-t1``, ``fall = t3-t2``.
    Because every transition lands on the grid, the union of transition
    spots across the library stays ≈ ``time_grid_points`` no matter how
    many distinct shapes exist — the clock-aligned switching structure
    the paper's decomposition exploits.
    """
    rng = np.random.default_rng(spec.seed)
    grid = np.linspace(0.02 * spec.t_end, 0.85 * spec.t_end, spec.time_grid_points)
    max_quads = spec.time_grid_points * (spec.time_grid_points - 1) // 2
    if spec.n_shapes > max_quads:
        raise ValueError(
            f"cannot draw {spec.n_shapes} distinct shapes from a "
            f"{spec.time_grid_points}-point grid"
        )
    shapes: dict[tuple, BumpShape] = {}
    guard = 0
    while len(shapes) < spec.n_shapes:
        guard += 1
        if guard > 1000 * spec.n_shapes:
            raise RuntimeError("could not draw enough distinct bump shapes")
        idx = np.sort(rng.choice(spec.time_grid_points, size=4, replace=False))
        t0, t1, t2, t3 = (float(grid[i]) for i in idx)
        shape = BumpShape(
            t_delay=t0, t_rise=t1 - t0, t_fall=t3 - t2, t_width=t2 - t1
        )
        shapes.setdefault(shape.key(), shape)
    return list(shapes.values())[: spec.n_shapes]


def attach_pulse_loads(
    net: Netlist,
    spec: WorkloadSpec,
    nodes: list[str] | None = None,
) -> list[BumpShape]:
    """Attach pulse current sources to a PDN netlist.

    Parameters
    ----------
    net:
        The grid to load (modified in place).
    spec:
        Workload parameters.
    nodes:
        Candidate attachment nodes; defaults to every existing non-pad
        node.  Sources draw current from the node to ground (positive
        pulse = switching logic pulling the rail down).

    Returns
    -------
    list[BumpShape]
        The shape library used — its length is the natural group count.
    """
    rng = np.random.default_rng(spec.seed + 1)
    library = make_bump_library(spec)

    if nodes is None:
        nodes = [n for n in net.node_names() if not n.startswith(("pad", "s"))]
    if not nodes:
        raise ValueError("no candidate nodes to attach loads to")

    # Every shape gets at least one source; the rest are drawn uniformly.
    shape_of_source = list(range(len(library)))
    shape_of_source += list(
        rng.integers(0, len(library), size=spec.n_sources - len(library))
    )
    positions = rng.choice(len(nodes), size=spec.n_sources, replace=True)

    for k in range(spec.n_sources):
        shape = library[shape_of_source[k]]
        peak = float(rng.uniform(spec.peak_min, spec.peak_max))
        net.add_current_source(
            f"Iload{k}",
            nodes[int(positions[k])],
            "0",
            Pulse(
                v1=0.0, v2=peak,
                t_delay=shape.t_delay, t_rise=shape.t_rise,
                t_width=shape.t_width, t_fall=shape.t_fall,
            ),
        )
    return library
