"""PDN substrate: grid/mesh generators, workloads, benchmark suite."""

from repro.pdn.grid import PdnConfig, generate_power_grid
from repro.pdn.ibmpg import synthesize_ibmpg
from repro.pdn.rc_mesh import mesh_node, stiff_rc_mesh
from repro.pdn.scenarios import corner_scenarios, load_pattern_scenarios
from repro.pdn.stiffness import eigenvalue_extremes, stiffness
from repro.pdn.suite import SUITE, SuiteCase, build_case, build_netlist, case_names
from repro.pdn.workloads import WorkloadSpec, attach_pulse_loads, make_bump_library

__all__ = [
    "PdnConfig",
    "SUITE",
    "SuiteCase",
    "WorkloadSpec",
    "attach_pulse_loads",
    "build_case",
    "build_netlist",
    "case_names",
    "corner_scenarios",
    "eigenvalue_extremes",
    "generate_power_grid",
    "load_pattern_scenarios",
    "make_bump_library",
    "mesh_node",
    "stiffness",
    "stiff_rc_mesh",
    "synthesize_ibmpg",
]
