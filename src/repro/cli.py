"""Command-line interface: simulate SPICE-dialect netlists with MATEX.

Usage (after ``pip install -e .``)::

    python -m repro.cli info grid.spice
    python -m repro.cli dc grid.spice
    python -m repro.cli simulate grid.spice --t-end 10n --method r-matex \
        --nodes n0_0 n5_5 --out waves.csv
    python -m repro.cli simulate grid.spice --t-end 10n --method tr \
        --h 10p --out waves.csv
    python -m repro.cli simulate grid.spice --t-end 10n --distributed \
        --out waves.npz
    python -m repro.cli run --netlist ibmpg_like.spice --distributed \
        --batch auto
    python -m repro.cli sweep --netlist ibmpg_like.spice \
        --scenarios patterns.json
    python -m repro.cli sweep --netlist ibmpg_like.spice \
        --scenarios random:1000:7 --rom 0.05

``simulate`` loads the deck through the in-memory object parser;
``run`` streams it through :mod:`repro.circuit.ingest` — the
industrial-scale path for ibmpg-style decks with 100k+ nodes, which
never materialises per-element objects and defaults ``--t-end`` to the
deck's ``.tran`` stop time.  ``sweep`` compiles the deck **once** into
a :class:`~repro.plan.SimulationPlan` and executes many what-if input
scenarios against it in one :class:`~repro.plan.Session` (persistent
workers, stacked lockstep marches — see :mod:`repro.plan`); scenarios
come from a JSON spec file or ``random:<n>[:seed]`` synthetic load
patterns, and ``--rom tol[:q_max]`` answers them from a rational-Krylov
reduced-order model with a certified posterior bound and transparent
per-scenario full-order fallback (:mod:`repro.rom`).

``--method`` resolves through the :mod:`repro.engine` integrator
registry — MATEX flavours (``r-matex``, ``i-matex``, ``mexp``) and the
traditional baselines (``tr``, ``be``, ``fe`` with ``--h``;
``tr-adaptive``) are all drop-ins.  ``--sink`` selects where the
trajectory is recorded (``memory``, ``downsample:<stride>``,
``npz:<path>`` for bounded-RAM streaming).

Times accept SPICE suffixes (``10n``, ``50p``).  Output formats: ``.csv``
(time + selected node voltages) and ``.npz`` (full state trajectory).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

import numpy as np

from repro.analysis.droop import droop_report
from repro.analysis.lint.cli import add_lint_arguments, run_lint
from repro.baselines.fixed_step import dc_operating_point
from repro.circuit.ingest import ingest_file
from repro.circuit.mna import assemble
from repro.circuit.parser import parse_file, parse_value
from repro.core.options import SolverOptions
from repro.core.results import TransientResult
from repro.dist.scheduler import MatexScheduler
from repro.engine import (
    NpzStreamSink,
    available_integrators,
    get_integrator,
    make_sink,
)
from repro.linalg.lu import FACTORIZATION_CACHE, parse_byte_size
from repro.linalg.triangular import KERNEL_MODES, set_kernel_mode

__all__ = ["main", "build_parser"]


def _keyword_or_posint(value: str, keywords: tuple[str, ...], noun: str):
    """argparse type body: one of ``keywords``, or a positive integer."""
    if value in keywords:
        return value
    try:
        width = int(value)
    except ValueError:
        expected = " or ".join(
            (", ".join(f"'{k}'" for k in keywords), "a positive integer")
        )
        raise argparse.ArgumentTypeError(
            f"expected {expected}, got {value!r}"
        ) from None
    if width < 1:
        raise argparse.ArgumentTypeError(
            f"{noun} must be >= 1, got {width}"
        )
    return width


def _batch_policy(value: str):
    """argparse type for ``--batch``: off | auto | positive int."""
    return _keyword_or_posint(value, ("off", "auto"), "batch width")


def _stack_policy(value: str):
    """argparse type for ``--stack``: auto | positive int."""
    return _keyword_or_posint(value, ("auto",), "stack size")


def _byte_size(value: str) -> int:
    """argparse type for byte budgets with K/M/G suffixes."""
    try:
        size = parse_byte_size(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte count (K/M/G suffixes ok), got {value!r}"
        ) from None
    if size < 1:
        raise argparse.ArgumentTypeError(
            f"byte budget must be >= 1, got {value!r}"
        )
    return size


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and doc generation)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="MATEX transient simulation of PDN netlists.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="netlist summary and GTS statistics")
    info.add_argument("netlist", type=Path)
    info.add_argument("--t-end", default="10n",
                      help="horizon for transition-spot statistics")
    _add_cache_options(info)

    dc = sub.add_parser("dc", help="DC operating point")
    dc.add_argument("netlist", type=Path)
    dc.add_argument("--nodes", nargs="*", default=None,
                    help="nodes to print (default: summary only)")

    sim = sub.add_parser("simulate", help="transient simulation")
    sim.add_argument("netlist", type=Path)
    sim.add_argument("--t-end", required=True,
                     help="simulation horizon (SPICE suffixes ok)")
    _add_sim_options(sim)

    run = sub.add_parser(
        "run",
        help="stream an ibmpg-style deck (100k+ nodes) and simulate",
        description="Transient simulation through the memory-bounded "
                    "streaming ingester (repro.circuit.ingest): the deck "
                    "is stamped directly into sparse matrices without "
                    "per-element objects.",
    )
    run.add_argument("--netlist", type=Path, required=True,
                     help="ibmpg-style SPICE deck to stream")
    run.add_argument("--t-end", default=None,
                     help="simulation horizon (SPICE suffixes ok); "
                          "defaults to the deck's .tran stop time")
    _add_sim_options(run)

    sweep = sub.add_parser(
        "sweep",
        help="compile one plan, execute many what-if scenarios",
        description="Scenario sweep through repro.plan: the deck is "
                    "streamed and compiled once (decomposition, DC, "
                    "schedules, factorisation priming), then every "
                    "scenario executes against the compiled plan in one "
                    "session — persistent workers, stacked lockstep "
                    "marches, bit-identical to independent cold runs.",
    )
    sweep.add_argument("--netlist", type=Path, required=True,
                       help="ibmpg-style SPICE deck to stream")
    sweep.add_argument("--scenarios", required=True,
                       help="scenario source: a JSON spec file (see "
                            "repro.plan.load_scenarios_json) or "
                            "random:<n>[:seed] for n synthetic "
                            "switching-activity patterns")
    sweep.add_argument("--t-end", default=None,
                       help="simulation horizon (SPICE suffixes ok); "
                            "defaults to the deck's .tran stop time")
    sweep.add_argument(
        "--method", default="r-matex",
        help="MATEX integrator (r-matex | i-matex | mexp)")
    sweep.add_argument("--gamma", default="1e-10",
                       help="rational-Krylov shift")
    sweep.add_argument("--eps", type=float, default=1e-7,
                       help="relative Arnoldi error budget")
    sweep.add_argument("--decomposition", default="bump",
                       choices=["bump", "source", "bump-split"])
    sweep.add_argument(
        "--batch", default="auto", type=_batch_policy,
        help="lockstep policy (default auto: one block march per "
             "stacked submission)")
    sweep.add_argument(
        "--stack", default="auto", type=_stack_policy,
        help="scenarios per executor submission: auto (default, whole "
             "sweep in one stacked lockstep march) or an integer to "
             "bound resident node trajectories")
    sweep.add_argument(
        "--processes", type=int, default=0,
        help="run node tasks on a persistent pool of this many worker "
             "processes (0 = in-process serial emulation)")
    sweep.add_argument(
        "--rom", default=None, metavar="TOL[:QMAX]",
        help="answer scenarios from a reduced-order model: accept a "
             "scenario when its posterior relative error bound is "
             "<= TOL (QMAX caps the reduced dimension, default 200); "
             "scenarios above the bound transparently re-run "
             "full-order")
    sweep.add_argument("--out-dir", type=Path, default=None,
                       help="write one <scenario>.npz trajectory per "
                            "scenario into this directory")
    _add_supervision_options(sweep)
    _add_cache_options(sweep)

    serve = sub.add_parser(
        "serve",
        help="long-lived plan-server daemon over a local socket",
        description="Compile the deck once and serve run/sweep jobs "
                    "from concurrent clients over a stream socket "
                    "(repro.serve): bounded job queue, per-job "
                    "deadlines, retry-supervised executors, draining "
                    "SIGTERM shutdown.  Results return as SHA-256 "
                    "digests plus summary scalars.",
    )
    serve.add_argument("--netlist", type=Path, required=True,
                       help="ibmpg-style SPICE deck to stream and "
                            "preload as the 'default' plan")
    serve.add_argument("--socket", type=Path, required=True,
                       help="stream-socket path to listen on")
    serve.add_argument("--plan-name", default="default",
                       help="catalogue name of the preloaded plan")
    serve.add_argument("--t-end", default=None,
                       help="simulation horizon (SPICE suffixes ok); "
                            "defaults to the deck's .tran stop time")
    serve.add_argument(
        "--method", default="r-matex",
        help="MATEX integrator (r-matex | i-matex | mexp)")
    serve.add_argument("--gamma", default="1e-10",
                       help="rational-Krylov shift")
    serve.add_argument("--eps", type=float, default=1e-7,
                       help="relative Arnoldi error budget")
    serve.add_argument("--decomposition", default="bump",
                       choices=["bump", "source", "bump-split"])
    serve.add_argument(
        "--batch", default="auto", type=_batch_policy,
        help="lockstep policy for the preloaded plan (default auto)")
    serve.add_argument(
        "--stack", default="auto", type=_stack_policy,
        help="scenarios per executor submission for sweep jobs")
    serve.add_argument(
        "--processes", type=int, default=0,
        help="persistent worker processes per plan (0 = in-process)")
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="bounded job-queue depth; a full queue rejects "
             "immediately with kind=busy (default 16)")
    serve.add_argument(
        "--rom", default=None, metavar="TOL[:QMAX]",
        help="bake a reduced-order model into the preloaded plan "
             "(see sweep --rom)")
    _add_supervision_options(serve, serving=True)
    _add_cache_options(serve)

    lint = sub.add_parser(
        "lint",
        help="project-invariant static analysis (RPL rules)",
        description="Lint source trees against the project invariants: "
                    "determinism (RPL001-RPL005), fork/shm lifecycle "
                    "safety (RPL010-RPL012), message picklability "
                    "(RPL020-RPL021) and async hygiene (RPL030).  "
                    "Exit 0 clean, 1 findings, 2 usage error.",
    )
    add_lint_arguments(lint)
    return parser


def _add_supervision_options(
    p: argparse.ArgumentParser, serving: bool = False
) -> None:
    """Retry/timeout/backoff/fault knobs (sweep --processes and serve).

    ``sweep`` defaults every knob to ``None`` — no flag, no policy, the
    historical raise-through executor.  ``serve`` defaults to a live
    policy (2 retries, 50 ms backoff): a daemon exists to stay up.
    """
    p.add_argument(
        "--retries", type=int, default=2 if serving else None,
        help="max retries per failed task batch (bounded self-heal; "
             "exhaustion raises a structured JobError)"
             + ("; default 2" if serving else
                "; default: no retry policy, failures raise through"))
    p.add_argument(
        "--job-timeout", type=float, default=120.0 if serving else None,
        help=("per-job deadline in seconds: queued jobs past it are "
              "rejected unrun (default 120)" if serving else
              "per-batch wall-clock budget in seconds; expiry "
              "force-kills the hung workers and counts as a failure"))
    p.add_argument(
        "--backoff", type=float, default=0.05 if serving else None,
        help="base delay before the first retry, seconds (doubled per "
             "retry, deterministically jittered); default 0.05")
    p.add_argument(
        "--degrade-after", type=int, default=0 if serving else None,
        help="after this many consecutive pool failures, degrade to "
             "in-process execution with a warning instead of failing "
             "(0 = never degrade)")
    p.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault injection for chaos testing: "
             "comma-separated kind@task[:arg] directives "
             "(kill@N | delay@N:sec | shmfail@N | evict@N), each "
             "firing exactly once; also REPRO_FAULTS")


def _retry_policy_from_args(args, serving: bool = False):
    """Build the RetryPolicy encoded by the supervision flags.

    Returns ``None`` when no flag was given on a sweep (legacy
    raise-through executor); ``serve`` always builds one (its defaults
    are live).  Range errors surface as usage errors via ``_UsageError``.
    """
    from repro.dist.supervision import RetryPolicy

    knobs = (args.retries, args.job_timeout, args.backoff,
             args.degrade_after)
    if not serving and all(k is None for k in knobs):
        return None
    try:
        return RetryPolicy(
            max_retries=args.retries if args.retries is not None else 2,
            # serve's --job-timeout is the queue deadline, enforced by
            # the daemon itself; the per-batch budget stays unbounded.
            timeout=None if serving else args.job_timeout,
            backoff=args.backoff if args.backoff is not None else 0.05,
            degrade_after=args.degrade_after or 0,
        )
    except ValueError as exc:
        raise _UsageError(str(exc)) from None


def _add_cache_options(p: argparse.ArgumentParser) -> None:
    """Factorisation-cache residency flags (shared by all commands)."""
    p.add_argument(
        "--factor-cache-entries", type=int, default=None,
        help="max resident LU factorisations in the process-wide cache "
             "(default 32, or REPRO_FACTOR_CACHE_ENTRIES)")
    p.add_argument(
        "--factor-cache-bytes", type=_byte_size, default=None,
        help="max bytes of resident LU factors, K/M/G suffixes ok "
             "(default 256M, or REPRO_FACTOR_CACHE_BYTES)")
    p.add_argument(
        "--triangular-kernel", default=None,
        choices=sorted(KERNEL_MODES),
        help="substitution kernel: level (default — level-scheduled "
             "multi-RHS lockstep, per-column bit-identical to scalar "
             "solves) | column (exported scalar path per column, same "
             "bits) | legacy (SuperLU's own solves); also "
             "REPRO_TRIANGULAR_KERNEL")


def _add_sim_options(sim: argparse.ArgumentParser) -> None:
    """Simulation options shared by ``simulate`` and ``run``."""
    sim.add_argument(
        "--method", default="r-matex",
        help="integrator, resolved via the registry: "
             + " | ".join(available_integrators())
             + " (default r-matex; paper aliases like rmatex work too)")
    sim.add_argument("--h", default=None,
                     help="fixed step size for tr/be/fe (SPICE suffixes ok)")
    sim.add_argument("--gamma", default="1e-10",
                     help="rational-Krylov shift")
    sim.add_argument("--eps", type=float, default=1e-7,
                     help="relative Arnoldi error budget")
    sim.add_argument(
        "--sink", default="memory",
        help="trajectory sink: memory (default) | downsample:<stride> | "
             "npz:<path> (streams states to disk, bounded RAM)")
    sim.add_argument("--distributed", action="store_true",
                     help="use the bump-decomposition scheduler "
                          "(MATEX methods only)")
    sim.add_argument("--decomposition", default="bump",
                     choices=["bump", "source", "bump-split"])
    sim.add_argument(
        "--batch", default="off", type=_batch_policy,
        help="block-batching policy for --distributed: off (reference "
             "per-node marches, default) | auto (one lockstep block "
             "march, bit-identical and several times faster) | <int> "
             "(fixed lockstep width per worker)")
    sim.add_argument("--nodes", nargs="*", default=None,
                     help="node voltages to export (default: all)")
    sim.add_argument("--out", type=Path, default=None,
                     help="output file (.csv or .npz)")
    sim.add_argument("--vdd", default=None,
                     help="nominal rail voltage: prints a droop report")
    _add_cache_options(sim)


def _load(path: Path):
    system = assemble(parse_file(path))
    return system


def _cache_stats_line() -> str:
    """Human-readable digest of the process-wide factorisation cache."""
    cs = FACTORIZATION_CACHE.stats()
    line = (
        f"factor cache: {cs['hits']} hits, {cs['misses']} misses, "
        f"{cs['evictions']} evictions; {cs['entries']} entries resident "
        f"({cs['resident_bytes'] / 2**20:.1f} MiB), limits "
        f"{cs['max_entries']} entries / {cs['max_bytes'] / 2**20:.0f} MiB"
    )
    ext = cs.get("external_bytes", 0)
    if ext:
        line += f"; external models {ext / 2**20:.1f} MiB"
    return line


def _cmd_info(args) -> int:
    system = _load(args.netlist)
    t_end = parse_value(args.t_end)
    print(system.netlist.summary())
    print(f"C singular: {system.is_c_singular()}")
    gts = system.global_transition_spots(t_end)
    print(f"global transition spots in [0, {t_end:g}]: {len(gts)}")
    scheduler = MatexScheduler(system)
    groups = scheduler.groups()
    print(f"bump groups (natural node count): {len(groups)}")
    print(_cache_stats_line())
    return 0


def _cmd_dc(args) -> int:
    system = _load(args.netlist)
    x, _ = dc_operating_point(system)
    rails = x[: system.netlist.n_nodes]
    print(f"DC solved: {len(rails)} node voltages, "
          f"min {rails.min():.6g} V, max {rails.max():.6g} V")
    for node in args.nodes or []:
        print(f"  {node}: {system.node_voltage(x, node):.6g} V")
    return 0


def _export(result: TransientResult, nodes, out: Path) -> None:
    system = result.system
    if out.suffix == ".npz":
        np.savez_compressed(
            out,
            times=result.times,
            states=result.states,
            node_names=np.array(system.netlist.node_names()),
        )
        return
    if out.suffix != ".csv":
        raise ValueError(f"unsupported output format {out.suffix!r}; "
                         f"use .csv or .npz")
    names = list(nodes) if nodes else list(system.netlist.node_names())
    with open(out, "w") as f:
        f.write("time," + ",".join(names) + "\n")
        for i, t in enumerate(result.times):
            row = [f"{t:.9e}"]
            for name in names:
                idx = system.netlist.node_index(name)
                row.append(f"{result.states[i, idx]:.9e}")
            f.write(",".join(row) + "\n")


def _usage_error(message: str) -> int:
    """Print a usage-style error (argparse convention) and return 2."""
    print(f"repro.cli: error: {message}", file=sys.stderr)
    return 2


class _UsageError(Exception):
    """An argv problem reported as a usage message, not a traceback."""


def _resolve_plan(args):
    """Validate everything derivable from argv alone, before the load.

    A streamed 100k-node deck takes seconds to minutes to ingest; an
    unknown method, a contradictory flag combination or an unparseable
    numeric option must fail before that work, not after.  Returns the
    resolved ``(integrator_cls, matex_method)`` plan so the simulation
    body never re-derives (and cannot drift from) these checks.
    ``_UsageError`` exits with a usage message; ValueErrors keep the
    historical raw-raise behaviour the seed tests assert via ``main()``.
    """
    cls = get_integrator(args.method)  # unknown method raises here
    matex_method = getattr(cls, "krylov_method", None)
    if args.batch != "off" and not args.distributed:
        raise _UsageError(
            f"--batch {args.batch} only applies to --distributed runs"
        )
    if args.distributed:
        if matex_method is None:
            raise ValueError(
                f"--distributed needs a MATEX method (r-matex, i-matex, "
                f"mexp), got {args.method!r}"
            )
        if args.sink != "memory":
            raise ValueError(
                "--sink is not supported with --distributed: the "
                "superposition step needs every node's full trajectory "
                "in memory"
            )
    else:
        needs_h = getattr(cls, "needs_step_size", False)
        if args.h is not None and not needs_h:
            raise ValueError(
                f"integrator {cls.name!r} chooses its own time axis; "
                f"--h only applies to fixed-grid methods "
                f"(tr, be, fe)"
            )
        if needs_h and args.h is None:
            raise ValueError(
                f"integrator {cls.name!r} marches a fixed grid; "
                f"pass the step size with --h (e.g. --h 10p)"
            )
    # Numeric options fail on argv content, not after the deck load.
    for value in (args.gamma, args.h, args.vdd, args.t_end):
        if value is not None:
            parse_value(value)
    return cls, matex_method


def _cmd_simulate(args) -> int:
    try:
        plan = _resolve_plan(args)
    except _UsageError as exc:
        return _usage_error(str(exc))
    system = _load(args.netlist)
    return _simulate_system(system, parse_value(args.t_end), args, plan)


def _cmd_run(args) -> int:
    try:
        plan = _resolve_plan(args)
    except _UsageError as exc:
        return _usage_error(str(exc))
    res = ingest_file(args.netlist)
    print(res.stats.summary())
    if args.t_end is not None:
        t_end = parse_value(args.t_end)
    elif res.stats.tran_stop is not None:
        t_end = res.stats.tran_stop
        print(f"t_end = {t_end:g} s (from the deck's .tran directive)")
    else:
        return _usage_error(
            f"deck {args.netlist} has no .tran directive; pass --t-end"
        )
    return _simulate_system(res.system, t_end, args, plan)


def _simulate_system(system, t_end: float, args, plan) -> int:
    """Run a :func:`_resolve_plan`-validated plan on a loaded system."""
    cls, matex_method = plan

    if args.distributed:
        sink = None
        opts = SolverOptions(
            method=matex_method, gamma=parse_value(args.gamma),
            eps_rel=args.eps,
        )
        dres = MatexScheduler(
            system, opts, decomposition=args.decomposition, batch=args.batch
        ).run(t_end)
        result = dres.result
        print(f"distributed: {dres.n_nodes} nodes, "
              f"trmatex {dres.tr_matex * 1e3:.1f} ms, "
              f"tr_total {dres.tr_total * 1e3:.1f} ms, "
              f"LU cache hits {dres.factor_cache_hits}")
    else:
        sink = make_sink(args.sink)
        if matex_method is not None:
            integrator = cls(
                system, gamma=parse_value(args.gamma), eps_rel=args.eps
            )
        elif getattr(cls, "needs_step_size", False):
            integrator = cls(system, parse_value(args.h))
        else:
            integrator = cls(system)  # adaptive: owns its step policy
        result = integrator.simulate(t_end, sink=sink)
        print(f"single node [{cls.name}]: {result.stats.summary()}")

    if isinstance(sink, NpzStreamSink):
        print(f"states streamed to {sink.path}")

    if args.vdd is not None:
        report = droop_report(result, vdd=parse_value(args.vdd))
        print(report.summary())

    if args.out is not None:
        _export(result, args.nodes, args.out)
        print(f"wrote {args.out}")
    return 0


def _parse_scenario_source(spec: str):
    """Validate ``--scenarios`` from argv alone (before the deck load).

    Returns ``("random", n, seed)`` or ``("file", Path)``.
    """
    if spec.startswith("random:"):
        parts = spec.split(":")
        try:
            n = int(parts[1])
            seed = int(parts[2]) if len(parts) > 2 else 2014
            # seed >= 0: numpy's default_rng rejects negative seeds,
            # but only at scenario-construction time — *after* the
            # deck load.  Fail on argv content instead.
            if len(parts) > 3 or n < 1 or seed < 0:
                raise ValueError
        except (ValueError, IndexError):
            raise _UsageError(
                f"--scenarios random spec must be random:<n>[:seed] "
                f"with n >= 1 and seed >= 0, got {spec!r}"
            ) from None
        return ("random", n, seed)
    path = Path(spec)
    if not path.exists():
        raise _UsageError(f"scenario spec file {spec!r} does not exist")
    return ("file", path)


def _parse_rom(spec: str):
    """Validate ``--rom TOL[:QMAX]`` from argv alone.

    Returns a :class:`repro.rom.RomConfig` (whose own ``__post_init__``
    range checks are surfaced as usage errors too).
    """
    from repro.rom import RomConfig

    parts = spec.split(":")
    try:
        tol = float(parts[0])
        if len(parts) > 2:
            raise ValueError
        if len(parts) == 2:
            return RomConfig(tol=tol, q_max=int(parts[1]))
        return RomConfig(tol=tol)
    except ValueError:
        raise _UsageError(
            f"--rom spec must be TOL[:QMAX] with TOL > 0 and "
            f"QMAX >= 1, got {spec!r}"
        ) from None


def _cmd_sweep(args) -> int:
    from repro.pdn.scenarios import load_pattern_scenarios
    from repro.plan import (
        Session,
        SimulationPlan,
        load_scenarios_json,
    )

    # argv-only validation before the (potentially minutes-long) load.
    try:
        cls = get_integrator(args.method)
        if getattr(cls, "krylov_method", None) is None:
            raise _UsageError(
                f"sweep needs a MATEX method (r-matex, i-matex, mexp), "
                f"got {args.method!r}"
            )
        source = _parse_scenario_source(args.scenarios)
        rom_cfg = _parse_rom(args.rom) if args.rom is not None else None
        if args.processes < 0:
            raise _UsageError(
                f"--processes must be >= 0, got {args.processes}"
            )
        retry = _retry_policy_from_args(args)
        if args.faults is not None:
            from repro import faults as _faults

            try:
                _faults.install(args.faults)
            except _faults.FaultError as exc:
                raise _UsageError(str(exc)) from None
            print(f"fault injection active: {args.faults}")
    except _UsageError as exc:
        return _usage_error(str(exc))
    for value in (args.gamma, args.t_end):
        if value is not None:
            parse_value(value)
    # A killed sweep (Ctrl-C, SIGTERM) must not leak /dev/shm segments.
    from repro.dist.shm import install_signal_sweep

    install_signal_sweep()

    res = ingest_file(args.netlist)
    print(res.stats.summary())
    if args.t_end is not None:
        t_end = parse_value(args.t_end)
    elif res.stats.tran_stop is not None:
        t_end = res.stats.tran_stop
        print(f"t_end = {t_end:g} s (from the deck's .tran directive)")
    else:
        return _usage_error(
            f"deck {args.netlist} has no .tran directive; pass --t-end"
        )
    system = res.system

    if source[0] == "random":
        scenarios = load_pattern_scenarios(
            system, n=source[1], seed=source[2]
        )
    else:
        scenarios = load_scenarios_json(source[1], system)
    print(f"{len(scenarios)} scenarios "
          f"({', '.join(s.name for s in scenarios[:4])}"
          f"{', ...' if len(scenarios) > 4 else ''})")

    opts = SolverOptions(
        method=cls.krylov_method, gamma=parse_value(args.gamma),
        eps_rel=args.eps,
    )
    plan = SimulationPlan(
        system, opts, t_end=t_end,
        decomposition=args.decomposition, batch=args.batch,
    )
    compiled = plan.compile(prime=args.processes == 0, rom=rom_cfg)
    print(compiled.summary())

    import time as _time
    t0 = _time.perf_counter()
    executor = None
    if args.processes:
        from repro.dist.executors import MultiprocessExecutor

        executor = MultiprocessExecutor(
            system, opts, max_workers=args.processes,
            batch_width=None if args.batch == "off" else args.batch,
            retry=retry,
        )
        with executor, Session(compiled, executor=executor) as session:
            results = session.sweep(scenarios, stack=args.stack)
    else:
        with Session(compiled) as session:
            results = session.sweep(scenarios, stack=args.stack)
    wall = _time.perf_counter() - t0

    used_names: set[str] = set()
    for slot, (scenario, dres) in enumerate(zip(scenarios, results)):
        rails = dres.result.states[:, : system.netlist.n_nodes]
        if dres.rom_dim is None:
            rom_note = ""
        elif dres.rom_fallback:
            rom_note = f" [rom-fallback, bound {dres.rom_bound:.2e}]"
        else:
            rom_note = (f" [rom q={dres.rom_dim}, "
                        f"bound {dres.rom_bound:.2e}]")
        print(f"  {scenario.name}: {dres.n_nodes} nodes, "
              f"trmatex {dres.tr_matex * 1e3:.1f} ms, "
              f"min rail {rails.min():.6g} V, "
              f"LU cache {dres.factor_cache_hits}h/"
              f"{dres.factor_cache_misses}m{rom_note}")
        if args.out_dir is not None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            # Scenario names are arbitrary user strings from the JSON
            # spec: slugify so a '/' or '..' cannot escape out_dir, and
            # disambiguate duplicates instead of silently overwriting.
            slug = re.sub(r"[^\w.-]+", "_", scenario.name) or "scenario"
            if slug in used_names:
                slug = f"{slug}.{slot}"
            used_names.add(slug)
            _export(dres.result, None, args.out_dir / f"{slug}.npz")
    print(f"sweep: {len(results)} scenarios in {wall:.2f} s "
          f"({wall / max(len(results), 1) * 1e3:.0f} ms/scenario)")
    if compiled.rom is not None:
        bounds = [r.rom_bound for r in results if r.rom_bound is not None]
        print(f"rom tier: {session.rom_accepted} answered in reduced "
              f"space (q={compiled.rom.dim}), {session.rom_fallbacks} "
              f"fell back full-order, max bound "
              f"{max(bounds, default=0.0):.2e}")
    if executor is not None and any(executor.supervision.as_dict().values()):
        sup = executor.supervision
        print(f"supervision: {sup.retries} retries, "
              f"{sup.pool_failures} pool failures "
              f"({sup.timeouts} timeouts), {sup.degradations} "
              f"degradations ({sup.degraded_runs} degraded batches)")
    print(_cache_stats_line())
    if args.out_dir is not None:
        print(f"wrote {len(results)} trajectories to {args.out_dir}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import PlanServer, ServeConfig

    try:
        cls = get_integrator(args.method)
        if getattr(cls, "krylov_method", None) is None:
            raise _UsageError(
                f"serve needs a MATEX method (r-matex, i-matex, mexp), "
                f"got {args.method!r}"
            )
        rom_cfg = _parse_rom(args.rom) if args.rom is not None else None
        if args.processes < 0:
            raise _UsageError(
                f"--processes must be >= 0, got {args.processes}"
            )
        retry = _retry_policy_from_args(args, serving=True)
        if args.faults is not None:
            from repro import faults as _faults

            try:
                _faults.install(args.faults)
            except _faults.FaultError as exc:
                raise _UsageError(str(exc)) from None
        try:
            config = ServeConfig(
                socket_path=str(args.socket),
                max_queue=args.max_queue,
                job_timeout=args.job_timeout,
                processes=args.processes,
                retry=retry,
                stack=args.stack,
            )
        except ValueError as exc:
            raise _UsageError(str(exc)) from None
    except _UsageError as exc:
        return _usage_error(str(exc))
    for value in (args.gamma, args.t_end):
        if value is not None:
            parse_value(value)
    # A SIGKILLed daemon cannot drain; at least plain exits and the
    # drain path itself must leave /dev/shm clean.
    from repro.dist.shm import install_signal_sweep

    install_signal_sweep()

    server = PlanServer(config)
    entry = server.load_plan(
        args.plan_name,
        args.netlist,
        t_end=parse_value(args.t_end) if args.t_end is not None else None,
        method=cls.krylov_method,
        gamma=parse_value(args.gamma),
        eps_rel=args.eps,
        decomposition=args.decomposition,
        batch=args.batch,
        rom=rom_cfg,
    )
    print(f"plan {entry.name!r} ready: {entry.compiled.summary()}",
          flush=True)
    if args.faults is not None:
        print(f"fault injection active: {args.faults}", flush=True)
    print(f"repro serve: listening on {args.socket} "
          f"(queue {args.max_queue}, deadline {args.job_timeout:g}s, "
          f"{args.processes or 'in-process'} workers)", flush=True)
    asyncio.run(server.serve())
    print(f"repro serve: drained ({server.jobs_done} done, "
          f"{server.jobs_failed} failed, {server.jobs_rejected} "
          f"rejected)", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "factor_cache_entries", None) is not None or \
            getattr(args, "factor_cache_bytes", None) is not None:
        FACTORIZATION_CACHE.configure(
            max_entries=args.factor_cache_entries,
            max_bytes=args.factor_cache_bytes,
        )
    if getattr(args, "triangular_kernel", None) is not None:
        set_kernel_mode(args.triangular_kernel)
    handlers = {
        "info": _cmd_info,
        "dc": _cmd_dc,
        "simulate": _cmd_simulate,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "lint": run_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
