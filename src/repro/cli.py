"""Command-line interface: simulate SPICE-dialect netlists with MATEX.

Usage (after ``pip install -e .``)::

    python -m repro.cli info grid.spice
    python -m repro.cli dc grid.spice
    python -m repro.cli simulate grid.spice --t-end 10n --method rmatex \
        --nodes n0_0 n5_5 --out waves.csv
    python -m repro.cli simulate grid.spice --t-end 10n --distributed \
        --out waves.npz

Times accept SPICE suffixes (``10n``, ``50p``).  Output formats: ``.csv``
(time + selected node voltages) and ``.npz`` (full state trajectory).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.droop import droop_report
from repro.baselines.fixed_step import dc_operating_point
from repro.circuit.mna import assemble
from repro.circuit.parser import parse_file, parse_value
from repro.core.options import SolverOptions
from repro.core.results import TransientResult
from repro.core.solver import MatexSolver
from repro.dist.scheduler import MatexScheduler

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and doc generation)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="MATEX transient simulation of PDN netlists.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="netlist summary and GTS statistics")
    info.add_argument("netlist", type=Path)
    info.add_argument("--t-end", default="10n",
                      help="horizon for transition-spot statistics")

    dc = sub.add_parser("dc", help="DC operating point")
    dc.add_argument("netlist", type=Path)
    dc.add_argument("--nodes", nargs="*", default=None,
                    help="nodes to print (default: summary only)")

    sim = sub.add_parser("simulate", help="transient simulation")
    sim.add_argument("netlist", type=Path)
    sim.add_argument("--t-end", required=True,
                     help="simulation horizon (SPICE suffixes ok)")
    sim.add_argument("--method", default="rmatex",
                     help="mexp | imatex | rmatex (default)")
    sim.add_argument("--gamma", default="1e-10",
                     help="rational-Krylov shift")
    sim.add_argument("--eps", type=float, default=1e-7,
                     help="relative Arnoldi error budget")
    sim.add_argument("--distributed", action="store_true",
                     help="use the bump-decomposition scheduler")
    sim.add_argument("--decomposition", default="bump",
                     choices=["bump", "source", "bump-split"])
    sim.add_argument("--nodes", nargs="*", default=None,
                     help="node voltages to export (default: all)")
    sim.add_argument("--out", type=Path, default=None,
                     help="output file (.csv or .npz)")
    sim.add_argument("--vdd", default=None,
                     help="nominal rail voltage: prints a droop report")
    return parser


def _load(path: Path):
    system = assemble(parse_file(path))
    return system


def _cmd_info(args) -> int:
    system = _load(args.netlist)
    t_end = parse_value(args.t_end)
    print(system.netlist.summary())
    print(f"C singular: {system.is_c_singular()}")
    gts = system.global_transition_spots(t_end)
    print(f"global transition spots in [0, {t_end:g}]: {len(gts)}")
    scheduler = MatexScheduler(system)
    groups = scheduler.groups()
    print(f"bump groups (natural node count): {len(groups)}")
    return 0


def _cmd_dc(args) -> int:
    system = _load(args.netlist)
    x, _ = dc_operating_point(system)
    rails = x[: system.netlist.n_nodes]
    print(f"DC solved: {len(rails)} node voltages, "
          f"min {rails.min():.6g} V, max {rails.max():.6g} V")
    for node in args.nodes or []:
        print(f"  {node}: {system.node_voltage(x, node):.6g} V")
    return 0


def _export(result: TransientResult, nodes, out: Path) -> None:
    system = result.system
    if out.suffix == ".npz":
        np.savez_compressed(
            out,
            times=result.times,
            states=result.states,
            node_names=np.array(system.netlist.node_names()),
        )
        return
    if out.suffix != ".csv":
        raise ValueError(f"unsupported output format {out.suffix!r}; "
                         f"use .csv or .npz")
    names = list(nodes) if nodes else list(system.netlist.node_names())
    with open(out, "w") as f:
        f.write("time," + ",".join(names) + "\n")
        for i, t in enumerate(result.times):
            row = [f"{t:.9e}"]
            for name in names:
                idx = system.netlist.node_index(name)
                row.append(f"{result.states[i, idx]:.9e}")
            f.write(",".join(row) + "\n")


def _cmd_simulate(args) -> int:
    system = _load(args.netlist)
    t_end = parse_value(args.t_end)
    opts = SolverOptions(
        method=args.method, gamma=parse_value(args.gamma), eps_rel=args.eps
    )
    if args.distributed:
        dres = MatexScheduler(
            system, opts, decomposition=args.decomposition
        ).run(t_end)
        result = dres.result
        print(f"distributed: {dres.n_nodes} nodes, "
              f"trmatex {dres.tr_matex * 1e3:.1f} ms, "
              f"tr_total {dres.tr_total * 1e3:.1f} ms")
    else:
        result = MatexSolver(system, opts).simulate(t_end)
        st = result.stats
        print(f"single node: {st.summary()}")

    if args.vdd is not None:
        report = droop_report(result, vdd=parse_value(args.vdd))
        print(report.summary())

    if args.out is not None:
        _export(result, args.nodes, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "dc": _cmd_dc,
        "simulate": _cmd_simulate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
