"""Command-line interface: simulate SPICE-dialect netlists with MATEX.

Usage (after ``pip install -e .``)::

    python -m repro.cli info grid.spice
    python -m repro.cli dc grid.spice
    python -m repro.cli simulate grid.spice --t-end 10n --method r-matex \
        --nodes n0_0 n5_5 --out waves.csv
    python -m repro.cli simulate grid.spice --t-end 10n --method tr \
        --h 10p --out waves.csv
    python -m repro.cli simulate grid.spice --t-end 10n --distributed \
        --out waves.npz
    python -m repro.cli run --netlist ibmpg_like.spice --distributed \
        --batch auto

``simulate`` loads the deck through the in-memory object parser;
``run`` streams it through :mod:`repro.circuit.ingest` — the
industrial-scale path for ibmpg-style decks with 100k+ nodes, which
never materialises per-element objects and defaults ``--t-end`` to the
deck's ``.tran`` stop time.

``--method`` resolves through the :mod:`repro.engine` integrator
registry — MATEX flavours (``r-matex``, ``i-matex``, ``mexp``) and the
traditional baselines (``tr``, ``be``, ``fe`` with ``--h``;
``tr-adaptive``) are all drop-ins.  ``--sink`` selects where the
trajectory is recorded (``memory``, ``downsample:<stride>``,
``npz:<path>`` for bounded-RAM streaming).

Times accept SPICE suffixes (``10n``, ``50p``).  Output formats: ``.csv``
(time + selected node voltages) and ``.npz`` (full state trajectory).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.droop import droop_report
from repro.baselines.fixed_step import dc_operating_point
from repro.circuit.ingest import ingest_file
from repro.circuit.mna import assemble
from repro.circuit.parser import parse_file, parse_value
from repro.core.options import SolverOptions
from repro.core.results import TransientResult
from repro.dist.scheduler import MatexScheduler
from repro.engine import (
    NpzStreamSink,
    available_integrators,
    get_integrator,
    make_sink,
)

__all__ = ["main", "build_parser"]


def _batch_policy(value: str):
    """argparse type for ``--batch``: off | auto | positive int."""
    if value in ("off", "auto"):
        return value
    try:
        width = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'off', 'auto' or a positive integer, got {value!r}"
        ) from None
    if width < 1:
        raise argparse.ArgumentTypeError(
            f"batch width must be >= 1, got {width}"
        )
    return width


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and doc generation)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="MATEX transient simulation of PDN netlists.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="netlist summary and GTS statistics")
    info.add_argument("netlist", type=Path)
    info.add_argument("--t-end", default="10n",
                      help="horizon for transition-spot statistics")

    dc = sub.add_parser("dc", help="DC operating point")
    dc.add_argument("netlist", type=Path)
    dc.add_argument("--nodes", nargs="*", default=None,
                    help="nodes to print (default: summary only)")

    sim = sub.add_parser("simulate", help="transient simulation")
    sim.add_argument("netlist", type=Path)
    sim.add_argument("--t-end", required=True,
                     help="simulation horizon (SPICE suffixes ok)")
    _add_sim_options(sim)

    run = sub.add_parser(
        "run",
        help="stream an ibmpg-style deck (100k+ nodes) and simulate",
        description="Transient simulation through the memory-bounded "
                    "streaming ingester (repro.circuit.ingest): the deck "
                    "is stamped directly into sparse matrices without "
                    "per-element objects.",
    )
    run.add_argument("--netlist", type=Path, required=True,
                     help="ibmpg-style SPICE deck to stream")
    run.add_argument("--t-end", default=None,
                     help="simulation horizon (SPICE suffixes ok); "
                          "defaults to the deck's .tran stop time")
    _add_sim_options(run)
    return parser


def _add_sim_options(sim: argparse.ArgumentParser) -> None:
    """Simulation options shared by ``simulate`` and ``run``."""
    sim.add_argument(
        "--method", default="r-matex",
        help="integrator, resolved via the registry: "
             + " | ".join(available_integrators())
             + " (default r-matex; paper aliases like rmatex work too)")
    sim.add_argument("--h", default=None,
                     help="fixed step size for tr/be/fe (SPICE suffixes ok)")
    sim.add_argument("--gamma", default="1e-10",
                     help="rational-Krylov shift")
    sim.add_argument("--eps", type=float, default=1e-7,
                     help="relative Arnoldi error budget")
    sim.add_argument(
        "--sink", default="memory",
        help="trajectory sink: memory (default) | downsample:<stride> | "
             "npz:<path> (streams states to disk, bounded RAM)")
    sim.add_argument("--distributed", action="store_true",
                     help="use the bump-decomposition scheduler "
                          "(MATEX methods only)")
    sim.add_argument("--decomposition", default="bump",
                     choices=["bump", "source", "bump-split"])
    sim.add_argument(
        "--batch", default="off", type=_batch_policy,
        help="block-batching policy for --distributed: off (reference "
             "per-node marches, default) | auto (one lockstep block "
             "march, bit-identical and several times faster) | <int> "
             "(fixed lockstep width per worker)")
    sim.add_argument("--nodes", nargs="*", default=None,
                     help="node voltages to export (default: all)")
    sim.add_argument("--out", type=Path, default=None,
                     help="output file (.csv or .npz)")
    sim.add_argument("--vdd", default=None,
                     help="nominal rail voltage: prints a droop report")


def _load(path: Path):
    system = assemble(parse_file(path))
    return system


def _cmd_info(args) -> int:
    system = _load(args.netlist)
    t_end = parse_value(args.t_end)
    print(system.netlist.summary())
    print(f"C singular: {system.is_c_singular()}")
    gts = system.global_transition_spots(t_end)
    print(f"global transition spots in [0, {t_end:g}]: {len(gts)}")
    scheduler = MatexScheduler(system)
    groups = scheduler.groups()
    print(f"bump groups (natural node count): {len(groups)}")
    return 0


def _cmd_dc(args) -> int:
    system = _load(args.netlist)
    x, _ = dc_operating_point(system)
    rails = x[: system.netlist.n_nodes]
    print(f"DC solved: {len(rails)} node voltages, "
          f"min {rails.min():.6g} V, max {rails.max():.6g} V")
    for node in args.nodes or []:
        print(f"  {node}: {system.node_voltage(x, node):.6g} V")
    return 0


def _export(result: TransientResult, nodes, out: Path) -> None:
    system = result.system
    if out.suffix == ".npz":
        np.savez_compressed(
            out,
            times=result.times,
            states=result.states,
            node_names=np.array(system.netlist.node_names()),
        )
        return
    if out.suffix != ".csv":
        raise ValueError(f"unsupported output format {out.suffix!r}; "
                         f"use .csv or .npz")
    names = list(nodes) if nodes else list(system.netlist.node_names())
    with open(out, "w") as f:
        f.write("time," + ",".join(names) + "\n")
        for i, t in enumerate(result.times):
            row = [f"{t:.9e}"]
            for name in names:
                idx = system.netlist.node_index(name)
                row.append(f"{result.states[i, idx]:.9e}")
            f.write(",".join(row) + "\n")


def _usage_error(message: str) -> int:
    """Print a usage-style error (argparse convention) and return 2."""
    print(f"repro.cli: error: {message}", file=sys.stderr)
    return 2


class _UsageError(Exception):
    """An argv problem reported as a usage message, not a traceback."""


def _resolve_plan(args):
    """Validate everything derivable from argv alone, before the load.

    A streamed 100k-node deck takes seconds to minutes to ingest; an
    unknown method, a contradictory flag combination or an unparseable
    numeric option must fail before that work, not after.  Returns the
    resolved ``(integrator_cls, matex_method)`` plan so the simulation
    body never re-derives (and cannot drift from) these checks.
    ``_UsageError`` exits with a usage message; ValueErrors keep the
    historical raw-raise behaviour the seed tests assert via ``main()``.
    """
    cls = get_integrator(args.method)  # unknown method raises here
    matex_method = getattr(cls, "krylov_method", None)
    if args.batch != "off" and not args.distributed:
        raise _UsageError(
            f"--batch {args.batch} only applies to --distributed runs"
        )
    if args.distributed:
        if matex_method is None:
            raise ValueError(
                f"--distributed needs a MATEX method (r-matex, i-matex, "
                f"mexp), got {args.method!r}"
            )
        if args.sink != "memory":
            raise ValueError(
                "--sink is not supported with --distributed: the "
                "superposition step needs every node's full trajectory "
                "in memory"
            )
    else:
        needs_h = getattr(cls, "needs_step_size", False)
        if args.h is not None and not needs_h:
            raise ValueError(
                f"integrator {cls.name!r} chooses its own time axis; "
                f"--h only applies to fixed-grid methods "
                f"(tr, be, fe)"
            )
        if needs_h and args.h is None:
            raise ValueError(
                f"integrator {cls.name!r} marches a fixed grid; "
                f"pass the step size with --h (e.g. --h 10p)"
            )
    # Numeric options fail on argv content, not after the deck load.
    for value in (args.gamma, args.h, args.vdd, args.t_end):
        if value is not None:
            parse_value(value)
    return cls, matex_method


def _cmd_simulate(args) -> int:
    try:
        plan = _resolve_plan(args)
    except _UsageError as exc:
        return _usage_error(str(exc))
    system = _load(args.netlist)
    return _simulate_system(system, parse_value(args.t_end), args, plan)


def _cmd_run(args) -> int:
    try:
        plan = _resolve_plan(args)
    except _UsageError as exc:
        return _usage_error(str(exc))
    res = ingest_file(args.netlist)
    print(res.stats.summary())
    if args.t_end is not None:
        t_end = parse_value(args.t_end)
    elif res.stats.tran_stop is not None:
        t_end = res.stats.tran_stop
        print(f"t_end = {t_end:g} s (from the deck's .tran directive)")
    else:
        return _usage_error(
            f"deck {args.netlist} has no .tran directive; pass --t-end"
        )
    return _simulate_system(res.system, t_end, args, plan)


def _simulate_system(system, t_end: float, args, plan) -> int:
    """Run a :func:`_resolve_plan`-validated plan on a loaded system."""
    cls, matex_method = plan

    if args.distributed:
        sink = None
        opts = SolverOptions(
            method=matex_method, gamma=parse_value(args.gamma),
            eps_rel=args.eps,
        )
        dres = MatexScheduler(
            system, opts, decomposition=args.decomposition, batch=args.batch
        ).run(t_end)
        result = dres.result
        print(f"distributed: {dres.n_nodes} nodes, "
              f"trmatex {dres.tr_matex * 1e3:.1f} ms, "
              f"tr_total {dres.tr_total * 1e3:.1f} ms, "
              f"LU cache hits {dres.factor_cache_hits}")
    else:
        sink = make_sink(args.sink)
        if matex_method is not None:
            integrator = cls(
                system, gamma=parse_value(args.gamma), eps_rel=args.eps
            )
        elif getattr(cls, "needs_step_size", False):
            integrator = cls(system, parse_value(args.h))
        else:
            integrator = cls(system)  # adaptive: owns its step policy
        result = integrator.simulate(t_end, sink=sink)
        print(f"single node [{cls.name}]: {result.stats.summary()}")

    if isinstance(sink, NpzStreamSink):
        print(f"states streamed to {sink.path}")

    if args.vdd is not None:
        report = droop_report(result, vdd=parse_value(args.vdd))
        print(report.summary())

    if args.out is not None:
        _export(result, args.nodes, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "dc": _cmd_dc,
        "simulate": _cmd_simulate,
        "run": _cmd_run,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
