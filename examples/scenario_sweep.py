"""Scenario sweeps through a compiled plan: factor once, reuse forever.

Run:  python examples/scenario_sweep.py [--case pg4t] [--scenarios 8]
      python examples/scenario_sweep.py --processes 2

The realistic PDN workload is one grid under many what-if switching
patterns.  This example compiles the suite case **once** into a
:class:`repro.plan.SimulationPlan` (decomposition, DC analysis, shared
schedules, factorisation priming), then streams N load-pattern
scenarios through a single :class:`repro.plan.Session` — and verifies
that every scenario's superposed trajectory is bit-for-bit identical to
an independent cold ``MatexScheduler`` run on the rebound system.

With ``--processes N`` the sweep runs on a **persistent** worker pool
(the context-manager lifecycle of ``MultiprocessExecutor``): workers
and their per-process factorisation caches survive across scenarios.
"""

import argparse
import time

from repro.core import SolverOptions
from repro.dist import MatexScheduler, MultiprocessExecutor
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.pdn import build_case, load_pattern_scenarios
from repro.plan import Session, SimulationPlan


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--case", default="pg4t")
    parser.add_argument("--scenarios", type=int, default=8)
    parser.add_argument("--processes", type=int, default=0,
                        help="persistent worker processes (0 = in-process)")
    args = parser.parse_args()

    system, case = build_case(args.case)
    opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6)
    scenarios = load_pattern_scenarios(
        system, n=args.scenarios, seed=2014, spread=0.4
    )

    t0 = time.perf_counter()
    compiled = SimulationPlan(system, opts, t_end=case.t_end).compile(
        prime=args.processes == 0
    )
    print(compiled.summary())

    if args.processes:
        executor = MultiprocessExecutor(
            system, opts, max_workers=args.processes, batch_width="auto"
        )
        with executor, Session(compiled, executor=executor) as session:
            results = session.sweep(scenarios)
    else:
        with Session(compiled) as session:
            results = session.sweep(scenarios)
    warm_wall = time.perf_counter() - t0

    vdd_rows = slice(0, system.netlist.n_nodes)
    for scenario, dres in zip(scenarios, results):
        rails = dres.result.states[:, vdd_rows]
        print(f"  {scenario.name}: min rail {rails.min():.6g} V, "
              f"trmatex {dres.tr_matex * 1e3:.2f} ms, "
              f"LU cache {dres.factor_cache_hits}h/"
              f"{dres.factor_cache_misses}m")

    # Verify one scenario against an independent cold run.
    probe = scenarios[-1]
    FACTORIZATION_CACHE.clear()
    cold = MatexScheduler(probe.bind(system), opts).run(case.t_end)
    match = (cold.result.states.tobytes()
             == results[-1].result.states.tobytes())
    print(f"sweep: {len(results)} scenarios in {warm_wall:.2f} s; "
          f"bitwise parity with a cold run: {match}")
    if not match:
        raise SystemExit("parity violation — this is a bug")


if __name__ == "__main__":
    main()
