"""Stiffness study: why MEXP struggles and I-/R-MATEX do not.

Run:  python examples/stiff_circuit_comparison.py

Recreates the paper's Sec. 4.1 story on one stiff RC mesh: all three
Krylov flavours compute the same trajectory, but the standard subspace
(MEXP) needs a basis several times deeper — and the gap widens with
stiffness.  Prints a small Table-1-style summary.
"""

import time

import numpy as np

from repro.analysis import Table, relative_error_pct
from repro.baselines import reference_backward_euler
from repro.circuit import assemble
from repro.core import MatexSolver, SolverOptions, build_schedule
from repro.pdn import eigenvalue_extremes, stiff_rc_mesh


def main() -> None:
    t_end, h = 3e-10, 5e-12
    grid = [i * h for i in range(61)]

    table = Table(["stiffness", "method", "ma", "mp", "err %", "time (s)"])
    for fast_ratio, slow_ratio in [(10.0, 1e3), (60.0, 1e8)]:
        net = stiff_rc_mesh(16, 16, fast_ratio=fast_ratio,
                            slow_ratio=slow_ratio, n_sources=4)
        system = assemble(net)
        lam_min, lam_max = eigenvalue_extremes(system)
        stiffness = lam_min / lam_max

        x0 = np.zeros(system.dim)
        ref = reference_backward_euler(system, t_end, 5e-14, x0=x0,
                                       record_times=grid)
        schedule = build_schedule(system, t_end, global_points=grid)

        for method in ["standard", "inverted", "rational"]:
            opts = SolverOptions(method=method, gamma=h,
                                 eps_rel=0.0, eps_abs=1e-10, m_max=300)
            solver = MatexSolver(system, opts)
            t0 = time.perf_counter()
            res = solver.simulate(t_end, x0=x0, schedule=schedule)
            wall = time.perf_counter() - t0
            err = relative_error_pct(res, ref, times=np.asarray(grid))
            table.add_row([
                f"{stiffness:.1e}", method,
                f"{res.stats.avg_krylov_dim:.1f}",
                res.stats.peak_krylov_dim,
                f"{err:.4f}", f"{wall:.3f}",
            ])
    print(table.render())
    print("\nNote how 'standard' (MEXP) dims grow with stiffness while the")
    print("inverted/rational bases stay ~constant — the paper's Table 1.")


if __name__ == "__main__":
    main()
