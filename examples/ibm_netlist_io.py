"""SPICE-dialect netlist I/O: write, re-parse, stream, simulate.

Run:  python examples/ibm_netlist_io.py

The IBM power grid benchmarks ship as flat SPICE decks.  This example
shows the repository's I/O paths for that dialect:

1. a hand-written deck string is parsed,
2. the synthetic pg1t case is exported to the same format and re-parsed,
3. both round-trips are verified by comparing DC operating points,
4. the same deck is **streamed** back through the memory-bounded
   ingester (``repro.circuit.ingest``) and shown to be bit-identical.

If you have real ``ibmpg*t.spice`` files, ``repro.circuit.parse_file``
loads them the same way — and ``repro.circuit.ingest_file`` (or
``python -m repro.cli run --netlist``) streams the big ones.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.baselines import dc_operating_point
from repro.circuit import (
    assemble,
    format_netlist,
    ingest_file,
    parse_file,
    parse_netlist,
    write_file,
)
from repro.pdn.suite import build_netlist

DECK = """* tiny hand-written PDN deck
Vdd vddpad 0 1.8
Rpad vddpad n0 0.02
R1 n0 n1 0.5
R2 n1 n2 0.5
C1 n1 0 2e-13
C2 n2 0 1e-13
I1 n2 0 PULSE(0 1m 1n 50p 50p 300p)
I2 n1 0 PWL(0 0 2n 0 2.5n 0.8m 4n 0.8m 4.5n 0)
.tran 10p 10n
.end
"""


def main() -> None:
    # 1. Parse the hand-written deck.
    net = parse_netlist(DECK, title="tiny-deck")
    system = assemble(net)
    x_dc, _ = dc_operating_point(system)
    print(f"parsed deck: {net.summary()}")
    print(f"DC voltage at n2: {system.node_voltage(x_dc, 'n2'):.4f} V")

    # 2. Export a generated suite case and re-parse it.
    pg1t = build_netlist("pg1t")
    text = format_netlist(pg1t, t_end=1e-8)
    print(f"\npg1t exports to {len(text.splitlines())} SPICE lines")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pg1t.spice"
        path.write_text(text)
        reparsed = parse_file(path)

    original = assemble(pg1t)
    roundtrip = assemble(reparsed)
    x0, _ = dc_operating_point(original)
    x1, _ = dc_operating_point(roundtrip)
    diff = float(np.max(np.abs(x0 - x1)))
    print(f"DC operating point round-trip difference: {diff:.2e} V")
    assert diff < 1e-12, "round trip corrupted the circuit"

    # 3. Stream the deck back without per-element objects: written in
    # insertion order, the ingest path is bit-identical to assemble().
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pg1t_stream.spice"
        write_file(pg1t, path, t_end=1e-8, order="insertion")
        res = ingest_file(path)
    streamed = res.system
    assert (streamed.G != original.G).nnz == 0
    assert (streamed.C != original.C).nnz == 0
    assert (streamed.B != original.B).nnz == 0
    print(f"streamed ingest: {res.stats.summary()}")
    print("streamed matrices bit-identical to the in-memory path")
    print("OK")


if __name__ == "__main__":
    main()
