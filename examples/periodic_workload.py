"""Split-bump decomposition on periodic, clock-like workloads (Fig. 3).

Run:  python examples/periodic_workload.py

Real switching currents repeat with the clock.  A periodic source keeps
re-triggering Krylov generations on whichever node owns it — unless its
bumps are *split* across nodes, the paper's aggressive Fig. 3
decomposition.  This example builds a grid driven by periodic loads and
compares three decompositions:

* ``source``      — one node per source (each sees every repetition),
* ``bump``        — group by pulse shape (periodic sources still keep
  all their repetitions on one node),
* ``bump-split``  — every individual bump is its own unit, regrouped by
  absolute timing; per-node LTS collapses to one bump's worth.
"""

import numpy as np

from repro.circuit import Pulse, assemble
from repro.core import SolverOptions
from repro.dist import MatexScheduler
from repro.pdn import PdnConfig, generate_power_grid


def main() -> None:
    t_end = 2e-9
    net = generate_power_grid(PdnConfig(rows=10, cols=10, n_pads=4, seed=11))
    # Clock-aligned periodic loads: 3 phases x repeated every 500 ps.
    rng = np.random.default_rng(11)
    nodes = [n for n in net.node_names() if not n.startswith(("pad", "s"))]
    for k in range(24):
        phase = (k % 3) * 1.5e-10
        net.add_current_source(
            f"Iclk{k}", nodes[int(rng.integers(len(nodes)))], "0",
            Pulse(0.0, float(rng.uniform(2e-4, 2e-3)),
                  t_delay=5e-11 + phase, t_rise=1e-11,
                  t_width=6e-11, t_fall=1e-11, t_period=5e-10),
        )
    system = assemble(net)
    print(f"circuit: {net.summary()}, horizon {t_end*1e9:.0f} ns "
          f"(4 clock periods)")

    opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7)
    baseline = None
    for decomposition in ["source", "bump", "bump-split"]:
        scheduler = MatexScheduler(system, opts, decomposition=decomposition)
        dres = scheduler.run(t_end)
        max_lts = max(s.n_krylov_bases for s in dres.node_stats)
        max_pairs = dres.max_node_substitution_pairs
        print(f"{decomposition:11s}: {dres.n_nodes:3d} nodes | "
              f"max LTS/node {max_lts:3d} | "
              f"max pairs/node {max_pairs:4d} | "
              f"trmatex {dres.tr_matex * 1e3:6.1f} ms")
        if baseline is None:
            baseline = dres.result.states
        else:
            diff = np.max(np.abs(dres.result.states - baseline))
            assert diff < 1e-6, f"decompositions disagree: {diff}"
    print("\nAll three decompositions produce the same waveforms; the "
          "split-bump variant needs the fewest Krylov generations per "
          "node (Fig. 3's point).")


if __name__ == "__main__":
    main()
