"""Adaptive stepping without re-factorisation (paper Sec. 2.4 / Table 2).

Run:  python examples/adaptive_stepping.py

Contrasts the two adaptive strategies on one grid:

* MATEX marches transition-spot to transition-spot with *one* LU,
  regenerating a small Krylov basis only where the inputs change slope
  and reusing it everywhere else;
* the traditional adaptive trapezoidal method must re-factorise
  ``C/h + G/2`` every time its LTE controller changes the step size.
"""

import time

import numpy as np

from repro.analysis import error_metrics
from repro.baselines import simulate_adaptive_trapezoidal, simulate_trapezoidal
from repro.circuit import assemble
from repro.core import MatexSolver, SolverOptions
from repro.pdn import PdnConfig, WorkloadSpec, attach_pulse_loads, generate_power_grid


def main() -> None:
    t_end = 1e-8
    net = generate_power_grid(PdnConfig(rows=20, cols=20, n_pads=4, seed=3))
    attach_pulse_loads(net, WorkloadSpec(
        n_sources=150, n_shapes=20, t_end=t_end, time_grid_points=60, seed=3,
    ))
    system = assemble(net)
    print(f"circuit: {net.summary()}")

    golden = simulate_trapezoidal(system, 1e-12, t_end,
                                  record_times=list(np.linspace(0, t_end, 101)))

    t0 = time.perf_counter()
    matex = MatexSolver(
        system, SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6)
    ).simulate(t_end)
    t_matex = time.perf_counter() - t0
    st = matex.stats
    print(f"\nMATEX (R-MATEX):")
    print(f"  factorisations : 1 (C + gamma*G) + 1 (G, for DC/ETD)")
    print(f"  Krylov bases   : {st.n_krylov_bases} "
          f"(avg dim {st.avg_krylov_dim:.1f}, peak {st.peak_krylov_dim})")
    print(f"  basis reuses   : {st.n_reuses}")
    print(f"  wall time      : {t_matex:.2f} s")
    err = error_metrics(matex, golden, times=golden.times)
    print(f"  max error      : {err['max']:.2e} V")

    t0 = time.perf_counter()
    adaptive = simulate_adaptive_trapezoidal(system, t_end, tol=1e-6)
    t_tr = time.perf_counter() - t0
    st = adaptive.stats
    print(f"\nAdaptive trapezoidal (LTE-controlled):")
    print(f"  factorisations : {st.n_krylov_bases} "
          f"(one per distinct step size)")
    print(f"  accepted steps : {st.n_steps}")
    print(f"  wall time      : {t_tr:.2f} s")
    err = error_metrics(adaptive, golden, times=golden.times)
    print(f"  max error      : {err['max']:.2e} V")

    print(f"\nMATEX marches with ONE factorisation; adaptive TR paid "
          f"{adaptive.stats.n_krylov_bases} of them.")


if __name__ == "__main__":
    main()
