"""Package inductance: RLC ringing on the rails.

Run:  python examples/rlc_package.py

Adds bond-wire/package inductance to the VDD pads and watches the rail
ring after each switching event — the full descriptor-system path
(inductor branch currents as MNA unknowns) handled by the
regularization-free R-MATEX solver without any special casing.
"""

import numpy as np

from repro.analysis import droop_report
from repro.baselines import simulate_trapezoidal
from repro.circuit import assemble
from repro.core import MatexSolver, SolverOptions, build_schedule
from repro.pdn import PdnConfig, WorkloadSpec, attach_pulse_loads, generate_power_grid


def main() -> None:
    t_end = 3e-9
    results = {}
    for l_pkg in [0.0, 3e-10]:
        net = generate_power_grid(PdnConfig(
            rows=10, cols=10, n_pads=2, l_package=l_pkg, seed=5,
        ))
        attach_pulse_loads(net, WorkloadSpec(
            n_sources=15, n_shapes=3, t_end=t_end,
            time_grid_points=10, seed=5,
        ))
        system = assemble(net)
        # Dense output grid so the ringing is visible.
        grid = list(np.linspace(0.0, t_end, 301))
        solver = MatexSolver(
            system, SolverOptions(method="rational", gamma=1e-10,
                                  eps_rel=1e-9),
        )
        res = solver.simulate(
            t_end, schedule=build_schedule(system, t_end, global_points=grid)
        )
        results[l_pkg] = (system, res)
        report = droop_report(res, vdd=1.8,
                              node_filter=lambda n: n.startswith("n"))
        label = f"L_pkg = {l_pkg * 1e9:.1f} nH"
        print(f"{label:16s}: {report.summary()}")

        # Cross-check against fine trapezoidal.
        tr = simulate_trapezoidal(system, 1e-12, t_end)
        nn = system.netlist.n_nodes
        diff = np.abs(res.sample(res.times)[:, :nn]
                      - tr.sample(res.times)[:, :nn])
        print(f"{'':16s}  vs TR(1ps): max diff {diff.max():.2e} V")

    # Quantify the ringing the inductors introduce.
    (_, flat), (_, ringing) = results[0.0], results[3e-10]
    v_flat = flat.voltage("n5_5")
    v_ring = ringing.voltage("n5_5")
    osc_flat = float(np.std(np.diff(v_flat)))
    osc_ring = float(np.std(np.diff(v_ring)))
    print(f"\nstep-to-step rail movement at n5_5: "
          f"{osc_flat * 1e3:.3f} mV (RC) vs {osc_ring * 1e3:.3f} mV (RLC)")
    assert osc_ring > osc_flat, "package L should add ringing"
    print("package inductance produces visible ringing — OK")


if __name__ == "__main__":
    main()
