"""Distributed MATEX: bump-shape decomposition + superposition.

Run:  python examples/distributed_pdn.py [--processes N]

Builds the pg1t suite case, decomposes its load sources into bump-shape
groups (paper Fig. 3), simulates every group on its own (emulated or
real) computing node and superposes — then verifies against fixed-step
trapezoidal and prints the paper's Table-3-style timing split.

With ``--processes N`` the groups run on an actual multiprocessing pool
instead of the serial emulation.
"""

import argparse

import numpy as np

from repro.analysis import error_metrics
from repro.baselines import simulate_trapezoidal
from repro.core import SolverOptions
from repro.dist import MatexScheduler, MultiprocessExecutor
from repro.pdn import build_case


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--case", default="pg1t")
    parser.add_argument("--processes", type=int, default=0,
                        help="worker processes (0 = serial emulation)")
    args = parser.parse_args()

    system, case = build_case(args.case)
    print(f"case {case.name}: {system.netlist.summary()}")

    scheduler = MatexScheduler(
        system,
        SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6),
        decomposition="bump",
    )
    groups = scheduler.groups()
    print(f"{len(system.netlist.current_sources)} load sources fall into "
          f"{len(groups)} bump groups (computing nodes)")

    executor = None
    if args.processes > 0:
        executor = MultiprocessExecutor(
            system, scheduler.options, max_workers=args.processes
        )
    dres = scheduler.run(case.t_end, executor=executor)
    print(f"per-node substitution pairs (max): "
          f"{dres.max_node_substitution_pairs}")
    print(f"trmatex (max node transient): {dres.tr_matex * 1e3:.1f} ms | "
          f"tr_total: {dres.tr_total * 1e3:.1f} ms")

    gts = list(dres.result.times)
    tr = simulate_trapezoidal(system, case.h_tr, case.t_end, record_times=gts)
    print(f"TR h=10ps: t1000 = {tr.stats.transient_seconds * 1e3:.1f} ms "
          f"({tr.stats.n_steps} substitution pairs)")

    errs = error_metrics(dres.result, tr, times=np.asarray(gts))
    print(f"MATEX vs TR difference: max {errs['max']:.2e} V, "
          f"avg {errs['avg']:.2e} V")
    print(f"transient speedup (Spdp4): "
          f"{tr.stats.transient_seconds / dres.tr_matex:.1f}X")


if __name__ == "__main__":
    main()
