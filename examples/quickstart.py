"""Quickstart: build a small PDN, simulate it with R-MATEX, check vs TR.

Run:  python examples/quickstart.py

Builds a 12x12 synthetic power grid with a handful of pulse loads,
computes the DC operating point, runs the single-node MATEX solver
(rational Krylov — the paper's best performer), and cross-checks the
worst-case supply droop against a fine-step trapezoidal simulation.
"""

import numpy as np

from repro.circuit import assemble
from repro.core import MatexSolver, SolverOptions
from repro.baselines import simulate_trapezoidal
from repro.pdn import PdnConfig, WorkloadSpec, attach_pulse_loads, generate_power_grid


def main() -> None:
    # 1. Build the circuit: a 12x12 grid, 4 VDD pads, 40 pulse loads.
    t_end = 1e-8  # 10 ns
    net = generate_power_grid(PdnConfig(rows=12, cols=12, n_pads=4, seed=7))
    attach_pulse_loads(
        net,
        WorkloadSpec(n_sources=40, n_shapes=8, t_end=t_end,
                     time_grid_points=30, seed=7),
    )
    system = assemble(net)
    print(f"circuit: {net.summary()}")
    print(f"C singular: {system.is_c_singular()} "
          f"(no problem: R-MATEX is regularization-free)")

    # 2. Simulate with MATEX (one LU factorisation, adaptive stepping).
    solver = MatexSolver(system, SolverOptions(method="rational", gamma=1e-10))
    result = solver.simulate(t_end)
    st = result.stats
    print(f"MATEX: {st.n_steps} steps, {st.n_krylov_bases} Krylov bases "
          f"(avg dim {st.avg_krylov_dim:.1f}), "
          f"{st.n_solves_transient} substitution pairs")

    # 3. Worst droop across the grid.
    vdd = 1.8
    node_v = result.states[:, : system.netlist.n_nodes]
    droop = vdd - node_v.min()
    t_worst = result.times[np.unravel_index(node_v.argmin(), node_v.shape)[0]]
    print(f"worst droop: {droop * 1e3:.2f} mV at t = {t_worst * 1e9:.2f} ns")

    # 4. Cross-check against a fine trapezoidal run on the same grid.
    tr = simulate_trapezoidal(system, 2e-12, t_end,
                              record_times=list(result.times))
    diff = np.abs(result.sample(result.times)[:, : system.netlist.n_nodes]
                  - tr.sample(result.times)[:, : system.netlist.n_nodes])
    print(f"max |MATEX - TR(2ps)| over all nodes/times: {diff.max():.2e} V")
    assert diff.max() < 1e-3, "solutions disagree"
    print("OK")


if __name__ == "__main__":
    main()
