"""Property-based tests for waveform invariants (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.waveforms import PWL, Pulse, merge_transition_spots

# -- strategies -----------------------------------------------------------------

pulse_params = st.builds(
    dict,
    v1=st.floats(-1e-2, 1e-2),
    v2=st.floats(-1e-2, 1e-2),
    t_delay=st.floats(0.0, 5e-10),
    t_rise=st.floats(1e-12, 1e-10),
    t_width=st.floats(0.0, 5e-10),
    t_fall=st.floats(1e-12, 1e-10),
)


@st.composite
def pwl_points(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    times = sorted(draw(st.lists(
        st.floats(0.0, 1e-8, allow_nan=False), min_size=n, max_size=n,
        unique=True,
    )))
    values = draw(st.lists(st.floats(-1.0, 1.0), min_size=n, max_size=n))
    return list(zip(times, values))


# -- pulse invariants ------------------------------------------------------------


@given(params=pulse_params, t=st.floats(0.0, 2e-9))
def test_pulse_value_bounded_by_levels(params, t):
    p = Pulse(**params)
    lo, hi = min(p.v1, p.v2), max(p.v1, p.v2)
    assert lo - 1e-12 <= p.value(t) <= hi + 1e-12


@given(params=pulse_params)
def test_pulse_transition_spots_sorted_unique(params):
    p = Pulse(**params)
    spots = p.transition_spots(2e-9)
    assert spots == sorted(spots)
    assert len(set(spots)) == len(spots)
    assert spots[0] == 0.0


@given(params=pulse_params)
@settings(max_examples=50)
def test_pulse_linear_between_spots(params):
    """Between consecutive transition spots the pulse must be linear."""
    p = Pulse(**params)
    spots = p.transition_spots(2e-9) + [2e-9]
    for t0, t1 in zip(spots, spots[1:]):
        if t1 - t0 < 1e-13:
            continue
        mid = 0.5 * (t0 + t1)
        interp = 0.5 * (p.value(t0) + p.value(t1))
        assert math.isclose(p.value(mid), interp,
                            rel_tol=1e-6, abs_tol=1e-12)


@given(params=pulse_params)
@settings(max_examples=50)
def test_pulse_to_pwl_agrees(params):
    p = Pulse(**params)
    pwl = p.to_pwl(2e-9)
    for t in np.linspace(0.0, 2e-9, 23):
        assert math.isclose(pwl.value(float(t)), p.value(float(t)),
                            rel_tol=1e-9, abs_tol=1e-12)


@given(params=pulse_params)
@settings(max_examples=50)
def test_pulse_values_array_consistent(params):
    p = Pulse(**params)
    ts = np.linspace(0.0, 2e-9, 31)
    vec = p.values_array(ts)
    scalar = np.array([p.value(float(t)) for t in ts])
    assert np.allclose(vec, scalar, atol=1e-12)


# -- PWL invariants ---------------------------------------------------------------


@given(points=pwl_points())
def test_pwl_value_within_hull(points):
    w = PWL(points)
    values = [v for _, v in points]
    lo, hi = min(values), max(values)
    for t in np.linspace(0.0, 1.2e-8, 13):
        assert lo - 1e-9 <= w.value(float(t)) <= hi + 1e-9


@given(points=pwl_points())
def test_pwl_spots_subset_of_breakpoints(points):
    w = PWL(points)
    spots = set(w.transition_spots(1e-8))
    allowed = {0.0} | {t for t, _ in points}
    assert spots <= allowed


# -- merge invariants ----------------------------------------------------------------


@given(lists=st.lists(
    st.lists(st.floats(0.0, 1e-8), min_size=0, max_size=6),
    min_size=0, max_size=5,
))
def test_merge_sorted_and_superset_modulo_tolerance(lists):
    merged = merge_transition_spots(lists)
    assert merged == sorted(merged)
    for spots in lists:
        for t in spots:
            assert any(math.isclose(t, m, rel_tol=1e-12, abs_tol=1e-30)
                       for m in merged)
