"""Pickling contract for every distributed message type.

``MultiprocessExecutor`` moves tasks and results between processes via
pickle; these tests pin the round-trip for each message class (and the
payloads they carry — source groups, waveform overrides, solver stats)
so the transport guarantee is explicit rather than incidental.
"""

import pickle

import numpy as np
import pytest

from repro.circuit.waveforms import DC, PWL, Pulse
from repro.core import SolverStats, TransientResult
from repro.core.decomposition import SourceGroup, decompose_by_bump_split
from repro.dist import (
    DistributedResult,
    MatexScheduler,
    NodeResult,
    SimulationTask,
)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestSourceGroupPickling:
    def test_plain_group(self):
        g = SourceGroup(group_id=2, label="bump(d=1e-10)", input_columns=(0, 3))
        g2 = roundtrip(g)
        assert g2 == g

    @pytest.mark.parametrize("waveform", [
        DC(1.8),
        Pulse(0.0, 1e-3, 1e-10, 2e-11, 1e-10, 2e-11, t_period=5e-10),
        PWL([(0.0, 0.0), (1e-10, 1e-3), (2e-10, 0.0)]),
    ])
    def test_waveform_override_payloads(self, waveform):
        g = SourceGroup(
            group_id=0, label="override", input_columns=(1,),
            waveform_overrides=((1, waveform),),
        )
        g2 = roundtrip(g)
        assert g2 == g
        w2 = g2.overrides_dict()[1]
        for t in (0.0, 0.6e-10, 1.3e-10, 2.5e-10):
            assert w2.value(t) == waveform.value(t)


class TestSimulationTaskPickling:
    def test_roundtrip(self):
        task = SimulationTask(
            task_id=7,
            group=SourceGroup(group_id=7, label="g", input_columns=(0, 2)),
            t_end=1e-9,
            global_points=(0.0, 1e-10, 5e-10, 1e-9),
        )
        t2 = roundtrip(task)
        assert t2 == task

    def test_roundtrip_with_overrides(self, mesh_system):
        """Real split-bump groups (the shapes multiprocessing ships)."""
        groups = decompose_by_bump_split(mesh_system, 1e-9)
        gts = tuple(mesh_system.global_transition_spots(1e-9))
        for g in groups:
            task = SimulationTask(task_id=g.group_id, group=g,
                                  t_end=1e-9, global_points=gts)
            assert roundtrip(task) == task

    def test_validation(self):
        g = SourceGroup(group_id=0, label="g", input_columns=(0,))
        with pytest.raises(ValueError, match="t_end"):
            SimulationTask(task_id=0, group=g, t_end=0.0, global_points=(0.0,))
        empty = SourceGroup(group_id=0, label="g", input_columns=())
        with pytest.raises(ValueError, match="no input columns"):
            SimulationTask(task_id=0, group=empty, t_end=1e-9,
                           global_points=(0.0,))


class TestNodeResultPickling:
    def test_roundtrip(self):
        stats = SolverStats(n_steps=5, n_krylov_bases=2, krylov_dims=[8, 9],
                            n_solves_krylov=17, transient_seconds=0.25)
        r = NodeResult(
            task_id=1, group_id=1, label="bump",
            times=np.linspace(0.0, 1e-9, 6),
            states=np.arange(18.0).reshape(6, 3),
            stats=stats,
        )
        r2 = roundtrip(r)
        assert r2.task_id == r.task_id and r2.label == r.label
        np.testing.assert_array_equal(r2.times, r.times)
        np.testing.assert_array_equal(r2.states, r.states)
        assert r2.stats == stats
        assert r2.transient_seconds == 0.25

    def test_rehydrates_after_roundtrip(self, mesh_system):
        r = NodeResult(
            task_id=0, group_id=0, label="g",
            times=np.array([0.0, 1e-9]),
            states=np.zeros((2, mesh_system.dim)),
        )
        tres = roundtrip(r).as_transient_result(mesh_system)
        assert isinstance(tres, TransientResult)
        assert tres.system is mesh_system


class TestDistributedResultPickling:
    def test_roundtrip_preserves_timing_model(self, mesh_system):
        from repro.core import SolverOptions

        dres = MatexScheduler(
            mesh_system,
            SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8),
        ).run(1e-9)
        d2 = roundtrip(dres)
        assert isinstance(d2, DistributedResult)
        assert d2.n_nodes == dres.n_nodes
        assert d2.tr_matex == dres.tr_matex
        assert d2.tr_total == dres.tr_total
        assert d2.total_substitution_pairs == dres.total_substitution_pairs
        assert (d2.max_node_substitution_pairs
                == dres.max_node_substitution_pairs)
        assert d2.node_transient_seconds == dres.node_transient_seconds
        np.testing.assert_array_equal(d2.result.states, dres.result.states)
        np.testing.assert_array_equal(d2.result.times, dres.result.times)
