"""Tests for the level-scheduled deterministic substitution kernel.

The batched march, the scenario sweeps and the per-node/block parity web
all rest on one invariant: ``solve_many(B)[:, i]`` is bit-for-bit
``solve(B[:, i])`` at any batch width, at any offset, under any column
permutation.  This module pins that invariant directly against the
kernel (property-based over random batch shapes), exercises every
escape-hatch mode, and checks that the factor cache's byte accounting
sees the exported factors and schedules.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import SparseLU
from repro.linalg.triangular import (
    DEFAULT_KERNEL_MODE,
    ENV_KERNEL_MODE,
    KERNEL_MODES,
    TriangularExportError,
    TriangularFactors,
    TriangularHolder,
    kernel_mode,
    set_kernel_mode,
)


@pytest.fixture(autouse=True)
def _reset_kernel_mode():
    """Every test starts from (and restores) the environment default."""
    set_kernel_mode(None)
    yield
    set_kernel_mode(None)


def build_pencil(n: int = 60, seed: int = 7) -> sp.csc_matrix:
    """A sparse nonsymmetric pencil with nontrivial fill and pivoting."""
    rng = np.random.default_rng(seed)
    diags = sp.diags_array(1.0 + rng.uniform(0.5, 2.0, size=n))
    offdiag = sp.random_array(
        (n, n), density=0.08, rng=rng, data_sampler=rng.standard_normal
    )
    return sp.csc_matrix(diags + 0.3 * offdiag)


@pytest.fixture(scope="module")
def pencil():
    return build_pencil()


@pytest.fixture(scope="module")
def pencil_lu(pencil):
    return SparseLU(pencil, label="tri-test")


class TestKernelModeSelection:
    def test_default_is_level(self):
        assert DEFAULT_KERNEL_MODE == "level"
        assert kernel_mode() in KERNEL_MODES

    def test_set_and_reset(self):
        set_kernel_mode("column")
        assert kernel_mode() == "column"
        set_kernel_mode(None)
        assert kernel_mode() == DEFAULT_KERNEL_MODE

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown triangular kernel"):
            set_kernel_mode("supernodal")

    def test_mode_normalised(self):
        set_kernel_mode("  LeGaCy ")
        assert kernel_mode() == "legacy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_MODE, "column")
        set_kernel_mode(None)
        assert kernel_mode() == "column"

    def test_invalid_env_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL_MODE, "banana")
        with pytest.warns(RuntimeWarning, match=ENV_KERNEL_MODE):
            set_kernel_mode(None)
        assert kernel_mode() == DEFAULT_KERNEL_MODE


class TestExport:
    def test_export_verifies_on_suite_pencil(self, pencil_lu):
        tri = pencil_lu._tri.get(pencil_lu._lu, pencil_lu.matrix)
        assert tri is not None
        assert pencil_lu._tri.failure is None

    def test_schedule_levels_cover_all_rows(self, pencil_lu):
        tri = pencil_lu._tri.get(
            pencil_lu._lu, pencil_lu.matrix, schedule=True
        )
        assert tri.has_schedule
        n_l, n_u = tri.n_levels
        assert 1 <= n_l <= tri.n
        assert 1 <= n_u <= tri.n

    def test_scalar_path_solves_the_system(self, pencil, pencil_lu):
        tri = pencil_lu._tri.get(pencil_lu._lu, pencil_lu.matrix)
        b = np.cos(np.arange(pencil.shape[0], dtype=float))
        x = tri.solve(b)
        assert np.allclose(pencil @ x, b, rtol=1e-10, atol=1e-12)

    def test_holder_failure_falls_back_permanently(self, pencil):
        class _Broken:
            shape = pencil.shape

            def __getattr__(self, name):
                raise RuntimeError("no factors here")

        holder = TriangularHolder()
        assert holder.get(_Broken(), pencil) is None
        assert holder.failure is not None
        # Permanent: a later call with a *good* factorisation still
        # declines — wrong-once means legacy-forever for this holder.
        good = SparseLU(pencil)
        assert holder.get(good._lu, good.matrix) is None
        assert holder.nbytes() == 0

    def test_non_float64_matrix_rejected(self, pencil):
        lu = SparseLU(pencil)
        complex_matrix = pencil.astype(np.complex128)
        with pytest.raises(TriangularExportError, match="dtype"):
            TriangularFactors(lu._lu, complex_matrix)


class TestPerColumnBitwiseParity:
    """The core invariant, property-based over batch geometry."""

    @given(
        width=st.integers(min_value=1, max_value=40),
        offset=st.integers(min_value=0, max_value=20),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        permute=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_width_offset_permutation(
        self, pencil_lu, width, offset, seed, permute
    ):
        """solve_many[:, i] == solve(col i) bitwise, however batched.

        Columns are drawn at a random offset inside a wider block and
        optionally permuted: neither a column's neighbours, nor its
        position, nor the batch width may change a single bit.
        """
        rng = np.random.default_rng(seed)
        n = pencil_lu.shape[0]
        block = rng.normal(size=(n, offset + width))[:, offset:]
        if permute:
            block = block[:, rng.permutation(width)]
        ref = np.column_stack(
            [pencil_lu.solve(block[:, i]) for i in range(width)]
        )
        assert pencil_lu.solve_many(block).tobytes() == ref.tobytes()

    def test_column_mode_same_bits_as_level(self, pencil_lu, rng):
        block = rng.normal(size=(pencil_lu.shape[0], 24))
        level_out = pencil_lu.solve_many(block)
        set_kernel_mode("column")
        column_out = pencil_lu.solve_many(block)
        assert level_out.tobytes() == column_out.tobytes()

    def test_legacy_mode_serves_superlu_answers(self, pencil_lu, rng):
        set_kernel_mode("legacy")
        block = rng.normal(size=(pencil_lu.shape[0], 6))
        out = pencil_lu.solve_many(block)
        ref = np.column_stack(
            [pencil_lu._lu.solve(block[:, i].copy()) for i in range(6)]
        )
        assert out.tobytes() == ref.tobytes()

    def test_nrhs8_regression_on_ill_scaled_pencil(self):
        """The divergence width that sank raw multi-RHS SuperLU.

        pg4t's pencil ``C + γG`` mixes ~1e-15 capacitances with ~1e10
        voltage-row entries; SuperLU's supernodal kernels switch BLAS
        shapes at nrhs = 8 and change accumulation order there.  The
        level kernel must hold per-column parity on the same kind of
        ill-scaled pencil at exactly that width.
        """
        from repro.pdn import build_case

        system, _ = build_case("pg4t")
        pencil = (system.C + 1e-10 * system.G).tocsc()
        lu = SparseLU(pencil, "pg4t-pencil")
        rng = np.random.default_rng(8)
        block = rng.normal(size=(system.dim, 8))
        ref = np.column_stack([lu.solve(block[:, i]) for i in range(8)])
        assert lu.solve_many(block).tobytes() == ref.tobytes()

    def test_overflow_columns_stay_silent_and_aligned(self, pencil_lu):
        """Divergent consumers push inf through; no warnings, same bits."""
        n = pencil_lu.shape[0]
        block = np.full((n, 3), 1e300)
        block[:, 1] = 1.0
        with np.errstate(over="raise", invalid="raise"):
            out = pencil_lu.solve_many(block)
            ref = pencil_lu.solve(block[:, 1])
        assert out[:, 1].tobytes() == ref.tobytes()


class TestCacheByteAccounting:
    """Exports and schedules must show up in the factor-cache budget."""

    def test_resident_bytes_grow_with_export_and_schedule(self, pencil):
        from repro.linalg.lu import FactorizationCache

        cache = FactorizationCache(max_entries=4, max_bytes=1 << 30)
        lu = cache.factor(pencil, label="tri-bytes")
        base = cache.resident_bytes
        assert base >= 12 * 2 * pencil.nnz  # matrix + at least its fill

        assert lu.prime_kernel(wide=False)
        exported = cache.resident_bytes
        assert exported > base

        assert lu.prime_kernel(wide=True)
        scheduled = cache.resident_bytes
        assert scheduled > exported

        stats = cache.stats()
        assert stats["resident_bytes"] == scheduled

    def test_prime_kernel_noop_in_legacy_mode(self, pencil):
        set_kernel_mode("legacy")
        lu = SparseLU(pencil)
        assert not lu.prime_kernel(wide=True)
        assert lu._tri.nbytes() == 0

    def test_shared_views_share_one_export(self, pencil):
        from repro.linalg.lu import FactorizationCache

        cache = FactorizationCache(max_entries=4, max_bytes=1 << 30)
        first = cache.factor(pencil, label="a")
        first.prime_kernel(wide=True)
        view = cache.factor(pencil, label="b")
        assert view._tri is first._tri
        # The view serves the already-built schedule, no rebuild.
        tri = view._tri.get(view._lu, view.matrix, schedule=True)
        assert tri is first._tri.get(first._lu, first.matrix)
