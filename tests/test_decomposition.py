"""Unit tests for bump-shape source decomposition (paper Fig. 3)."""

import pytest

from repro.circuit import DC, Netlist, PWL, Pulse, assemble
from repro.core import decompose_by_bump, decompose_by_source, merge_to_limit


@pytest.fixture
def mixed_system():
    """Two shared-shape pulses, one distinct pulse, a PWL, DC sources."""
    net = Netlist("mixed")
    for i in range(5):
        net.add_resistor(f"R{i}", f"n{i}" if i else "0", f"n{i + 1}", 1.0)
        net.add_capacitor(f"C{i}", f"n{i + 1}", "0", 1e-13)
    shape = dict(t_delay=1e-10, t_rise=2e-11, t_width=1e-10, t_fall=2e-11)
    net.add_current_source("Ia", "n1", "0", Pulse(0.0, 1e-3, **shape))
    net.add_current_source("Ib", "n2", "0", Pulse(0.0, 9e-4, **shape))
    net.add_current_source("Ic", "n3", "0",
                           Pulse(0.0, 1e-3, 3e-10, 2e-11, 5e-11, 2e-11))
    net.add_current_source("Id", "n4", "0", PWL([(0.0, 0.0), (1e-10, 1e-3)]))
    net.add_current_source("Ie", "n5", "0", DC(5e-4))
    net.add_voltage_source("V1", "vs", "0", 1.0)
    net.add_resistor("Rv", "vs", "n1", 0.1)
    return assemble(net)


class TestBumpDecomposition:
    def test_same_shape_grouped(self, mixed_system):
        groups = decompose_by_bump(mixed_system)
        by_size = sorted(len(g) for g in groups)
        assert by_size == [1, 1, 2]  # {Ia, Ib}, {Ic}, {Id}

    def test_amplitude_does_not_affect_grouping(self, mixed_system):
        groups = decompose_by_bump(mixed_system)
        pair = next(g for g in groups if len(g) == 2)
        assert set(pair.input_columns) == {0, 1}

    def test_constant_inputs_excluded(self, mixed_system):
        groups = decompose_by_bump(mixed_system)
        grouped = {k for g in groups for k in g.input_columns}
        assert 4 not in grouped  # the DC current source
        assert 5 not in grouped  # the DC voltage source

    def test_group_ids_dense(self, mixed_system):
        groups = decompose_by_bump(mixed_system)
        assert [g.group_id for g in groups] == list(range(len(groups)))

    def test_labels_describe_shape(self, mixed_system):
        groups = decompose_by_bump(mixed_system)
        pair = next(g for g in groups if len(g) == 2)
        assert "bump" in pair.label


class TestSourceDecomposition:
    def test_one_group_per_varying_input(self, mixed_system):
        groups = decompose_by_source(mixed_system)
        assert len(groups) == 4
        assert all(len(g) == 1 for g in groups)


class TestMergeToLimit:
    def test_no_merge_when_under_limit(self, mixed_system):
        groups = decompose_by_bump(mixed_system)
        assert merge_to_limit(groups, 10) == groups

    def test_merge_covers_all_columns(self, mixed_system):
        groups = decompose_by_source(mixed_system)
        merged = merge_to_limit(groups, 2)
        assert len(merged) == 2
        original = {k for g in groups for k in g.input_columns}
        after = {k for g in merged for k in g.input_columns}
        assert original == after

    def test_merge_to_one(self, mixed_system):
        merged = merge_to_limit(decompose_by_source(mixed_system), 1)
        assert len(merged) == 1

    def test_limit_validation(self, mixed_system):
        with pytest.raises(ValueError):
            merge_to_limit(decompose_by_source(mixed_system), 0)
