"""Bit-for-bit parity of the block-batched fast path, plus transport.

The contract under test: every trajectory, time grid and operation count
a :class:`~repro.dist.block_runner.BlockNodeRunner` produces is
bit-for-bit identical to the per-node :class:`~repro.dist.worker.NodeWorker`
reference path — on the serial executor, on the multiprocess executor,
through the scheduler's ``batch`` policy, across decompositions
(including split-bump waveform overrides) and Krylov flavours.  On top,
the shared-memory result transport round-trips arrays exactly and
reclaims its segments, including after worker death.
"""

import numpy as np
import pytest

from repro.core import SolverOptions
from repro.dist import (
    BlockNodeRunner,
    MatexScheduler,
    MultiprocessExecutor,
    NodeWorker,
    SerialExecutor,
    SimulationTask,
)
from repro.dist.shm import (
    cleanup_segments,
    from_shared,
    new_segment_prefix,
    shm_available,
    to_shared,
)

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)


def tasks_for(system, t_end=1e-9, decomposition="bump"):
    sched = MatexScheduler(system, OPTS, decomposition=decomposition)
    gts = tuple(system.global_transition_spots(t_end))
    return [
        SimulationTask(task_id=g.group_id, group=g, t_end=t_end,
                       global_points=gts)
        for g in sched.groups(t_end=t_end)
    ]


def assert_results_identical(ref, blk):
    assert len(ref) == len(blk)
    for r, b in zip(ref, blk):
        assert r.task_id == b.task_id
        assert r.group_id == b.group_id
        assert r.label == b.label
        assert r.times.tobytes() == b.times.tobytes()
        assert r.states.tobytes() == b.states.tobytes()  # strict bitwise
        for f in ("n_steps", "n_krylov_bases", "n_reuses", "krylov_dims",
                  "n_solves_krylov", "n_solves_etd", "n_solves_dc"):
            assert getattr(r.stats, f) == getattr(b.stats, f), f


class TestRunnerParity:
    def test_mesh_bitwise_parity(self, mesh_system):
        tasks = tasks_for(mesh_system)
        ref = [NodeWorker(mesh_system, OPTS).run(t) for t in tasks]
        blk = BlockNodeRunner(mesh_system, OPTS).run(tasks)
        assert_results_identical(ref, blk)

    def test_singular_c_pdn_parity(self, small_pdn_system):
        tasks = tasks_for(small_pdn_system)
        ref = [NodeWorker(small_pdn_system, OPTS).run(t) for t in tasks]
        blk = BlockNodeRunner(small_pdn_system, OPTS).run(tasks)
        assert_results_identical(ref, blk)

    @pytest.mark.parametrize("method", ["rational", "inverted"])
    def test_methods_parity(self, mesh_system, method):
        opts = SolverOptions(method=method, gamma=1e-10, eps_rel=1e-8)
        tasks = tasks_for(mesh_system)
        worker = NodeWorker(mesh_system, opts)
        ref = [worker.run(t) for t in tasks]
        blk = BlockNodeRunner(mesh_system, opts).run(tasks)
        assert_results_identical(ref, blk)

    def test_bump_split_overrides_parity(self, mesh_system):
        tasks = tasks_for(mesh_system, decomposition="bump-split")
        assert any(t.group.waveform_overrides for t in tasks)
        worker = NodeWorker(mesh_system, OPTS)
        ref = [worker.run(t) for t in tasks]
        blk = BlockNodeRunner(mesh_system, OPTS).run(tasks)
        assert_results_identical(ref, blk)

    def test_empty_and_order(self, mesh_system):
        runner = BlockNodeRunner(mesh_system, OPTS)
        assert runner.run([]) == []
        tasks = tasks_for(mesh_system)
        shuffled = list(reversed(tasks))
        out = runner.run(shuffled)
        assert [r.task_id for r in out] == [t.task_id for t in shuffled]

    def test_construction_cache_traffic_on_first_task(self, mesh_system):
        from repro.linalg.lu import FACTORIZATION_CACHE

        FACTORIZATION_CACHE.clear()
        runner = BlockNodeRunner(mesh_system, OPTS)
        tasks = tasks_for(mesh_system)
        first = runner.run(tasks)
        again = runner.run(tasks)
        total_first = sum(
            r.stats.n_factor_cache_hits + r.stats.n_factor_cache_misses
            for r in first
        )
        assert total_first >= 1  # construction traffic reported once
        assert all(
            r.stats.n_factor_cache_hits + r.stats.n_factor_cache_misses == 0
            for r in again
        )


class TestExecutorParity:
    def test_serial_batched_matches_per_node(self, mesh_system):
        tasks = tasks_for(mesh_system)
        ref = SerialExecutor(mesh_system, OPTS).run(tasks)
        for width in ("auto", 2, 1):
            blk = SerialExecutor(
                mesh_system, OPTS, batch_width=width
            ).run(tasks)
            assert_results_identical(ref, blk)

    def test_scheduler_batch_policy_bitwise(self, mesh_system):
        ref = MatexScheduler(mesh_system, OPTS).run(1e-9)
        blk = MatexScheduler(mesh_system, OPTS, batch="auto").run(1e-9)
        assert (ref.result.states.tobytes()
                == blk.result.states.tobytes())
        assert ref.result.times.tobytes() == blk.result.times.tobytes()
        assert (ref.total_substitution_pairs
                == blk.total_substitution_pairs)

    def test_scheduler_batch_validation(self, mesh_system):
        with pytest.raises(ValueError, match="batch"):
            MatexScheduler(mesh_system, OPTS, batch="sideways")
        with pytest.raises(ValueError, match="batch"):
            MatexScheduler(mesh_system, OPTS, batch=0)

    def test_multiprocess_batched_matches_serial(self, mesh_system):
        tasks = tasks_for(mesh_system)
        ref = SerialExecutor(mesh_system, OPTS).run(tasks)
        mp = MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, batch_width="auto"
        ).run(tasks)
        assert_results_identical(ref, mp)

    def test_multiprocess_pickle_transport_matches(self, mesh_system):
        tasks = tasks_for(mesh_system)
        ref = SerialExecutor(mesh_system, OPTS).run(tasks)
        mp = MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, transport="pickle"
        ).run(tasks)
        assert_results_identical(ref, mp)

    def test_bad_executor_args(self, mesh_system):
        with pytest.raises(ValueError, match="transport"):
            MultiprocessExecutor(mesh_system, OPTS, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="batch_width"):
            SerialExecutor(mesh_system, OPTS, batch_width=0).run(
                tasks_for(mesh_system)
            )


@pytest.mark.skipif(not shm_available(), reason="no shared-memory support")
class TestShmTransport:
    def _node_result(self, mesh_system):
        tasks = tasks_for(mesh_system)
        return NodeWorker(mesh_system, OPTS).run(tasks[0])

    def test_round_trip_bitwise(self, mesh_system):
        res = self._node_result(mesh_system)
        prefix = new_segment_prefix()
        shared = to_shared(res, prefix)
        assert not isinstance(shared.states, np.ndarray)
        back = from_shared(shared)
        assert back.states.tobytes() == res.states.tobytes()
        assert back.times.tobytes() == res.times.tobytes()
        assert back.stats is res.stats
        # segment name already unlinked: nothing left to sweep
        assert cleanup_segments(prefix) == 0

    def test_cleanup_sweeps_orphans(self, mesh_system):
        """Worker-death path: segments without a handover get reclaimed."""
        res = self._node_result(mesh_system)
        prefix = new_segment_prefix()
        to_shared(res, prefix)  # orphan: nobody attaches
        import dataclasses
        to_shared(dataclasses.replace(res, task_id=res.task_id + 1), prefix)
        assert cleanup_segments(prefix) == 2
        assert cleanup_segments(prefix) == 0

    def test_worker_death_leaves_no_segments(self, mesh_system):
        """A SIGKILLed worker must not leak its run's segments."""
        from pathlib import Path

        from tests.test_executor_robustness import killer_task
        from concurrent.futures.process import BrokenProcessPool

        before = {p.name for p in Path("/dev/shm").glob("repro*")}
        ex = MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, transport="shm"
        )
        with pytest.raises(BrokenProcessPool):
            ex.run([killer_task(mesh_system)])
        after = {p.name for p in Path("/dev/shm").glob("repro*")}
        assert after <= before  # no new segments survive the crash

    def test_scheduler_end_to_end_with_shm(self, mesh_system):
        ref = MatexScheduler(mesh_system, OPTS).run(1e-9)
        mp = MatexScheduler(mesh_system, OPTS).run(
            1e-9,
            executor=MultiprocessExecutor(
                mesh_system, OPTS, max_workers=2,
                batch_width="auto", transport="shm",
            ),
        )
        assert (ref.result.states.tobytes()
                == mp.result.states.tobytes())
