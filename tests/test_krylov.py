"""Unit tests for the three Krylov exp(hA)v operators."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.linalg import (
    InvertedKrylov,
    RationalKrylov,
    RegularizationRequiredError,
    StandardKrylov,
    dense_a_matrix,
    make_krylov_operator,
)

METHODS = ["standard", "inverted", "rational"]


@pytest.fixture
def dense_a(rc_ladder_system):
    return dense_a_matrix(rc_ladder_system.C, rc_ladder_system.G)


class TestAccuracy:
    @pytest.mark.parametrize("method", METHODS)
    def test_matches_dense_expm(self, method, rc_ladder_system, dense_a, rng):
        s = rc_ladder_system
        v = rng.normal(size=s.dim)
        h = 1e-11
        exact = sla.expm(h * dense_a) @ v
        op = make_krylov_operator(method, s.C, s.G, gamma=h)
        y, basis = op.expm_multiply(v, h, tol=1e-10 * np.linalg.norm(v),
                                    m_max=s.dim)
        assert np.allclose(y, exact, rtol=1e-7, atol=1e-9 * np.linalg.norm(v))

    @pytest.mark.parametrize("method", METHODS)
    def test_error_estimate_is_honest(self, method, mesh_system, rng):
        """True error must not exceed the estimate by a large factor."""
        s = mesh_system
        a = dense_a_matrix(s.C, s.G)
        v = rng.normal(size=s.dim)
        h = 1e-11
        tol = 1e-6 * np.linalg.norm(v)
        op = make_krylov_operator(method, s.C, s.G, gamma=h)
        y, basis = op.expm_multiply(v, h, tol=tol, m_max=s.dim)
        true_err = np.linalg.norm(y - sla.expm(h * a) @ v)
        assert true_err < 50.0 * tol

    def test_small_bases_for_spectral_transforms(self, mesh_system, rng):
        """I-/R-MATEX must converge with far fewer vectors than MEXP."""
        s = mesh_system
        v = rng.normal(size=s.dim)
        h = 1e-11
        tol = 1e-8 * np.linalg.norm(v)
        dims = {}
        for method in METHODS:
            op = make_krylov_operator(method, s.C, s.G, gamma=h)
            _, basis = op.expm_multiply(v, h, tol=tol, m_max=s.dim)
            dims[method] = basis.m
        assert dims["inverted"] < dims["standard"]
        assert dims["rational"] < dims["standard"]


class TestEffectiveHm:
    def test_standard_negates(self, rc_ladder_system):
        op = StandardKrylov(rc_ladder_system.C, rc_ladder_system.G)
        h = np.array([[2.0, 1.0], [0.5, 3.0]])
        assert np.allclose(op.effective_hm(h), -h)

    def test_inverted_negated_inverse(self, rc_ladder_system):
        op = InvertedKrylov(rc_ladder_system.C, rc_ladder_system.G)
        h = np.array([[2.0, 1.0], [0.5, 3.0]])
        assert np.allclose(op.effective_hm(h), -np.linalg.inv(h))

    def test_rational_shift_invert_map(self, rc_ladder_system):
        gamma = 1e-11
        op = RationalKrylov(rc_ladder_system.C, rc_ladder_system.G, gamma=gamma)
        # For H = (I - gamma*L)^-1 the map must recover L exactly.
        lam = np.diag([-1e9, -2e10])
        h = np.linalg.inv(np.eye(2) - gamma * lam)
        assert np.allclose(op.effective_hm(h), lam)


class TestRegularizationFree:
    def test_standard_requires_invertible_c(self, small_pdn_system):
        with pytest.raises(RegularizationRequiredError):
            StandardKrylov(small_pdn_system.C, small_pdn_system.G)

    @pytest.mark.parametrize("method", ["inverted", "rational"])
    def test_spectral_transforms_handle_singular_c(
        self, method, small_pdn_system, rng
    ):
        s = small_pdn_system
        op = make_krylov_operator(method, s.C, s.G, gamma=1e-11)
        v = rng.normal(size=s.dim)
        y, basis = op.expm_multiply(v, 1e-11, tol=1e-8 * np.linalg.norm(v),
                                    m_max=s.dim)
        assert np.all(np.isfinite(y))
        assert basis.m >= 1


class TestBasisReuse:
    def test_evaluate_consistent_with_expm_multiply(
        self, rc_ladder_system, rng
    ):
        s = rc_ladder_system
        v = rng.normal(size=s.dim)
        op = RationalKrylov(s.C, s.G, gamma=1e-11)
        y, basis = op.expm_multiply(v, 1e-11, tol=1e-10)
        assert np.allclose(basis.evaluate(1e-11), y)

    def test_reuse_at_larger_h_stays_accurate(self, mesh_system, rng):
        """The Fig. 5 property that justifies snapshot reuse."""
        s = mesh_system
        a = dense_a_matrix(s.C, s.G)
        v = rng.normal(size=s.dim)
        op = RationalKrylov(s.C, s.G, gamma=1e-11)
        tol = 1e-7 * np.linalg.norm(v)
        _, basis = op.expm_multiply(v, 1e-11, tol=tol, m_max=s.dim)
        err_small = np.linalg.norm(
            basis.evaluate(1e-11) - sla.expm(1e-11 * a) @ v
        )
        err_large = np.linalg.norm(
            basis.evaluate(8e-11) - sla.expm(8e-11 * a) @ v
        )
        assert err_large < 10.0 * max(err_small, tol)

    def test_evaluate_with_error_matches_parts(self, mesh_system, rng):
        s = mesh_system
        op = RationalKrylov(s.C, s.G, gamma=1e-11)
        v = rng.normal(size=s.dim)
        _, basis = op.expm_multiply(v, 1e-11, tol=1e-6 * np.linalg.norm(v))
        y, err = basis.evaluate_with_error(3e-11)
        assert np.allclose(y, basis.evaluate(3e-11))
        assert err == pytest.approx(basis.error_at(3e-11))

    def test_zero_vector_gives_empty_basis(self, rc_ladder_system):
        op = RationalKrylov(rc_ladder_system.C, rc_ladder_system.G, gamma=1e-11)
        y, basis = op.expm_multiply(np.zeros(rc_ladder_system.dim), 1e-11)
        assert basis.m == 0
        assert np.all(y == 0.0)
        assert basis.error_at(1e-10) == 0.0


class TestFactoryAndAccounting:
    @pytest.mark.parametrize("alias,cls", [
        ("mexp", StandardKrylov),
        ("MEXP", StandardKrylov),
        ("imatex", InvertedKrylov),
        ("I-MATEX", InvertedKrylov),
        ("rmatex", RationalKrylov),
        ("rational", RationalKrylov),
    ])
    def test_aliases(self, alias, cls, rc_ladder_system):
        op = make_krylov_operator(alias, rc_ladder_system.C, rc_ladder_system.G)
        assert isinstance(op, cls)

    def test_unknown_method_rejected(self, rc_ladder_system):
        with pytest.raises(ValueError, match="unknown"):
            make_krylov_operator("cholesky", rc_ladder_system.C,
                                 rc_ladder_system.G)

    def test_gamma_validation(self, rc_ladder_system):
        with pytest.raises(ValueError):
            RationalKrylov(rc_ladder_system.C, rc_ladder_system.G, gamma=0.0)

    def test_solve_counting(self, rc_ladder_system, rng):
        s = rc_ladder_system
        op = RationalKrylov(s.C, s.G, gamma=1e-11)
        assert op.n_solves == 0
        _, basis = op.expm_multiply(rng.normal(size=s.dim), 1e-11, tol=0.0,
                                    m_max=5)
        assert op.n_solves == basis.m

    def test_shape_mismatch_rejected(self, rc_ladder_system):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="identical shapes"):
            RationalKrylov(rc_ladder_system.C, sp.eye(3).tocsc())
