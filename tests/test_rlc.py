"""RLC system tests: package inductance through the whole solver stack."""

import numpy as np
import pytest

from repro.baselines import (
    reference_backward_euler,
    simulate_trapezoidal,
)
from repro.circuit import Netlist, assemble
from repro.core import MatexSolver, SolverOptions
from repro.dist import MatexScheduler
from repro.pdn import PdnConfig, WorkloadSpec, attach_pulse_loads, generate_power_grid


@pytest.fixture(scope="module")
def rlc_pdn():
    t_end = 2e-9
    net = generate_power_grid(PdnConfig(
        rows=8, cols=8, n_pads=2, l_package=2e-10, seed=9,
    ))
    attach_pulse_loads(net, WorkloadSpec(
        n_sources=12, n_shapes=4, t_end=t_end, time_grid_points=12, seed=9,
    ))
    return assemble(net), t_end


class TestRlcStructure:
    def test_inductor_branch_rows_present(self, rlc_pdn):
        system, _ = rlc_pdn
        net = system.netlist
        assert len(net.inductors) == 2
        assert system.dim == net.n_nodes + 2 + 2  # + V rows + L rows
        assert system.is_c_singular()  # V rows still carry no dynamics

    def test_series_rlc_resonance(self):
        """A plain series RLC rings at ω0 = 1/sqrt(LC); verify the
        simulated oscillation period against theory."""
        L, C, R = 1e-9, 1e-12, 0.5
        net = Netlist("rlc")
        net.add_voltage_source("V1", "in", "0", 1.0)
        net.add_inductor("L1", "in", "mid", L)
        net.add_resistor("R1", "mid", "out", R)
        net.add_capacitor("C1", "out", "0", C)
        system = assemble(net)
        t_end = 4e-10
        solver = MatexSolver(
            system, SolverOptions(method="rational", gamma=1e-12,
                                  eps_rel=1e-10),
        )
        grid = list(np.linspace(0, t_end, 801))
        from repro.core import build_schedule

        res = solver.simulate(
            t_end, x0=np.zeros(system.dim),
            schedule=build_schedule(system, t_end, global_points=grid),
        )
        v_out = res.voltage("out")
        # Zero crossings of (v_out - 1) give the half period.
        centered = v_out - 1.0
        crossings = np.where(np.diff(np.sign(centered)) != 0)[0]
        assert len(crossings) >= 2
        half_period = (res.times[crossings[1]] - res.times[crossings[0]])
        omega0 = 1.0 / np.sqrt(L * C)
        expected_half = np.pi / omega0
        assert half_period == pytest.approx(expected_half, rel=0.05)


class TestRlcAccuracy:
    @pytest.mark.parametrize("method", ["inverted", "rational"])
    def test_matex_matches_tr_golden(self, rlc_pdn, method):
        """Golden = fine TR with *every* step recorded.

        TR preserves oscillation amplitude (A-stable without the heavy
        damping BE would inflict on the package-L ringing); recording
        every step avoids the up-to-h/2 record-time rounding that would
        masquerade as solver error during fast ringing.
        """
        system, t_end = rlc_pdn
        solver = MatexSolver(
            system,
            SolverOptions(method=method, gamma=1e-10, eps_rel=1e-9),
        )
        res = solver.simulate(t_end)
        golden = simulate_trapezoidal(system, 2.5e-13, t_end)
        n = system.netlist.n_nodes
        diff = np.abs(res.sample(res.times)[:, :n]
                      - golden.sample(res.times)[:, :n])
        assert diff.max() < 1e-5

    def test_be_reference_damps_ringing(self, rlc_pdn):
        """Sanity on the substrate: first-order BE visibly damps the
        package-L oscillation relative to TR at the same step."""
        system, t_end = rlc_pdn
        h = 2e-12
        tr = simulate_trapezoidal(system, h, t_end)
        be = reference_backward_euler(system, t_end, h)
        n = system.netlist.n_nodes
        # Measure ringing energy as variance around the mean rail level.
        tr_var = float(np.var(tr.states[:, :n] - tr.states[:, :n].mean(0)))
        be_var = float(np.var(be.states[:, :n] - be.states[:, :n].mean(0)))
        assert be_var < tr_var

    def test_distributed_matches_single(self, rlc_pdn):
        system, t_end = rlc_pdn
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
        single = MatexSolver(system, opts).simulate(t_end)
        dist = MatexScheduler(system, opts).run(t_end)
        assert np.max(np.abs(dist.result.states - single.states)) < 1e-6
