"""Distributed execution with waveform overrides (split-bump) and
multiprocessing pickling of every message type."""

import numpy as np
import pytest

from repro.circuit import Netlist, Pulse, assemble
from repro.core import SolverOptions
from repro.dist import MatexScheduler, MultiprocessExecutor

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)


@pytest.fixture
def periodic_system():
    net = Netlist("periodic")
    for i in range(6):
        net.add_resistor(f"R{i}", "0" if i == 0 else f"w{i}", f"w{i + 1}", 1.0)
        net.add_capacitor(f"C{i}", f"w{i + 1}", "0", 2e-13)
    net.add_current_source(
        "I0", "w6", "0",
        Pulse(0.0, 1e-3, 1e-10, 2e-11, 8e-11, 2e-11, t_period=4e-10),
    )
    net.add_current_source(
        "I1", "w3", "0", Pulse(0.0, 2e-3, 2.5e-10, 2e-11, 4e-11, 2e-11)
    )
    return assemble(net)


class TestSplitBumpDistributed:
    def test_multiprocess_executor_with_overrides(self, periodic_system):
        """Tasks carrying waveform overrides must survive pickling."""
        s = periodic_system
        sched = MatexScheduler(s, OPTS, decomposition="bump-split")
        serial = sched.run(1e-9)
        mp = sched.run(
            1e-9, executor=MultiprocessExecutor(s, OPTS, max_workers=2)
        )
        assert np.allclose(serial.result.states, mp.result.states,
                           rtol=1e-12, atol=1e-15)

    def test_split_nodes_outnumber_sources(self, periodic_system):
        """Periodic source unrolled over 1ns at T=0.4ns: 3 bumps."""
        sched = MatexScheduler(periodic_system, OPTS,
                               decomposition="bump-split")
        groups = sched.groups(t_end=1e-9)
        # 3 bumps of I0 + 1 bump of I1 = 4 single-bump groups.
        assert len(groups) == 4

    def test_derived_system_shares_matrices(self, periodic_system):
        s = periodic_system
        derived = s.with_waveforms({0: s.waveforms[1]})
        assert derived.C is s.C and derived.G is s.G and derived.B is s.B
        assert derived.waveforms[0] is s.waveforms[1]

    def test_with_waveforms_bounds_checked(self, periodic_system):
        s = periodic_system
        with pytest.raises(IndexError):
            s.with_waveforms({99: s.waveforms[0]})
