"""Suppression-comment semantics: parsing, malformed attempts, unknown
codes, staleness, and the select-subset staleness guard."""

import textwrap

import pytest

from repro.analysis.lint import lint_paths, parse_suppressions
from repro.analysis.lint.core import LintError


def parse(source):
    return parse_suppressions(textwrap.dedent(source))


# -- parsing -----------------------------------------------------------------


def test_trailing_comment_targets_its_own_line():
    supps, problems = parse("x = 1\ny = 2  # repro: allow[RPL003] why\n")
    assert problems == []
    (supp,) = supps
    assert supp.codes == ("RPL003",)
    assert supp.reason == "why"
    assert supp.comment_line == 2
    assert supp.target_line == 2


def test_standalone_comment_targets_next_line():
    supps, _ = parse(
        """\
        # repro: allow[RPL003] seeding is the point of this helper
        seed_all()
        """
    )
    (supp,) = supps
    assert supp.comment_line == 1
    assert supp.target_line == 2


def test_multiple_codes_parse_with_whitespace():
    supps, problems = parse("x = 1  # repro: allow[RPL001, RPL005] both\n")
    assert problems == []
    assert supps[0].codes == ("RPL001", "RPL005")


def test_docstring_mention_is_not_a_suppression():
    supps, problems = parse(
        '''\
        def f():
            """Silence with '# repro: allow[RPL005] reason'."""
            return 1
        '''
    )
    assert supps == [] and problems == []


@pytest.mark.parametrize(
    "line,fragment",
    [
        ("x = 1  # repro: allow RPL005 forgot brackets", "malformed"),
        ("x = 1  # repro: allow[] nothing named", "no rule codes"),
        ("x = 1  # repro: allow[five] reason", "does not parse"),
        ("x = 1  # repro: allow[RPL005]", "no justification"),
    ],
)
def test_malformed_attempts_are_reported(line, fragment):
    supps, problems = parse(line + "\n")
    assert supps == []
    (problem,) = problems
    assert problem.line == 1
    assert fragment in problem.message


def test_unparseable_source_yields_nothing():
    assert parse("def broken(:\n") == ([], [])


# -- engine integration ------------------------------------------------------


def lint_source(tmp_path, source, **kwargs):
    path = tmp_path / "sample.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([str(path)], dynamic=False, **kwargs)


def test_valid_suppression_silences_the_finding(tmp_path):
    result = lint_source(
        tmp_path,
        """\
        import numpy as np

        np.random.seed(0)  # repro: allow[RPL003] demo fixture
        """,
    )
    assert result.clean


def test_unsuppressed_finding_survives(tmp_path):
    result = lint_source(tmp_path, "import numpy as np\nnp.random.seed(0)\n")
    assert [f.code for f in result.findings] == ["RPL003"]


def test_unknown_code_in_allow_is_rpl091(tmp_path):
    result = lint_source(tmp_path, "x = 1  # repro: allow[RPL999] nope\n")
    assert [f.code for f in result.findings] == ["RPL091"]


def test_meta_code_in_allow_is_rpl091(tmp_path):
    result = lint_source(tmp_path, "x = 1  # repro: allow[RPL092] nope\n")
    assert [f.code for f in result.findings] == ["RPL091"]
    assert "not suppressible" in result.findings[0].message


def test_stale_suppression_is_rpl092(tmp_path):
    result = lint_source(
        tmp_path, "x = 1  # repro: allow[RPL003] nothing here anymore\n"
    )
    (finding,) = result.findings
    assert finding.code == "RPL092"
    assert "nothing here anymore" in finding.message


def test_malformed_attempt_is_rpl090(tmp_path):
    result = lint_source(tmp_path, "x = 1  # repro: allow RPL003 oops\n")
    assert [f.code for f in result.findings] == ["RPL090"]


def test_select_subset_does_not_flag_skipped_rules_suppressions(tmp_path):
    # The RPL003 suppression *is* stale, but RPL003 was not checked in
    # this invocation — staleness must not be reported.
    result = lint_source(
        tmp_path,
        "x = 1  # repro: allow[RPL003] guarded rule not selected\n",
        select=["RPL001", "RPL092"],
    )
    assert result.clean


def test_select_unknown_code_is_a_usage_error(tmp_path):
    with pytest.raises(LintError):
        lint_source(tmp_path, "x = 1\n", select=["RPL999"])
