"""Framework-level tests: registry integrity, file discovery, CLI exit
codes and formats, the ``repro lint`` subcommand, the ``python -m
repro.analysis`` entry point — and the self-enforcement gate that lints
this repository's own ``src`` and ``tests`` trees."""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, get_rule, known_codes, lint_paths
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.core import (
    LintError,
    is_test_file,
    iter_python_files,
)
from repro.cli import main as repro_main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "lint_fixtures"


# -- registry ----------------------------------------------------------------


def test_registry_is_ordered_and_documented():
    rules = all_rules()
    codes = [r.code for r in rules]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    for rule in rules:
        assert re.fullmatch(r"RPL\d{3}", rule.code)
        assert rule.name and rule.summary and rule.invariant
        assert rule.established.startswith("PR ")


def test_get_rule_unknown_code_raises():
    with pytest.raises(LintError):
        get_rule("RPL999")


def test_known_codes_cover_all_families():
    codes = known_codes()
    for family in ("RPL001", "RPL010", "RPL020", "RPL030", "RPL090"):
        assert family in codes


# -- discovery ---------------------------------------------------------------


def test_fixture_directory_is_excluded_from_walks():
    files = iter_python_files([str(REPO / "tests")])
    assert files, "tests/ walk found nothing"
    assert not [f for f in files if "lint_fixtures" in f.parts]


def test_explicit_fixture_file_is_always_linted():
    files = iter_python_files([str(FIXTURES / "rpl003_bad.py")])
    assert len(files) == 1


def test_missing_path_is_a_usage_error():
    with pytest.raises(LintError):
        lint_paths([str(REPO / "no_such_tree")])


def test_is_test_file():
    assert is_test_file("tests/test_lint_framework.py")
    assert is_test_file("anywhere/test_probe.py")
    assert not is_test_file("src/repro/linalg/krylov.py")


# -- CLI ---------------------------------------------------------------------


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(path), "--no-dynamic"]) == 0
    assert "clean: 1 file(s), 0 findings" in capsys.readouterr().out


def test_cli_findings_exit_one_with_location(capsys):
    bad = FIXTURES / "rpl003_bad.py"
    code = lint_main([str(bad), "--select", "RPL003", "--no-dynamic"])
    out = capsys.readouterr().out
    assert code == 1
    assert f"{bad}:9:5: RPL003" in out


def test_cli_json_format(capsys):
    bad = FIXTURES / "rpl003_bad.py"
    code = lint_main(
        [str(bad), "--format", "json", "--select", "RPL003", "--no-dynamic"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["count"] == 2 == len(payload["findings"])
    assert payload["findings"][0]["code"] == "RPL003"


def test_cli_usage_errors_exit_two(tmp_path, capsys):
    assert lint_main([str(tmp_path / "missing")]) == 2
    ok = tmp_path / "ok.py"
    ok.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(ok), "--select", "BOGUS"]) == 2
    assert "repro lint: error" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n", encoding="utf-8")
    assert repro_main(["lint", str(path), "--no-dynamic"]) == 0
    assert "clean" in capsys.readouterr().out


def test_python_dash_m_entry_point(tmp_path):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n", encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis",
         str(path), "--no-dynamic", "--format", "json"],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout)["count"] == 0


# -- self-enforcement --------------------------------------------------------


def test_repository_src_and_tests_are_lint_clean():
    result = lint_paths([str(REPO / "src"), str(REPO / "tests")])
    assert result.files > 100
    pretty = "\n".join(
        f"{f.path}:{f.line}: {f.code} {f.message}" for f in result.findings
    )
    assert result.clean, f"repo tree is not lint-clean:\n{pretty}"
