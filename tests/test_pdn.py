"""Unit tests for the PDN generators, workloads, suite and stiffness."""

import numpy as np
import pytest

from repro.circuit import Netlist, assemble
from repro.pdn import (
    PdnConfig,
    SUITE,
    WorkloadSpec,
    attach_pulse_loads,
    build_case,
    case_names,
    eigenvalue_extremes,
    generate_power_grid,
    make_bump_library,
    stiff_rc_mesh,
    stiffness,
)


class TestPowerGrid:
    def test_structure_counts(self):
        cfg = PdnConfig(rows=8, cols=10, n_pads=3, coarse_pitch=4)
        net = generate_power_grid(cfg)
        assert len(net.capacitors) == 80          # one per grid node
        assert len(net.voltage_sources) == 3
        system = assemble(net)
        assert system.is_c_singular()             # V-source branch rows

    def test_deterministic_given_seed(self):
        a = generate_power_grid(PdnConfig(rows=6, cols=6, seed=5))
        b = generate_power_grid(PdnConfig(rows=6, cols=6, seed=5))
        sa, sb = assemble(a), assemble(b)
        assert np.allclose(sa.G.todense(), sb.G.todense())
        assert np.allclose(sa.C.todense(), sb.C.todense())

    def test_dc_rails_near_vdd(self):
        cfg = PdnConfig(rows=8, cols=8, n_pads=4, vdd=1.8)
        net = generate_power_grid(cfg)
        system = assemble(net)
        from repro.baselines import dc_operating_point

        x, _ = dc_operating_point(system)
        rails = x[: system.netlist.n_nodes]
        assert np.all(rails > 1.7)                # unloaded grid sits at VDD
        assert np.all(rails <= 1.8 + 1e-9)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PdnConfig(rows=1, cols=5)
        with pytest.raises(ValueError):
            PdnConfig(n_pads=0)


class TestWorkloads:
    def test_library_is_distinct_and_fits(self):
        spec = WorkloadSpec(n_sources=50, n_shapes=12, t_end=1e-8,
                            time_grid_points=40)
        lib = make_bump_library(spec)
        assert len(lib) == 12
        assert len({s.key() for s in lib}) == 12
        for s in lib:
            assert s.t_delay + s.t_rise + s.t_width + s.t_fall < 1e-8

    def test_clock_grid_bounds_gts(self):
        """Many shapes, few distinct transition times (the clock grid)."""
        net = generate_power_grid(PdnConfig(rows=8, cols=8))
        spec = WorkloadSpec(n_sources=120, n_shapes=30, t_end=1e-8,
                            time_grid_points=25)
        attach_pulse_loads(net, spec)
        system = assemble(net)
        gts = system.global_transition_spots(1e-8)
        # 30 shapes x 4 corners = 120 raw spots, but they share the grid.
        assert len(gts) <= 25 + 2

    def test_every_shape_used(self):
        net = generate_power_grid(PdnConfig(rows=8, cols=8))
        spec = WorkloadSpec(n_sources=20, n_shapes=20, t_end=1e-8)
        lib = attach_pulse_loads(net, spec)
        shapes_used = {
            i.waveform.bump_shape().key() for i in net.current_sources
        }
        assert shapes_used == {s.key() for s in lib}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_sources=5, n_shapes=10)
        with pytest.raises(ValueError):
            WorkloadSpec(time_grid_points=2)

    def test_loads_avoid_pad_nodes(self):
        net = generate_power_grid(PdnConfig(rows=8, cols=8, n_pads=2))
        attach_pulse_loads(net, WorkloadSpec(n_sources=30, n_shapes=5))
        for src in net.current_sources:
            assert not src.pos.startswith("pad")


class TestStiffness:
    def test_two_node_analytic(self):
        # Two decoupled RC poles: lam_i = -1/(R_i C_i).
        net = Netlist("two-pole")
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_capacitor("C1", "a", "0", 1e-12)
        net.add_resistor("R2", "b", "0", 1.0)
        net.add_capacitor("C2", "b", "0", 1e-9)
        system = assemble(net)
        lam_min, lam_max = eigenvalue_extremes(system)
        assert lam_min == pytest.approx(-1e12, rel=1e-6)
        assert lam_max == pytest.approx(-1e9, rel=1e-6)
        assert stiffness(system) == pytest.approx(1e3, rel=1e-6)

    def test_mesh_knobs_move_stiffness(self):
        mild = assemble(stiff_rc_mesh(8, 8, fast_ratio=2, slow_ratio=1e2))
        stiff_ = assemble(stiff_rc_mesh(8, 8, fast_ratio=20, slow_ratio=1e6))
        assert stiffness(stiff_) > 100 * stiffness(mild)

    def test_mesh_validation(self):
        with pytest.raises(ValueError):
            stiff_rc_mesh(1, 5, fast_ratio=2)
        with pytest.raises(ValueError):
            stiff_rc_mesh(5, 5, fast_ratio=0.5)

    def test_mesh_c_invertible(self):
        system = assemble(stiff_rc_mesh(6, 6, fast_ratio=5, slow_ratio=10))
        assert not system.is_c_singular()


class TestSuite:
    def test_case_names_order(self):
        assert case_names() == ["pg1t", "pg2t", "pg3t",
                                "pg4t", "pg5t", "pg6t"]

    def test_sizes_monotone(self):
        dims = [SUITE[n].grid.rows * SUITE[n].grid.cols for n in case_names()]
        assert dims == sorted(dims)

    def test_pg4t_few_groups(self):
        assert SUITE["pg4t"].n_groups == 15
        assert SUITE["pg1t"].n_groups == 100

    def test_build_case_smallest(self):
        system, case = build_case("pg1t")
        assert case.name == "pg1t"
        assert system.dim > 1000
        assert system.is_c_singular()
        assert len(system.netlist.current_sources) == 800
