"""Unit tests for the dense Padé matrix exponential."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.linalg import expm, expm_action, expm_e1


class TestExpmAccuracy:
    @pytest.mark.parametrize("n", [2, 5, 13, 40])
    def test_matches_scipy_random(self, n, rng):
        a = rng.normal(size=(n, n))
        assert np.allclose(expm(a), sla.expm(a), rtol=1e-12, atol=1e-13)

    def test_matches_scipy_large_norm(self, rng):
        a = 50.0 * rng.normal(size=(8, 8))  # forces scaling-and-squaring
        assert np.allclose(expm(a), sla.expm(a), rtol=1e-9, atol=1e-9)

    def test_stiff_negative_spectrum(self):
        a = np.diag([-1e3, -1.0, -1e-3])
        assert np.allclose(expm(a), np.diag(np.exp([-1e3, -1.0, -1e-3])))

    def test_zero_matrix(self):
        assert np.allclose(expm(np.zeros((4, 4))), np.eye(4))

    def test_nilpotent_exact(self):
        # exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        assert np.allclose(expm(a), [[1.0, 1.0], [0.0, 1.0]])

    def test_1x1_and_0x0(self):
        assert expm(np.array([[2.0]]))[0, 0] == pytest.approx(np.exp(2.0))
        assert expm(np.zeros((0, 0))).shape == (0, 0)


class TestExpmValidation:
    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            expm(np.zeros((2, 3)))

    def test_nonfinite_rejected(self):
        a = np.array([[np.nan, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="non-finite"):
            expm(a)


class TestHelpers:
    def test_expm_e1_is_first_column(self, rng):
        a = rng.normal(size=(6, 6))
        assert np.allclose(expm_e1(a), expm(a)[:, 0])

    def test_expm_action(self, rng):
        a = rng.normal(size=(6, 6))
        v = rng.normal(size=6)
        assert np.allclose(expm_action(a, v), sla.expm(a) @ v)
