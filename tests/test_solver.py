"""Unit and accuracy tests for the MATEX circuit solver (Alg. 2)."""

import numpy as np
import pytest

from repro.baselines import reference_backward_euler
from repro.core import MatexSolver, SolverOptions, build_schedule
from repro.linalg import exact_transient

METHODS = ["standard", "inverted", "rational"]


class TestAccuracyAgainstOracle:
    @pytest.mark.parametrize("method", METHODS)
    def test_matches_exact_etd(self, method, mesh_system):
        s = mesh_system
        t_end = 1e-9
        x0 = np.zeros(s.dim)
        times, X = exact_transient(s, x0, t_end)
        solver = MatexSolver(
            s, SolverOptions(method=method, gamma=1e-10, eps_rel=1e-8)
        )
        res = solver.simulate(t_end, x0=x0)
        assert np.allclose(res.times, times)
        assert np.max(np.abs(res.states - X)) < 1e-6

    def test_dc_initial_condition_default(self, small_pdn_system):
        s = small_pdn_system
        solver = MatexSolver(s, SolverOptions(method="rational", gamma=1e-11))
        res = solver.simulate(1e-9)
        # Initial state is the DC operating point: pad at 1.8 V.
        assert s.node_voltage(res.states[0], "pad") == pytest.approx(1.8)
        assert res.stats.n_solves_dc == 1

    def test_singular_c_regular_run(self, small_pdn_system):
        """R-MATEX on singular C vs tiny-step BE (no regularization)."""
        s = small_pdn_system
        t_end = 1e-9
        solver = MatexSolver(
            s, SolverOptions(method="rational", gamma=1e-11, eps_rel=1e-8)
        )
        res = solver.simulate(t_end)
        ref = reference_backward_euler(
            s, t_end, 1e-13, record_times=list(res.times)
        )
        diff = np.abs(res.sample(res.times)[:, : s.netlist.n_nodes]
                      - ref.sample(res.times)[:, : s.netlist.n_nodes])
        assert diff.max() < 5e-5


class TestReuseMechanics:
    def test_snapshots_reuse_basis(self, mesh_system):
        s = mesh_system
        sched = build_schedule(s, 1e-9, local_inputs=(0, 2))
        solver = MatexSolver(
            s, SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8),
            deviation_mode=True,
        )
        res = solver.simulate(1e-9, active_inputs=[0, 2], schedule=sched)
        st = res.stats
        assert st.n_reuses > 0
        assert st.n_krylov_bases + st.n_reuses == st.n_steps

    def test_reuse_is_accurate(self, mesh_system):
        s = mesh_system
        t_end = 1e-9
        sched = build_schedule(s, t_end, local_inputs=(0, 2))
        times, X = exact_transient(s, np.zeros(s.dim), t_end, active=[0, 2],
                                   extra_times=list(sched.points))
        solver = MatexSolver(
            s, SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8),
            deviation_mode=True,
        )
        res = solver.simulate(t_end, active_inputs=[0, 2], schedule=sched)
        lookup = {round(float(t), 18): X[i] for i, t in enumerate(times)}
        for i, t in enumerate(res.times):
            ref = lookup[round(float(t), 18)]
            assert np.max(np.abs(res.states[i] - ref)) < 1e-6

    def test_fewer_solves_with_decomposition(self, mesh_system):
        s = mesh_system
        t_end = 1e-9
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
        full = MatexSolver(s, opts).simulate(t_end, x0=np.zeros(s.dim))
        sched = build_schedule(s, t_end, local_inputs=(1,))
        part = MatexSolver(s, opts, deviation_mode=True).simulate(
            t_end, active_inputs=[1], schedule=sched
        )
        assert (part.stats.n_solves_transient
                < full.stats.n_solves_transient)


class TestBookkeeping:
    def test_stats_consistency(self, mesh_system):
        solver = MatexSolver(
            mesh_system, SolverOptions(method="rational", gamma=1e-10)
        )
        res = solver.simulate(1e-9, x0=np.zeros(mesh_system.dim))
        st = res.stats
        assert st.n_steps == len(res.times) - 1
        assert len(st.krylov_dims) == st.n_krylov_bases
        assert st.n_solves_krylov == sum(st.krylov_dims)
        assert st.n_solves_etd == 3 * st.n_krylov_bases
        assert st.transient_seconds >= 0.0

    def test_inverted_shares_g_factorization(self, mesh_system):
        solver = MatexSolver(
            mesh_system, SolverOptions(method="inverted", gamma=1e-10)
        )
        assert solver.workspace.lu_g is solver.op.lu

    def test_rational_has_two_factorizations(self, mesh_system):
        solver = MatexSolver(
            mesh_system, SolverOptions(method="rational", gamma=1e-10)
        )
        assert solver.workspace.lu_g is not solver.op.lu
        assert solver.factor_seconds >= solver.op.factor_seconds

    def test_zero_inputs_hold_equilibrium(self, rc_ladder_system):
        """With u ≡ 0 and x0 = 0 nothing should move."""
        s = rc_ladder_system
        solver = MatexSolver(
            s, SolverOptions(method="rational", gamma=1e-11),
            deviation_mode=True,
        )
        sched = build_schedule(s, 1e-9, local_inputs=())
        res = solver.simulate(1e-9, active_inputs=[], schedule=sched)
        assert np.allclose(res.states, 0.0)

    def test_method_label(self, mesh_system):
        solver = MatexSolver(mesh_system, SolverOptions(method="imatex"))
        res = solver.simulate(5e-10, x0=np.zeros(mesh_system.dim))
        assert res.method == "matex-inverted"
