"""Tests for the split-bump decomposition (paper Fig. 3, Groups 1-4)."""

import numpy as np
import pytest

from repro.circuit import Netlist, Pulse, assemble
from repro.core import (
    MatexSolver,
    SolverOptions,
    decompose_by_bump_split,
    merge_to_limit,
)
from repro.dist import MatexScheduler

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)


@pytest.fixture
def fig3_system():
    """The paper's Fig. 3 scenario.

    Source #1 is periodic (bumps 1.1 and 1.2), source #2 has one bump,
    source #3's bump coincides exactly with bump #1.2 — so the split
    decomposition must produce Fig. 3's groups, with #1.2 and #3 merged.
    """
    net = Netlist("fig3")
    for i in range(5):
        net.add_resistor(f"R{i}", "0" if i == 0 else f"n{i}", f"n{i + 1}", 1.0)
        net.add_capacitor(f"C{i}", f"n{i + 1}", "0", 1e-13)
    net.add_current_source(
        "I1", "n1", "0",
        Pulse(0.0, 1e-3, 1e-10, 2e-11, 1e-10, 2e-11, t_period=5e-10),
    )
    net.add_current_source(
        "I2", "n3", "0", Pulse(0.0, 2e-3, 3e-10, 2e-11, 5e-11, 2e-11)
    )
    net.add_current_source(
        "I3", "n5", "0", Pulse(0.0, 5e-4, 6e-10, 2e-11, 1e-10, 2e-11)
    )
    return assemble(net)


class TestSplitBumps:
    def test_periodic_pulse_unrolls(self):
        p = Pulse(0.2e-3, 1e-3, 1e-10, 2e-11, 1e-10, 2e-11, t_period=4e-10)
        bumps = p.split_bumps(1e-9)
        assert len(bumps) == 3  # delays 1e-10, 5e-10, 9e-10
        assert [b.t_delay for b in bumps] == pytest.approx(
            [1e-10, 5e-10, 9e-10]
        )
        # Baseline-0 with the original amplitude.
        assert all(b.v1 == 0.0 for b in bumps)
        assert all(b.v2 == pytest.approx(8e-4) for b in bumps)

    def test_sum_of_bumps_is_deviation(self):
        p = Pulse(0.2e-3, 1e-3, 1e-10, 2e-11, 1e-10, 2e-11, t_period=4e-10)
        bumps = p.split_bumps(1e-9)
        for t in np.linspace(0.0, 1e-9, 101, endpoint=False):
            total = sum(b.value(float(t)) for b in bumps)
            assert total == pytest.approx(p.value(float(t)) - p.value(0.0),
                                          abs=1e-12)

    def test_nonperiodic_single_bump(self):
        p = Pulse(0.0, 1e-3, 1e-10, 2e-11, 1e-10, 2e-11)
        assert len(p.split_bumps(1e-9)) == 1


class TestFig3Grouping:
    def test_groups_match_figure(self, fig3_system):
        groups = decompose_by_bump_split(fig3_system, 1e-9)
        # Fig. 3: bump 1.1 alone, bump 2.1 alone, {bump 1.2, source 3}.
        assert len(groups) == 3
        shared = [g for g in groups if len(g.waveform_overrides) == 2]
        assert len(shared) == 1
        assert set(shared[0].input_columns) == {0, 2}

    def test_column_appears_in_multiple_groups(self, fig3_system):
        groups = decompose_by_bump_split(fig3_system, 1e-9)
        owners = [g for g in groups if 0 in g.input_columns]
        assert len(owners) == 2  # the two bumps of source #1

    def test_validation(self, fig3_system):
        with pytest.raises(ValueError):
            decompose_by_bump_split(fig3_system, 0.0)

    def test_merge_refuses_overrides(self, fig3_system):
        groups = decompose_by_bump_split(fig3_system, 1e-9)
        with pytest.raises(ValueError, match="cannot merge"):
            merge_to_limit(groups, 1)


class TestSplitSimulation:
    def test_split_matches_single_node(self, fig3_system):
        t_end = 1e-9
        single = MatexSolver(fig3_system, OPTS).simulate(t_end)
        dres = MatexScheduler(
            fig3_system, OPTS, decomposition="bump-split"
        ).run(t_end)
        assert np.max(np.abs(dres.result.states - single.states)) < 1e-9

    def test_split_matches_plain_bump(self, fig3_system):
        t_end = 1e-9
        a = MatexScheduler(fig3_system, OPTS, decomposition="bump").run(t_end)
        b = MatexScheduler(
            fig3_system, OPTS, decomposition="bump-split"
        ).run(t_end)
        assert np.max(np.abs(a.result.states - b.result.states)) < 1e-9

    def test_split_node_has_fewer_lts(self, fig3_system):
        """A split node sees one bump: at most 5 Krylov generations."""
        dres = MatexScheduler(
            fig3_system, OPTS, decomposition="bump-split"
        ).run(1e-9)
        assert all(s.n_krylov_bases <= 6 for s in dres.node_stats)

    def test_groups_requires_horizon(self, fig3_system):
        sched = MatexScheduler(fig3_system, OPTS, decomposition="bump-split")
        with pytest.raises(ValueError, match="horizon"):
            sched.groups()
