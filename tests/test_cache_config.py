"""Configurable FACTORIZATION_CACHE limits and eviction accounting."""

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest
import scipy.sparse as sp

from repro.linalg.lu import (
    DEFAULT_CACHE_MAX_BYTES,
    DEFAULT_CACHE_MAX_ENTRIES,
    ENV_CACHE_MAX_BYTES,
    ENV_CACHE_MAX_ENTRIES,
    FactorizationCache,
    _limit_from_env,
    parse_byte_size,
)


def diag(k: float, n: int = 8) -> sp.csc_matrix:
    return sp.identity(n, format="csc") * k


class TestParseByteSize:
    @pytest.mark.parametrize("text,expected", [
        ("1024", 1024),
        ("4k", 4 << 10),
        ("4KiB", 4 << 10),
        ("512M", 512 << 20),
        ("2gb", 2 << 30),
        ("1.5M", int(1.5 * (1 << 20))),
        (123, 123),
    ])
    def test_suffixes(self, text, expected):
        assert parse_byte_size(text) == expected

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_byte_size("lots")


class TestEnvLimits:
    def test_valid_values_are_used(self, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_ENTRIES, "7")
        assert _limit_from_env(
            ENV_CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_ENTRIES, int
        ) == 7
        monkeypatch.setenv(ENV_CACHE_MAX_BYTES, "64M")
        assert _limit_from_env(
            ENV_CACHE_MAX_BYTES, DEFAULT_CACHE_MAX_BYTES, parse_byte_size
        ) == 64 << 20

    def test_invalid_values_warn_and_fall_back(self, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_MAX_ENTRIES, "banana")
        with pytest.warns(RuntimeWarning, match="ignoring invalid"):
            value = _limit_from_env(
                ENV_CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_ENTRIES, int
            )
        assert value == DEFAULT_CACHE_MAX_ENTRIES
        monkeypatch.setenv(ENV_CACHE_MAX_ENTRIES, "0")
        with pytest.warns(RuntimeWarning):
            assert _limit_from_env(
                ENV_CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_ENTRIES, int
            ) == DEFAULT_CACHE_MAX_ENTRIES

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_MAX_ENTRIES, raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _limit_from_env(
                ENV_CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_ENTRIES, int
            ) == DEFAULT_CACHE_MAX_ENTRIES

    def test_process_wide_cache_reads_env_at_import(self):
        """A fresh interpreter sizes FACTORIZATION_CACHE from the env."""
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env[ENV_CACHE_MAX_ENTRIES] = "5"
        env[ENV_CACHE_MAX_BYTES] = "8M"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        out = subprocess.check_output(
            [sys.executable, "-c",
             "from repro.linalg.lu import FACTORIZATION_CACHE as c; "
             "print(c.max_entries, c.max_bytes)"],
            env=env, text=True,
        )
        assert out.split() == ["5", str(8 << 20)]


class TestEvictionAccounting:
    def test_entry_limit_evictions_are_counted(self):
        cache = FactorizationCache(max_entries=2)
        for k in (1.0, 2.0, 3.0):
            cache.factor(diag(k))
        assert len(cache) == 2
        assert cache.evictions == 1
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["max_entries"] == 2

    def test_configure_shrink_evicts_and_counts(self):
        cache = FactorizationCache(max_entries=8)
        for k in (1.0, 2.0, 3.0, 4.0):
            cache.factor(diag(k))
        cache.configure(max_entries=1)
        assert len(cache) == 1
        assert cache.evictions == 3
        # The surviving entry is the most recently used.
        hits0 = cache.hits
        cache.factor(diag(4.0))
        assert cache.hits == hits0 + 1

    def test_configure_validates(self):
        cache = FactorizationCache()
        with pytest.raises(ValueError):
            cache.configure(max_entries=0)
        with pytest.raises(ValueError):
            cache.configure(max_bytes=0)

    def test_clear_zeroes_evictions(self):
        cache = FactorizationCache(max_entries=1)
        cache.factor(diag(1.0))
        cache.factor(diag(2.0))
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0
        assert cache.stats()["resident_bytes"] == 0


class TestEvictionsSurfaceInResults:
    def test_distributed_result_reports_thrash(self, mesh_system):
        """A too-small cache during a run shows up on the result."""
        from repro.core import SolverOptions
        from repro.dist import MatexScheduler
        from repro.linalg.lu import FACTORIZATION_CACHE

        stats0 = FACTORIZATION_CACHE.stats()
        FACTORIZATION_CACHE.clear()
        try:
            FACTORIZATION_CACHE.configure(max_entries=1)
            dres = MatexScheduler(
                mesh_system, SolverOptions(method="rational", gamma=1e-10)
            ).run(1e-9)
            # G and C+gammaG fight over a single slot: must evict.
            assert dres.factor_cache_evictions >= 1
        finally:
            FACTORIZATION_CACHE.configure(
                max_entries=stats0["max_entries"],
                max_bytes=stats0["max_bytes"],
            )
            FACTORIZATION_CACHE.clear()
