"""Property-based tests on system-level invariants (hypothesis).

The heart of MATEX is linear-system superposition; these tests verify it
on randomly generated RC circuits and inputs, plus structural MNA
invariants that must hold for any generated topology.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Netlist, Pulse, assemble
from repro.core import MatexSolver, SolverOptions
from repro.linalg import exact_transient


@st.composite
def random_rc_circuit(draw):
    """Small random RC ladder/tree with 2 pulse sources."""
    n = draw(st.integers(min_value=3, max_value=8))
    net = Netlist("prop-rc")
    for i in range(n):
        parent = "0" if i == 0 else f"p{draw(st.integers(0, i - 1))}"
        r = draw(st.floats(0.5, 5.0))
        c = draw(st.floats(5e-14, 5e-13))
        net.add_resistor(f"R{i}", parent, f"p{i}", r)
        net.add_capacitor(f"C{i}", f"p{i}", "0", c)
    for k in range(2):
        node = f"p{draw(st.integers(0, n - 1))}"
        peak = draw(st.floats(1e-4, 5e-3))
        delay = draw(st.floats(5e-11, 3e-10))
        net.add_current_source(
            f"I{k}", node, "0",
            Pulse(0.0, peak, delay, 2e-11, 1e-10, 2e-11),
        )
    return net


@given(net=random_rc_circuit())
@settings(max_examples=15, deadline=None)
def test_superposition_of_sources(net):
    """response(u0 + u1) == response(u0) + response(u1), zero IC."""
    system = assemble(net)
    t_end = 8e-10
    x0 = np.zeros(system.dim)
    gts = system.global_transition_spots(t_end)
    _, full = exact_transient(system, x0, t_end, extra_times=gts)
    _, part0 = exact_transient(system, x0, t_end, active=[0], extra_times=gts)
    _, part1 = exact_transient(system, x0, t_end, active=[1], extra_times=gts)
    scale = max(1.0, np.abs(full).max())
    assert np.allclose(part0 + part1, full, atol=1e-8 * scale)


@given(net=random_rc_circuit())
@settings(max_examples=10, deadline=None)
def test_matex_matches_oracle_on_random_circuits(net):
    system = assemble(net)
    t_end = 8e-10
    x0 = np.zeros(system.dim)
    times, X = exact_transient(system, x0, t_end)
    solver = MatexSolver(
        system, SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-9)
    )
    res = solver.simulate(t_end, x0=x0)
    scale = max(np.abs(X).max(), 1e-6)
    assert np.max(np.abs(res.states - X)) < 1e-5 * scale + 1e-12


@given(net=random_rc_circuit())
@settings(max_examples=15, deadline=None)
def test_mna_structural_invariants(net):
    system = assemble(net)
    g = np.asarray(system.G.todense())
    c = np.asarray(system.C.todense())
    # RC-only MNA: both matrices symmetric, G PD (grounded), C PSD.
    assert np.allclose(g, g.T)
    assert np.allclose(c, c.T)
    eig_g = np.linalg.eigvalsh(g)
    eig_c = np.linalg.eigvalsh(c)
    assert eig_g.min() > 0.0
    assert eig_c.min() >= -1e-25


@given(
    net=random_rc_circuit(),
    scale=st.floats(0.25, 4.0),
)
@settings(max_examples=10, deadline=None)
def test_response_scales_linearly(net, scale):
    """Scaling every input by a scales the zero-IC response by a."""
    system = assemble(net)
    t_end = 8e-10
    x0 = np.zeros(system.dim)
    _, base = exact_transient(system, x0, t_end)

    scaled_net = Netlist("scaled")
    for r in net.resistors:
        scaled_net.add_resistor(r.name, r.pos, r.neg, r.resistance)
    for cp in net.capacitors:
        scaled_net.add_capacitor(cp.name, cp.pos, cp.neg, cp.capacitance)
    for i in net.current_sources:
        w = i.waveform
        scaled_net.add_current_source(
            i.name, i.pos, i.neg,
            Pulse(w.v1 * scale, w.v2 * scale, w.t_delay, w.t_rise,
                  w.t_width, w.t_fall),
        )
    scaled_system = assemble(scaled_net)
    _, scaled = exact_transient(scaled_system, x0, t_end)
    # The dense oracle is exact only to expm accuracy, and the scaled
    # input changes the augmented matrix norm — the Padé scaling/
    # squaring branch can differ between the two runs.  A hypothesis-
    # found 3-node RC net with scale=4.0 measured a worst relative
    # deviation of 1.17e-5 between the two oracle runs (just over
    # numpy's default rtol=1e-5), flaking this test with the original
    # absolute-only tolerance.  Linearity violations from an actual bug
    # would be O(1), so 1e-4 relative keeps the property sharp.
    tol = 1e-9 * max(1.0, np.abs(scaled).max())
    assert np.allclose(scaled, scale * base, rtol=1e-4, atol=tol)
