"""Smoke + shape tests for the experiment drivers (scaled-down configs).

The full configurations run in benchmarks/; here each driver runs on a
tiny instance and the *shape* assertions of the paper are checked:
MEXP's basis bigger than I-/R-MATEX's, Fig. 5's error-vs-h decrease,
distributed beating fixed-step TR, etc.
"""

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.gamma_ablation import run_gamma_ablation
from repro.experiments.runner import main as runner_main
from repro.experiments.speedup_model import fit_model_constants
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        _, rows = run_table1(
            rows=10, cols=10, m_max=150,
            levels=[("low", 8.0, 1e3), ("high", 40.0, 1e8)],
        )
        return rows

    def test_all_methods_accurate(self, rows):
        assert all(r.err_pct < 1.0 for r in rows)

    def test_mexp_needs_bigger_basis(self, rows):
        by = {(r.level, r.method): r for r in rows}
        for level in ("low", "high"):
            assert by[(level, "standard")].ma > by[(level, "inverted")].ma
            assert by[(level, "standard")].ma > by[(level, "rational")].ma

    def test_mexp_basis_grows_with_stiffness(self, rows):
        by = {(r.level, r.method): r for r in rows}
        assert by[("high", "standard")].mp > by[("low", "standard")].mp

    def test_speedups_positive(self, rows):
        assert all(r.speedup_vs_mexp > 0 for r in rows)


class TestFig5:
    @pytest.fixture(scope="class")
    def points(self):
        _, points = run_fig5(rows=6, cols=6, dims=[4, 8],
                             steps=[1e-12, 1e-11, 1e-10])
        return points

    def test_error_decreases_with_h(self, points):
        """The paper's Fig. 5 observation, for each fixed m."""
        for m in {p.m for p in points}:
            errs = [p.error for p in points if p.m == m]
            assert errs[-1] < errs[0]

    def test_error_decreases_with_m(self, points):
        by_h = {}
        for p in points:
            by_h.setdefault(p.h, {})[p.m] = p.error
        for d in by_h.values():
            ms = sorted(d)
            assert d[ms[-1]] <= d[ms[0]]


class TestTable3Shape:
    def test_distributed_beats_fixed_tr(self):
        _, rows = run_table3(cases=["pg1t"], golden_h=None)
        row = rows[0]
        assert row.n_groups == 100
        assert row.spdp4 > 2.0          # transient-part speedup
        assert row.max_err < 1e-3       # agrees with the TR baseline
        assert row.avg_node_pairs < 100  # ~60 pairs/node in the paper


class TestTable2Shape:
    def test_matex_beats_adaptive_tr_on_pg4t(self):
        # pg4t: few transition spots — the paper's best case.
        _, rows = run_table2(cases=["pg4t"])
        row = rows[0]
        assert row.spdp2 > 1.0
        assert row.tr_adaptive_factorizations > 2


class TestAncillary:
    def test_speedup_model_constants_positive(self):
        from repro.pdn import build_case

        system, _ = build_case("pg1t")
        model = fit_model_constants(system, n_probe=5)
        assert model.t_bs > 0.0
        assert model.t_he > 0.0

    def test_gamma_ablation_flat_near_step_scale(self):
        _, samples = run_gamma_ablation(
            case="pg1t", gammas=[1e-11, 1e-10, 1e-9], golden_h=2e-12,
        )
        errs = [s.max_err for s in samples]
        dims = [s.mp for s in samples]
        # Within ±1 decade of the step scale, accuracy stays good and
        # basis sizes stay small — the paper's insensitivity claim.
        assert max(errs) < 1e-3
        assert max(dims) <= 4 * min(dims) + 4

    def test_runner_cli(self, capsys):
        assert runner_main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
