"""Unit tests for the fixed-step baselines (TR, BE, FE) and references."""

import numpy as np
import pytest

from repro.baselines import (
    dc_operating_point,
    reference_backward_euler,
    reference_exact,
    simulate_backward_euler,
    simulate_forward_euler,
    simulate_trapezoidal,
)
from repro.linalg import FactorizationError, exact_transient


def max_err_vs_exact(result, system, t_end):
    times, X = exact_transient(system, np.zeros(system.dim), t_end,
                               extra_times=list(result.times))
    lookup = {round(float(t), 18): X[i] for i, t in enumerate(times)}
    worst = 0.0
    for i, t in enumerate(result.times):
        key = round(float(t), 18)
        if key in lookup:
            worst = max(worst, float(np.max(np.abs(result.states[i]
                                                   - lookup[key]))))
    return worst


class TestTrapezoidal:
    def test_accuracy(self, mesh_system):
        res = simulate_trapezoidal(mesh_system, 1e-12, 1e-9,
                                   x0=np.zeros(mesh_system.dim))
        # TR's own discretisation error at h=1ps on 30-50ps edges.
        assert max_err_vs_exact(res, mesh_system, 1e-9) < 1e-5

    def test_second_order_convergence(self, mesh_system):
        errs = []
        for h in [4e-12, 2e-12, 1e-12]:
            res = simulate_trapezoidal(mesh_system, h, 1e-9,
                                       x0=np.zeros(mesh_system.dim))
            errs.append(max_err_vs_exact(res, mesh_system, 1e-9))
        # Halving h should cut the error by ~4 (order 2).
        assert errs[0] / errs[1] > 2.5
        assert errs[1] / errs[2] > 2.5

    def test_one_solve_per_step(self, mesh_system):
        res = simulate_trapezoidal(mesh_system, 1e-11, 1e-9,
                                   x0=np.zeros(mesh_system.dim))
        assert res.stats.n_steps == 100
        assert res.stats.n_solves_etd == 100

    def test_record_times_subset(self, mesh_system):
        res = simulate_trapezoidal(
            mesh_system, 1e-11, 1e-9, x0=np.zeros(mesh_system.dim),
            record_times=[5e-10],
        )
        assert len(res.times) == 3  # 0, 5e-10, t_end
        assert np.any(np.isclose(res.times, 5e-10, rtol=1e-12))

    def test_step_validation(self, mesh_system):
        with pytest.raises(ValueError):
            simulate_trapezoidal(mesh_system, -1.0, 1e-9)
        with pytest.raises(ValueError):
            simulate_trapezoidal(mesh_system, 1e-8, 1e-9)

    def test_handles_singular_c(self, small_pdn_system):
        res = simulate_trapezoidal(small_pdn_system, 1e-11, 1e-9)
        assert np.all(np.isfinite(res.states))


class TestBackwardEuler:
    def test_accuracy_first_order(self, mesh_system):
        errs = []
        for h in [2e-12, 1e-12]:
            res = simulate_backward_euler(mesh_system, h, 1e-9,
                                          x0=np.zeros(mesh_system.dim))
            errs.append(max_err_vs_exact(res, mesh_system, 1e-9))
        assert 1.5 < errs[0] / errs[1] < 3.0  # order ~1

    def test_be_less_accurate_than_tr(self, mesh_system):
        h = 2e-12
        tr = simulate_trapezoidal(mesh_system, h, 1e-9,
                                  x0=np.zeros(mesh_system.dim))
        be = simulate_backward_euler(mesh_system, h, 1e-9,
                                     x0=np.zeros(mesh_system.dim))
        assert (max_err_vs_exact(be, mesh_system, 1e-9)
                > max_err_vs_exact(tr, mesh_system, 1e-9))

    def test_reference_wrapper_label(self, mesh_system):
        ref = reference_backward_euler(mesh_system, 1e-10, 1e-12)
        assert ref.method == "reference-be"


class TestForwardEuler:
    def test_diverges_beyond_stability_limit(self, mesh_system):
        res = simulate_forward_euler(mesh_system, 1e-12, 1e-9,
                                     x0=np.zeros(mesh_system.dim))
        assert res.times[-1] < 1e-9  # truncated at divergence

    def test_stable_at_tiny_step(self, rc_ladder_system):
        # lam_max of the ladder is ~1e13 1/s: h = 1e-15 is safely inside.
        res = simulate_forward_euler(rc_ladder_system, 1e-15, 2e-13,
                                     x0=np.zeros(rc_ladder_system.dim))
        assert res.times[-1] == pytest.approx(2e-13)
        assert np.all(np.isfinite(res.states))

    def test_singular_c_rejected(self, small_pdn_system):
        with pytest.raises(FactorizationError, match="non-singular C"):
            simulate_forward_euler(small_pdn_system, 1e-15, 1e-13)


class TestDcAndExactReference:
    def test_dc_operating_point(self, small_pdn_system):
        x, lu = dc_operating_point(small_pdn_system)
        assert small_pdn_system.node_voltage(x, "pad") == pytest.approx(1.8)
        assert lu.n_solves == 1

    def test_reference_exact_defaults_to_dc(self, mesh_system):
        ref = reference_exact(mesh_system, 1e-9)
        assert ref.method == "reference-exact"
        assert ref.times[0] == 0.0
        assert ref.times[-1] == 1e-9
