"""Unit tests for elements and the netlist container."""

import pytest

from repro.circuit import DC, Netlist, NetlistError
from repro.circuit.elements import Capacitor, Resistor


class TestElements:
    def test_resistor_conductance(self):
        r = Resistor("R1", "a", "b", 4.0)
        assert r.conductance == 0.25
        assert r.nodes() == ("a", "b")

    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            Resistor("R1", "a", "b", 0.0)

    def test_capacitor_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            Capacitor("C1", "a", "b", -1e-12)


class TestNetlistConstruction:
    def test_node_indices_are_dense_and_stable(self):
        net = Netlist()
        net.add_resistor("R1", "a", "b", 1.0)
        net.add_resistor("R2", "b", "c", 1.0)
        assert net.node_index("a") == 0
        assert net.node_index("b") == 1
        assert net.node_index("c") == 2
        assert net.node_names() == ("a", "b", "c")

    def test_ground_aliases(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_resistor("R2", "b", "gnd", 1.0)
        net.add_resistor("R3", "c", "GND", 1.0)
        for g in ("0", "gnd", "GND"):
            assert net.node_index(g) == -1
        assert net.n_nodes == 3

    def test_duplicate_names_rejected(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="duplicate"):
            net.add_resistor("R1", "b", "0", 1.0)

    def test_both_terminals_grounded_rejected(self):
        net = Netlist()
        with pytest.raises(NetlistError, match="grounded"):
            net.add_resistor("R1", "0", "gnd", 1.0)

    def test_unknown_node_lookup(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="unknown node"):
            net.node_index("zz")

    def test_float_waveform_becomes_dc(self):
        net = Netlist()
        v = net.add_voltage_source("V1", "a", "0", 1.8)
        assert isinstance(v.waveform, DC)
        assert v.waveform.level == 1.8

    def test_container_protocol(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        assert "R1" in net
        assert net["R1"].resistance == 1.0
        assert len(net) == 1


class TestUnknownBlocks:
    def test_dim_counts_branch_currents(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_voltage_source("V1", "b", "0", 1.0)
        net.add_resistor("R2", "b", "a", 1.0)
        net.add_inductor("L1", "a", "c", 1e-9)
        net.add_resistor("R3", "c", "0", 1.0)
        u = net.unknowns
        assert u.n_nodes == 3
        assert u.n_vsrc == 1
        assert u.n_ind == 1
        assert net.dim == 5

    def test_vsource_and_inductor_row_layout(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_voltage_source("V1", "a", "0", 1.0)
        net.add_inductor("L1", "a", "b", 1e-9)
        net.add_resistor("R2", "b", "0", 1.0)
        assert net.vsource_index("V1") == net.n_nodes
        assert net.inductor_index("L1") == net.n_nodes + 1
        with pytest.raises(NetlistError):
            net.vsource_index("nope")
        with pytest.raises(NetlistError):
            net.inductor_index("nope")


class TestValidation:
    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError, match="empty"):
            Netlist().validate()

    def test_floating_node_detected(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        # b-c island touches ground only through a capacitor: no DC path.
        net.add_resistor("R2", "b", "c", 1.0)
        net.add_capacitor("C1", "c", "0", 1e-12)
        with pytest.raises(NetlistError, match="no DC path"):
            net.validate()

    def test_inductor_provides_dc_path(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_inductor("L1", "a", "b", 1e-9)
        net.validate()  # must not raise

    def test_valid_circuit_passes(self, rc_ladder):
        rc_ladder.validate()

    def test_summary_mentions_counts(self, rc_ladder):
        s = rc_ladder.summary()
        assert "10 R" in s and "10 C" in s and "1 I" in s
