"""Per-rule fixture tests for the invariant linter.

Every registered RPL rule is exercised against a deliberately violating
fixture (flagged at exactly the ``# expect: RPLxxx``-marked lines) and a
clean fixture (no findings).  AST rules lint the fixture files under
``tests/lint_fixtures/``; the semi-dynamic picklability rules import
fixture *modules* from the same directory.

Marker syntax mirrors suppressions: a trailing ``# expect: RPLxxx``
targets its own line, a standalone one targets the next line.
"""

import re
import shutil
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, lint_paths
from repro.analysis.lint.core import get_rule
from repro.analysis.lint.rules import picklable

FIXTURES = Path(__file__).parent / "lint_fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPL\d{3})")

#: Rules whose fixtures are linted as files (AST + engine meta rules).
FILE_RULES = (
    "RPL000", "RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
    "RPL010", "RPL011", "RPL012", "RPL030",
    "RPL090", "RPL091", "RPL092",
)
#: Rules whose fixtures are imported as modules and probed.
MODULE_RULES = ("RPL020", "RPL021")


def expected_findings(path: Path) -> set:
    """(code, line) pairs declared by the fixture's # expect markers."""
    out = set()
    for lineno, text in enumerate(
        path.read_text(encoding="utf-8").splitlines(), 1
    ):
        match = _EXPECT_RE.search(text)
        if not match:
            continue
        standalone = not text.split("#", 1)[0].strip()
        out.add((match.group(1), lineno + 1 if standalone else lineno))
    return out


def lint_fixture(name: str, code: str, tmp_path: Path) -> set:
    path = FIXTURES / name
    rule = get_rule(code)
    if rule.library_only:
        # library_only rules skip anything under tests/ — lint a copy
        # from a neutral directory so the fixture actually runs.
        path = Path(shutil.copy(path, tmp_path / path.name))
    select = None if rule.meta else [code]
    result = lint_paths([str(path)], select=select, dynamic=False)
    return {(f.code, f.line) for f in result.findings}


@pytest.mark.parametrize("code", FILE_RULES)
def test_bad_fixture_flagged_at_marked_lines(code, tmp_path):
    name = f"{code.lower()}_bad.py"
    expected = expected_findings(FIXTURES / name)
    assert expected, f"{name} declares no # expect markers"
    assert lint_fixture(name, code, tmp_path) == expected


@pytest.mark.parametrize("code", FILE_RULES)
def test_clean_fixture_has_no_findings(code, tmp_path):
    assert lint_fixture(f"{code.lower()}_clean.py", code, tmp_path) == set()


# -- semi-dynamic picklability fixtures --------------------------------------


@pytest.fixture
def probe_fixture_module(monkeypatch):
    """Run ``check_modules`` against a fixture module by name."""
    monkeypatch.syspath_prepend(str(FIXTURES))
    loaded = []

    def probe(name):
        loaded.append(name)
        return picklable.check_modules([name])

    yield probe
    for name in loaded:
        sys.modules.pop(name, None)


@pytest.mark.parametrize("code", MODULE_RULES)
def test_bad_module_fixture_flagged(code, probe_fixture_module):
    name = f"{code.lower()}_bad"
    findings = probe_fixture_module(name)
    assert {f.code for f in findings} == {code}
    assert all(f.path.endswith(f"{name}.py") for f in findings)


@pytest.mark.parametrize("code", MODULE_RULES)
def test_clean_module_fixture_passes(code, probe_fixture_module):
    assert probe_fixture_module(f"{code.lower()}_clean") == []


def test_unimportable_module_is_reported():
    findings = picklable.check_modules(["repro_no_such_module_xyz"])
    assert [f.code for f in findings] == ["RPL020"]
    assert "cannot import" in findings[0].message


def test_real_message_modules_are_picklable():
    assert picklable.check_modules() == []


def test_every_registered_rule_has_fixture_coverage():
    covered = set(FILE_RULES) | set(MODULE_RULES)
    assert {r.code for r in all_rules()} == covered
    for code in FILE_RULES + MODULE_RULES:
        assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{code.lower()}_clean.py").is_file()
