"""``repro serve`` daemon tests (repro.serve + the CLI entry point).

The daemon is exercised the way operators run it — a real subprocess
serving a real unix stream socket — covering the ISSUE-8 contracts:

* NDJSON protocol encode/decode and config validation,
* run/sweep digests are bit-identical to a local in-process session,
* a failed job (unknown plan) answers ``kind="job"`` and the daemon
  lives on,
* bounded admission: a full queue rejects with ``kind="busy"``,
* SIGTERM drains: the in-flight job is still answered, the daemon
  exits 0 and removes its socket,
* a mid-job worker SIGKILL is healed by the serve-default RetryPolicy
  (retries reported, digest unchanged, no leaked shm segments).
"""

import hashlib
import os
import signal
import socket as socketmod
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.circuit import format_netlist
from repro.circuit.ingest import ingest_file
from repro.core import SolverOptions
from repro.plan import Session, SimulationPlan, scenario_from_spec
from repro.serve import (
    MAX_LINE,
    ProtocolError,
    ServeConfig,
    ServeError,
    connect,
)
from repro.serve.protocol import decode, encode

from tests.conftest import build_small_pdn

T_END = 1e-9
SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestProtocol:
    def test_roundtrip(self):
        msg = {"id": 1, "op": "run", "scenario": {"scale_loads": 1.5}}
        assert decode(encode(msg)) == msg

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2, 3]\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"{nope\n")

    def test_decode_rejects_oversize(self):
        line = b'{"pad": "' + b"x" * MAX_LINE + b'"}\n'
        with pytest.raises(ProtocolError):
            decode(line)


class TestServeConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_queue": 0},
        {"job_timeout": 0.0},
        {"job_timeout": -1.0},
        {"processes": -1},
    ])
    def test_validation(self, kwargs, tmp_path):
        with pytest.raises(ValueError):
            ServeConfig(socket_path=str(tmp_path / "s.sock"), **kwargs)


# -- daemon-subprocess harness ----------------------------------------------------


@pytest.fixture(scope="module")
def deck(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "grid.spice"
    path.write_text(format_netlist(build_small_pdn(), t_end=T_END))
    return path


def start_daemon(tmp_path, deck, *extra):
    """Launch ``repro serve`` in its own session; returns (proc, socket)."""
    sock = tmp_path / "repro.sock"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_STATE", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--netlist", str(deck), "--socket", str(sock),
         "--t-end", "1n", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, start_new_session=True,
    )
    return proc, sock


def stop_daemon(proc):
    """SIGTERM the daemon and assert a clean drain (exit 0)."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    assert proc.returncode == 0, out
    return out


def raw_connection(sock_path):
    s = socketmod.socket(socketmod.AF_UNIX, socketmod.SOCK_STREAM)
    s.connect(str(sock_path))
    s.settimeout(60.0)
    return s, s.makefile("rb")


def local_digests(deck, specs):
    """What the daemon must answer: in-process session digests."""
    res = ingest_file(str(deck))
    options = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7)
    compiled = SimulationPlan(
        res.system, options, t_end=T_END,
        decomposition="bump", batch="auto",
    ).compile()
    scenarios = [
        scenario_from_spec(s, res.system, index=i) if s is not None
        else None
        for i, s in enumerate(specs)
    ]
    with Session(compiled) as session:
        results = session.sweep(scenarios)
    return [
        hashlib.sha256(r.result.states.tobytes()).hexdigest()
        for r in results
    ]


HOT = {"name": "hot", "scale_loads": 1.3}


class TestDaemonBasics:
    def test_ping_run_sweep_status_and_job_errors(self, tmp_path, deck):
        proc, sock = start_daemon(tmp_path, deck)
        try:
            with connect(sock, timeout=30.0) as c:
                assert c.ping()["pong"] is True

                expected = local_digests(deck, [HOT, None])
                run = c.run(scenario=HOT)
                assert run["digest"] == expected[0]
                assert run["scenario"] == "hot"
                assert run["degraded_runs"] == 0

                sweep = c.sweep([HOT, {"name": "base"}])
                digests = [r["digest"] for r in sweep["results"]]
                assert digests == expected

                # A failed job answers kind="job"; the daemon lives on.
                with pytest.raises(ServeError) as excinfo:
                    c.run(plan="nonexistent")
                assert excinfo.value.kind == "job"
                assert "unknown plan" in str(excinfo.value)

                # An unknown op is a protocol error, not a death.
                bad = c.request("frobnicate", check=False)
                assert bad["ok"] is False and bad["kind"] == "protocol"

                status = c.status()
                assert status["draining"] is False
                assert status["jobs"]["done"] == 2  # the run + the sweep
                assert status["jobs"]["failed"] == 1
                # jobs_answered counts scenarios: 1 run + 2 swept.
                assert status["plans"]["default"]["jobs_answered"] == 3
        finally:
            out = stop_daemon(proc)
        assert "drained" in out
        assert not sock.exists()

    def test_busy_rejection_when_queue_is_full(self, tmp_path, deck):
        """--max-queue 1 + a slow in-flight job: the third client is
        rejected immediately with kind="busy"."""
        proc, sock = start_daemon(
            tmp_path, deck,
            "--max-queue", "1", "--batch", "off",
            "--faults", "delay@0:1.5",
        )
        try:
            connect(sock, timeout=30.0).close()  # wait for readiness
            sa, fa = raw_connection(sock)
            sa.sendall(encode({"id": 1, "op": "run"}))
            time.sleep(0.5)   # job A dequeued, asleep under the delay
            sb, fb = raw_connection(sock)
            sb.sendall(encode({"id": 2, "op": "run"}))
            time.sleep(0.3)   # job B admitted; the queue is now full
            sc, fc = raw_connection(sock)
            sc.sendall(encode({"id": 3, "op": "run"}))

            rejected = decode(fc.readline())
            assert rejected["ok"] is False
            assert rejected["kind"] == "busy"

            a = decode(fa.readline())
            b = decode(fb.readline())
            assert a["ok"] is True and b["ok"] is True
            assert a["digest"] == b["digest"]
            for s, f in ((sa, fa), (sb, fb), (sc, fc)):
                f.close()
                s.close()
        finally:
            stop_daemon(proc)

    def test_sigterm_drain_answers_accepted_jobs(self, tmp_path, deck):
        """SIGTERM mid-job: the accepted job is still answered, then the
        daemon exits 0 and removes its socket."""
        proc, sock = start_daemon(
            tmp_path, deck, "--batch", "off", "--faults", "delay@0:2",
        )
        connect(sock, timeout=30.0).close()
        s, f = raw_connection(sock)
        s.sendall(encode({"id": 1, "op": "run"}))
        time.sleep(0.5)  # the job is executing (asleep under the delay)
        proc.send_signal(signal.SIGTERM)
        answer = decode(f.readline())
        assert answer["ok"] is True
        (expected,) = local_digests(deck, [None])
        assert answer["digest"] == expected
        f.close()
        s.close()
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "drained (1 done, 0 failed, 0 rejected)" in out
        assert not sock.exists()

    def test_draining_daemon_rejects_new_jobs(self, tmp_path, deck):
        proc, sock = start_daemon(
            tmp_path, deck, "--batch", "off", "--faults", "delay@0:2",
        )
        connect(sock, timeout=30.0).close()
        s, f = raw_connection(sock)
        s.sendall(encode({"id": 1, "op": "run"}))
        time.sleep(0.5)
        # An op-level shutdown drains exactly like SIGTERM; this live
        # connection's next job must be cleanly rejected.
        s.sendall(encode({"id": 2, "op": "shutdown"}))
        time.sleep(0.5)  # let the drain start (job 1 is still executing)
        s.sendall(encode({"id": 3, "op": "run"}))
        answers = {}
        for _ in range(3):
            msg = decode(f.readline())
            answers[msg["id"]] = msg
        assert answers[1]["ok"] is True       # accepted before the drain
        assert answers[2]["ok"] is True       # the shutdown ack
        assert answers[3]["ok"] is False
        assert answers[3]["kind"] == "draining"
        f.close()
        s.close()
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert "1 done, 0 failed, 1 rejected" in out


class TestDaemonSurvivesWorkerDeath:
    def test_mid_job_worker_sigkill_is_healed(self, tmp_path, deck):
        """--processes 2 + an injected worker kill: the serve-default
        RetryPolicy heals the job, the digest matches the in-process
        answer, the daemon stays up, and nothing leaks in /dev/shm."""
        shm = Path("/dev/shm")
        before = (
            {p.name for p in shm.glob("repro*")} if shm.is_dir() else set()
        )
        proc, sock = start_daemon(
            tmp_path, deck, "--processes", "2", "--faults", "kill@0",
        )
        try:
            with connect(sock, timeout=30.0) as c:
                run = c.run(scenario=HOT)
                assert run["retries"] >= 1
                assert run["degraded_runs"] == 0
                (expected,) = local_digests(deck, [HOT])
                assert run["digest"] == expected

                # The daemon survived the broken pool: same socket, same
                # warm plan, next job answers without retries.
                again = c.run(scenario=HOT)
                assert again["digest"] == expected
                assert again["retries"] == 0

                status = c.status()
                sup = status["plans"]["default"]["supervision"]
                assert sup["retries"] >= 1
                assert sup["pool_failures"] >= 1
                assert sup["degradations"] == 0
        finally:
            out = stop_daemon(proc)
        assert "drained (2 done, 0 failed, 0 rejected)" in out
        after = (
            {p.name for p in shm.glob("repro*")} if shm.is_dir() else set()
        )
        assert after - before == set()

    def test_client_connect_times_out_cleanly(self, tmp_path):
        with pytest.raises((FileNotFoundError, ConnectionRefusedError)):
            connect(tmp_path / "nonexistent.sock", timeout=0.3)

    def test_client_reports_closed_connection(self, tmp_path, deck):
        proc, sock = start_daemon(tmp_path, deck)
        try:
            c = connect(sock, timeout=30.0)
            c.ping()
        finally:
            stop_daemon(proc)
        with pytest.raises((ServeError, ConnectionError)):
            c.ping()
        c.close()
