"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.circuit import format_netlist
from repro.cli import main


@pytest.fixture
def deck(tmp_path, small_pdn):
    path = tmp_path / "grid.spice"
    path.write_text(format_netlist(small_pdn, t_end=1e-9))
    return path


class TestInfo:
    def test_prints_summary(self, deck, capsys):
        assert main(["info", str(deck), "--t-end", "1n"]) == 0
        out = capsys.readouterr().out
        assert "C singular: True" in out
        assert "transition spots" in out
        assert "bump groups" in out


class TestDc:
    def test_prints_rails(self, deck, capsys):
        assert main(["dc", str(deck), "--nodes", "pad"]) == 0
        out = capsys.readouterr().out
        assert "pad: 1.8" in out


class TestSimulate:
    def test_csv_export(self, deck, tmp_path, capsys):
        out = tmp_path / "waves.csv"
        code = main([
            "simulate", str(deck), "--t-end", "1n",
            "--nodes", "g0_0", "g3_3", "--out", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "time,g0_0,g3_3"
        assert len(lines) > 3
        first = [float(x) for x in lines[1].split(",")]
        assert first[0] == 0.0
        assert first[1] == pytest.approx(1.8, abs=0.05)  # near VDD at DC

    def test_npz_export(self, deck, tmp_path):
        out = tmp_path / "waves.npz"
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--out", str(out)]) == 0
        data = np.load(out)
        assert data["states"].shape[0] == data["times"].shape[0]
        assert "g0_0" in list(data["node_names"])

    def test_distributed_flag(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--distributed"]) == 0
        assert "distributed:" in capsys.readouterr().out

    def test_droop_report(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--vdd", "1.8"]) == 0
        assert "worst droop" in capsys.readouterr().out

    def test_spice_suffix_times(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "500p",
                     "--method", "imatex"]) == 0

    def test_bad_output_format(self, deck, tmp_path):
        with pytest.raises(ValueError, match="unsupported output"):
            main(["simulate", str(deck), "--t-end", "1n",
                  "--out", str(tmp_path / "waves.xlsx")])

    def test_batch_negative_exits_with_usage_message(self, deck, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", str(deck), "--t-end", "1n",
                  "--distributed", "--batch", "-3"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "batch width must be >= 1" in err

    def test_batch_garbage_exits_with_usage_message(self, deck, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", str(deck), "--t-end", "1n",
                  "--distributed", "--batch", "foo"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "expected 'off', 'auto' or a positive integer" in err

    def test_batch_without_distributed_is_a_usage_error(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--batch", "auto"]) == 2
        assert "only applies to --distributed" in capsys.readouterr().err

    def test_batch_auto_distributed_accepted(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--distributed", "--batch", "auto"]) == 0
        assert "distributed:" in capsys.readouterr().out

    def test_distributed_csv_matches_single(self, deck, tmp_path):
        single = tmp_path / "s.csv"
        dist = tmp_path / "d.csv"
        main(["simulate", str(deck), "--t-end", "1n",
              "--nodes", "g2_2", "--out", str(single)])
        main(["simulate", str(deck), "--t-end", "1n", "--distributed",
              "--nodes", "g2_2", "--out", str(dist)])
        a = np.loadtxt(single, delimiter=",", skiprows=1)
        b = np.loadtxt(dist, delimiter=",", skiprows=1)
        assert np.allclose(a, b, atol=1e-6)


class TestRun:
    """The streaming-ingest subcommand (``repro run --netlist``)."""

    @pytest.fixture
    def ibmpg_deck(self, tmp_path):
        from repro.pdn import PdnConfig, WorkloadSpec, synthesize_ibmpg

        path = tmp_path / "pg_like.spice"
        synthesize_ibmpg(
            path,
            PdnConfig(rows=8, cols=8),
            WorkloadSpec(n_sources=6, n_shapes=2, t_end=1e-9,
                         time_grid_points=8),
        )
        return path

    def test_t_end_defaults_to_tran(self, ibmpg_deck, capsys):
        assert main(["run", "--netlist", str(ibmpg_deck)]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "from the deck's .tran directive" in out

    def test_distributed_batched(self, ibmpg_deck, capsys):
        assert main(["run", "--netlist", str(ibmpg_deck),
                     "--distributed", "--batch", "auto"]) == 0
        assert "distributed:" in capsys.readouterr().out

    def test_missing_tran_needs_explicit_t_end(self, tmp_path, capsys):
        deck = tmp_path / "no_tran.spice"
        deck.write_text("R1 a 0 1\nC1 a 0 1p\nI1 a 0 1m\n")
        assert main(["run", "--netlist", str(deck)]) == 2
        assert "pass --t-end" in capsys.readouterr().err
        assert main(["run", "--netlist", str(deck), "--t-end", "1n"]) == 0

    def test_matches_object_parser_simulate(self, ibmpg_deck, tmp_path):
        """Streaming and object paths agree through the full CLI."""
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        assert main(["simulate", str(ibmpg_deck), "--t-end", "1n",
                     "--nodes", "n2_2", "--out", str(a)]) == 0
        assert main(["run", "--netlist", str(ibmpg_deck),
                     "--nodes", "n2_2", "--out", str(b)]) == 0
        va = np.loadtxt(a, delimiter=",", skiprows=1)
        vb = np.loadtxt(b, delimiter=",", skiprows=1)
        assert np.allclose(va, vb, atol=1e-9)


class TestSweep:
    @pytest.fixture
    def ibmpg_deck(self, tmp_path):
        from repro.pdn import PdnConfig, WorkloadSpec, synthesize_ibmpg

        path = tmp_path / "pg_like.spice"
        synthesize_ibmpg(
            path,
            PdnConfig(rows=8, cols=8),
            WorkloadSpec(n_sources=6, n_shapes=2, t_end=1e-9,
                         time_grid_points=8),
        )
        return path

    def test_random_scenarios_end_to_end(self, ibmpg_deck, capsys):
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", "random:3:7"]) == 0
        out = capsys.readouterr().out
        assert "compiled plan:" in out
        assert "pattern0" in out and "pattern2" in out
        assert "sweep: 3 scenarios" in out
        assert "factor cache:" in out

    def test_json_spec_and_out_dir(self, ibmpg_deck, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '[{"name": "nominal"}, {"name": "hot", "scale_loads": 1.3}]'
        )
        out_dir = tmp_path / "waves"
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", str(spec),
                     "--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "nominal" in out and "hot" in out
        data = np.load(out_dir / "hot.npz")
        assert data["states"].shape[0] == data["times"].shape[0]
        nominal = np.load(out_dir / "nominal.npz")
        # A hotter pattern cannot droop less than nominal anywhere.
        assert data["states"].min() <= nominal["states"].min() + 1e-12

    def test_sweep_matches_independent_runs(self, ibmpg_deck, tmp_path,
                                            capsys):
        """CLI sweep scenarios == independent cold CLI runs (nominal)."""
        out_dir = tmp_path / "waves"
        spec = tmp_path / "spec.json"
        spec.write_text('[{"name": "nominal"}]')
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", str(spec),
                     "--out-dir", str(out_dir)]) == 0
        single = tmp_path / "single.npz"
        assert main(["run", "--netlist", str(ibmpg_deck),
                     "--distributed", "--batch", "auto",
                     "--out", str(single)]) == 0
        capsys.readouterr()
        a = np.load(out_dir / "nominal.npz")
        b = np.load(single)
        np.testing.assert_array_equal(a["states"], b["states"])

    def test_bad_random_spec_is_usage_error(self, ibmpg_deck, capsys):
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", "random:0"]) == 2
        assert "random:<n>" in capsys.readouterr().err

    def test_negative_seed_is_usage_error(self, ibmpg_deck, capsys):
        """A negative seed fails on argv content with a usage message,
        not with a default_rng traceback after the deck load."""
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", "random:3:-1"]) == 2
        err = capsys.readouterr().err
        assert "seed >= 0" in err and "random:3:-1" in err

    def test_rom_sweep_end_to_end(self, ibmpg_deck, capsys):
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", "random:3:7",
                     "--rom", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "reduced model: q=" in out
        assert "rom tier:" in out
        assert "external models" in out  # ledger line in cache stats

    @pytest.mark.parametrize("spec", ["abc", "0", "-0.1", "0.05:0",
                                      "0.05:10:3"])
    def test_bad_rom_spec_is_usage_error(self, ibmpg_deck, capsys,
                                         spec):
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", "random:2", "--rom", spec]) == 2
        assert "TOL[:QMAX]" in capsys.readouterr().err

    def test_missing_spec_file_is_usage_error(self, ibmpg_deck, capsys):
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", "nope.json"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_non_matex_method_is_usage_error(self, ibmpg_deck, capsys):
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", "random:2", "--method", "tr"]) == 2
        assert "MATEX method" in capsys.readouterr().err

    def test_factor_cache_flags_reconfigure(self, ibmpg_deck, capsys):
        from repro.linalg.lu import FACTORIZATION_CACHE

        stats0 = FACTORIZATION_CACHE.stats()
        try:
            assert main(["sweep", "--netlist", str(ibmpg_deck),
                         "--scenarios", "random:2",
                         "--factor-cache-entries", "9",
                         "--factor-cache-bytes", "64M"]) == 0
            out = capsys.readouterr().out
            assert "limits 9 entries / 64 MiB" in out
        finally:
            FACTORIZATION_CACHE.configure(
                max_entries=stats0["max_entries"],
                max_bytes=stats0["max_bytes"],
            )

    def test_seed_determinism_is_pinned_cross_platform(
        self, small_pdn_system
    ):
        """``random:<n>:<seed>`` names the same workload everywhere.

        The factors come from NumPy's PCG64 ``uniform`` stream, which
        is specified bit-exactly independent of platform; these pinned
        values only change if the generator family changes — which
        would silently rename every published sweep workload, so it
        must fail loudly here.
        """
        from repro.pdn import load_pattern_scenarios

        scenarios = load_pattern_scenarios(
            small_pdn_system, n=2, seed=2014
        )
        assert [s.name for s in scenarios] == ["pattern0", "pattern1"]
        assert scenarios[0].scales == (
            (0, 1.4185840281146644), (1, 1.214250727729247),
        )
        assert scenarios[1].scales == (
            (0, 0.7655725634264003), (1, 1.0268330260787777),
        )

    def test_out_dir_sanitises_scenario_names(self, ibmpg_deck, tmp_path,
                                              capsys):
        """Arbitrary spec names cannot escape --out-dir or collide."""
        spec = tmp_path / "spec.json"
        spec.write_text(
            '[{"name": "block/quiet", "scale_loads": 0.9},'
            ' {"name": "block/quiet", "scale_loads": 1.1}]'
        )
        out_dir = tmp_path / "waves"
        assert main(["sweep", "--netlist", str(ibmpg_deck),
                     "--scenarios", str(spec),
                     "--out-dir", str(out_dir)]) == 0
        capsys.readouterr()
        written = sorted(p.name for p in out_dir.iterdir())
        assert written == ["block_quiet.1.npz", "block_quiet.npz"]
        # Both trajectories are real and distinct (different scalings).
        a = np.load(out_dir / "block_quiet.npz")["states"]
        b = np.load(out_dir / "block_quiet.1.npz")["states"]
        assert a.shape == b.shape and not np.array_equal(a, b)
