"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.circuit import format_netlist
from repro.cli import main


@pytest.fixture
def deck(tmp_path, small_pdn):
    path = tmp_path / "grid.spice"
    path.write_text(format_netlist(small_pdn, t_end=1e-9))
    return path


class TestInfo:
    def test_prints_summary(self, deck, capsys):
        assert main(["info", str(deck), "--t-end", "1n"]) == 0
        out = capsys.readouterr().out
        assert "C singular: True" in out
        assert "transition spots" in out
        assert "bump groups" in out


class TestDc:
    def test_prints_rails(self, deck, capsys):
        assert main(["dc", str(deck), "--nodes", "pad"]) == 0
        out = capsys.readouterr().out
        assert "pad: 1.8" in out


class TestSimulate:
    def test_csv_export(self, deck, tmp_path, capsys):
        out = tmp_path / "waves.csv"
        code = main([
            "simulate", str(deck), "--t-end", "1n",
            "--nodes", "g0_0", "g3_3", "--out", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "time,g0_0,g3_3"
        assert len(lines) > 3
        first = [float(x) for x in lines[1].split(",")]
        assert first[0] == 0.0
        assert first[1] == pytest.approx(1.8, abs=0.05)  # near VDD at DC

    def test_npz_export(self, deck, tmp_path):
        out = tmp_path / "waves.npz"
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--out", str(out)]) == 0
        data = np.load(out)
        assert data["states"].shape[0] == data["times"].shape[0]
        assert "g0_0" in list(data["node_names"])

    def test_distributed_flag(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--distributed"]) == 0
        assert "distributed:" in capsys.readouterr().out

    def test_droop_report(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--vdd", "1.8"]) == 0
        assert "worst droop" in capsys.readouterr().out

    def test_spice_suffix_times(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "500p",
                     "--method", "imatex"]) == 0

    def test_bad_output_format(self, deck, tmp_path):
        with pytest.raises(ValueError, match="unsupported output"):
            main(["simulate", str(deck), "--t-end", "1n",
                  "--out", str(tmp_path / "waves.xlsx")])

    def test_batch_negative_exits_with_usage_message(self, deck, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", str(deck), "--t-end", "1n",
                  "--distributed", "--batch", "-3"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "batch width must be >= 1" in err

    def test_batch_garbage_exits_with_usage_message(self, deck, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", str(deck), "--t-end", "1n",
                  "--distributed", "--batch", "foo"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "expected 'off', 'auto' or a positive integer" in err

    def test_batch_without_distributed_is_a_usage_error(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--batch", "auto"]) == 2
        assert "only applies to --distributed" in capsys.readouterr().err

    def test_batch_auto_distributed_accepted(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--distributed", "--batch", "auto"]) == 0
        assert "distributed:" in capsys.readouterr().out

    def test_distributed_csv_matches_single(self, deck, tmp_path):
        single = tmp_path / "s.csv"
        dist = tmp_path / "d.csv"
        main(["simulate", str(deck), "--t-end", "1n",
              "--nodes", "g2_2", "--out", str(single)])
        main(["simulate", str(deck), "--t-end", "1n", "--distributed",
              "--nodes", "g2_2", "--out", str(dist)])
        a = np.loadtxt(single, delimiter=",", skiprows=1)
        b = np.loadtxt(dist, delimiter=",", skiprows=1)
        assert np.allclose(a, b, atol=1e-6)


class TestRun:
    """The streaming-ingest subcommand (``repro run --netlist``)."""

    @pytest.fixture
    def ibmpg_deck(self, tmp_path):
        from repro.pdn import PdnConfig, WorkloadSpec, synthesize_ibmpg

        path = tmp_path / "pg_like.spice"
        synthesize_ibmpg(
            path,
            PdnConfig(rows=8, cols=8),
            WorkloadSpec(n_sources=6, n_shapes=2, t_end=1e-9,
                         time_grid_points=8),
        )
        return path

    def test_t_end_defaults_to_tran(self, ibmpg_deck, capsys):
        assert main(["run", "--netlist", str(ibmpg_deck)]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "from the deck's .tran directive" in out

    def test_distributed_batched(self, ibmpg_deck, capsys):
        assert main(["run", "--netlist", str(ibmpg_deck),
                     "--distributed", "--batch", "auto"]) == 0
        assert "distributed:" in capsys.readouterr().out

    def test_missing_tran_needs_explicit_t_end(self, tmp_path, capsys):
        deck = tmp_path / "no_tran.spice"
        deck.write_text("R1 a 0 1\nC1 a 0 1p\nI1 a 0 1m\n")
        assert main(["run", "--netlist", str(deck)]) == 2
        assert "pass --t-end" in capsys.readouterr().err
        assert main(["run", "--netlist", str(deck), "--t-end", "1n"]) == 0

    def test_matches_object_parser_simulate(self, ibmpg_deck, tmp_path):
        """Streaming and object paths agree through the full CLI."""
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        assert main(["simulate", str(ibmpg_deck), "--t-end", "1n",
                     "--nodes", "n2_2", "--out", str(a)]) == 0
        assert main(["run", "--netlist", str(ibmpg_deck),
                     "--nodes", "n2_2", "--out", str(b)]) == 0
        va = np.loadtxt(a, delimiter=",", skiprows=1)
        vb = np.loadtxt(b, delimiter=",", skiprows=1)
        assert np.allclose(va, vb, atol=1e-9)
