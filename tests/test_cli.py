"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.circuit import format_netlist
from repro.cli import main


@pytest.fixture
def deck(tmp_path, small_pdn):
    path = tmp_path / "grid.spice"
    path.write_text(format_netlist(small_pdn, t_end=1e-9))
    return path


class TestInfo:
    def test_prints_summary(self, deck, capsys):
        assert main(["info", str(deck), "--t-end", "1n"]) == 0
        out = capsys.readouterr().out
        assert "C singular: True" in out
        assert "transition spots" in out
        assert "bump groups" in out


class TestDc:
    def test_prints_rails(self, deck, capsys):
        assert main(["dc", str(deck), "--nodes", "pad"]) == 0
        out = capsys.readouterr().out
        assert "pad: 1.8" in out


class TestSimulate:
    def test_csv_export(self, deck, tmp_path, capsys):
        out = tmp_path / "waves.csv"
        code = main([
            "simulate", str(deck), "--t-end", "1n",
            "--nodes", "g0_0", "g3_3", "--out", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "time,g0_0,g3_3"
        assert len(lines) > 3
        first = [float(x) for x in lines[1].split(",")]
        assert first[0] == 0.0
        assert first[1] == pytest.approx(1.8, abs=0.05)  # near VDD at DC

    def test_npz_export(self, deck, tmp_path):
        out = tmp_path / "waves.npz"
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--out", str(out)]) == 0
        data = np.load(out)
        assert data["states"].shape[0] == data["times"].shape[0]
        assert "g0_0" in list(data["node_names"])

    def test_distributed_flag(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--distributed"]) == 0
        assert "distributed:" in capsys.readouterr().out

    def test_droop_report(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "1n",
                     "--vdd", "1.8"]) == 0
        assert "worst droop" in capsys.readouterr().out

    def test_spice_suffix_times(self, deck, capsys):
        assert main(["simulate", str(deck), "--t-end", "500p",
                     "--method", "imatex"]) == 0

    def test_bad_output_format(self, deck, tmp_path):
        with pytest.raises(ValueError, match="unsupported output"):
            main(["simulate", str(deck), "--t-end", "1n",
                  "--out", str(tmp_path / "waves.xlsx")])

    def test_distributed_csv_matches_single(self, deck, tmp_path):
        single = tmp_path / "s.csv"
        dist = tmp_path / "d.csv"
        main(["simulate", str(deck), "--t-end", "1n",
              "--nodes", "g2_2", "--out", str(single)])
        main(["simulate", str(deck), "--t-end", "1n", "--distributed",
              "--nodes", "g2_2", "--out", str(dist)])
        a = np.loadtxt(single, delimiter=",", skiprows=1)
        b = np.loadtxt(dist, delimiter=",", skiprows=1)
        assert np.allclose(a, b, atol=1e-6)
