"""Bit-for-bit parity of the lockstep block-Arnoldi and fast kernels.

The block-batched distributed fast path is only allowed to exist because
every number it produces is identical to the scalar reference path; these
tests pin that contract at the linalg layer:

* ``fast_expm`` == ``expm`` to the last bit (including the
  scaling-and-squaring branch),
* ``FastHessenberg`` == ``HessenbergFactors`` (inverse, transposed row
  solve, singularity handling),
* ``FastEstimator`` == the per-method posterior error estimates,
* ``build_bases_block`` == one ``op.build_basis`` per column.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.block_krylov import (
    FastEstimator,
    FastHessenberg,
    build_bases_block,
    fast_expm,
)
from repro.linalg.expm import expm
from repro.linalg.krylov import (
    HessenbergFactors,
    InvertedKrylov,
    RationalKrylov,
    StandardKrylov,
    make_krylov_operator,
)

METHODS = ["standard", "inverted", "rational"]


def small_system(n=24, seed=0):
    """A well-conditioned dense-ish RC-like pencil."""
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n)) * 0.3
    G = sp.csc_matrix(g @ g.T + n * np.eye(n))
    C = sp.csc_matrix(np.diag(rng.uniform(0.5, 2.0, n)) * 1e-12)
    return C, G


def make_op(method, C, G):
    return make_krylov_operator(method, C, G, gamma=1e-10)


class TestFastExpm:
    @pytest.mark.parametrize("scale", [0.1, 1.0, 30.0, 1e3])
    def test_bitwise_vs_reference(self, scale):
        rng = np.random.default_rng(7)
        for m in [1, 2, 5, 13]:
            a = rng.standard_normal((m, m)) * scale
            np.testing.assert_array_equal(fast_expm(a.copy()), expm(a))

    def test_upper_hessenberg_shapes(self):
        rng = np.random.default_rng(8)
        a = np.triu(rng.standard_normal((9, 9)), k=-1)
        np.testing.assert_array_equal(fast_expm(a.copy()), expm(a))

    def test_empty(self):
        assert fast_expm(np.zeros((0, 0))).shape == (0, 0)

    def test_nonfinite_raises(self):
        with pytest.raises(ValueError):
            fast_expm(np.array([[np.inf, 0.0], [0.0, 1.0]]))


class TestFastHessenberg:
    def test_inverse_and_row_bitwise(self):
        rng = np.random.default_rng(9)
        for m in [1, 3, 8, 15]:
            h = np.triu(rng.standard_normal((m, m)), k=-1) + 2 * np.eye(m)
            ref = HessenbergFactors(h)
            fast = FastHessenberg(h)
            assert fast.singular == ref.singular
            np.testing.assert_array_equal(fast.inverse(), ref.inverse())
            rhs = np.zeros(m)
            rhs[m - 1] = 1.0
            np.testing.assert_array_equal(
                fast.solve_transposed(rhs.copy()), ref.solve_transposed(rhs)
            )

    def test_singular_block(self):
        h = np.array([[1.0, 1.0], [0.0, 0.0]])
        ref = HessenbergFactors(h)
        fast = FastHessenberg(h)
        assert ref.singular and fast.singular
        np.testing.assert_array_equal(fast.inverse(), ref.inverse())
        for impl in (ref, fast):
            with pytest.raises(np.linalg.LinAlgError):
                impl.solve_transposed(np.array([0.0, 1.0]))


class TestFastEstimator:
    @pytest.mark.parametrize("method", METHODS)
    def test_estimates_bitwise(self, method):
        C, G = small_system()
        op = make_op(method, C, G)
        rng = np.random.default_rng(11)
        for m in [2, 4, 9]:
            H = np.zeros((m + 1, m))
            H[: m + 1, :] = np.triu(rng.standard_normal((m + 1, m)), k=-1)
            H[m, m - 1] = abs(H[m, m - 1]) + 0.1
            beta = 2.7
            for h in [1e-12, 1e-10, 1e-9]:
                ref = op.error_estimate(h, H, beta)
                fast = FastEstimator(op).error_estimate(h, H, beta)
                assert ref == fast or (np.isinf(ref) and np.isinf(fast))

    @pytest.mark.parametrize("method", ["inverted", "rational"])
    def test_effective_hm_and_row_bitwise(self, method):
        C, G = small_system()
        op = make_op(method, C, G)
        est = FastEstimator(op)
        rng = np.random.default_rng(12)
        for m in [1, 5, 10]:
            h_square = np.triu(rng.standard_normal((m, m)), k=-1) + np.eye(m)
            np.testing.assert_array_equal(
                est.effective_hm(h_square), op.effective_hm(h_square)
            )
            np.testing.assert_array_equal(
                est.error_row(h_square), op._error_row(h_square)
            )


def assert_bases_equal(ref, blk):
    assert ref.m == blk.m
    assert ref.beta == blk.beta
    assert ref.method == blk.method
    assert ref.h_built == blk.h_built
    assert ref.h_next == blk.h_next
    assert ref.error_estimate == blk.error_estimate or (
        np.isinf(ref.error_estimate) and np.isinf(blk.error_estimate)
    )
    np.testing.assert_array_equal(ref.Vm, blk.Vm)
    np.testing.assert_array_equal(ref.Hm, blk.Hm)
    if ref.err_row is None:
        assert blk.err_row is None
    else:
        np.testing.assert_array_equal(ref.err_row, blk.err_row)


class TestBlockBases:
    @pytest.mark.parametrize("method", METHODS)
    def test_block_matches_scalar_builds(self, method):
        C, G = small_system(n=30, seed=3)
        rng = np.random.default_rng(13)
        n = 30
        vs = [rng.standard_normal(n) for _ in range(6)]
        vs.append(np.zeros(n))  # trivially-converged empty column
        hs = [1e-10 * (k + 1) for k in range(7)]
        tols = [1e-8] * 7

        op_ref = make_op(method, C, G)
        refs = [
            op_ref.build_basis(v, h, tol, m_max=20, min_dim=2)
            for v, h, tol in zip(vs, hs, tols)
        ]
        op_blk = make_op(method, C, G)
        blks = build_bases_block(op_blk, vs, hs, tols, m_max=20, min_dim=2)

        assert len(blks) == len(refs)
        for ref, blk in zip(refs, blks):
            assert_bases_equal(ref, blk)
        # Solve accounting: one pair per column per active iteration.
        assert op_blk.n_solves == op_ref.n_solves == sum(b.m for b in blks)

    @pytest.mark.parametrize("method", METHODS)
    def test_width_one_matches_scalar(self, method):
        C, G = small_system(n=18, seed=5)
        v = np.random.default_rng(6).standard_normal(18)
        op_ref = make_op(method, C, G)
        ref = op_ref.build_basis(v, 2e-10, 1e-9, m_max=15, min_dim=2)
        op_blk = make_op(method, C, G)
        (blk,) = build_bases_block(
            op_blk, [v], [2e-10], [1e-9], m_max=15, min_dim=2
        )
        assert_bases_equal(ref, blk)

    def test_evaluations_match(self):
        """End-to-end: bases evaluated at many steps agree bitwise."""
        C, G = small_system(n=26, seed=8)
        rng = np.random.default_rng(14)
        vs = [rng.standard_normal(26) for _ in range(4)]
        op_ref = RationalKrylov(C, G, gamma=1e-10)
        op_blk = RationalKrylov(C, G, gamma=1e-10)
        refs = [op_ref.build_basis(v, 1e-10, 1e-9) for v in vs]
        blks = build_bases_block(op_blk, vs, [1e-10] * 4, [1e-9] * 4)
        hs = np.linspace(1e-11, 5e-10, 17)
        for ref, blk in zip(refs, blks):
            Yr, er = ref.evaluate_many(hs)
            Yb, eb = blk.evaluate_many(hs)
            np.testing.assert_array_equal(Yr, Yb)
            np.testing.assert_array_equal(er, eb)
            for k, h in enumerate(hs):
                y, err = ref.evaluate_with_error(float(h))
                np.testing.assert_array_equal(y, Yb[k])
                assert err == eb[k]

    def test_input_validation(self):
        C, G = small_system(n=10)
        op = InvertedKrylov(C, G)
        with pytest.raises(ValueError, match="equal lengths"):
            build_bases_block(op, [np.ones(10)], [1e-10], [])
        assert build_bases_block(op, [], [], []) == []
        with pytest.raises(ValueError, match="share one dimension"):
            build_bases_block(
                op, [np.ones(10), np.ones(9)], [1e-10] * 2, [1e-9] * 2
            )

    def test_standard_operator_supported(self):
        C, G = small_system(n=12, seed=2)
        op = StandardKrylov(C, G)
        est = FastEstimator(op)
        assert est.factors(np.eye(3)) is None
        np.testing.assert_array_equal(
            est.effective_hm(np.eye(3)), -np.eye(3)
        )
