"""Unit tests for waveform models and transition-spot extraction."""

import math

import numpy as np
import pytest

from repro.circuit.waveforms import (
    DC,
    PWL,
    BumpShape,
    Pulse,
    Waveform,
    merge_transition_spots,
)


class TestDC:
    def test_value_is_constant(self):
        w = DC(1.8)
        assert w.value(0.0) == 1.8
        assert w.value(1e-6) == 1.8

    def test_slope_is_zero(self):
        assert DC(5.0).slope(1e-9) == 0.0

    def test_transition_spots_only_origin(self):
        assert DC(1.0).transition_spots(1e-8) == [0.0]

    def test_is_constant(self):
        assert DC(0.0).is_constant()

    def test_values_array(self):
        out = DC(2.5).values_array(np.array([0.0, 1e-9, 5e-9]))
        assert np.all(out == 2.5)


class TestPWL:
    def test_interpolates_between_breakpoints(self):
        w = PWL([(0.0, 0.0), (1e-9, 1.0)])
        assert w.value(5e-10) == pytest.approx(0.5)

    def test_holds_outside_range(self):
        w = PWL([(1e-9, 2.0), (2e-9, 4.0)])
        assert w.value(0.0) == 2.0
        assert w.value(1e-8) == 4.0

    def test_slope_inside_segment(self):
        w = PWL([(0.0, 0.0), (1e-9, 1.0), (2e-9, 1.0)])
        assert w.slope(5e-10) == pytest.approx(1e9)
        assert w.slope(1.5e-9) == 0.0

    def test_slope_outside_is_zero(self):
        w = PWL([(1e-9, 0.0), (2e-9, 1.0)])
        assert w.slope(0.5e-9) == 0.0
        assert w.slope(3e-9) == 0.0

    def test_transition_spots_at_slope_changes(self):
        w = PWL([(0.0, 0.0), (1e-9, 1.0), (2e-9, 1.0), (3e-9, 0.0)])
        spots = w.transition_spots(1e-8)
        assert spots == [0.0, 1e-9, 2e-9, 3e-9]

    def test_no_spot_for_continued_slope(self):
        # Middle breakpoint lies on the same line: no slope change there.
        w = PWL([(0.0, 0.0), (1e-9, 1.0), (2e-9, 2.0)])
        spots = w.transition_spots(1e-8)
        assert 1e-9 not in spots

    def test_slope_right_sided_at_exact_breakpoints(self):
        w = PWL([(0.0, 0.0), (1e-9, 1.0), (2e-9, 1.0), (3e-9, 0.0)])
        assert w.slope(1e-9) == 0.0            # flat segment starts here
        assert w.slope(2e-9) == pytest.approx(-1e9)
        assert w.slope(3e-9) == 0.0            # past-final hold

    def test_slope_snaps_ulp_noise_onto_breakpoints(self):
        """A time an ulp off a breakpoint must read the same segment.

        Spot lists and evaluation times are built through different
        arithmetic; without snapping, an ulp *before* a breakpoint
        returns the previous segment's slope — the scalar path would
        disagree with the `_interp_table`-derived spot geometry.
        """
        w = PWL([(0.0, 0.0), (1e-9, 1.0), (2e-9, 1.0), (3e-9, 0.0)])
        for bp in (1e-9, 2e-9, 3e-9):
            below = np.nextafter(bp, 0.0)
            above = np.nextafter(bp, np.inf)
            assert w.slope(below) == w.slope(bp)
            assert w.slope(above) == w.slope(bp)

    def test_transition_spot_after_negative_breakpoint_not_missed(self):
        """A ramp starting before t=0 still ends at an in-window spot."""
        w = PWL([(-1e-9, 0.0), (1e-9, 1.0), (2e-9, 1.0)])
        spots = w.transition_spots(1e-8)
        assert 1e-9 in spots          # slope changes 5e8 -> 0 here
        assert all(s >= 0.0 for s in spots)

    def test_transition_spots_stop_at_horizon(self):
        w = PWL([(0.0, 0.0), (1e-9, 1.0), (5e-9, 0.0)])
        assert w.transition_spots(2e-9) == [0.0, 1e-9]

    def test_requires_increasing_times(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PWL([(0.0, 0.0), (0.0, 1.0)])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            PWL([])

    def test_values_array_matches_scalar(self):
        w = PWL([(0.0, 0.0), (1e-9, 1.0), (3e-9, -1.0)])
        ts = np.linspace(0, 4e-9, 17)
        assert np.allclose(w.values_array(ts), [w.value(t) for t in ts])

    def test_is_constant_false(self):
        assert not PWL([(0.0, 0.0), (1e-9, 1.0)]).is_constant()


class TestPulse:
    def pulse(self, **kw):
        defaults = dict(v1=0.0, v2=1e-3, t_delay=1e-10, t_rise=5e-11,
                        t_width=2e-10, t_fall=5e-11)
        defaults.update(kw)
        return Pulse(**defaults)

    def test_levels(self):
        p = self.pulse()
        assert p.value(0.0) == 0.0
        assert p.value(2e-10) == pytest.approx(1e-3)   # inside flat top
        assert p.value(1e-9) == 0.0                    # after the bump

    def test_ramp_midpoints(self):
        p = self.pulse()
        assert p.value(1.25e-10) == pytest.approx(5e-4)  # half rise

    def test_transition_spots(self):
        p = self.pulse()
        spots = p.transition_spots(1e-9)
        assert spots[0] == 0.0
        assert len(spots) == 5  # 0 + four bump corners
        assert spots[1] == pytest.approx(1e-10)
        assert spots[-1] == pytest.approx(4e-10)

    def test_slope_right_sided_at_spots(self):
        """At its own transition spots slope() must be the *next* segment's."""
        p = self.pulse()
        spots = p.transition_spots(1e-9)
        rise = 1e-3 / 5e-11
        expected = [0.0, rise, 0.0, -rise, 0.0]
        got = [p.slope(t) for t in spots]
        assert got == pytest.approx(expected)

    def test_periodic_fold(self):
        p = self.pulse(t_period=1e-9)
        assert p.value(1e-9 + 2e-10) == pytest.approx(p.value(2e-10))
        spots = p.transition_spots(2.5e-9)
        assert any(math.isclose(s, 1e-9 + 1e-10) for s in spots)

    def test_periodic_slope_right_sided_at_fold(self):
        """t_delay + k*t_period can fold to an ulp below the period;
        slope() there must be the next bump's rise, not the tail hold."""
        p = self.pulse(t_period=1e-9)
        rise = (1e-3 - 0.0) / 5e-11
        for k in (1, 2, 3):
            spot = p.t_delay + k * p.t_period
            assert p.slope(spot) == pytest.approx(rise)
            assert p.value(spot) == pytest.approx(p.value(p.t_delay))

    def test_period_too_short_rejected(self):
        with pytest.raises(ValueError, match="shorter than one bump"):
            self.pulse(t_period=1e-11)

    def test_nonpositive_ramps_rejected(self):
        with pytest.raises(ValueError):
            self.pulse(t_rise=0.0)

    def test_bump_shape_key(self):
        p = self.pulse()
        shape = p.bump_shape()
        assert shape == BumpShape(1e-10, 5e-11, 5e-11, 2e-10)
        assert shape.key() == (1e-10, 5e-11, 5e-11, 2e-10)

    def test_to_pwl_matches_values(self):
        p = self.pulse()
        pwl = p.to_pwl(1e-9)
        for t in np.linspace(0, 1e-9, 41):
            assert pwl.value(t) == pytest.approx(p.value(t), abs=1e-12)

    def test_values_array_matches_scalar(self):
        p = self.pulse(t_period=8e-10)
        ts = np.linspace(0, 3e-9, 53)
        assert np.allclose(p.values_array(ts), [p.value(t) for t in ts],
                           atol=1e-12)

    def test_is_constant_when_levels_equal(self):
        assert self.pulse(v2=0.0).is_constant()
        assert not self.pulse().is_constant()


class TestMergeTransitionSpots:
    def test_union_and_dedup(self):
        merged = merge_transition_spots([[0.0, 1e-9], [0.0, 2e-9, 1e-9]])
        assert merged == [0.0, 1e-9, 2e-9]

    def test_near_duplicates_collapse(self):
        a = 1e-10 + 5e-11
        b = 1.5e-10
        merged = merge_transition_spots([[a], [b]])
        assert len(merged) == 1

    def test_empty_input(self):
        assert merge_transition_spots([]) == [0.0]


class TestValuesArrayParity:
    """Every concrete waveform's vectorised path vs the scalar value()."""

    WAVEFORMS = [
        DC(1.7),
        PWL([(0.0, 0.0), (1e-10, 2e-3), (3e-10, 2e-3), (4e-10, 0.0)]),
        Pulse(0.0, 1e-3, 1e-10, 2e-11, 1e-10, 3e-11),
        Pulse(1e-4, 2e-3, 5e-11, 1e-11, 8e-11, 2e-11, t_period=3e-10),
    ]

    def test_exact_parity_on_dense_grid(self):
        ts = np.linspace(-1e-10, 1.2e-9, 457)
        for w in self.WAVEFORMS:
            vec = w.values_array(ts)
            scalar = np.array([w.value(float(t)) for t in ts])
            np.testing.assert_allclose(vec, scalar, rtol=0.0, atol=1e-15)
            assert vec.shape == ts.shape

    def test_parity_at_transition_spots(self):
        """Breakpoints are the risky spots (ulp snapping, fmod folding)."""
        for w in self.WAVEFORMS:
            spots = np.array(w.transition_spots(1e-9))
            vec = w.values_array(spots)
            scalar = np.array([w.value(float(t)) for t in spots])
            np.testing.assert_allclose(vec, scalar, rtol=0.0, atol=1e-15)

    def test_parity_ulp_around_spots_and_past_final(self):
        """Ulp-perturbed breakpoints and the past-final hold region —
        where scalar snapping and the cached-table path could drift."""
        for w in self.WAVEFORMS:
            spots = np.array(w.transition_spots(1e-9))
            probe = np.concatenate([
                np.nextafter(spots, -np.inf),
                np.nextafter(spots, np.inf),
                spots[-1] + np.array([1e-10, 1e-9, 1e-6, 1.0]),  # past final
            ])
            vec = w.values_array(probe)
            scalar = np.array([w.value(float(t)) for t in probe])
            np.testing.assert_allclose(vec, scalar, rtol=0.0, atol=1e-15)

    def test_repeated_calls_share_cached_tables(self):
        p = Pulse(0.0, 1e-3, 1e-10, 2e-11, 1e-10, 3e-11)
        a = p.values_array(np.array([0.0, 1e-10]))
        b = p.values_array(np.array([0.0, 1e-10]))
        np.testing.assert_array_equal(a, b)
        assert p._interp_table is p._interp_table  # cached, not rebuilt

    def test_base_class_fallback_preserves_shape(self):
        class Ramp(Waveform):
            def value(self, t):
                return 2.0 * t

        ts = np.array([[0.0, 1.0], [2.0, 3.0]])
        out = Ramp().values_array(ts)
        assert out.shape == ts.shape
        np.testing.assert_allclose(out, 2.0 * ts)
