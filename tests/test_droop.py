"""Tests for the IR-drop analysis helpers."""

import numpy as np
import pytest

from repro.analysis.droop import droop_report, worst_droop
from repro.core import TransientResult
from repro.core.stats import SolverStats


@pytest.fixture
def sagging_result(small_pdn_system):
    """All rails at 1.8 V except one node dipping to 1.7 V at t=1e-10."""
    s = small_pdn_system
    times = np.array([0.0, 1e-10, 2e-10])
    states = np.full((3, s.dim), 1.8)
    dip_idx = s.netlist.node_index("g2_2")
    states[1, dip_idx] = 1.70
    states[2, dip_idx] = 1.78
    return TransientResult(s, times, states, SolverStats())


class TestDroopReport:
    def test_worst_droop_located(self, sagging_result):
        report = droop_report(sagging_result, vdd=1.8)
        assert report.worst_droop == pytest.approx(0.10)
        assert report.worst_node == "g2_2"
        assert report.worst_time == pytest.approx(1e-10)

    def test_violations_against_budget(self, sagging_result):
        report = droop_report(sagging_result, vdd=1.8, budget=0.05)
        assert report.violations == ("g2_2",)
        relaxed = droop_report(sagging_result, vdd=1.8, budget=0.2)
        assert relaxed.violations == ()

    def test_node_filter(self, sagging_result):
        report = droop_report(
            sagging_result, vdd=1.8,
            node_filter=lambda n: n != "g2_2",
        )
        assert report.worst_droop == pytest.approx(0.0)

    def test_filter_everything_rejected(self, sagging_result):
        with pytest.raises(ValueError, match="excluded every node"):
            droop_report(sagging_result, vdd=1.8,
                         node_filter=lambda n: False)

    def test_shortcut(self, sagging_result):
        assert worst_droop(sagging_result, 1.8) == pytest.approx(0.10)

    def test_summary_mentions_mv(self, sagging_result):
        text = droop_report(sagging_result, vdd=1.8).summary()
        assert "mV" in text and "g2_2" in text

    def test_on_real_simulation(self, small_pdn_system):
        from repro.core import MatexSolver, SolverOptions

        res = MatexSolver(
            small_pdn_system,
            SolverOptions(method="rational", gamma=1e-11),
        ).simulate(1e-9)
        report = droop_report(res, vdd=1.8, budget=1e-5,
                              node_filter=lambda n: n.startswith("g"))
        # The pulse loads must produce some sag at the struck nodes.
        assert report.worst_droop > 0.0
        assert report.worst_node.startswith("g")
