"""Property-based tests for the linear-algebra kernels (hypothesis)."""

import numpy as np
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import arnoldi, expm

# Small well-scaled random matrices.
square = st.integers(min_value=1, max_value=10).flatmap(
    lambda n: hnp.arrays(
        np.float64, (n, n),
        elements=st.floats(-3.0, 3.0, allow_nan=False),
    )
)


@given(a=square)
@settings(max_examples=60)
def test_expm_matches_scipy(a):
    assert np.allclose(expm(a), sla.expm(a), rtol=1e-9, atol=1e-10)


@given(a=square)
@settings(max_examples=40)
def test_expm_inverse_identity(a):
    """exp(A) · exp(−A) = I (up to conditioning of the exponential)."""
    prod = expm(a) @ expm(-a)
    kappa = max(1.0, float(np.abs(expm(a)).max() * np.abs(expm(-a)).max()))
    assert np.allclose(prod, np.eye(a.shape[0]), atol=1e-12 * kappa + 1e-9)


@given(a=square)
@settings(max_examples=40)
def test_expm_determinant_is_exp_trace(a):
    """Jacobi's formula: log det exp(A) = tr(A) (stable in log space).

    The achievable accuracy shrinks with ‖A‖: scaling-and-squaring
    loses ~ε·‖A‖ per squaring in the small eigenvalues, which logdet
    sums over all n of them (SciPy's expm drifts identically — e.g.
    ~3e-4 for the all-3.0 10×10 matrix, whose trace is 30).
    """
    n = a.shape[0]
    sign, logdet = np.linalg.slogdet(expm(a))
    assert sign > 0
    tol = 1e-6 + 5e-6 * n * max(1.0, np.linalg.norm(a, 1))
    assert np.isclose(logdet, np.trace(a), rtol=1e-6, atol=tol)


@given(a=square, s=st.floats(0.1, 2.0))
@settings(max_examples=40)
def test_expm_semigroup_on_commuting_scalings(a, s):
    """exp((1+s)A) = exp(A) · exp(sA) (A commutes with itself)."""
    lhs = expm((1.0 + s) * a)
    rhs = expm(a) @ expm(s * a)
    scale = max(1.0, np.abs(lhs).max())
    assert np.allclose(lhs, rhs, rtol=1e-7, atol=1e-8 * scale)


@given(
    n=st.integers(min_value=3, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_arnoldi_orthonormality_and_recurrence(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    v = rng.normal(size=n)
    if np.linalg.norm(v) < 1e-12:
        return
    m_max = min(6, n)
    res = arnoldi(lambda x: a @ x, v, m_max=m_max)
    # On happy breakdown the extra column v_{m+1} is zero by design, so
    # only the first m columns are orthonormal.
    block = res.Vm if res.happy_breakdown else res.V
    assert np.allclose(block.T @ block, np.eye(block.shape[1]), atol=1e-10)
    scale = max(1.0, float(np.abs(a).max()))
    assert np.allclose(a @ res.Vm, res.V @ res.H, atol=1e-8 * scale)
