"""Tests for the MNA regularization substrate (paper ref [3]).

Verifies that eliminating the algebraic unknowns produces a
non-singular-``C`` ODE system whose trajectory — expanded back to the
full state — matches the regularization-free R-MATEX solver, and that
MEXP (standard Krylov), which refuses the raw singular-``C`` system,
runs happily on the regularized one.
"""

import numpy as np
import pytest

from repro.circuit.regularize import regularize
from repro.core import MatexSolver, SolverOptions
from repro.linalg import (
    RegularizationRequiredError,
    StandardKrylov,
    etd_exact_step,
)


class TestReduction:
    def test_splits_algebraic_rows(self, small_pdn_system):
        reg = regularize(small_pdn_system)
        s = small_pdn_system
        # The V-source branch row is algebraic; all 16 grid nodes have
        # caps; the pad node has no cap -> algebraic too.
        assert len(reg.algebraic_index) == 2
        assert reg.dim + 2 == s.dim

    def test_reduced_c_nonsingular(self, small_pdn_system):
        reg = regularize(small_pdn_system)
        cd = np.asarray(reg.Cd.todense())
        assert np.linalg.matrix_rank(cd) == reg.dim

    def test_identity_on_nonsingular_c(self, rc_ladder_system):
        reg = regularize(rc_ladder_system)
        assert len(reg.algebraic_index) == 0
        assert reg.dim == rc_ladder_system.dim
        x = np.arange(reg.dim, dtype=float)
        assert np.allclose(reg.expand_state(x, np.zeros(1)), x)

    def test_state_roundtrip(self, small_pdn_system, rng):
        """reduce . expand recovers the dynamic part exactly and the
        algebraic part consistently with the constraints."""
        reg = regularize(small_pdn_system)
        s = small_pdn_system
        # Take a *consistent* full state: the DC operating point.
        from repro.baselines import dc_operating_point

        x_full, _ = dc_operating_point(s)
        xd = reg.reduce_state(x_full)
        back = reg.expand_state(xd, s.input_vector(0.0))
        assert np.allclose(back, x_full, atol=1e-12)


class TestRegularizedDynamics:
    def test_matches_rmatex_trajectory(self, small_pdn_system):
        """March the regularized ODE exactly (dense) and compare the
        expanded full states with the regularization-free solver."""
        s = small_pdn_system
        reg = regularize(s)
        t_end = 1e-9
        ref = MatexSolver(
            s, SolverOptions(method="rational", gamma=1e-11, eps_rel=1e-10)
        ).simulate(t_end)

        cd = np.asarray(reg.Cd.todense())
        ad = -np.linalg.solve(cd, reg.Gd)
        xd = reg.reduce_state(ref.states[0])
        for i in range(len(ref.times) - 1):
            t0, t1 = ref.times[i], ref.times[i + 1]
            h = t1 - t0
            bu0 = reg.bu_reduced(t0)
            bu1 = reg.bu_reduced(t1)
            b0 = np.linalg.solve(cd, bu0)
            slope = np.linalg.solve(cd, (bu1 - bu0) / h)
            xd = etd_exact_step(ad, xd, b0, slope, h)
        full = reg.expand_state(xd, s.input_vector(ref.times[-1]))
        assert np.max(np.abs(full - ref.final_state)) < 1e-6

    def test_mexp_runs_after_regularization(self, small_pdn_system):
        """The paper's point: MEXP needs [3]; after it, it works."""
        s = small_pdn_system
        with pytest.raises(RegularizationRequiredError):
            StandardKrylov(s.C, s.G)

        reg = regularize(s)
        import scipy.sparse as sp

        op = StandardKrylov(reg.Cd, sp.csc_matrix(reg.Gd))
        rng = np.random.default_rng(0)
        v = rng.normal(size=reg.dim)
        y, basis = op.expm_multiply(v, 1e-11,
                                    tol=1e-8 * np.linalg.norm(v),
                                    m_max=reg.dim)
        assert np.all(np.isfinite(y))
        assert basis.m >= 1
