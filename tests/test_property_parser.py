"""Property-based round-trip tests for netlist I/O (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Netlist, Pulse, assemble, format_netlist, parse_netlist
from repro.circuit.parser import parse_value

finite_pos = st.floats(1e-15, 1e6, allow_nan=False, allow_infinity=False)


@given(x=finite_pos)
def test_parse_value_repr_roundtrip(x):
    """Any positive float printed with repr() must parse back exactly."""
    assert parse_value(repr(x)) == x


@given(
    base=st.floats(0.1, 999.0),
    suffix=st.sampled_from(["", "k", "m", "u", "n", "p", "f", "meg", "g"]),
)
def test_parse_value_suffix_scaling(base, suffix):
    mult = {"": 1.0, "k": 1e3, "m": 1e-3, "u": 1e-6, "n": 1e-9,
            "p": 1e-12, "f": 1e-15, "meg": 1e6, "g": 1e9}[suffix]
    got = parse_value(f"{base!r}{suffix}")
    assert got == base * mult


@st.composite
def random_netlist(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    net = Netlist("prop")
    for i in range(n):
        parent = "0" if i == 0 else f"q{draw(st.integers(0, i - 1))}"
        net.add_resistor(f"R{i}", parent, f"q{i}",
                         draw(st.floats(0.01, 1e4)))
        net.add_capacitor(f"C{i}", f"q{i}", "0",
                          draw(st.floats(1e-15, 1e-9)))
    if draw(st.booleans()):
        net.add_voltage_source("V0", "vp", "0", draw(st.floats(0.5, 5.0)))
        net.add_resistor("Rvp", "vp", "q0", draw(st.floats(0.01, 10.0)))
    delay = draw(st.floats(0.0, 1e-9))
    net.add_current_source(
        "I0", f"q{n - 1}", "0",
        Pulse(0.0, draw(st.floats(1e-5, 1e-2)), delay,
              draw(st.floats(1e-12, 1e-10)),
              draw(st.floats(0.0, 1e-9)),
              draw(st.floats(1e-12, 1e-10))),
    )
    return net


@given(net=random_netlist())
@settings(max_examples=25, deadline=None)
def test_netlist_roundtrip_preserves_matrices(net):
    reparsed = parse_netlist(format_netlist(net))
    a = assemble(net)
    b = assemble(reparsed)
    assert np.array_equal(a.G.todense(), b.G.todense())
    assert np.array_equal(a.C.todense(), b.C.todense())
    assert np.array_equal(a.B.todense(), b.B.todense())


@given(net=random_netlist(), t=st.floats(0.0, 2e-9))
@settings(max_examples=25, deadline=None)
def test_netlist_roundtrip_preserves_inputs(net, t):
    reparsed = parse_netlist(format_netlist(net))
    a = assemble(net)
    b = assemble(reparsed)
    assert np.allclose(a.input_vector(t), b.input_vector(t),
                       rtol=1e-15, atol=0.0)
