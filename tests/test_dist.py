"""Unit tests for the distributed scheduler, workers and executors."""

import numpy as np
import pytest

from repro.core import MatexSolver, SolverOptions
from repro.dist import (
    MatexScheduler,
    MultiprocessExecutor,
    NodeWorker,
    SerialExecutor,
    SimulationTask,
)
from repro.core.decomposition import SourceGroup
from repro.linalg import exact_transient

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)


class TestScheduler:
    def test_matches_exact_solution(self, mesh_system):
        s = mesh_system
        t_end = 1e-9
        dres = MatexScheduler(s, OPTS, decomposition="bump").run(t_end)
        times, X = exact_transient(s, np.zeros(s.dim), t_end)
        assert np.allclose(dres.result.times, times)
        assert np.max(np.abs(dres.result.states - X)) < 1e-6

    def test_matches_single_node_solver(self, small_pdn_system):
        s = small_pdn_system
        t_end = 1e-9
        dres = MatexScheduler(s, OPTS, decomposition="bump").run(t_end)
        single = MatexSolver(s, OPTS).simulate(t_end)
        diff = np.abs(dres.result.states - single.states)
        assert diff.max() < 1e-6

    def test_bump_vs_source_decomposition_agree(self, mesh_system):
        s = mesh_system
        a = MatexScheduler(s, OPTS, decomposition="bump").run(1e-9)
        b = MatexScheduler(s, OPTS, decomposition="source").run(1e-9)
        assert a.n_nodes < b.n_nodes  # two sources share a shape
        assert np.max(np.abs(a.result.states - b.result.states)) < 1e-7

    def test_max_nodes_cap(self, mesh_system):
        sched = MatexScheduler(mesh_system, OPTS, decomposition="source",
                               max_nodes=2)
        assert len(sched.groups()) == 2
        dres = sched.run(1e-9)
        assert dres.n_nodes == 2

    def test_timing_fields(self, mesh_system):
        dres = MatexScheduler(mesh_system, OPTS).run(1e-9)
        assert dres.tr_matex == max(dres.node_transient_seconds)
        assert dres.tr_total >= dres.tr_matex
        assert dres.total_substitution_pairs >= dres.max_node_substitution_pairs

    def test_bad_decomposition_name(self, mesh_system):
        with pytest.raises(ValueError, match="unknown decomposition"):
            MatexScheduler(mesh_system, OPTS, decomposition="magic")

    def test_all_constant_inputs_rejected(self):
        from repro.circuit import Netlist, assemble

        net = Netlist("dc-only")
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_capacitor("C1", "a", "0", 1e-12)
        net.add_current_source("I1", "a", "0", 1e-3)
        system = assemble(net)
        with pytest.raises(ValueError, match="constant"):
            MatexScheduler(system, OPTS).run(1e-9)


class TestWorker:
    def test_node_worker_runs_task(self, mesh_system):
        s = mesh_system
        worker = NodeWorker(s, OPTS)
        gts = tuple(s.global_transition_spots(1e-9))
        task = SimulationTask(
            task_id=3,
            group=SourceGroup(group_id=3, label="g", input_columns=(1,)),
            t_end=1e-9,
            global_points=gts,
        )
        result = worker.run(task)
        assert result.task_id == 3
        assert result.states.shape == (len(gts), s.dim)
        assert result.transient_seconds >= 0.0

    def test_worker_amortizes_factorization(self, mesh_system):
        worker = NodeWorker(mesh_system, OPTS)
        f0 = worker.solver.factor_seconds
        gts = tuple(mesh_system.global_transition_spots(1e-9))
        for k in range(2):
            worker.run(SimulationTask(
                task_id=k,
                group=SourceGroup(group_id=k, label="", input_columns=(k,)),
                t_end=1e-9, global_points=gts,
            ))
        assert worker.solver.factor_seconds == f0  # no refactorisation


class TestExecutors:
    def test_serial_and_multiprocess_agree(self, mesh_system):
        s = mesh_system
        sched = MatexScheduler(s, OPTS, decomposition="bump")
        serial = sched.run(1e-9)
        mp = sched.run(
            1e-9, executor=MultiprocessExecutor(s, OPTS, max_workers=2)
        )
        assert np.allclose(serial.result.states, mp.result.states,
                           rtol=1e-12, atol=1e-15)

    def test_serial_executor_yields_in_order(self, mesh_system):
        s = mesh_system
        ex = SerialExecutor(s, OPTS)
        gts = tuple(s.global_transition_spots(1e-9))
        tasks = [
            SimulationTask(
                task_id=k,
                group=SourceGroup(group_id=k, label="", input_columns=(k,)),
                t_end=1e-9, global_points=gts,
            )
            for k in range(3)
        ]
        results = list(ex.run(tasks))
        assert [r.task_id for r in results] == [0, 1, 2]
