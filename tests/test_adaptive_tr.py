"""Unit tests for the LTE-controlled adaptive trapezoidal baseline."""

import numpy as np
import pytest

from repro.baselines import simulate_adaptive_trapezoidal, simulate_trapezoidal
from repro.analysis import error_metrics


class TestAdaptiveTrapezoidal:
    def test_accuracy_tracks_tolerance(self, mesh_system):
        golden = simulate_trapezoidal(mesh_system, 5e-13, 1e-9,
                                      x0=np.zeros(mesh_system.dim))
        loose = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-3, x0=np.zeros(mesh_system.dim))
        tight = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-7, x0=np.zeros(mesh_system.dim))
        err_loose = error_metrics(loose, golden, times=golden.times)["max"]
        err_tight = error_metrics(tight, golden, times=golden.times)["max"]
        assert err_tight <= err_loose
        assert err_tight < 1e-5

    def test_tight_tolerance_takes_more_steps(self, mesh_system):
        loose = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-3, x0=np.zeros(mesh_system.dim))
        tight = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-8, x0=np.zeros(mesh_system.dim))
        assert tight.stats.n_steps > loose.stats.n_steps

    def test_counts_factorizations(self, mesh_system):
        res = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-6, x0=np.zeros(mesh_system.dim))
        # The controller must have changed step size at least once.
        assert res.stats.n_krylov_bases >= 2

    def test_steps_land_on_transition_spots(self, mesh_system):
        res = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-4, x0=np.zeros(mesh_system.dim))
        gts = mesh_system.global_transition_spots(1e-9)
        accepted = set(np.round(res.times, 18))
        for spot in gts:
            assert any(abs(spot - t) <= 1e-9 * max(spot, 1e-30)
                       for t in accepted), f"missed transition spot {spot}"

    def test_reaches_horizon(self, mesh_system):
        res = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-5, x0=np.zeros(mesh_system.dim))
        assert res.times[-1] == pytest.approx(1e-9)

    def test_bounds_validation(self, mesh_system):
        with pytest.raises(ValueError):
            simulate_adaptive_trapezoidal(
                mesh_system, 1e-9, h_init=1e-9, h_max=1e-11)

    def test_factorization_budget(self, mesh_system):
        with pytest.raises(RuntimeError, match="factorisations"):
            simulate_adaptive_trapezoidal(
                mesh_system, 1e-9, tol=1e-30,
                x0=np.zeros(mesh_system.dim), max_factorizations=2)


class TestStepSizeUnderflow:
    def test_pathological_tolerance_raises_instead_of_hanging(
        self, rc_ladder_system
    ):
        """An unreachable tol with a tiny h_min drives h below the float
        resolution of t; the controller must diagnose the underflow
        (previously the march spun forever re-halving dt)."""
        with pytest.raises(RuntimeError, match="step-size underflow"):
            simulate_adaptive_trapezoidal(
                rc_ladder_system, 1e-9, tol=1e-300,
                h_init=1e-12, h_min=1e-30,
                x0=np.zeros(rc_ladder_system.dim),
                max_factorizations=10_000,
            )

    def test_final_approach_to_t_end_is_not_flagged(self, rc_ladder_system):
        """Steps clamped by the horizon legitimately shrink to ulp scale;
        only policy-shrunk steps are underflow."""
        res = simulate_adaptive_trapezoidal(
            rc_ladder_system, 1e-9, tol=1e-4,
            x0=np.zeros(rc_ladder_system.dim),
        )
        assert res.times[-1] == pytest.approx(1e-9, rel=1e-12)
