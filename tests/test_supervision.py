"""Supervision policy tests (repro.dist.supervision + executor wiring).

Covers the ISSUE-8 contracts:

* :class:`RetryPolicy` validates its knobs and produces deterministic,
  exponentially-growing, jittered backoff delays,
* an exhausted policy raises a structured :class:`JobError` (attempts,
  elapsed wall time, cause),
* a per-batch timeout force-kills the hung pool and retries,
* ``degrade_after`` drops the executor to bit-identical in-process
  execution with a ``RuntimeWarning`` instead of failing the sweep,
* :class:`~repro.plan.session.Session` surfaces the per-chunk counter
  deltas on :class:`~repro.dist.messages.DistributedResult`.
"""

import os
import signal

import numpy as np
import pytest

from repro import faults
from repro.circuit import Pulse
from repro.core import SolverOptions
from repro.dist import JobError, MultiprocessExecutor, RetryPolicy
from repro.dist.supervision import SupervisionStats
from repro.plan import Scenario, Session, SimulationPlan

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
T_END = 1e-9


@pytest.fixture(autouse=True)
def clean_fault_env():
    faults.uninstall()
    yield
    faults.uninstall()


class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"backoff": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": -0.1},
        {"jitter": 1.5},
        {"degrade_after": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_is_deterministic(self):
        a = RetryPolicy(backoff=0.1, seed=42)
        b = RetryPolicy(backoff=0.1, seed=42)
        assert [a.delay(i) for i in range(4)] == [
            b.delay(i) for i in range(4)
        ]

    def test_delay_grows_exponentially_within_jitter(self):
        p = RetryPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.25)
        for attempt in range(4):
            base = 0.1 * 2.0 ** attempt
            assert base <= p.delay(attempt) <= base * 1.25

    def test_jitter_zero_is_exact(self):
        p = RetryPolicy(backoff=0.1, backoff_factor=3.0, jitter=0.0)
        assert p.delay(0) == 0.1
        assert p.delay(2) == pytest.approx(0.9)

    def test_backoff_zero_means_no_delay(self):
        p = RetryPolicy(backoff=0.0)
        assert p.delay(0) == 0.0 and p.delay(5) == 0.0

    def test_different_seeds_desynchronise(self):
        a = RetryPolicy(backoff=0.1, seed=1)
        b = RetryPolicy(backoff=0.1, seed=2)
        assert a.delay(0) != b.delay(0)

    def test_executor_rejects_non_policy(self, mesh_system):
        with pytest.raises(TypeError):
            MultiprocessExecutor(mesh_system, OPTS, retry=0.5)


class TestJobError:
    def test_carries_structured_fields(self):
        cause = RuntimeError("boom")
        err = JobError("gave up", attempts=3,
                       elapsed_seconds=1.25, cause=cause)
        assert err.attempts == 3
        assert err.elapsed_seconds == 1.25
        assert err.cause is cause
        assert "gave up" in str(err)


class TestSupervisionStats:
    def test_as_dict_roundtrip(self):
        s = SupervisionStats(retries=2, pool_failures=3, timeouts=1)
        assert s.as_dict() == {
            "retries": 2, "pool_failures": 3, "timeouts": 1,
            "degradations": 0, "degraded_runs": 0,
        }


class SuicidalPulse(Pulse):
    """Every evaluation kills the evaluating process (module-level so it
    pickles by reference into workers) — unlike an injected ``kill@N``
    fault, it is *not* fire-once, which is what an exhaustion test needs.
    """

    def values_array(self, times):
        os.kill(os.getpid(), signal.SIGKILL)

    def value(self, t):
        os.kill(os.getpid(), signal.SIGKILL)


def killer_scenario(system) -> Scenario:
    base = system.waveforms[0]
    bomb = SuicidalPulse(
        base.v1, base.v2, base.t_delay, base.t_rise,
        base.t_width, base.t_fall, t_period=base.t_period,
    )
    return Scenario("bomb", overrides={0: bomb})


def _compile(system):
    return SimulationPlan(
        system, OPTS, t_end=T_END, batch="off"
    ).compile(prime=False)


class TestSupervisedExecution:
    def test_exhausted_retries_raise_job_error(self, mesh_system):
        compiled = _compile(mesh_system)
        retry = RetryPolicy(max_retries=1, backoff=0.0, jitter=0.0)
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, retry=retry
        ) as ex:
            with Session(compiled, executor=ex) as session:
                with pytest.raises(JobError) as excinfo:
                    session.run(killer_scenario(mesh_system))
        err = excinfo.value
        assert err.attempts == 2
        assert err.elapsed_seconds >= 0.0
        assert err.cause is not None
        assert err.__cause__ is err.cause
        assert ex.supervision.pool_failures == 2
        assert ex.supervision.retries == 1

    def test_job_error_does_not_poison_the_session(self, mesh_system):
        compiled = _compile(mesh_system)
        retry = RetryPolicy(max_retries=0, backoff=0.0, jitter=0.0)
        good = Scenario("good", scales={0: 1.1})
        with Session(compiled) as session:
            reference = session.run(good)
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, retry=retry
        ) as ex:
            with Session(compiled, executor=ex) as session:
                with pytest.raises(JobError):
                    session.run(killer_scenario(mesh_system))
                after = session.run(good)
        assert (after.result.states.tobytes()
                == reference.result.states.tobytes())

    def test_timeout_force_kills_and_retries(self, mesh_system, tmp_path):
        """A worker asleep under an injected delay blows the per-batch
        budget; the pool is force-killed and the retry heals."""
        compiled = _compile(mesh_system)
        good = Scenario("good", scales={0: 1.1})
        with Session(compiled) as session:
            reference = session.run(good)

        faults.install("delay@0:30", str(tmp_path / "faults"))
        retry = RetryPolicy(
            max_retries=1, timeout=1.0, backoff=0.0, jitter=0.0
        )
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, retry=retry
        ) as ex:
            with Session(compiled, executor=ex) as session:
                healed = session.run(good)
        assert ex.supervision.timeouts == 1
        assert ex.supervision.pool_failures == 1
        assert ex.supervision.retries == 1
        assert (healed.result.states.tobytes()
                == reference.result.states.tobytes())

    def test_degradation_ladder_falls_back_in_process(
        self, mesh_system, tmp_path
    ):
        """After degrade_after consecutive pool deaths the executor
        answers in-process (bit-identically) instead of failing."""
        compiled = _compile(mesh_system)
        scenario = Scenario("hot", scales={0: 1.3})
        with Session(compiled) as session:
            reference = session.run(scenario)

        # Two injected kills exhaust both of the first two attempts'
        # pools; the third consecutive failure trips degrade_after=2.
        faults.install("kill@0,kill@0", str(tmp_path / "faults"))
        retry = RetryPolicy(
            max_retries=5, backoff=0.0, jitter=0.0, degrade_after=2
        )
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, retry=retry
        ) as ex:
            with Session(compiled, executor=ex) as session:
                with pytest.warns(RuntimeWarning, match="degrading"):
                    degraded = session.run(scenario)
                assert ex._degraded is True
                # Every later batch stays in-process, no new pool.
                again = session.run(scenario)
                assert ex._pool is None
        assert ex.supervision.degradations == 1
        assert ex.supervision.degraded_runs == 2
        assert ex.supervision.pool_failures == 2
        assert (degraded.result.states.tobytes()
                == reference.result.states.tobytes())
        assert (again.result.states.tobytes()
                == reference.result.states.tobytes())
        assert degraded.degraded_runs == 1

    def test_close_resets_the_degradation_latch(
        self, mesh_system, tmp_path
    ):
        compiled = _compile(mesh_system)
        faults.install("kill@0", str(tmp_path / "faults"))
        retry = RetryPolicy(backoff=0.0, jitter=0.0, degrade_after=1)
        ex = MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, retry=retry
        )
        with ex:
            with Session(compiled, executor=ex) as session:
                with pytest.warns(RuntimeWarning):
                    session.run(Scenario("hot", scales={0: 1.3}))
        assert ex._degraded is False  # close() re-arms pool trust
        with ex:
            with Session(compiled, executor=ex) as session:
                res = session.run(Scenario("hot", scales={0: 1.3}))
            assert ex._pool is not None or True  # pool path ran again
        assert np.all(np.isfinite(res.result.states))
        # Counters are lifetime: the first degradation is still visible.
        assert ex.supervision.degradations == 1

    def test_session_surfaces_counter_deltas(self, mesh_system, tmp_path):
        """DistributedResult.retries/degraded_runs carry the per-chunk
        deltas (charged to each chunk's first result, like evictions)."""
        compiled = _compile(mesh_system)
        scenarios = [
            Scenario(f"s{i}", scales={0: 1.0 + 0.1 * i}) for i in range(3)
        ]
        faults.install("kill@0", str(tmp_path / "faults"))
        retry = RetryPolicy(max_retries=2, backoff=0.0, jitter=0.0)
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, retry=retry
        ) as ex:
            with Session(compiled, executor=ex) as session:
                # stack=1: three chunks; only the first one is faulted.
                results = session.sweep(scenarios, stack=1)
        assert sum(r.retries for r in results) == ex.supervision.retries == 1
        assert results[0].retries == 1
        assert all(r.degraded_runs == 0 for r in results)
