"""Tests for the streaming ibmpg-style ingester (repro.circuit.ingest).

The load-bearing property is **bit-identity**: a deck written in element
insertion order must stream back into an :class:`MNASystem` whose CSC
arrays are byte-for-byte equal to ``assemble(netlist)`` — node index
assignment, stamp sequence and duplicate-summation order all preserved.
"""

import numpy as np
import pytest

from repro.circuit import (
    DC,
    PWL,
    IngestError,
    NetlistError,
    ParseError,
    Pulse,
    assemble,
    format_netlist,
    ingest_file,
    ingest_text,
)
from repro.core import SolverOptions
from repro.dist import MatexScheduler
from repro.pdn import PdnConfig, WorkloadSpec, synthesize_ibmpg
from tests.conftest import build_multi_source_mesh, build_small_pdn


def assert_bit_identical(ref, streamed):
    """CSC arrays of G/C/B byte-for-byte equal, plus the node map."""
    for name in ("G", "C", "B"):
        a, b = getattr(ref, name), getattr(streamed, name)
        assert a.shape == b.shape, name
        np.testing.assert_array_equal(a.indptr, b.indptr, err_msg=name)
        np.testing.assert_array_equal(a.indices, b.indices, err_msg=name)
        np.testing.assert_array_equal(a.data, b.data, err_msg=name)
    assert ref.netlist.node_names() == streamed.netlist.node_names()
    assert ref.waveforms == streamed.waveforms
    assert ref.n_current_inputs == streamed.n_current_inputs


class TestRoundTripBitIdentity:
    @pytest.mark.parametrize("build", [build_small_pdn, build_multi_source_mesh])
    def test_insertion_order_roundtrip(self, build):
        net = build()
        text = format_netlist(net, t_end=1e-9, order="insertion")
        res = ingest_text(text)
        assert_bit_identical(assemble(net), res.system)
        assert res.stats.tran_stop == 1e-9

    def test_pdn_with_inductors_roundtrip(self, tmp_path):
        cfg = PdnConfig(rows=8, cols=8, l_package=5e-10, n_pads=3)
        wl = WorkloadSpec(n_sources=6, n_shapes=2, t_end=1e-9,
                          time_grid_points=8)
        path = tmp_path / "grid.spice"
        net = synthesize_ibmpg(path, cfg, wl)
        res = ingest_file(path)
        assert_bit_identical(assemble(net), res.system)
        # The deck advertises its own horizon.
        assert res.stats.tran_stop == pytest.approx(1e-9)
        assert res.stats.n_inductors == 3
        assert res.stats.dim == res.system.dim

    def test_streamed_system_runs_distributed_identically(self, small_pdn):
        text = format_netlist(small_pdn, order="insertion")
        streamed = ingest_text(text).system
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7)
        ref = MatexScheduler(assemble(small_pdn), opts).run(1e-9)
        got = MatexScheduler(streamed, opts).run(1e-9)
        np.testing.assert_array_equal(ref.result.states, got.result.states)


class TestDialect:
    def test_comments_blanks_continuations_suffixes(self):
        res = ingest_text(
            "* a title comment\n"
            "\n"
            "R1 n1_1 0 4.7k\n"
            "C1 n1_1 0 10p\n"
            "Iload n1_1 0 PULSE(0 1m\n"
            "+ 100p 20p\n"
            "+ 20p 100p)\n"
            ".tran 1p 1n\n"
            ".end\n"
        )
        s = res.system
        assert s.dim == 1
        assert s.G[0, 0] == pytest.approx(1.0 / 4700.0)
        assert s.C[0, 0] == pytest.approx(1e-11)
        assert isinstance(s.waveforms[0], Pulse)
        assert res.stats.tran_step == pytest.approx(1e-12)
        assert res.stats.tran_stop == pytest.approx(1e-9)

    def test_title_line_and_ground_aliases(self):
        res = ingest_text(
            "my power grid\n"
            "Rg n_0_1 gnd 1.0\n"
            "Vs n_0_1 GND 1.8\n"
        )
        assert res.system.netlist.title == "my power grid"
        assert res.system.netlist.node_names() == ("n_0_1",)
        assert isinstance(res.system.waveforms[0], DC)

    def test_pwl_and_dc_sources(self):
        res = ingest_text(
            "R1 a 0 1\n"
            "V1 a 0 DC 1.8\n"
            "I1 a 0 PWL(0 0 1n 1m)\n"
        )
        wf = res.system.waveforms
        assert wf[0] == PWL([(0.0, 0.0), (1e-9, 1e-3)])  # current first
        assert wf[1] == DC(1.8)

    def test_end_stops_parsing(self):
        res = ingest_text("R1 a 0 1\n.end\nR2 b 0 nonsense\n")
        assert res.stats.n_resistors == 1

    def test_cards_after_end_not_counted(self):
        res = ingest_text("R1 a 0 1\n.end\nR1 a 0 1\n")  # dup after .end: fine
        assert res.stats.n_cards == 1


class TestErrors:
    def test_malformed_card_has_line_number(self):
        with pytest.raises(IngestError, match="line 2"):
            ingest_text("R1 a 0 1\nR2 a\n")

    def test_continuation_without_card(self):
        # Raised by the shared card tokeniser (parser.iter_logical_cards).
        with pytest.raises(ParseError, match="continuation"):
            ingest_text("+ 1 2 3\n")

    def test_unsupported_element_type(self):
        with pytest.raises(IngestError, match="unsupported element type"):
            ingest_text("R1 a 0 1\nQ1 a b c model\n")

    def test_duplicate_element_name(self):
        with pytest.raises(IngestError, match="duplicate element name"):
            ingest_text("R1 a 0 1\nR1 a 0 2\n")

    def test_both_terminals_grounded(self):
        with pytest.raises(IngestError, match="both terminals grounded"):
            ingest_text("R1 0 gnd 1\n")

    def test_nonpositive_value_rejected(self):
        with pytest.raises(IngestError, match="positive"):
            ingest_text("R1 a 0 -5\n")

    def test_floating_node_rejected(self):
        # A cap-only node has no DC path to ground.
        with pytest.raises(NetlistError, match="no DC path to ground"):
            ingest_text("R1 a 0 1\nC2 b 0 1p\n")

    def test_validate_false_skips_connectivity(self):
        res = ingest_text("R1 a 0 1\nC2 b 0 1p\n", validate=False)
        assert res.system.dim == 2

    def test_empty_netlist(self):
        with pytest.raises(NetlistError, match="empty netlist"):
            ingest_text("* nothing here\n")


class TestStreamedNetlist:
    def test_netlist_interface(self, small_pdn):
        streamed = ingest_text(
            format_netlist(small_pdn, order="insertion")
        ).system.netlist
        ref = small_pdn
        assert streamed.n_nodes == ref.n_nodes
        assert streamed.dim == ref.dim
        assert streamed.unknowns == ref.unknowns
        assert len(streamed) == len(ref)
        for name in ref.node_names():
            assert streamed.node_index(name) == ref.node_index(name)
        assert streamed.node_index("0") == -1
        with pytest.raises(NetlistError, match="unknown node"):
            streamed.node_index("no_such_node")
        # summary matches the Netlist format field for field (the title
        # differs: the writer emits it as a comment, not a title line)
        assert (streamed.summary().split(": ", 1)[1]
                == ref.summary().split(": ", 1)[1])

    def test_node_voltage_reporting(self, small_pdn):
        system = ingest_text(
            format_netlist(small_pdn, order="insertion")
        ).system
        x = np.arange(float(system.dim))
        idx = system.netlist.node_index("g3_3")
        assert system.node_voltage(x, "g3_3") == x[idx]
        assert system.node_voltages(x)["g0_0"] == x[0]


class TestWriterOrders:
    def test_by_type_unchanged_default(self, small_pdn):
        # The grouped layout is the historical default format.
        text = format_netlist(small_pdn)
        lines = [ln for ln in text.splitlines() if not ln.startswith("*")]
        kinds = [ln[0] for ln in lines if ln[0] != "."]
        assert kinds == sorted(kinds, key="RCLVI".index)

    def test_insertion_order_preserves_element_sequence(self, small_pdn):
        text = format_netlist(small_pdn, order="insertion")
        names = [ln.split()[0] for ln in text.splitlines()
                 if ln and ln[0] not in "*."]
        assert names == [e.name for e in small_pdn.elements()]

    def test_unknown_order_rejected(self, small_pdn):
        with pytest.raises(ValueError, match="order"):
            format_netlist(small_pdn, order="shuffled")


class TestSynthesizeIbmpg:
    def test_deck_has_benchmark_flavour(self, tmp_path):
        path = tmp_path / "pg.spice"
        synthesize_ibmpg(path, PdnConfig(rows=6, cols=6),
                         WorkloadSpec(n_sources=4, n_shapes=2,
                                      time_grid_points=8))
        text = path.read_text()
        assert text.startswith("* ibmpg-style synthetic benchmark")
        assert "\n.op\n" in text
        assert "\n.tran " in text
        assert text.rstrip().endswith(".end")

    def test_deck_parses_with_object_parser_too(self, tmp_path):
        """The streamed dialect stays a strict subset of the object one."""
        from repro.circuit import parse_file

        path = tmp_path / "pg.spice"
        net = synthesize_ibmpg(path, PdnConfig(rows=5, cols=5),
                               WorkloadSpec(n_sources=3, n_shapes=2,
                                            time_grid_points=8))
        reparsed = parse_file(path)
        assert len(reparsed) == len(net)
        assert assemble(reparsed).dim == assemble(net).dim
