"""Unit tests for TransientResult, SolverStats and SolverOptions."""

import numpy as np
import pytest

from repro.core import SolverOptions, TransientResult
from repro.core.stats import SolverStats


@pytest.fixture
def result(small_pdn_system):
    times = np.array([0.0, 1e-10, 2e-10, 4e-10])
    states = np.outer([0.0, 1.0, 2.0, 4.0], np.ones(small_pdn_system.dim))
    return TransientResult(small_pdn_system, times, states,
                           SolverStats(), method="test")


class TestTransientResult:
    def test_interpolation_midpoint(self, result):
        assert result.at(5e-11)[0] == pytest.approx(0.5)
        assert result.at(3e-10)[0] == pytest.approx(3.0)

    def test_clamping_outside_range(self, result):
        assert result.at(-1.0)[0] == 0.0
        assert result.at(1.0)[0] == 4.0

    def test_exact_grid_points(self, result):
        for i, t in enumerate(result.times):
            assert result.at(t)[0] == pytest.approx(result.states[i, 0])

    def test_sample_stacks_rows(self, result):
        out = result.sample(np.array([0.0, 1e-10]))
        assert out.shape == (2, result.states.shape[1])

    def test_voltage_series(self, result, small_pdn_system):
        v = result.voltage("g0_0")
        idx = small_pdn_system.netlist.node_index("g0_0")
        assert np.allclose(v, result.states[:, idx])
        assert np.all(result.voltage("0") == 0.0)

    def test_node_block_drops_branch_rows(self, result, small_pdn_system):
        block = result.node_block()
        assert block.shape[1] == small_pdn_system.netlist.n_nodes

    def test_shifted(self, result):
        shifted = result.shifted(np.ones(result.states.shape[1]))
        assert np.allclose(shifted.states, result.states + 1.0)

    def test_validation_shape(self, small_pdn_system):
        with pytest.raises(ValueError, match="inconsistent"):
            TransientResult(small_pdn_system, np.array([0.0, 1.0]),
                            np.zeros((3, small_pdn_system.dim)))

    def test_validation_monotone_times(self, small_pdn_system):
        with pytest.raises(ValueError, match="non-decreasing"):
            TransientResult(small_pdn_system, np.array([1.0, 0.0]),
                            np.zeros((2, small_pdn_system.dim)))


class TestSolverStats:
    def test_dim_aggregates(self):
        st = SolverStats(krylov_dims=[4, 6, 8])
        assert st.avg_krylov_dim == 6.0
        assert st.peak_krylov_dim == 8

    def test_empty_dims(self):
        st = SolverStats()
        assert st.avg_krylov_dim == 0.0
        assert st.peak_krylov_dim == 0

    def test_solve_totals(self):
        st = SolverStats(n_solves_krylov=10, n_solves_etd=6, n_solves_dc=1)
        assert st.n_solves_transient == 16
        assert st.n_solves_total == 17

    def test_merge(self):
        a = SolverStats(n_steps=2, krylov_dims=[3], factor_seconds=1.0)
        b = SolverStats(n_steps=3, krylov_dims=[5], factor_seconds=0.5)
        c = a.merge(b)
        assert c.n_steps == 5
        assert c.krylov_dims == [3, 5]
        assert c.factor_seconds == 1.5

    def test_summary_string(self):
        assert "ma=" in SolverStats(krylov_dims=[2]).summary()


class TestSolverOptions:
    def test_aliases_canonicalised(self):
        assert SolverOptions(method="MEXP").method == "standard"
        assert SolverOptions(method="rmatex").method == "rational"
        assert SolverOptions(method="I-MATEX").method == "inverted"

    def test_with_method(self):
        opts = SolverOptions(method="rational", gamma=2e-10)
        other = opts.with_method("imatex")
        assert other.method == "inverted"
        assert other.gamma == 2e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverOptions(method="simpson")
        with pytest.raises(ValueError):
            SolverOptions(gamma=-1.0)
        with pytest.raises(ValueError):
            SolverOptions(eps_rel=-1e-9)
        with pytest.raises(ValueError):
            SolverOptions(m_max=0)
