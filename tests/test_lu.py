"""Unit tests for the counting sparse-LU wrapper."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import FactorizationError, SparseLU


@pytest.fixture
def spd_matrix(rng):
    a = rng.normal(size=(12, 12))
    return sp.csc_matrix(a @ a.T + 12 * np.eye(12))


class TestSolve:
    def test_solution_correct(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix, label="test")
        b = rng.normal(size=12)
        x = lu.solve(b)
        assert np.allclose(spd_matrix @ x, b)

    def test_solve_many_block(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        b = rng.normal(size=(12, 4))
        x = lu.solve_many(b)
        assert np.allclose(spd_matrix @ x, b)

    def test_counter_increments(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        for _ in range(3):
            lu.solve(rng.normal(size=12))
        assert lu.n_solves == 3
        lu.solve_many(rng.normal(size=(12, 5)))
        assert lu.n_solves == 8
        lu.reset_counters()
        assert lu.n_solves == 0

    def test_factor_time_recorded(self, spd_matrix):
        lu = SparseLU(spd_matrix)
        assert lu.factor_seconds >= 0.0


class TestValidation:
    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SparseLU(sp.csc_matrix(np.ones((2, 3))))

    def test_structurally_singular_raises(self):
        m = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(FactorizationError):
            SparseLU(m, label="singular")

    def test_label_in_error_message(self):
        m = sp.csc_matrix(np.zeros((2, 2)))
        with pytest.raises(FactorizationError, match="myC"):
            SparseLU(m, label="myC")


class TestMultiRhsBitStability:
    """solve_many must be per-column bit-identical at ANY batch width.

    Handing SuperLU a multi-RHS block substitutes supernodes through
    BLAS kernels whose accumulation order depends on the RHS count and
    the factor's supernode shapes — bit-stable on some matrices,
    divergent at single-digit widths on others (pg4t's pencil).
    SparseLU.solve_many therefore runs the level-scheduled kernel of
    :mod:`repro.linalg.triangular`, whose per-row accumulation order is
    the scalar column sweep's by construction and never depends on the
    batch; this is the invariant the lockstep block march (and the
    scenario-sweep stacking on top of it) is built on.  Deeper coverage
    (random widths/offsets, kernel escape hatches) lives in
    ``tests/test_triangular.py``.
    """

    def test_wide_blocks_match_individual_solves(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        width = 300
        block = rng.normal(size=(spd_matrix.shape[0], width))
        ref = np.column_stack(
            [lu.solve(block[:, i]) for i in range(width)]
        )
        out = lu.solve_many(block)
        assert out.tobytes() == ref.tobytes()

    def test_batching_is_alignment_independent(self, spd_matrix, rng):
        """A column's bits don't depend on its position in the batch."""
        lu = SparseLU(spd_matrix)
        block = rng.normal(size=(spd_matrix.shape[0], 96))
        whole = lu.solve_many(block)
        shifted = lu.solve_many(block[:, 7:])
        assert whole[:, 7:].tobytes() == shifted.tobytes()

    def test_pg4t_pencil_regression(self):
        """The matrix family where raw multi-RHS SuperLU diverges."""
        from repro.pdn import build_case

        system, _ = build_case("pg4t")
        pencil = (system.C + 1e-10 * system.G).tocsc()
        lu = SparseLU(pencil, "pencil")
        rng = np.random.default_rng(1)
        block = rng.normal(size=(system.dim, 16))
        ref = np.column_stack(
            [lu.solve(block[:, i]) for i in range(16)]
        )
        # lu.solve counted 16 pairs; solve_many counts 16 more.
        assert lu.solve_many(block).tobytes() == ref.tobytes()
        assert lu.n_solves == 32

    def test_solve_counting_matches_column_count(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        lu.solve_many(rng.normal(size=(spd_matrix.shape[0], 37)))
        assert lu.n_solves == 37


class TestSolveManyContract:
    """Output-contract pins for solve_many (documented in its docstring).

    Before the level-kernel rewire, the 1-D path returned a 2-D block
    and the 0-column edge case produced a C-ordered array — consumers
    that relied on the documented F-ordered ``(n, k)`` contract (the
    zero-copy transport slicing columns out of the march block) only
    worked by accident.  These tests pin every branch of the contract.
    """

    def test_two_d_input_returns_f_ordered_float64(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        out = lu.solve_many(rng.normal(size=(12, 5)))
        assert out.shape == (12, 5)
        assert out.dtype == np.float64
        assert out.flags.f_contiguous

    def test_single_column_block_stays_two_d(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        b = rng.normal(size=(12, 1))
        out = lu.solve_many(b)
        assert out.shape == (12, 1)
        assert out.flags.f_contiguous
        assert out[:, 0].tobytes() == lu.solve(b[:, 0]).tobytes()

    def test_one_d_input_returns_one_d_bitwise_solve(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        b = rng.normal(size=12)
        out = lu.solve_many(b)
        assert out.ndim == 1
        assert out.dtype == np.float64
        assert out.tobytes() == lu.solve(b).tobytes()

    def test_zero_columns_returns_empty_f_ordered(self, spd_matrix):
        lu = SparseLU(spd_matrix)
        out = lu.solve_many(np.empty((12, 0)))
        assert out.shape == (12, 0)
        assert out.dtype == np.float64
        assert out.flags.f_contiguous
        assert lu.n_solves == 0

    def test_list_input_accepted(self, spd_matrix):
        lu = SparseLU(spd_matrix)
        b = [float(i) for i in range(12)]
        out = lu.solve_many(b)
        assert out.ndim == 1
        assert out.tobytes() == lu.solve(np.asarray(b, dtype=float)).tobytes()
