"""Unit tests for the counting sparse-LU wrapper."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import FactorizationError, SparseLU


@pytest.fixture
def spd_matrix(rng):
    a = rng.normal(size=(12, 12))
    return sp.csc_matrix(a @ a.T + 12 * np.eye(12))


class TestSolve:
    def test_solution_correct(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix, label="test")
        b = rng.normal(size=12)
        x = lu.solve(b)
        assert np.allclose(spd_matrix @ x, b)

    def test_solve_many_block(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        b = rng.normal(size=(12, 4))
        x = lu.solve_many(b)
        assert np.allclose(spd_matrix @ x, b)

    def test_counter_increments(self, spd_matrix, rng):
        lu = SparseLU(spd_matrix)
        for k in range(3):
            lu.solve(rng.normal(size=12))
        assert lu.n_solves == 3
        lu.solve_many(rng.normal(size=(12, 5)))
        assert lu.n_solves == 8
        lu.reset_counters()
        assert lu.n_solves == 0

    def test_factor_time_recorded(self, spd_matrix):
        lu = SparseLU(spd_matrix)
        assert lu.factor_seconds >= 0.0


class TestValidation:
    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SparseLU(sp.csc_matrix(np.ones((2, 3))))

    def test_structurally_singular_raises(self):
        m = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(FactorizationError):
            SparseLU(m, label="singular")

    def test_label_in_error_message(self):
        m = sp.csc_matrix(np.zeros((2, 2)))
        with pytest.raises(FactorizationError, match="myC"):
            SparseLU(m, label="myC")
