"""Unit tests for the ETD segment vectors (Eq. 5 machinery)."""

import numpy as np
import pytest

from repro.core import EtdWorkspace
from repro.linalg import SparseLU, dense_a_matrix


def dense_f(system, t, t_probe, active=None):
    """Direct dense evaluation of ``F = A⁻¹b + A⁻²s`` (paper Eq. 5).

    Uses the textbook form with ``A = -C⁻¹G`` explicitly, which is an
    independent derivation from the production code's G-solve route.
    """
    a = dense_a_matrix(system.C, system.G)
    c = np.asarray(system.C.todense())
    bu = system.bu(t, active=active)
    su = system.b_slope_fd(t, t_probe, active=active)
    b = np.linalg.solve(c, bu)
    s = np.linalg.solve(c, su)
    a_inv = np.linalg.inv(a)
    return a_inv @ b + a_inv @ (a_inv @ s)


class TestSegmentVectors:
    def test_f_matches_dense_formula(self, rc_ladder_system):
        s = rc_ladder_system
        ws = EtdWorkspace(s)
        t, t_probe = 1.2e-10, 1.4e-10  # inside the pulse rise
        seg = ws.segment(t, t_probe)
        f_dense = dense_f(s, t, t_probe)
        assert np.allclose(seg.F, f_dense, rtol=1e-9, atol=1e-18)

    def test_p_is_affine_in_h(self, rc_ladder_system):
        ws = EtdWorkspace(rc_ladder_system)
        seg = ws.segment(1.2e-10, 1.4e-10)
        h1, h2 = 1e-11, 3e-11
        p1, p2 = seg.P(h1), seg.P(h2)
        # P(h) = F - h*w2: check the affine identity at a third point.
        h3 = 2e-11
        p3_expected = p1 + (p2 - p1) * (h3 - h1) / (h2 - h1)
        assert np.allclose(seg.P(h3), p3_expected)

    def test_p_at_zero_is_f(self, rc_ladder_system):
        ws = EtdWorkspace(rc_ladder_system)
        seg = ws.segment(1.2e-10, 1.4e-10)
        assert np.allclose(seg.P(0.0), seg.F)

    def test_segment_from_vectors_equivalent(self, rc_ladder_system):
        s = rc_ladder_system
        ws = EtdWorkspace(s)
        t, t_probe = 1.2e-10, 1.4e-10
        direct = ws.segment(t, t_probe)
        via_vectors = ws.segment_from_vectors(
            t, s.bu(t), s.b_slope_fd(t, t_probe)
        )
        assert np.allclose(direct.F, via_vectors.F)
        assert np.allclose(direct.w2, via_vectors.w2)

    def test_three_solves_per_segment(self, rc_ladder_system):
        ws = EtdWorkspace(rc_ladder_system)
        before = ws.n_solves
        ws.segment(1.2e-10, 1.4e-10)
        assert ws.n_solves - before == 3

    def test_flat_segment_has_zero_w2(self, rc_ladder_system):
        ws = EtdWorkspace(rc_ladder_system)
        # Pulse flat top: [1.5e-10, 3.5e-10].
        seg = ws.segment(2e-10, 2.5e-10)
        assert np.allclose(seg.w2, 0.0)


class TestDeviationMode:
    def test_deviation_subtracts_initial_input(self, small_pdn_system):
        s = small_pdn_system
        ws_dev = EtdWorkspace(s, deviation_mode=True)
        # At t=0 the deviation input is exactly zero, so F must vanish
        # (pulse sources start at 0 but the V pad does not).
        seg = ws_dev.segment(0.0, 5e-11)
        assert np.allclose(seg.F, 0.0, atol=1e-20)

    def test_deviation_same_slope(self, small_pdn_system):
        s = small_pdn_system
        ws = EtdWorkspace(s)
        ws_dev = EtdWorkspace(s, deviation_mode=True)
        t, tp = 1.1e-10, 1.15e-10  # inside I0's rise
        assert np.allclose(
            ws.segment(t, tp).w2, ws_dev.segment(t, tp).w2
        )


class TestDcAndSharing:
    def test_dc_solution_solves_g(self, small_pdn_system):
        s = small_pdn_system
        ws = EtdWorkspace(s)
        x = ws.dc_solution()
        assert np.allclose(s.G @ x, s.bu(0.0), atol=1e-12)
        # VDD pad should sit at 1.8 V.
        assert s.node_voltage(x, "pad") == pytest.approx(1.8)

    def test_shared_lu_counts_once(self, rc_ladder_system):
        lu = SparseLU(rc_ladder_system.G, label="G")
        ws = EtdWorkspace(rc_ladder_system, lu_g=lu)
        ws.segment(1.2e-10, 1.4e-10)
        assert lu.n_solves == 3
        assert ws.lu_g is lu
