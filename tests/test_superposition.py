"""Unit tests for superposition recombination (paper Sec. 3.2)."""

import numpy as np
import pytest

from repro.core import (
    MatexSolver,
    SolverOptions,
    TransientResult,
    build_schedule,
    superpose,
)
from repro.core.stats import SolverStats
from repro.linalg import exact_transient


def _node_results(system, t_end, groups, opts):
    gts = system.global_transition_spots(t_end)
    results = []
    for cols in groups:
        sched = build_schedule(system, t_end, local_inputs=cols,
                               global_points=gts)
        solver = MatexSolver(system, opts, deviation_mode=True)
        results.append(
            solver.simulate(t_end, active_inputs=list(cols), schedule=sched)
        )
    return results


class TestSuperposition:
    def test_sum_equals_full_simulation(self, mesh_system):
        s = mesh_system
        t_end = 1e-9
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
        parts = _node_results(s, t_end, [(0,), (1,), (2,)], opts)
        combined = superpose(np.zeros(s.dim), parts)
        times, X = exact_transient(s, np.zeros(s.dim), t_end)
        assert np.allclose(combined.times, times)
        assert np.max(np.abs(combined.states - X)) < 1e-6

    def test_dc_offset_added(self, mesh_system):
        s = mesh_system
        opts = SolverOptions(method="rational", gamma=1e-10)
        parts = _node_results(s, 1e-9, [(0,)], opts)
        offset = np.full(s.dim, 0.25)
        combined = superpose(offset, parts)
        assert np.allclose(combined.states[0], 0.25)

    def test_stats_merged(self, mesh_system):
        s = mesh_system
        opts = SolverOptions(method="rational", gamma=1e-10)
        parts = _node_results(s, 1e-9, [(0,), (1,)], opts)
        combined = superpose(np.zeros(s.dim), parts)
        assert combined.stats.n_krylov_bases == sum(
            p.stats.n_krylov_bases for p in parts
        )

    def test_misaligned_grids_rejected(self, mesh_system):
        s = mesh_system
        dummy = SolverStats()
        a = TransientResult(s, np.array([0.0, 1e-10]),
                            np.zeros((2, s.dim)), dummy)
        b = TransientResult(s, np.array([0.0, 2e-10]),
                            np.zeros((2, s.dim)), dummy)
        with pytest.raises(ValueError, match="aligned"):
            superpose(np.zeros(s.dim), [a, b])

    def test_empty_rejected(self, mesh_system):
        with pytest.raises(ValueError, match="at least one"):
            superpose(np.zeros(mesh_system.dim), [])
